#!/usr/bin/env python
"""Table II + Figure 4 reproduction: mobile latency, energy, and speedup.

Sweeps the paper's ten BSP compression configurations at paper scale
(2-layer GRU, hidden 1024), compiles each through the full pass pipeline,
and simulates on the calibrated Adreno 640 / Kryo 485 profiles.  Prints
both the Table II reproduction (with the paper's numbers alongside) and
the Figure 4 speedup curves, then checks the paper's headline claim:
at ~245x compression the mobile GPU reaches ESE's FPGA latency with a
large energy-efficiency advantage.

Run:  python examples/mobile_deployment.py
(set REPRO_EXAMPLES_FAST=1 for the CI smoke scale)
"""

import os
import time

from repro.eval import (
    ESE_LATENCY_US,
    figure4_from_table2,
    render_figure4,
    render_table2,
    run_table2,
)


FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def main() -> None:
    if FAST:
        from repro.eval import Table2Config

        print("running a reduced Table II sweep (CI smoke scale)...")
        config = Table2Config(
            hidden_size=128, sweep=tuple(Table2Config().sweep)[:3]
        )
    else:
        config = None
        print("running the Table II sweep at paper scale (~10M weights)...")
    start = time.time()
    result = run_table2() if config is None else run_table2(config)
    print()
    print(render_table2(result))
    print()
    figure = figure4_from_table2(result)
    print(render_figure4(figure))
    print(f"\ncompleted in {time.time() - start:.0f}s")

    best = min(result.entries, key=lambda e: e.gpu_time_us)
    print(
        f"\nheadline check: best mobile-GPU latency {best.gpu_time_us:.1f} us "
        f"vs ESE FPGA {ESE_LATENCY_US} us, at {best.gpu_efficiency:.1f}x "
        f"ESE's energy efficiency (paper: ~40x at 245x+ compression)."
    )
    real_time = [e for e in result.entries if e.gpu_time_us < 1000.0]
    print(
        f"{len(real_time)}/{len(result.entries)} configurations run faster "
        "than 1 ms/frame on the mobile GPU — real-time RNN inference."
    )


if __name__ == "__main__":
    main()
