#!/usr/bin/env python
"""Auto-tuner demo: simulated searches plus measured plan tuning.

Shows the two searches the paper's compiler performs offline
(Section IV-B, last paragraph):

1. execution configuration — tile rows per thread and unroll factor —
   minimizing simulated latency on the target device,
2. the BSP block grid (Numr x Numc), trading simulated latency against a
   retained-weight-energy accuracy proxy at a fixed compression target,

and the framework's measured tier on top:

3. ``tune_plan`` — candidate per-layer engine configurations evaluated
   by timing the *real* compiled plan on a calibration batch (the
   simulator pre-filters the per-layer format space), with the winner
   saved as a compiled artifact that reloads bit-identically.

Run:  python examples/autotune_demo.py
(set REPRO_EXAMPLES_FAST=1 for the CI smoke scale)
"""

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.compiler import find_best_block_size, tune_execution_config
from repro.eval.report import format_table
from repro.hw import ADRENO_640, KRYO_485
from repro.utils.rng import new_rng

FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def make_weights(hidden: int = 64 if FAST else 256):
    rng = new_rng(0)
    return {
        "gru.cell0.weight_hh": rng.standard_normal((3 * hidden, hidden)),
        "gru.cell1.weight_ih": rng.standard_normal((3 * hidden, hidden)),
        "gru.cell1.weight_hh": rng.standard_normal((3 * hidden, hidden)),
    }


def main() -> None:
    weights = make_weights()

    print("=== 1. execution-config search (tile rows x unroll) ===")
    for device in (ADRENO_640, KRYO_485):
        result = tune_execution_config(weights, device)
        best = result.best
        print(
            f"{device.name}: best tile rows/thread={best.tile.rows_per_thread} "
            f"unroll={best.tile.unroll} -> {best.latency_us:.1f} us "
            f"({result.num_evaluated} configs evaluated)"
        )

    print("\n=== 2. BSP block-size search at a 128x target ===")
    result = find_best_block_size(
        weights, ADRENO_640, col_rate=16.0, row_rate=8.0,
        strip_choices=(1, 2, 4, 8), block_choices=(2, 4, 8, 16),
        # Weight the retained-energy proxy heavily: at equal-ish latency
        # the tuner should pick the most accuracy-preserving grid.
        accuracy_weight=1000.0,
    )
    print(
        format_table(
            ["Numr", "Numc", "latency us", "retained energy"],
            [
                (c.num_row_strips, c.num_col_blocks, f"{c.latency_us:.1f}",
                 f"{c.accuracy_proxy:.4f}")
                for c in sorted(
                    result.trace,
                    key=lambda c: (c.num_row_strips, c.num_col_blocks),
                )
            ],
        )
    )
    best = result.best
    print(
        f"\ntuner choice: Numr={best.num_row_strips}, Numc={best.num_col_blocks} "
        f"({best.latency_us:.1f} us, retained energy {best.accuracy_proxy:.4f})"
    )
    print(
        "finer grids retain more weight energy (better accuracy) at "
        "near-identical simulated latency — why the paper tunes block size "
        "per model rather than fixing it."
    )

    print("\n=== 3. measured plan tuning (real engine, calibration batch) ===")
    from repro import engine
    from repro.eval.tune import TuneConfig, build_tune_workload, run_tune, render_tune

    config = TuneConfig(
        hidden_size=32 if FAST else 96,
        seq_len=25 if FAST else 100,
        batch=4 if FAST else 16,
        col_rate=8.0,
        repeats=2 if FAST else 3,
    )
    outcome = run_tune(config)
    print(render_tune(outcome))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "tuned.plan.npz"
        engine.save_plan(path, outcome.result.plan)
        reloaded = engine.load_plan(path)
        _, sample = build_tune_workload(config)
        identical = np.array_equal(
            outcome.result.plan.forward_batch(sample),
            reloaded.forward_batch(sample),
        )
        print(
            f"\nartifact round trip ({path.name}): "
            f"{'bit-identical logits' if identical else 'MISMATCH'}"
        )


if __name__ == "__main__":
    main()
