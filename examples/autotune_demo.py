#!/usr/bin/env python
"""Auto-tuner demo: searching execution configs and the BSP block size.

Shows the two searches the paper's compiler performs offline
(Section IV-B, last paragraph):

1. execution configuration — tile rows per thread and unroll factor —
   minimizing simulated latency on the target device,
2. the BSP block grid (Numr x Numc), trading simulated latency against a
   retained-weight-energy accuracy proxy at a fixed compression target.

Run:  python examples/autotune_demo.py
"""

import numpy as np

from repro.compiler import find_best_block_size, tune_execution_config
from repro.eval.report import format_table
from repro.hw import ADRENO_640, KRYO_485
from repro.utils.rng import new_rng


def make_weights(hidden: int = 256):
    rng = new_rng(0)
    return {
        "gru.cell0.weight_hh": rng.standard_normal((3 * hidden, hidden)),
        "gru.cell1.weight_ih": rng.standard_normal((3 * hidden, hidden)),
        "gru.cell1.weight_hh": rng.standard_normal((3 * hidden, hidden)),
    }


def main() -> None:
    weights = make_weights()

    print("=== 1. execution-config search (tile rows x unroll) ===")
    for device in (ADRENO_640, KRYO_485):
        result = tune_execution_config(weights, device)
        best = result.best
        print(
            f"{device.name}: best tile rows/thread={best.tile.rows_per_thread} "
            f"unroll={best.tile.unroll} -> {best.latency_us:.1f} us "
            f"({result.num_evaluated} configs evaluated)"
        )

    print("\n=== 2. BSP block-size search at a 128x target ===")
    result = find_best_block_size(
        weights, ADRENO_640, col_rate=16.0, row_rate=8.0,
        strip_choices=(1, 2, 4, 8), block_choices=(2, 4, 8, 16),
        # Weight the retained-energy proxy heavily: at equal-ish latency
        # the tuner should pick the most accuracy-preserving grid.
        accuracy_weight=1000.0,
    )
    print(
        format_table(
            ["Numr", "Numc", "latency us", "retained energy"],
            [
                (c.num_row_strips, c.num_col_blocks, f"{c.latency_us:.1f}",
                 f"{c.accuracy_proxy:.4f}")
                for c in sorted(
                    result.trace,
                    key=lambda c: (c.num_row_strips, c.num_col_blocks),
                )
            ],
        )
    )
    best = result.best
    print(
        f"\ntuner choice: Numr={best.num_row_strips}, Numc={best.num_col_blocks} "
        f"({best.latency_us:.1f} us, retained energy {best.accuracy_proxy:.4f})"
    )
    print(
        "finer grids retain more weight energy (better accuracy) at "
        "near-identical simulated latency — why the paper tunes block size "
        "per model rather than fixing it."
    )


if __name__ == "__main__":
    main()
