#!/usr/bin/env python
"""Table I reproduction: the full compression-vs-accuracy sweep.

Runs the paper's ten BSP configurations (1x ... 301x) plus the four
comparison methods (ESE-style magnitude, BBS, C-LSTM-style block
circulant, whole-row structured) on the synthetic corpus and prints the
measured table next to the paper's reported degradations.

Takes ~5 minutes at the default scale.  Pass ``--fast`` for the
three-point endpoint sweep (~1 minute).

Run:  python examples/compression_sweep.py [--fast]
"""

import argparse
import time

from repro.eval import Table1Config, render_table1, run_table1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="endpoint sweep only (3 points, no baselines)",
    )
    args = parser.parse_args()

    config = Table1Config.fast() if args.fast else Table1Config()
    points = len(config.bsp_sweep) + (4 if config.include_baselines else 0)
    print(f"running {points} sweep points (hidden={config.hidden_size}, "
          f"{config.num_train} train utterances)...")
    start = time.time()
    result = run_table1(config)
    print()
    print(render_table1(result))
    print(f"\ncompleted in {time.time() - start:.0f}s")
    print(
        "\nreading guide: at <=10x the degradation column should be ~0 "
        "(the paper's headline claim); past ~100x it grows steadily, "
        "mirroring Table I's 4.4-6.7 point losses at 103x-301x."
    )


if __name__ == "__main__":
    main()
