#!/usr/bin/env python
"""Table I reproduction: the full compression-vs-accuracy sweep.

Runs the paper's ten BSP configurations (1x ... 301x) plus the four
comparison methods (ESE-style magnitude, BBS, C-LSTM-style block
circulant, whole-row structured) on the synthetic corpus and prints the
measured table next to the paper's reported degradations.

Takes ~5 minutes at the default scale.  Pass ``--fast`` for the
three-point endpoint sweep (~1 minute).

Run:  python examples/compression_sweep.py [--fast]
(REPRO_EXAMPLES_FAST=1 forces an even smaller CI smoke scale)
"""

import argparse
import os
import time
from dataclasses import replace

from repro.eval import Table1Config, render_table1, run_table1

FAST_ENV = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="endpoint sweep only (3 points, no baselines)",
    )
    args = parser.parse_args()

    config = Table1Config.fast() if (args.fast or FAST_ENV) else Table1Config()
    if FAST_ENV:
        # CI smoke: two sweep points on a tiny corpus/model — exercises
        # the public API end to end, not the calibrated accuracy curve.
        config = replace(
            config,
            hidden_size=32, num_train=10, num_test=4,
            dense_epochs=2, admm_epochs=1, retrain_epochs=1,
            bsp_sweep=((1.0, 1.0, 1.0), (10.0, 1.0, 10.0)),
        )
    points = len(config.bsp_sweep) + (4 if config.include_baselines else 0)
    print(f"running {points} sweep points (hidden={config.hidden_size}, "
          f"{config.num_train} train utterances)...")
    start = time.time()
    result = run_table1(config)
    print()
    print(render_table1(result))
    print(f"\ncompleted in {time.time() - start:.0f}s")
    print(
        "\nreading guide: at <=10x the degradation column should be ~0 "
        "(the paper's headline claim); past ~100x it grows steadily, "
        "mirroring Table I's 4.4-6.7 point losses at 103x-301x."
    )


if __name__ == "__main__":
    main()
