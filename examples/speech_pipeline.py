#!/usr/bin/env python
"""Waveform-in, phones-out: the full speech front-end exercised end to end.

Unlike the fast mel-domain path the sweeps use, this example renders
synthetic utterances to 16 kHz *waveforms* (formant synthesis), extracts
log-mel features with the classic front-end (pre-emphasis → Hamming window
→ FFT → mel filterbank → log), trains the GRU acoustic model on them,
prunes it with BSP, and decodes a held-out utterance, printing the
recognized phone string against the reference.

Run:  python examples/speech_pipeline.py
(set REPRO_EXAMPLES_FAST=1 for the CI smoke scale)
"""

import os

import numpy as np

from repro.nn.data import Dataset
from repro.nn.tensor import Tensor
from repro.pruning import BSPConfig, BSPPruner
from repro.speech import (
    AcousticModelConfig,
    FeatureConfig,
    GRUAcousticModel,
    SynthConfig,
    Trainer,
    TrainerConfig,
    decode_utterance,
    id_to_phone,
)
from repro.speech.metrics import collapse_frames
from repro.speech.synth import waveform_example


def build_waveform_corpus(count: int, seed: int) -> Dataset:
    """Render ``count`` utterances through the waveform + front-end path."""
    examples = []
    for i in range(count):
        _, example = waveform_example(
            SynthConfig(min_phones=3, max_phones=7),
            FeatureConfig(),
            seed=seed * 10_000 + i,
        )
        examples.append(example)
    return Dataset(examples)


def phone_string(ids) -> str:
    return " ".join(id_to_phone(i) for i in ids)


FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def main() -> None:
    print("rendering waveforms and extracting log-mel features...")
    train_set = build_waveform_corpus(8 if FAST else 40, seed=1)
    test_set = build_waveform_corpus(3 if FAST else 10, seed=2)

    model = GRUAcousticModel(AcousticModelConfig(hidden_size=64), rng=0)
    trainer = Trainer(
        model, train_set, test_set,
        TrainerConfig(learning_rate=3e-3, batch_size=4, seed=0),
    )
    print("training on front-end features...")
    trainer.train_dense(epochs=2 if FAST else 10)
    dense = trainer.evaluate()
    print(f"  dense PER: {dense.per:.2f}%")

    print("pruning with BSP at ~8x...")
    pruner = BSPPruner(
        model.prunable_parameters(),
        BSPConfig(col_rate=8, row_rate=1, num_row_strips=4, num_col_blocks=4,
                  step1_admm_epochs=1 if FAST else 4,
                  step1_retrain_epochs=1 if FAST else 3,
                  step2_admm_epochs=0, step2_retrain_epochs=0),
    )
    trainer.run_pruning(pruner)
    pruned = trainer.evaluate()
    print(f"  pruned PER: {pruned.per:.2f}% at "
          f"{pruner.masks.compression_rate():.1f}x compression")

    # Decode one held-out utterance with the pruned model.
    example = test_set[0]
    logits = model(Tensor(example.features[:, None, :])).data[:, 0, :]
    hypothesis = decode_utterance(logits, min_duration=2)
    reference = collapse_frames(example.labels)
    print("\nheld-out utterance decode (pruned model):")
    print(f"  reference:  {phone_string(reference)}")
    print(f"  hypothesis: {phone_string(hypothesis)}")


if __name__ == "__main__":
    main()
