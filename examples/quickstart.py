#!/usr/bin/env python
"""Quickstart: the full RTMobile pipeline in one minute.

Trains a small GRU acoustic model on the synthetic phone-recognition
corpus, compresses it with BSP (the paper's Algorithm 1), compiles the
pruned weights through the reorder / load-elimination / BSPC pipeline,
and predicts mobile latency and energy on the calibrated Adreno 640 GPU
and Kryo 485 CPU profiles.

Run:  python examples/quickstart.py
(set REPRO_EXAMPLES_FAST=1 for the CI smoke scale)
"""

import os

from repro.compiler import CompileOptions, TileConfig, compile_for_simulation
from repro.hw import ADRENO_640, KRYO_485
from repro.pruning import BSPConfig, BSPPruner
from repro.speech import (
    AcousticModelConfig,
    GRUAcousticModel,
    SynthConfig,
    Trainer,
    TrainerConfig,
    make_corpus,
)


FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def main() -> None:
    # 1. Data: a synthetic TIMIT-like corpus (see DESIGN.md for why).
    train_set, test_set = make_corpus(
        num_train=8 if FAST else 48, num_test=4 if FAST else 16,
        config=SynthConfig(noise_level=0.55), seed=0,
    )

    # 2. Dense training.
    model = GRUAcousticModel(AcousticModelConfig(hidden_size=64), rng=0)
    trainer = Trainer(
        model, train_set, test_set,
        TrainerConfig(learning_rate=3e-3, batch_size=4, seed=0),
    )
    print("training dense model...")
    trainer.train_dense(epochs=1 if FAST else 8)
    dense = trainer.evaluate()
    print(f"  dense PER: {dense.per:.2f}%  frame acc: {dense.frame_accuracy:.2%}")

    # 3. BSP compression (Algorithm 1): column-block pruning then row
    #    pruning, ADMM-regularized, with retraining.
    pruner = BSPPruner(
        model.prunable_parameters(),
        BSPConfig(
            col_rate=8, row_rate=2,  # ~16x target
            num_row_strips=4, num_col_blocks=4,
            step1_admm_epochs=1 if FAST else 4,
            step1_retrain_epochs=1 if FAST else 2,
            step2_admm_epochs=1 if FAST else 3,
            step2_retrain_epochs=1 if FAST else 2,
        ),
    )
    print("running BSP pruning...")
    trainer.run_pruning(pruner)
    pruned = trainer.evaluate()
    rate = pruner.masks.compression_rate()
    print(f"  compression: {rate:.1f}x   pruned PER: {pruned.per:.2f}% "
          f"(degradation {pruned.per - dense.per:+.2f})")

    # 4. Compile and simulate on mobile targets.
    weights = model.prunable_weights()
    gpu_model = compile_for_simulation(weights, CompileOptions(tile=TileConfig(use_fp16=True)))
    cpu_model = compile_for_simulation(weights, CompileOptions(tile=TileConfig(use_fp16=False)))
    for compiled, device in ((gpu_model, ADRENO_640), (cpu_model, KRYO_485)):
        sim = compiled.simulate(device)
        energy = compiled.energy(device)
        print(
            f"  {device.name}: {sim.latency_us:.1f} us/frame, "
            f"{sim.gops:.1f} GOP/s, {energy.normalized_efficiency:.2f}x ESE "
            f"energy efficiency"
        )


if __name__ == "__main__":
    main()
