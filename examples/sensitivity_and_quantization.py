#!/usr/bin/env python
"""Beyond uniform pruning: per-layer sensitivity + post-training quantization.

Two extensions the paper's framework naturally supports:

1. **Sensitivity-guided rate allocation** — probe how much each GRU weight
   matrix's loss rises when it alone is block-pruned; allocate per-layer
   compression rates so sensitive layers keep more weights; prune with
   :class:`PerLayerBSPPruner`; compare against uniform BSP at the same
   global rate.
2. **Quantization** — the paper's GPU kernels use fp16; here the pruned
   model is actually quantized (fp16 and int8) and the PER impact is
   measured, confirming fp16 is accuracy-free (the assumption behind
   Table II's 2-byte weight traffic).

Run:  python examples/sensitivity_and_quantization.py
(set REPRO_EXAMPLES_FAST=1 for the CI smoke scale)
"""

import os

import numpy as np

from repro.compiler import describe_plan, compile_weights, render_pattern
from repro.nn.quantize import quantize_model
from repro.nn.tensor import Tensor
from repro.nn import functional as F
from repro.nn.data import collate
from repro.pruning import (
    BSPConfig,
    BSPPruner,
    PerLayerBSPPruner,
    allocate_rates,
    probe_sensitivity,
    sensitivity_configs,
)
from repro.sparse.blocks import grid_for
from repro.speech import (
    AcousticModelConfig,
    GRUAcousticModel,
    SynthConfig,
    Trainer,
    TrainerConfig,
    make_corpus,
)


FAST = bool(os.environ.get("REPRO_EXAMPLES_FAST"))


def make_trainer(seed=0):
    train, test = make_corpus(
        10 if FAST else 64, 4 if FAST else 20,
        SynthConfig(noise_level=0.55), seed=seed,
    )
    model = GRUAcousticModel(
        AcousticModelConfig(hidden_size=32 if FAST else 64), rng=seed
    )
    return model, Trainer(
        model, train, test, TrainerConfig(learning_rate=3e-3, batch_size=4, seed=seed)
    )


def probe_loss_fn(model, dataset):
    """Cross-entropy on a fixed probe batch, reflecting weight edits."""
    batch = collate([dataset[i] for i in range(min(8, len(dataset)))])

    def loss():
        logits = model(Tensor(batch.features))
        t, b, c = logits.shape
        value = F.cross_entropy(
            logits.reshape(t * b, c), batch.labels.reshape(-1),
            weight_mask=batch.mask.reshape(-1),
        )
        return float(value.data)

    return loss


def main() -> None:
    print("=== training the shared dense baseline ===")
    model, trainer = make_trainer()
    trainer.train_dense(2 if FAST else 8)
    dense_state = model.state_dict()
    dense_per = trainer.evaluate().per
    print(f"dense PER: {dense_per:.2f}%")

    print("\n=== 1a. per-layer sensitivity probe ===")
    params = model.prunable_parameters()
    report = probe_sensitivity(
        params, probe_loss_fn(model, trainer.train_set), rates=(4.0, 8.0, 16.0)
    )
    for layer in report.layers:
        print(f"  {layer.name}: mean loss increase "
              f"{layer.mean_degradation:+.4f}")
    print(f"  most sensitive first: {report.ranking()}")

    target = 12.0
    rates = allocate_rates(report, {n: p.size for n, p in params.items()}, target)
    print(f"\nallocated per-layer rates for a global {target:.0f}x target:")
    for name, rate in rates.items():
        print(f"  {name}: {rate:.1f}x")

    print("\n=== 1b. sensitivity-allocated vs uniform BSP ===")
    pruner = PerLayerBSPPruner(params, sensitivity_configs(rates))
    trainer.run_pruning(pruner)
    allocated_per = trainer.evaluate().per
    allocated_rate = pruner.masks.compression_rate()

    model2, trainer2 = make_trainer()
    model2.load_state_dict(dense_state)
    uniform = BSPPruner(
        model2.prunable_parameters(),
        BSPConfig(col_rate=target, row_rate=1, num_row_strips=4, num_col_blocks=4),
    )
    trainer2.run_pruning(uniform)
    uniform_per = trainer2.evaluate().per
    uniform_rate = uniform.masks.compression_rate()
    print(f"  uniform   : {uniform_rate:5.1f}x  PER {uniform_per:.2f}%")
    print(f"  allocated : {allocated_rate:5.1f}x  PER {allocated_per:.2f}%")

    print("\n=== sparsity pattern of one pruned matrix ===")
    name = next(iter(params))
    weight = params[name].data
    print(render_pattern(weight, max_rows=12, max_cols=48,
                         grid=grid_for(weight, 4, 4)))

    print("\n=== compiled plan summary ===")
    plan = compile_weights(model.prunable_weights(), timesteps=10)
    print(describe_plan(plan))

    print("\n=== 2. post-training quantization of the pruned model ===")
    for scheme in ("fp16", "int8"):
        model3, trainer3 = make_trainer()
        model3.load_state_dict(model.state_dict())
        errors = quantize_model(model3, scheme)
        per = trainer3.evaluate().per
        worst = max(errors.values())
        print(f"  {scheme}: PER {per:.2f}% "
              f"(vs {allocated_per:.2f}% float, worst RMS err {worst:.2e})")


if __name__ == "__main__":
    main()
