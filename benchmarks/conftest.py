"""Shared fixtures for the benchmark suite.

Every table/figure of the paper has one ``bench_*`` module.  Benchmarks
print their reproduction table (measured vs. paper) to stdout — run with
``pytest benchmarks/ --benchmark-only -s`` to see the tables inline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.table2 import Table2Config, Table2Result, run_table2


@pytest.fixture(scope="session")
def table2_result() -> Table2Result:
    """The full paper-scale Table II sweep, computed once per session."""
    return run_table2(Table2Config())


@pytest.fixture(scope="session")
def paper_scale_pruned_weights():
    """Paper-scale GRU weights, BSP-pruned at the 103x configuration."""
    from repro.eval.table2 import paper_scale_weights
    from repro.pruning.bsp import BSPConfig, bsp_project_masks

    weights = paper_scale_weights(Table2Config())
    masks = bsp_project_masks(
        weights,
        BSPConfig(col_rate=16, row_rate=16, num_row_strips=8, num_col_blocks=8),
    )
    return {name: masks[name].apply_to_array(w) for name, w in weights.items()}
