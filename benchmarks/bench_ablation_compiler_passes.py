"""Ablation B: contribution of each compiler optimization.

The paper's Section IV-B motivates three optimizations (matrix reorder,
redundant load elimination, BSPC format).  This bench compiles the same
103x BSP-pruned paper-scale model with passes toggled and simulates each
variant, quantifying every pass's latency contribution.
"""

import pytest

from repro.compiler.codegen import CompileOptions
from repro.compiler.ir import TileConfig
from repro.compiler.pipeline import compile_for_simulation
from repro.eval.report import format_table
from repro.hw.profiles import ADRENO_640, KRYO_485


VARIANTS = [
    ("full (reorder+elim+BSPC)", dict(enable_reorder=True,
                                      enable_load_elimination=True,
                                      format_name="bspc")),
    ("no reorder", dict(enable_reorder=False, enable_load_elimination=True,
                        format_name="bspc")),
    ("no load elimination", dict(enable_reorder=True,
                                 enable_load_elimination=False,
                                 format_name="bspc")),
    ("CSR instead of BSPC", dict(enable_reorder=True,
                                 enable_load_elimination=True,
                                 format_name="csr")),
    ("none (CSR, no passes)", dict(enable_reorder=False,
                                   enable_load_elimination=False,
                                   format_name="csr")),
]


def simulate_variants(weights):
    rows = []
    for name, options in VARIANTS:
        compiled = compile_for_simulation(
            weights,
            CompileOptions(tile=TileConfig(use_fp16=True),
                           num_row_strips=8, num_col_blocks=8, **options),
        )
        gpu = compiled.simulate(ADRENO_640).latency_us
        cpu_compiled = compile_for_simulation(
            weights,
            CompileOptions(tile=TileConfig(use_fp16=False),
                           num_row_strips=8, num_col_blocks=8, **options),
        )
        cpu = cpu_compiled.simulate(KRYO_485).latency_us
        rows.append((name, gpu, cpu))
    return rows


def test_ablation_compiler_passes(benchmark, paper_scale_pruned_weights):
    rows = benchmark.pedantic(
        lambda: simulate_variants(paper_scale_pruned_weights),
        rounds=1, iterations=1,
    )
    print()
    print(
        format_table(
            ["variant", "GPU us", "CPU us"],
            [(n, f"{g:.1f}", f"{c:.1f}") for n, g, c in rows],
            title="Ablation: compiler passes at 103x BSP (paper scale)",
        )
    )
    by_name = {n: (g, c) for n, g, c in rows}
    full_gpu, full_cpu = by_name["full (reorder+elim+BSPC)"]
    none_gpu, none_cpu = by_name["none (CSR, no passes)"]
    # The full pipeline is never slower than the stripped one, and the
    # stripped CSR path pays a clear penalty on both devices.
    assert full_gpu < none_gpu
    assert full_cpu < none_cpu
    # Each single ablation costs something (or at worst is neutral).
    for variant in ("no load elimination", "CSR instead of BSPC"):
        gpu, cpu = by_name[variant]
        assert gpu >= full_gpu - 1e-9
        assert cpu >= full_cpu - 1e-9
