"""Ablation D: numeric precision of the deployed weights.

Table II's GPU column assumes fp16 weights are accuracy-free (it reports
the same PERs as the fp32 training runs).  This bench validates that
assumption end-to-end: a trained, BSP-pruned model is quantized to fp16
and int8 and re-scored; fp16 must be indistinguishable, int8 close.
"""

import pytest

from repro.nn.quantize import quantize_model
from repro.pruning.bsp import BSPConfig, BSPPruner
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_corpus
from repro.speech.trainer import Trainer, TrainerConfig


def train_and_prune():
    train, test = make_corpus(48, 16, SynthConfig(noise_level=0.55), seed=0)
    model = GRUAcousticModel(AcousticModelConfig(hidden_size=64), rng=0)
    trainer = Trainer(model, train, test,
                      TrainerConfig(learning_rate=3e-3, batch_size=4, seed=0))
    trainer.train_dense(8)
    pruner = BSPPruner(
        model.prunable_parameters(),
        BSPConfig(col_rate=8, row_rate=1, num_row_strips=4, num_col_blocks=4,
                  step1_admm_epochs=4, step1_retrain_epochs=2,
                  step2_admm_epochs=0, step2_retrain_epochs=0),
    )
    trainer.run_pruning(pruner)
    return model, trainer


@pytest.fixture(scope="module")
def pruned():
    return train_and_prune()


def test_ablation_quantization(benchmark, pruned):
    model, trainer = pruned
    float_per = trainer.evaluate().per
    state = model.state_dict()
    results = {"float64": float_per}

    def score(scheme):
        model.load_state_dict(state)
        quantize_model(model, scheme)
        return trainer.evaluate().per

    results["fp16"] = benchmark.pedantic(
        lambda: score("fp16"), rounds=1, iterations=1
    )
    results["int8"] = score("int8")
    model.load_state_dict(state)  # restore for other tests

    print()
    print("Ablation: weight precision of the pruned model")
    for scheme, per in results.items():
        print(f"  {scheme:8s} PER {per:.2f}%")
    # fp16 is accuracy-free (Table II's assumption).
    assert results["fp16"] == pytest.approx(float_per, abs=0.5)
    # int8 stays in the same regime (within a few points).
    assert results["int8"] <= float_per + 5.0
