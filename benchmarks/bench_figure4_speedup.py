"""Figure 4: inference speedup over dense baselines vs. compression rate.

Derives both speedup curves (GPU and CPU) from the Table II sweep and
checks the paper's two qualitative observations: speedup grows with
compression, and saturates once compression passes ~250x.
"""

from repro.eval.figure4 import figure4_from_table2, render_figure4


def test_figure4_report(benchmark, table2_result):
    figure = figure4_from_table2(table2_result)
    print()
    print(benchmark(render_figure4, figure))
    gpu = figure.gpu_series()
    cpu = figure.cpu_series()
    # Speedup grows: every mid-sweep point beats dense, high rates beat 10x.
    assert all(s >= 1.0 for s in gpu)
    assert gpu[5] > gpu[1] > gpu[0]
    assert cpu[5] > cpu[1] > cpu[0]
    # Plateau: the last point is within 25% of the mid-sweep maximum, not
    # a continued climb (paper: "speedup becomes stable ... ~250x").
    assert 0.75 <= figure.plateau_ratio() <= 1.35
    # Beyond-real-time headline: >25x GPU speedup at high compression.
    assert max(gpu) > 25


def test_bench_figure4_derivation(benchmark, table2_result):
    """Wall-clock of deriving the Figure 4 series from a finished sweep."""
    figure = benchmark(figure4_from_table2, table2_result)
    assert len(figure.points) == len(table2_result.entries)
