"""Micro-benchmarks of the library's hot kernels.

Not a paper table — these time the reproduction's own building blocks
(format conversion, spmv, projection, compilation) so regressions in the
substrate are visible.
"""

import numpy as np
import pytest

from repro import kernels
from repro.compiler.codegen import CompileOptions, lower_matrix
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.pruning.projections import project_block_columns, project_unstructured
from repro.sparse.blocks import grid_for
from repro.sparse.bspc import BSPCMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import new_rng

BACKENDS = ["reference", "numpy"]


@pytest.fixture(scope="module")
def pruned_1k():
    rng = new_rng(0)
    w = rng.standard_normal((1024, 1024))
    masks = bsp_project_masks(
        {"w": w},
        BSPConfig(col_rate=8, row_rate=2, num_row_strips=8, num_col_blocks=8),
    )
    return masks["w"].apply_to_array(w)


def test_bench_bspc_encode(benchmark, pruned_1k):
    grid = grid_for(pruned_1k, 8, 8)
    bspc = benchmark(BSPCMatrix.from_dense, pruned_1k, grid)
    assert bspc.fill() == 1.0


def test_bench_csr_encode(benchmark, pruned_1k):
    csr = benchmark(CSRMatrix.from_dense, pruned_1k)
    assert csr.nnz == np.count_nonzero(pruned_1k)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_bspc_spmv(benchmark, pruned_1k, backend):
    grid = grid_for(pruned_1k, 8, 8)
    bspc = BSPCMatrix.from_dense(pruned_1k, grid)
    x = new_rng(1).standard_normal(1024)
    bspc.spmv(x)  # build + cache the plan outside the timed region
    out = benchmark(bspc.spmv, x, backend=backend)
    np.testing.assert_allclose(out, pruned_1k @ x)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_bspc_spmm(benchmark, pruned_1k, backend):
    grid = grid_for(pruned_1k, 8, 8)
    bspc = BSPCMatrix.from_dense(pruned_1k, grid)
    x = new_rng(1).standard_normal((1024, 16))
    bspc.spmm(x)
    out = benchmark(bspc.spmm, x, backend=backend)
    np.testing.assert_allclose(out, pruned_1k @ x)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_csr_spmv(benchmark, pruned_1k, backend):
    csr = CSRMatrix.from_dense(pruned_1k)
    x = new_rng(1).standard_normal(1024)
    csr.spmv(x)
    out = benchmark(csr.spmv, x, backend=backend)
    np.testing.assert_allclose(out, pruned_1k @ x)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_gru_sequence_kernel(benchmark, backend):
    """One fused GRU layer, T=100 B=16 H=1024 (paper-scale width)."""
    rng = new_rng(0)
    seq_len, batch, hidden, input_dim = 100, 16, 1024, 40
    x = rng.standard_normal((seq_len, batch, input_dim))
    w_ih = rng.standard_normal((3 * hidden, input_dim))
    w_hh = rng.standard_normal((3 * hidden, hidden)) * 0.05
    b_ih = rng.standard_normal(3 * hidden)
    b_hh = rng.standard_normal(3 * hidden)
    h0 = np.zeros((batch, hidden))
    out, _ = benchmark(
        kernels.gru_sequence, x, w_ih, w_hh, b_ih, b_hh, h0, backend=backend
    )
    assert out.shape == (seq_len, batch, hidden)


def test_bench_block_projection(benchmark):
    rng = new_rng(0)
    w = rng.standard_normal((1024, 1024))
    grid = grid_for(w, 8, 8)
    mask = benchmark(project_block_columns, w, grid, 8.0)
    assert mask.compression_rate() == pytest.approx(8.0, rel=0.05)


def test_bench_unstructured_projection(benchmark):
    rng = new_rng(0)
    w = rng.standard_normal((1024, 1024))
    mask = benchmark(project_unstructured, w, 8.0)
    assert mask.compression_rate() == pytest.approx(8.0, rel=0.01)


def test_bench_lower_matrix(benchmark, pruned_1k):
    plan = benchmark(lower_matrix, "w", pruned_1k, CompileOptions(
        num_row_strips=8, num_col_blocks=8))
    assert plan.format_name == "bspc"


def test_bench_gru_forward(benchmark):
    from repro.nn.rnn import GRU
    from repro.nn.tensor import Tensor

    rng = new_rng(0)
    gru = GRU(40, 128, num_layers=2, rng=0)
    x = Tensor(rng.standard_normal((30, 8, 40)))

    def forward():
        out, _ = gru(x)
        return out

    out = benchmark(forward)
    assert out.shape == (30, 8, 128)


def test_bench_gru_backward(benchmark):
    from repro.nn.rnn import GRU
    from repro.nn.tensor import Tensor

    rng = new_rng(0)
    gru = GRU(40, 96, num_layers=2, rng=0)
    x = Tensor(rng.standard_normal((20, 4, 40)))

    def step():
        gru.zero_grad()
        out, _ = gru(x)
        out.sum().backward()
        return gru.cells[0].weight_hh.grad

    grad = benchmark(step)
    assert grad is not None
