"""Benchmark driver: records BENCH_kernels.json and BENCH_engine.json.

Runs the hot-path kernel cases plus the engine suite (compiled batched
forward vs per-utterance eager, int8 vs float sparse ops) with a plain
``time.perf_counter`` harness and writes machine-readable records so
future PRs have a perf trajectory to regress against::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --repeats 50
    PYTHONPATH=src python benchmarks/run_bench.py --check BENCH_kernels.json BENCH_engine.json

Each row records ``op``, ``size``, ``backend``, ``median_s``, and
``speedup_vs_baseline``, where the baseline backend is the seed
implementation of that op: the ``reference`` Python loops for sparse ops,
the autograd-tape ``GRU.forward``/``LSTM.forward`` (``tensor_tape``
rows) for the sequence kernels, the per-utterance eager path for the
engine forward, and the float numpy backend for the int8 ops.

``--check`` is the CI regression gate: it re-runs the suites and exits
nonzero if any recorded row got more than ``--threshold`` (default 1.5x)
slower than its baseline file, without rewriting the records.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import engine, kernels  # noqa: E402
from repro.nn.rnn import GRU, LSTM  # noqa: E402
from repro.nn.tensor import Tensor  # noqa: E402
from repro.pruning.bsp import BSPConfig, bsp_project_masks  # noqa: E402
from repro.sparse.blocks import grid_for  # noqa: E402
from repro.sparse.bspc import BSPCMatrix  # noqa: E402
from repro.sparse.csr import CSRMatrix  # noqa: E402
from repro.speech.model import AcousticModelConfig, GRUAcousticModel  # noqa: E402
from repro.utils.rng import new_rng  # noqa: E402

SPARSE_BACKENDS = ["reference", "numpy"]


def median_seconds(fn: Callable[[], object], repeats: int) -> float:
    fn()  # warm up (also builds/caches any execution plan)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def pruned_matrix(size: int = 1024, strips: int = 8, blocks: int = 8) -> np.ndarray:
    rng = new_rng(0)
    weight = rng.standard_normal((size, size))
    masks = bsp_project_masks(
        {"w": weight},
        BSPConfig(col_rate=8, row_rate=2, num_row_strips=strips, num_col_blocks=blocks),
    )
    return masks["w"].apply_to_array(weight)


def bench_sparse(repeats: int) -> List[Dict]:
    size, strips, blocks = 1024, 8, 8
    pruned = pruned_matrix(size, strips, blocks)
    grid = grid_for(pruned, strips, blocks)
    bspc = BSPCMatrix.from_dense(pruned, grid)
    csr = CSRMatrix.from_dense(pruned)
    x = new_rng(1).standard_normal(size)
    batch = new_rng(2).standard_normal((size, 16))

    cases = [
        ("bspc_spmv", f"{size}x{size} grid={strips}x{blocks}",
         lambda b: (lambda: bspc.spmv(x, backend=b))),
        ("bspc_spmm", f"{size}x{size}x16 grid={strips}x{blocks}",
         lambda b: (lambda: bspc.spmm(batch, backend=b))),
        ("csr_spmv", f"{size}x{size}",
         lambda b: (lambda: csr.spmv(x, backend=b))),
        ("csr_spmm", f"{size}x{size}x16",
         lambda b: (lambda: csr.spmm(batch, backend=b))),
    ]
    rows = []
    for op, label, make in cases:
        medians = {b: median_seconds(make(b), repeats) for b in SPARSE_BACKENDS}
        baseline = medians["reference"]
        for backend in SPARSE_BACKENDS:
            rows.append({
                "op": op,
                "size": label,
                "backend": backend,
                "median_s": medians[backend],
                "speedup_vs_baseline": baseline / medians[backend],
                "baseline": "reference",
            })
    return rows


def bench_recurrent(repeats: int) -> List[Dict]:
    rows = []
    configs = [
        ("gru_sequence", GRU, (100, 16, 64)),
        ("gru_sequence", GRU, (100, 16, 256)),
        ("lstm_sequence", LSTM, (100, 16, 64)),
    ]
    input_dim, num_layers = 40, 2
    for op, module_cls, (seq_len, batch, hidden) in configs:
        rng = new_rng(0)
        model = module_cls(input_dim, hidden, num_layers=num_layers, rng=0)
        x = Tensor(rng.standard_normal((seq_len, batch, input_dim)))
        label = f"T={seq_len} B={batch} H={hidden} L={num_layers}"

        model.train()
        medians = {"tensor_tape": median_seconds(lambda: model(x), repeats)}
        model.eval()
        for backend in SPARSE_BACKENDS:
            def run(b=backend):
                with kernels.use_backend(b):
                    return model(x)

            medians[backend] = median_seconds(run, repeats)
        baseline = medians["tensor_tape"]
        for backend, median in medians.items():
            rows.append({
                "op": op,
                "size": label,
                "backend": backend,
                "median_s": median,
                "speedup_vs_baseline": baseline / median,
                "baseline": "tensor_tape",
            })
    return rows


def random_sparse_csr(size: int, density: float, seed: int = 0) -> CSRMatrix:
    """Build a random-sparsity CSR matrix directly (no dense intermediate),
    so server-scale cases don't materialize a multi-GB dense array."""
    rng = new_rng(seed)
    row_nnz = rng.binomial(size, density, size=size)
    row_ptr = np.zeros(size + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=row_ptr[1:])
    cols = np.concatenate(
        [np.sort(rng.choice(size, k, replace=False)) for k in row_nnz]
    ).astype(np.int64)
    return CSRMatrix(
        shape=(size, size),
        values=rng.standard_normal(int(row_ptr[-1])),
        col_indices=cols,
        row_ptr=row_ptr,
    )


def bench_int8(repeats: int) -> List[Dict]:
    """Int8 kernels vs the float numpy backend at 90% sparsity.

    The acceptance-tracked case is the 8192x8192 spmv: at that size the
    float64 path's working set (~54 MB values + gathers) is firmly out of
    cache while the int8 path moves 1/8th-1/4th the bytes — which is the
    regime the quantized backend exists for.
    """
    rows = []
    for size in (1024, 8192):
        csr = random_sparse_csr(size, density=0.1, seed=0)
        x = new_rng(1).standard_normal(size)
        label = f"{size}x{size} d=0.10"
        medians = {
            "numpy_float64": median_seconds(lambda: csr.spmv(x), repeats),
            "numpy_int8": median_seconds(
                lambda: kernels.spmv_int8(csr, x), repeats
            ),
        }
        baseline = medians["numpy_float64"]
        for backend, median in medians.items():
            rows.append({
                "op": "csr_spmv_int8",
                "size": label,
                "backend": backend,
                "median_s": median,
                "speedup_vs_baseline": baseline / median,
                "baseline": "numpy_float64",
            })
    return rows


def bench_engine_forward(repeats: int) -> List[Dict]:
    """Compiled batched engine vs the per-utterance eval-mode Module path."""
    seq_len, batch, input_dim = 100, 16, 40
    model = GRUAcousticModel(
        AcousticModelConfig(input_dim=input_dim, hidden_size=64, num_layers=2),
        rng=0,
    ).eval()
    rng = new_rng(3)
    utterances = [rng.standard_normal((seq_len, input_dim)) for _ in range(batch)]
    batched = np.stack(utterances, axis=1)
    label = f"T={seq_len} B={batch} H=64 L=2"

    def eager():
        return [model(Tensor(u[:, None, :])) for u in utterances]

    medians = {"eager_per_utterance": median_seconds(eager, repeats)}
    plans = {
        "engine_packed": engine.compile_model(model),
        "engine_fp16": engine.compile_model(model, scheme="fp16"),
        "engine_int8": engine.compile_model(model, scheme="int8"),
    }
    for name, plan in plans.items():
        medians[name] = median_seconds(lambda p=plan: p.forward_batch(batched), repeats)
    baseline = medians["eager_per_utterance"]
    return [
        {
            "op": "model_forward",
            "size": label,
            "backend": backend,
            "median_s": median,
            "speedup_vs_baseline": baseline / median,
            "baseline": "eager_per_utterance",
        }
        for backend, median in medians.items()
    ]


def bench_engine(repeats: int) -> List[Dict]:
    """The BENCH_engine.json suite: batched forward + int8 kernels."""
    return bench_engine_forward(max(3, repeats // 3)) + bench_int8(repeats)


def rows_by_key(rows: List[Dict]) -> Dict:
    return {(r["op"], r["size"], r["backend"]): r for r in rows}


def check_against(baselines: List[Dict], current: List[Dict], threshold: float) -> List[str]:
    """Regression report: rows slower than ``threshold`` x their record."""
    current_by_key = rows_by_key(current)
    problems = []
    for key, recorded in rows_by_key(baselines).items():
        row = current_by_key.get(key)
        if row is None:
            problems.append(f"missing bench row {key} (recorded but not re-run)")
            continue
        ratio = row["median_s"] / recorded["median_s"]
        if ratio > threshold:
            problems.append(
                f"{key[0]} [{key[1]}] {key[2]}: {row['median_s'] * 1e3:.3f}ms "
                f"vs recorded {recorded['median_s'] * 1e3:.3f}ms "
                f"({ratio:.2f}x > {threshold}x)"
            )
    return problems


def render(rows: List[Dict]) -> str:
    lines = [
        f"{'op':<14} {'size':<28} {'backend':<20} {'median':>10} {'speedup':>8}",
        "-" * 84,
    ]
    for row in rows:
        lines.append(
            f"{row['op']:<14} {row['size']:<28} {row['backend']:<20} "
            f"{row['median_s'] * 1e3:>8.3f}ms {row['speedup_vs_baseline']:>7.1f}x"
        )
    return "\n".join(lines)


def _meta(repeats: int) -> Dict:
    return {
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        # full-model/sequence rows are slower and sampled fewer times
        "forward_repeats": max(3, repeats // 3),
        "default_backend": kernels.get_default_backend(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_kernels.json",
        help="kernel-suite output JSON (default: repo-root BENCH_kernels.json)",
    )
    parser.add_argument(
        "--engine-out", type=Path, default=REPO_ROOT / "BENCH_engine.json",
        help="engine-suite output JSON (default: repo-root BENCH_engine.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=30,
        help="timed repetitions per case (median is reported)",
    )
    parser.add_argument(
        "--check", type=Path, nargs="+", metavar="BASELINE",
        help="regression gate: re-run the suites and fail if any row in "
        "the given recorded JSON file(s) got slower than --threshold x; "
        "records are not rewritten",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="slowdown ratio that fails --check (default 1.5)",
    )
    args = parser.parse_args(argv)

    kernel_rows = bench_sparse(args.repeats) + bench_recurrent(
        max(3, args.repeats // 3)
    )
    engine_rows = bench_engine(args.repeats)
    print(render(kernel_rows + engine_rows))

    if args.check:
        current = kernel_rows + engine_rows
        problems: List[str] = []
        for baseline_path in args.check:
            recorded = json.loads(baseline_path.read_text())["results"]
            problems += check_against(recorded, current, args.threshold)
        if problems:
            print(f"\nREGRESSIONS vs recorded baselines (> {args.threshold}x):")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"\ncheck ok: no tracked op slower than {args.threshold}x its record")
        return 0

    args.out.write_text(
        json.dumps({"meta": _meta(args.repeats), "results": kernel_rows}, indent=2)
        + "\n"
    )
    args.engine_out.write_text(
        json.dumps({"meta": _meta(args.repeats), "results": engine_rows}, indent=2)
        + "\n"
    )
    print(f"\nwrote {args.out} and {args.engine_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
