"""Benchmark driver: records BENCH_kernels.json, BENCH_engine.json,
BENCH_training.json, BENCH_serving.json, and BENCH_autotune.json.

Runs the hot-path kernel cases, the engine suite (compiled batched
forward vs per-utterance eager, int8 vs float sparse ops), the training
suite (fused BPTT vs autograd tape: epoch time, BPTT step time, ADMM
prune→retrain epoch, ADMM projection), and the streaming-serving suite
(chunked stateful sessions through the deadline-batching scheduler vs
offline batched serving, plus per-chunk latency percentiles) with a
plain ``time.perf_counter`` harness and writes machine-readable records
so future PRs have a perf trajectory to regress against::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --repeats 50
    PYTHONPATH=src python benchmarks/run_bench.py --check BENCH_kernels.json BENCH_engine.json BENCH_training.json BENCH_serving.json BENCH_autotune.json

Each row records ``op``, ``size``, ``backend``, ``median_s``, and
``speedup_vs_baseline``, where the baseline backend is the seed
implementation of that op: the ``reference`` Python loops for sparse ops,
the autograd-tape ``GRU.forward``/``LSTM.forward`` (``tensor_tape``
rows) for the sequence kernels and training cases, the per-utterance
eager path for the engine forward, the float numpy backend for the int8
ops (the numpy int8 path for the int8 sparse-vs-compiled rows), and the
offline batched path for the streaming throughput rows.  On hosts with a
working C compiler the ``compiled`` backend joins every sparse and int8
case; the autotune suite additionally records the tile ranking under the
host-calibrated cost model (``tile_model_calibrated``).
The tail-latency rows are each their own baseline: raw milliseconds are
machine-dependent, so the latency gate is the machine-independent
p95/p50 *ratio* carried in ``speedup_vs_baseline``, not absolute time.
The autotune rows come from the measured tuner's own trace: the tuned
plan can never be slower than the default configuration it searched
against, so the gate watches the tuned speedup for collapse.

``--check`` is the CI regression gate: it re-runs the suites and exits
nonzero if any recorded row got more than ``--threshold`` (default 1.5x)
slower than its baseline file, without rewriting the records.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import engine, kernels  # noqa: E402
from repro.kernels import compiled as compiled_backend  # noqa: E402
from repro.nn import functional as F  # noqa: E402
from repro.nn.rnn import GRU, LSTM  # noqa: E402
from repro.nn.tensor import Tensor  # noqa: E402
from repro.pruning.bsp import BSPConfig, BSPPruner, bsp_project_masks  # noqa: E402
from repro.pruning.projections import (  # noqa: E402
    _project_bank_balanced_loop,
    project_bank_balanced,
)
from repro.sparse.blocks import grid_for  # noqa: E402
from repro.sparse.bspc import BSPCMatrix  # noqa: E402
from repro.sparse.csr import CSRMatrix  # noqa: E402
from repro.speech.model import AcousticModelConfig, GRUAcousticModel  # noqa: E402
from repro.speech.phones import NUM_CLASSES  # noqa: E402
from repro.speech.synth import SynthConfig, make_corpus  # noqa: E402
from repro.speech.trainer import Trainer, TrainerConfig  # noqa: E402
from repro.utils.rng import new_rng  # noqa: E402

# The compiled C backend joins every sparse/int8 case when this host has
# a working compiler; without one the suites simply record the two
# always-available backends (the registry never lists "compiled" then).
SPARSE_BACKENDS = ["reference", "numpy"] + (
    ["compiled"] if compiled_backend.available() else []
)

#: Int8 sparse cases compare against the numpy int8 path, not reference:
#: the acceptance-tracked ratio is compiled-vs-numpy on bspc_spmm.
INT8_SPARSE_BACKENDS = ["numpy"] + (
    ["compiled"] if compiled_backend.available() else []
)


def median_seconds(fn: Callable[[], object], repeats: int) -> float:
    fn()  # warm up (also builds/caches any execution plan)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def interleaved_medians(
    fns: Dict[str, Callable[[], object]], repeats: int
) -> Dict[str, float]:
    """Median runtime per case, sampled round-robin.

    Slow cases (the tape-training baselines) run for seconds; measuring
    each case's repeats back-to-back would let machine-speed drift across
    the run bias one side of a speedup ratio.  Alternating the cases puts
    every sample pair under the same conditions.
    """
    for fn in fns.values():
        fn()  # warm up
    samples: Dict[str, List[float]] = {name: [] for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            samples[name].append(time.perf_counter() - start)
    return {name: float(np.median(s)) for name, s in samples.items()}


def pruned_matrix(size: int = 1024, strips: int = 8, blocks: int = 8) -> np.ndarray:
    rng = new_rng(0)
    weight = rng.standard_normal((size, size))
    masks = bsp_project_masks(
        {"w": weight},
        BSPConfig(col_rate=8, row_rate=2, num_row_strips=strips, num_col_blocks=blocks),
    )
    return masks["w"].apply_to_array(weight)


def bench_sparse(repeats: int) -> List[Dict]:
    size, strips, blocks = 1024, 8, 8
    pruned = pruned_matrix(size, strips, blocks)
    grid = grid_for(pruned, strips, blocks)
    bspc = BSPCMatrix.from_dense(pruned, grid)
    csr = CSRMatrix.from_dense(pruned)
    x = new_rng(1).standard_normal(size)
    batch = new_rng(2).standard_normal((size, 16))

    cases = [
        ("bspc_spmv", f"{size}x{size} grid={strips}x{blocks}",
         lambda b: (lambda: bspc.spmv(x, backend=b))),
        ("bspc_spmm", f"{size}x{size}x16 grid={strips}x{blocks}",
         lambda b: (lambda: bspc.spmm(batch, backend=b))),
        ("csr_spmv", f"{size}x{size}",
         lambda b: (lambda: csr.spmv(x, backend=b))),
        ("csr_spmm", f"{size}x{size}x16",
         lambda b: (lambda: csr.spmm(batch, backend=b))),
    ]
    rows = []
    for op, label, make in cases:
        medians = {b: median_seconds(make(b), repeats) for b in SPARSE_BACKENDS}
        baseline = medians["reference"]
        for backend in SPARSE_BACKENDS:
            rows.append({
                "op": op,
                "size": label,
                "backend": backend,
                "median_s": medians[backend],
                "speedup_vs_baseline": baseline / medians[backend],
                "baseline": "reference",
            })

    # Int8 sparse cases, compiled vs numpy (reference int8 is orders of
    # magnitude off and would only stretch the run).  The bspc_spmm row
    # is the acceptance-tracked one: the fused quantize-into-pack C
    # kernel against the numpy int8 path at the paper-scale grid.
    int8_cases = [
        ("bspc_spmv_int8", f"{size}x{size} grid={strips}x{blocks}",
         lambda b: (lambda: kernels.spmv_int8(bspc, x, backend=b))),
        ("bspc_spmm_int8", f"{size}x{size}x16 grid={strips}x{blocks}",
         lambda b: (lambda: kernels.spmm_int8(bspc, batch, backend=b))),
        ("csr_spmm_int8", f"{size}x{size}x16",
         lambda b: (lambda: kernels.spmm_int8(csr, batch, backend=b))),
    ]
    for op, label, make in int8_cases:
        medians = {
            b: median_seconds(make(b), repeats) for b in INT8_SPARSE_BACKENDS
        }
        baseline = medians["numpy"]
        for backend in INT8_SPARSE_BACKENDS:
            rows.append({
                "op": op,
                "size": label,
                "backend": backend,
                "median_s": medians[backend],
                "speedup_vs_baseline": baseline / medians[backend],
                "baseline": "numpy",
            })
    return rows


def bench_recurrent(repeats: int) -> List[Dict]:
    rows = []
    configs = [
        ("gru_sequence", GRU, (100, 16, 64)),
        ("gru_sequence", GRU, (100, 16, 256)),
        ("lstm_sequence", LSTM, (100, 16, 64)),
    ]
    input_dim, num_layers = 40, 2
    for op, module_cls, (seq_len, batch, hidden) in configs:
        rng = new_rng(0)
        model = module_cls(input_dim, hidden, num_layers=num_layers, rng=0)
        x = Tensor(rng.standard_normal((seq_len, batch, input_dim)))
        label = f"T={seq_len} B={batch} H={hidden} L={num_layers}"

        model.train()

        def tape_run():
            # Train-mode forward takes the fused-BPTT path on vectorized
            # backends now, so the tape baseline must pin "reference".
            with kernels.use_backend("reference"):
                return model(x)

        medians = {"tensor_tape": median_seconds(tape_run, repeats)}
        model.eval()
        for backend in SPARSE_BACKENDS:
            def run(b=backend):
                with kernels.use_backend(b):
                    return model(x)

            medians[backend] = median_seconds(run, repeats)
        baseline = medians["tensor_tape"]
        for backend, median in medians.items():
            rows.append({
                "op": op,
                "size": label,
                "backend": backend,
                "median_s": median,
                "speedup_vs_baseline": baseline / median,
                "baseline": "tensor_tape",
            })
    return rows


def random_sparse_csr(size: int, density: float, seed: int = 0) -> CSRMatrix:
    """Build a random-sparsity CSR matrix directly (no dense intermediate),
    so server-scale cases don't materialize a multi-GB dense array."""
    rng = new_rng(seed)
    row_nnz = rng.binomial(size, density, size=size)
    row_ptr = np.zeros(size + 1, dtype=np.int64)
    np.cumsum(row_nnz, out=row_ptr[1:])
    cols = np.concatenate(
        [np.sort(rng.choice(size, k, replace=False)) for k in row_nnz]
    ).astype(np.int64)
    return CSRMatrix(
        shape=(size, size),
        values=rng.standard_normal(int(row_ptr[-1])),
        col_indices=cols,
        row_ptr=row_ptr,
    )


def bench_int8(repeats: int) -> List[Dict]:
    """Int8 kernels vs the float numpy backend at 90% sparsity.

    The acceptance-tracked case is the 8192x8192 spmv: at that size the
    float64 path's working set (~54 MB values + gathers) is firmly out of
    cache while the int8 path moves 1/8th-1/4th the bytes — which is the
    regime the quantized backend exists for.
    """
    rows = []
    for size in (1024, 8192):
        csr = random_sparse_csr(size, density=0.1, seed=0)
        x = new_rng(1).standard_normal(size)
        label = f"{size}x{size} d=0.10"
        medians = {
            "numpy_float64": median_seconds(lambda: csr.spmv(x), repeats),
            "numpy_int8": median_seconds(
                lambda: kernels.spmv_int8(csr, x), repeats
            ),
        }
        baseline = medians["numpy_float64"]
        for backend, median in medians.items():
            rows.append({
                "op": "csr_spmv_int8",
                "size": label,
                "backend": backend,
                "median_s": median,
                "speedup_vs_baseline": baseline / median,
                "baseline": "numpy_float64",
            })
    return rows


def bench_engine_forward(repeats: int) -> List[Dict]:
    """Compiled batched engine vs the per-utterance eval-mode Module path."""
    seq_len, batch, input_dim = 100, 16, 40
    model = GRUAcousticModel(
        AcousticModelConfig(input_dim=input_dim, hidden_size=64, num_layers=2),
        rng=0,
    ).eval()
    rng = new_rng(3)
    utterances = [rng.standard_normal((seq_len, input_dim)) for _ in range(batch)]
    batched = np.stack(utterances, axis=1)
    label = f"T={seq_len} B={batch} H=64 L=2"

    def eager():
        return [model(Tensor(u[:, None, :])) for u in utterances]

    medians = {"eager_per_utterance": median_seconds(eager, repeats)}
    plans = {
        "engine_packed": engine.compile_model(model),
        "engine_fp16": engine.compile_model(model, scheme="fp16"),
        "engine_int8": engine.compile_model(model, scheme="int8"),
    }
    for name, plan in plans.items():
        medians[name] = median_seconds(lambda p=plan: p.forward_batch(batched), repeats)
    baseline = medians["eager_per_utterance"]
    return [
        {
            "op": "model_forward",
            "size": label,
            "backend": backend,
            "median_s": median,
            "speedup_vs_baseline": baseline / median,
            "baseline": "eager_per_utterance",
        }
        for backend, median in medians.items()
    ]


def bench_engine(repeats: int) -> List[Dict]:
    """The BENCH_engine.json suite: batched forward + int8 kernels."""
    return bench_engine_forward(max(3, repeats // 3)) + bench_int8(repeats)


def bench_streaming(repeats: int) -> List[Dict]:
    """The BENCH_serving.json suite: streamed vs offline serving.

    Eight concurrent sessions feed 25-frame chunks round-robin through a
    :class:`~repro.engine.streaming.StreamScheduler`; the offline
    baseline decodes the same utterances whole through ``serve_stream``.
    Reported: the full-workload wall-clock ratio (what chunk-granular
    state carry costs or buys) and the per-chunk p50/p95 submit→decode
    latencies, gated by the machine-independent p95/p50 tail ratio.
    """
    from repro.eval.stream_bench import (
        StreamBenchConfig,
        _fabric_pass,
        _stream_pass,
        build_stream_workload,
    )

    config = StreamBenchConfig(repeats=1)
    plan, features, serving = build_stream_workload(config)
    total_frames = sum(len(utterance) for utterance in features)
    size = (
        f"S={config.num_sessions} chunk={config.chunk_frames} "
        f"{total_frames}f H={config.hidden_size} L=2"
    )

    all_stats: List = []

    def offline():
        return engine.serve_stream(plan, features, serving)

    def streaming():
        hypotheses, stats = _stream_pass(plan, features, config)
        all_stats.append(stats)
        return hypotheses

    medians = interleaved_medians(
        {"offline_batched": offline, "streaming_chunked": streaming}, repeats
    )
    baseline = medians["offline_batched"]
    rows = [
        {
            "op": "stream_decode",
            "size": size,
            "backend": backend,
            "median_s": median,
            "speedup_vs_baseline": baseline / median,
            "baseline": "offline_batched",
            "sessions_per_s": config.num_sessions / median,
        }
        for backend, median in medians.items()
    ]
    p50 = float(np.median([stats.p50_latency_s for stats in all_stats]))
    p95 = float(np.median([stats.p95_latency_s for stats in all_stats]))
    rows += [
        {
            "op": "stream_chunk_latency",
            "size": size,
            "backend": "p50",
            "median_s": p50,
            "speedup_vs_baseline": 1.0,
            "baseline": "p50",
        },
        {
            # backend == baseline exempts the row from the absolute
            # median_s criterion (raw tail latency is machine-dependent);
            # what the gate tracks is speedup_vs_baseline — the
            # machine-independent p50/p95 tail ratio.
            "op": "stream_chunk_latency",
            "size": size,
            "backend": "p95",
            "median_s": p95,
            "speedup_vs_baseline": p50 / p95 if p95 else 1.0,
            "baseline": "p95",
        },
    ]

    # Multi-worker fabric rows: the same workload served through a
    # supervised two-worker fabric, plain and with an injected crash.
    import tempfile
    from pathlib import Path as _Path

    from repro.engine.artifact import save_plan

    offline_hyps, _ = engine.serve_stream(plan, features, serving)
    fabric_config = StreamBenchConfig(repeats=1, workers=2)
    chaos_config = StreamBenchConfig(repeats=1, workers=2, chaos=True)
    fleet_rollups: List = []

    with tempfile.TemporaryDirectory(prefix="repro-bench-fabric-") as tmp:
        artifact = _Path(tmp) / "model.plan.npz"
        save_plan(artifact, plan)

        def fabric():
            hypotheses, _ = _fabric_pass(artifact, features, fabric_config)
            return hypotheses

        def chaos():
            hypotheses, fleet = _fabric_pass(artifact, features, chaos_config)
            fleet_rollups.append((hypotheses, fleet))
            return hypotheses

        fabric_medians = interleaved_medians(
            {"fabric_workers2": fabric, "fabric_chaos": chaos}, repeats
        )

    rows.append(
        {
            "op": "stream_decode",
            "size": size,
            "backend": "fabric_workers2",
            "median_s": fabric_medians["fabric_workers2"],
            "speedup_vs_baseline": baseline / fabric_medians["fabric_workers2"],
            "baseline": "offline_batched",
            "sessions_per_s": config.num_sessions
            / fabric_medians["fabric_workers2"],
        }
    )
    # The recovery row is a correctness gate dressed as a bench row:
    # speedup_vs_baseline is 1.0 only when every chaos repeat recovered
    # (restarts observed, all decodes byte-identical to offline), so any
    # recovery failure collapses the tracked ratio and fails --check.
    recovered = all(
        fleet.restarts >= 1 and hypotheses == offline_hyps
        for hypotheses, fleet in fleet_rollups
    )
    rows.append(
        {
            "op": "fabric_recovery",
            "size": size,
            "backend": "chaos_workers2",
            "median_s": fabric_medians["fabric_chaos"],
            "speedup_vs_baseline": 1.0 if recovered else 1e-9,
            "baseline": "chaos_workers2",
            "restarts": max(fleet.restarts for _, fleet in fleet_rollups),
            "sessions_rehomed": max(
                fleet.sessions_rehomed for _, fleet in fleet_rollups
            ),
        }
    )
    return rows


def bench_autotune(repeats: int) -> List[Dict]:
    """The BENCH_autotune.json suite: measured tune_plan vs the default
    engine configuration, plus the simulated-vs-measured tile ranking.

    The first rows come from the tuner's own measurements: each
    ``default_config`` row is the baseline the search anchors on, each
    ``tuned_plan`` row is the winning candidate of the joint
    scheme × format × tile search (the mixed case adds the per-slot
    ``"mixed"`` scheme and BSPC row-block candidates to the space).  The
    default configuration is always in the candidate set, so the tuned
    speedup is >= 1.0 by construction — that invariant is *enforced
    here* (a violation means the baseline fell out of the search and the
    bench fails outright; the recorded speedups sit too close to 1.0 for
    the ``--check`` ratio criterion to detect it).

    The ``tile_ranking`` row publishes how well the analytic cost
    model's tile pick holds up on the host: its tracked ratio is
    ``sim_pick_efficiency`` (measured-best latency over the measured
    latency of the simulator's pick, 1.0 = the cost model loses
    nothing).  The row is its own ``--check`` baseline, so host drift
    cannot fail it on absolute time — only the efficiency collapsing
    can.
    """
    from repro.compiler.autotune import (
        calibrate_cost_model,
        collect_cost_samples,
        compare_tile_rankings,
        default_tile_candidates,
        tune_plan,
    )
    from repro.eval.tune import TuneConfig, build_tune_workload

    cases = [
        ("dense", TuneConfig(hidden_size=64, seq_len=50, batch=8, prune=False)),
        (
            "bsp-16x",
            TuneConfig(
                hidden_size=192, seq_len=50, batch=8,
                prune=True, col_rate=8.0, row_rate=2.0,
            ),
        ),
        (
            "bsp-16x-mixed",
            TuneConfig(
                hidden_size=192, seq_len=50, batch=8,
                prune=True, col_rate=8.0, row_rate=2.0,
                schemes=(None, "mixed"), tiles=(4, 8),
            ),
        ),
    ]
    rows = []
    for label, config in cases:
        model, sample = build_tune_workload(config)
        # Per-candidate timing repeats: each forward is milliseconds, so
        # extra repeats are cheap and keep the winner out of timer noise.
        result = tune_plan(
            model,
            sample,
            schemes=config.schemes,
            tiles=default_tile_candidates(config.tiles) if config.tiles
            else None,
            repeats=max(5, repeats // 5),
        )
        if result.speedup < 1.0:
            raise RuntimeError(
                f"tune_plan invariant broken on {label!r}: tuned plan is "
                f"{1.0 / result.speedup:.2f}x slower than the default "
                "configuration it was supposed to anchor on"
            )
        size = (
            f"T={config.seq_len} B={config.batch} "
            f"H={config.hidden_size} L={config.num_layers} {label}"
        )
        rows += [
            {
                "op": "autotuned_forward",
                "size": size,
                "backend": "default_config",
                "median_s": result.baseline_s,
                "speedup_vs_baseline": 1.0,
                "baseline": "default_config",
            },
            {
                "op": "autotuned_forward",
                "size": size,
                "backend": "tuned_plan",
                "median_s": result.best.measured_s,
                "speedup_vs_baseline": result.speedup,
                "baseline": "default_config",
                "formats": result.best.describe_formats(),
                "scheme": result.best.scheme or "none",
                "row_block": result.best.row_block,
            },
        ]

    # Simulated-vs-measured tile ranking on the pruned workload: does
    # following the analytic cost model's row-block pick cost wall clock?
    model, sample = build_tune_workload(cases[1][1])
    ranking = compare_tile_rankings(
        model, sample, row_blocks=(2, 8, 32), repeats=max(5, repeats // 5)
    )
    rows.append(
        {
            "op": "tile_ranking",
            "size": f"rb={','.join(str(rb) for rb in ranking.row_blocks)}",
            "backend": "sim_pick",
            "median_s": ranking.measured_s[ranking.sim_pick],
            "speedup_vs_baseline": ranking.sim_pick_efficiency,
            "baseline": "sim_pick",
            "sim_pick": ranking.sim_pick,
            "measured_pick": ranking.measured_pick,
            "pairwise_agreement": ranking.pairwise_agreement,
        }
    )

    # The same ranking after host calibration: fit the cost model's
    # coefficients (including the per-tile dispatch charge) to measured
    # traces on this machine, then re-rank with the fitted device.  The
    # tracked ratio is again sim_pick_efficiency — following the
    # *calibrated* model's pick should cost (near) nothing, which is the
    # whole point of calibrating.
    samples = collect_cost_samples(
        model, sample, row_blocks=(2, 8, 32), repeats=max(5, repeats // 5)
    )
    calibration = calibrate_cost_model(samples)
    calibrated = compare_tile_rankings(
        model,
        sample,
        row_blocks=(2, 8, 32),
        device=calibration.device,
        repeats=max(5, repeats // 5),
    )
    rows.append(
        {
            "op": "tile_model_calibrated",
            "size": f"rb={','.join(str(rb) for rb in calibrated.row_blocks)}",
            "backend": "sim_pick_calibrated",
            "median_s": calibrated.measured_s[calibrated.sim_pick],
            "speedup_vs_baseline": calibrated.sim_pick_efficiency,
            "baseline": "sim_pick_calibrated",
            "sim_pick": calibrated.sim_pick,
            "measured_pick": calibrated.measured_pick,
            "pairwise_agreement": calibrated.pairwise_agreement,
            "fit_error_reduction": calibration.error_reduction,
            "tile_dispatch_us": calibration.tile_dispatch_us,
        }
    )
    return rows


# Training cases run per kernel backend; the tape is the seed baseline.
TRAIN_BACKENDS = {"tensor_tape": "reference", "fused_numpy": "numpy"}

#: TIMIT-scale utterances (~0.5-2.5 s at a 10 ms hop → 55-240 frames);
#: the default SynthConfig's very short utterances underrepresent the
#: sequence lengths the prune→retrain loop actually trains on.
TRAIN_SYNTH = SynthConfig(min_phones=8, max_phones=24, min_duration=4, max_duration=10)


def _training_model() -> GRUAcousticModel:
    return GRUAcousticModel(
        AcousticModelConfig(input_dim=40, hidden_size=64, num_layers=2), rng=0
    ).train()


def bench_bptt_step(repeats: int) -> List[Dict]:
    """One forward + full BPTT backward on a fixed (T=150, B=8) batch."""
    seq_len, batch, input_dim = 150, 8, 40
    rng = new_rng(0)
    x = Tensor(rng.standard_normal((seq_len, batch, input_dim)))
    labels = rng.integers(0, NUM_CLASSES, size=seq_len * batch)

    def make_step(backend: str):
        model = _training_model()

        def run():
            with kernels.use_backend(backend):
                model.zero_grad()
                logits = model(x)
                t, b, c = logits.shape
                F.cross_entropy(logits.reshape(t * b, c), labels).backward()

        return run

    label = f"T={seq_len} B={batch} H=64 L=2"
    medians = interleaved_medians(
        {name: make_step(backend) for name, backend in TRAIN_BACKENDS.items()},
        repeats,
    )
    baseline = medians["tensor_tape"]
    return [
        {
            "op": "bptt_step",
            "size": label,
            "backend": name,
            "median_s": median,
            "speedup_vs_baseline": baseline / median,
            "baseline": "tensor_tape",
        }
        for name, median in medians.items()
    ]


def bench_train_epochs(repeats: int) -> List[Dict]:
    """Full synthetic-TIMIT epochs: dense, and the ADMM prune→retrain loop.

    The ADMM case keeps a :class:`BSPPruner` inside its Step-1 ADMM phase
    for every timed epoch, so each repetition pays the full prune→retrain
    cost: penalty gradients, masked gradients, the Z/U dual update, and
    the ramped block-column projection.
    """
    train_set, test_set = make_corpus(16, 4, TRAIN_SYNTH, seed=0)

    def make_epoch(backend: str, with_admm: bool):
        model = _training_model()
        trainer = Trainer(
            model, train_set, test_set, TrainerConfig(batch_size=8, seed=0)
        )
        method = None
        if with_admm:
            # A phase budget far beyond the timed repeats keeps every
            # timed epoch inside the ADMM prune→retrain loop.
            method = BSPPruner(
                model.prunable_parameters(),
                BSPConfig(col_rate=8, row_rate=1.25, step1_admm_epochs=10_000),
            )

        def run():
            with kernels.use_backend(backend):
                trainer.train_epoch(method)

        return run

    size = "16 timit-scale utts B=8 H=64 L=2"
    ops = (("train_epoch", False), ("admm_prune_retrain_epoch", True))
    # One round-robin over all four cases: dense and ADMM epochs face the
    # same machine-speed drift, so the two ratios stay mutually consistent.
    medians = interleaved_medians(
        {
            (op, name): make_epoch(backend, with_admm)
            for op, with_admm in ops
            for name, backend in TRAIN_BACKENDS.items()
        },
        repeats,
    )
    rows = []
    for op, _ in ops:
        baseline = medians[(op, "tensor_tape")]
        for name in TRAIN_BACKENDS:
            rows.append({
                "op": op,
                "size": size,
                "backend": name,
                "median_s": medians[(op, name)],
                "speedup_vs_baseline": baseline / medians[(op, name)],
                "baseline": "tensor_tape",
            })
    return rows


def bench_admm_projection(repeats: int) -> List[Dict]:
    """The ADMM Z-update's bank-balanced projection, loop vs vectorized."""
    weight = new_rng(1).standard_normal((512, 1024))
    bank_size, rate = 64, 8.0
    label = "512x1024 bank=64 rate=8"
    medians = interleaved_medians(
        {
            "loop": lambda: _project_bank_balanced_loop(weight, bank_size, rate),
            "numpy": lambda: project_bank_balanced(weight, bank_size, rate),
        },
        repeats,
    )
    baseline = medians["loop"]
    return [
        {
            "op": "admm_projection",
            "size": label,
            "backend": backend,
            "median_s": median,
            "speedup_vs_baseline": baseline / median,
            "baseline": "loop",
        }
        for backend, median in medians.items()
    ]


def bench_distributed_epochs(repeats: int) -> List[Dict]:
    """Data-parallel epoch throughput: 1 → 2 → 4 gradient workers.

    The single-process fused trainer is the baseline; the ``dp_workers1``
    row isolates the pure IPC cost of the chunked weight-broadcast /
    gradient all-reduce protocol, and the 2/4-worker rows show what the
    fork-based data parallelism buys on top of it at this model scale.
    """
    from repro.training import DistConfig, DistributedTrainer

    train_set, test_set = make_corpus(16, 4, TRAIN_SYNTH, seed=0)
    size = "16 timit-scale utts B=8 H=64 L=2"

    trainers = {"single_process": Trainer(
        _training_model(), train_set, test_set, TrainerConfig(batch_size=8, seed=0)
    )}
    for workers in (1, 2, 4):
        trainers[f"dp_workers{workers}"] = DistributedTrainer(
            _training_model(),
            train_set,
            test_set,
            TrainerConfig(batch_size=8, seed=0),
            DistConfig(num_workers=workers),
        )
    try:
        medians = interleaved_medians(
            {
                name: (lambda t=trainer: t.train_epoch())
                for name, trainer in trainers.items()
            },
            repeats,
        )
    finally:
        for trainer in trainers.values():
            if isinstance(trainer, DistributedTrainer):
                trainer.close()
    baseline = medians["single_process"]
    return [
        {
            "op": "dp_train_epoch",
            "size": size,
            "backend": name,
            "median_s": median,
            "speedup_vs_baseline": baseline / median,
            "baseline": "single_process",
        }
        for name, median in medians.items()
    ]


def bench_sweep_recovery(repeats: int) -> List[Dict]:
    """Chaos-resume overhead + exactness gate for checkpointed training.

    Runs one BSP prune→retrain cell three ways: uninterrupted, and
    crashed mid-epoch then resumed from its atomic checkpoint.  Like
    ``fabric_recovery``, the gate row is a correctness check dressed as
    a bench row: ``speedup_vs_baseline`` is 1.0 only when the resumed
    run's final weights and loss curve are bit-identical to the clean
    run, so any resume drift collapses the tracked ratio and fails
    ``--check``.  The overhead of crash + reload is the machine-portable
    ``chaos_overhead`` ratio carried alongside.
    """
    import tempfile
    from pathlib import Path as _Path

    from repro.training import CheckpointConfig, run_checkpointed

    train_set, test_set = make_corpus(8, 2, TRAIN_SYNTH, seed=0)
    size = "8 timit-scale utts B=4 H=32 L=2 bsp-4x"
    total_epochs = 4

    class _Boom(Exception):
        pass

    def make_model():
        return GRUAcousticModel(
            AcousticModelConfig(input_dim=40, hidden_size=32, num_layers=2),
            rng=0,
        ).train()

    def build():
        model = make_model()
        trainer = Trainer(
            model, train_set, test_set, TrainerConfig(batch_size=4, seed=0)
        )
        method = BSPPruner(
            model.prunable_parameters(),
            BSPConfig(col_rate=4, row_rate=1.25, step1_admm_epochs=1,
                      step1_retrain_epochs=1, step2_admm_epochs=1,
                      step2_retrain_epochs=1),
        )
        return model, trainer, method

    exact_flags: List[bool] = []

    def clean():
        model, trainer, method = build()
        with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
            run_checkpointed(
                trainer, method,
                CheckpointConfig(path=_Path(tmp) / "ckpt.npz"),
                max_epochs=total_epochs,
            )
        return model.state_dict(), list(trainer.log.losses)

    def chaos():
        model, trainer, method = build()
        with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
            config = CheckpointConfig(path=_Path(tmp) / "ckpt.npz")

            def crash_at(step):
                if step == 3:
                    raise _Boom()

            try:
                run_checkpointed(trainer, method, config,
                                 max_epochs=total_epochs, on_step=crash_at)
            except _Boom:
                pass
            # Fresh objects, as a re-spawned cell attempt would build.
            model, trainer, method = build()
            run_checkpointed(trainer, method, config, max_epochs=total_epochs)
        clean_weights, clean_losses = clean_reference
        exact_flags.append(
            all(
                np.array_equal(clean_weights[name], value)
                for name, value in model.state_dict().items()
            )
            and list(trainer.log.losses) == clean_losses
        )
        return model.state_dict()

    clean_reference = clean()
    medians = interleaved_medians({"clean": clean, "chaos_resume": chaos}, repeats)
    recovered = bool(exact_flags) and all(exact_flags)
    return [
        {
            "op": "sweep_cell_train",
            "size": size,
            "backend": "clean",
            "median_s": medians["clean"],
            "speedup_vs_baseline": 1.0,
            "baseline": "clean",
        },
        {
            # Correctness gate: 1.0 only if every chaos repeat resumed
            # bit-identical; the chaos_overhead key tracks the cost of
            # crash + checkpoint reload relative to the clean run.
            "op": "sweep_recovery",
            "size": size,
            "backend": "chaos_resume",
            "median_s": medians["chaos_resume"],
            "speedup_vs_baseline": 1.0 if recovered else 1e-9,
            "baseline": "chaos_resume",
            "chaos_overhead": medians["chaos_resume"] / medians["clean"],
        },
    ]


def bench_training(repeats: int) -> List[Dict]:
    """The BENCH_training.json suite: BPTT step, epochs, ADMM projection,
    data-parallel scaling, and the chaos-resume exactness gate."""
    return (
        bench_bptt_step(max(3, repeats // 3))
        + bench_train_epochs(max(2, repeats // 6))
        + bench_admm_projection(repeats)
        + bench_distributed_epochs(max(2, repeats // 6))
        + bench_sweep_recovery(max(2, repeats // 10))
    )


def rows_by_key(rows: List[Dict]) -> Dict:
    return {(r["op"], r["size"], r["backend"]): r for r in rows}


#: Fields every recorded row must carry for the gate's two criteria.
REQUIRED_ROW_KEYS = ("op", "size", "backend", "median_s", "speedup_vs_baseline")


def load_baseline_rows(path: Path) -> List[Dict]:
    """Read one recorded BENCH_*.json and validate its shape.

    A baseline that cannot be read is a *configuration* error, not a
    perf regression — fail with a message that names the file and what
    is wrong with it instead of a KeyError/JSONDecodeError traceback.
    """
    try:
        text = path.read_text()
    except OSError as exc:
        raise SystemExit(f"cannot read baseline {path}: {exc}")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"baseline {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "results" not in payload:
        raise SystemExit(
            f"baseline {path} has no 'results' key — expected a file "
            "recorded by this script ({'meta': ..., 'results': [...]})"
        )
    rows = payload["results"]
    if not isinstance(rows, list):
        raise SystemExit(
            f"baseline {path}: 'results' must be a list of rows, "
            f"got {type(rows).__name__}"
        )
    for i, row in enumerate(rows):
        missing = [
            key
            for key in REQUIRED_ROW_KEYS
            if not isinstance(row, dict) or key not in row
        ]
        if missing:
            raise SystemExit(
                f"baseline {path}: results[{i}] is missing "
                f"{', '.join(missing)} — re-record it with this script"
            )
    return rows


#: Absolute slowdown below which a ratio violation is treated as timer
#: noise: the fastest tracked rows run in tens of microseconds, where
#: machine jitter alone exceeds 1.5x.  The floor only suppresses
#: *moderate* ratios — past :data:`NOISE_ESCALATION` x the threshold a
#: violation is reported regardless of its absolute size, so a
#: microsecond-scale vectorized op degrading to its Python loop (a
#: ~10x ratio) cannot hide under the floor.
NOISE_FLOOR_S = 2e-4
NOISE_ESCALATION = 3.0


def check_against(baselines: List[Dict], current: List[Dict], threshold: float) -> List[str]:
    """Regression report vs recorded rows, on two criteria:

    * **absolute**: ``median_s`` grew more than ``threshold`` x its
      record (sub-:data:`NOISE_FLOOR_S` deltas are ignored unless the
      ratio exceeds :data:`NOISE_ESCALATION` x the threshold);
    * **relative**: ``speedup_vs_baseline`` — measured against the
      op's own baseline *within the same run*, hence machine-independent
      — collapsed by more than ``threshold`` x.  This is the criterion
      that stays meaningful on hosts slower than the recording machine
      (e.g. CI runners).
    """
    current_by_key = rows_by_key(current)
    problems = []
    for key, recorded in rows_by_key(baselines).items():
        row = current_by_key.get(key)
        if row is None:
            problems.append(f"missing bench row {key} (recorded but not re-run)")
            continue
        ratio = row["median_s"] / recorded["median_s"]
        noise = (
            row["median_s"] - recorded["median_s"] <= NOISE_FLOOR_S
            and ratio <= NOISE_ESCALATION * threshold
        )
        # A row that *is* its op's in-run baseline (the frozen seed
        # implementation) measures machine speed, not code: exempt it
        # from the absolute criterion so host drift can't fail the gate.
        is_baseline = row["backend"] == row.get("baseline")
        if ratio > threshold and not noise and not is_baseline:
            problems.append(
                f"{key[0]} [{key[1]}] {key[2]}: {row['median_s'] * 1e3:.3f}ms "
                f"vs recorded {recorded['median_s'] * 1e3:.3f}ms "
                f"({ratio:.2f}x > {threshold}x)"
            )
        speedup_drop = recorded["speedup_vs_baseline"] / max(
            row["speedup_vs_baseline"], 1e-12
        )
        if speedup_drop > threshold:
            problems.append(
                f"{key[0]} [{key[1]}] {key[2]}: speedup vs in-run baseline "
                f"fell {speedup_drop:.2f}x (now {row['speedup_vs_baseline']:.2f}x, "
                f"recorded {recorded['speedup_vs_baseline']:.2f}x)"
            )
    return problems


def render(rows: List[Dict]) -> str:
    lines = [
        f"{'op':<14} {'size':<28} {'backend':<20} {'median':>10} {'speedup':>8}",
        "-" * 84,
    ]
    for row in rows:
        lines.append(
            f"{row['op']:<14} {row['size']:<28} {row['backend']:<20} "
            f"{row['median_s'] * 1e3:>8.3f}ms {row['speedup_vs_baseline']:>7.1f}x"
        )
    return "\n".join(lines)


def _meta(repeats: int) -> Dict:
    return {
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        # full-model/sequence rows are slower and sampled fewer times
        "forward_repeats": max(3, repeats // 3),
        "default_backend": kernels.get_default_backend(),
        "compiled_backend": compiled_backend.available(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_kernels.json",
        help="kernel-suite output JSON (default: repo-root BENCH_kernels.json)",
    )
    parser.add_argument(
        "--engine-out", type=Path, default=REPO_ROOT / "BENCH_engine.json",
        help="engine-suite output JSON (default: repo-root BENCH_engine.json)",
    )
    parser.add_argument(
        "--training-out", type=Path, default=REPO_ROOT / "BENCH_training.json",
        help="training-suite output JSON (default: repo-root BENCH_training.json)",
    )
    parser.add_argument(
        "--serving-out", type=Path, default=REPO_ROOT / "BENCH_serving.json",
        help="streaming-serving-suite output JSON "
        "(default: repo-root BENCH_serving.json)",
    )
    parser.add_argument(
        "--autotune-out", type=Path, default=REPO_ROOT / "BENCH_autotune.json",
        help="measured-autotune-suite output JSON "
        "(default: repo-root BENCH_autotune.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=30,
        help="timed repetitions per case (median is reported)",
    )
    parser.add_argument(
        "--check", type=Path, nargs="+", metavar="BASELINE",
        help="regression gate: re-run the suites and fail if any row in "
        "the given recorded JSON file(s) got slower than --threshold x; "
        "records are not rewritten",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.5,
        help="slowdown ratio that fails --check (default 1.5)",
    )
    args = parser.parse_args(argv)

    kernel_rows = bench_sparse(args.repeats) + bench_recurrent(
        max(3, args.repeats // 3)
    )
    engine_rows = bench_engine(args.repeats)
    training_rows = bench_training(args.repeats)
    serving_rows = bench_streaming(max(3, args.repeats // 3))
    autotune_rows = bench_autotune(args.repeats)
    print(render(
        kernel_rows + engine_rows + training_rows + serving_rows + autotune_rows
    ))

    if args.check:
        current = (
            kernel_rows + engine_rows + training_rows + serving_rows
            + autotune_rows
        )
        problems: List[str] = []
        recorded_keys: set = set()
        for baseline_path in args.check:
            recorded = load_baseline_rows(baseline_path)
            recorded_keys |= set(rows_by_key(recorded))
            problems += check_against(recorded, current, args.threshold)
        # The reverse direction of the missing-row check: a current row
        # no baseline knows about has no record to gate against — either
        # it is newly added (re-record the affected BENCH_*.json) or the
        # wrong baseline files were passed.
        for key in sorted(set(rows_by_key(current)) - recorded_keys):
            problems.append(
                f"current bench row {key} has no recorded baseline "
                "(newly added? re-record the affected BENCH_*.json)"
            )
        if problems:
            print(f"\nREGRESSIONS vs recorded baselines (> {args.threshold}x):")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"\ncheck ok: no tracked op slower than {args.threshold}x its record")
        return 0

    args.out.write_text(
        json.dumps({"meta": _meta(args.repeats), "results": kernel_rows}, indent=2)
        + "\n"
    )
    args.engine_out.write_text(
        json.dumps({"meta": _meta(args.repeats), "results": engine_rows}, indent=2)
        + "\n"
    )
    args.training_out.write_text(
        json.dumps({"meta": _meta(args.repeats), "results": training_rows}, indent=2)
        + "\n"
    )
    args.serving_out.write_text(
        json.dumps({"meta": _meta(args.repeats), "results": serving_rows}, indent=2)
        + "\n"
    )
    args.autotune_out.write_text(
        json.dumps({"meta": _meta(args.repeats), "results": autotune_rows}, indent=2)
        + "\n"
    )
    print(
        f"\nwrote {args.out}, {args.engine_out}, {args.training_out}, "
        f"{args.serving_out} and {args.autotune_out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
