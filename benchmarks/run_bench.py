"""Kernel benchmark driver: times every backend and writes BENCH_kernels.json.

Runs the same hot-path cases as ``bench_kernels.py`` with a plain
``time.perf_counter`` harness (no pytest dependency) and writes a
machine-readable record so future PRs have a perf trajectory to regress
against::

    PYTHONPATH=src python benchmarks/run_bench.py [--out BENCH_kernels.json]
    PYTHONPATH=src python benchmarks/run_bench.py --repeats 50

Each row records ``op``, ``size``, ``backend``, ``median_s``, and
``speedup_vs_baseline``, where the baseline backend is the seed
implementation of that op: the ``reference`` Python loops for sparse ops,
and the autograd-tape ``GRU.forward``/``LSTM.forward`` (``tensor_tape``
rows) for the sequence kernels.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, List

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import kernels  # noqa: E402
from repro.nn.rnn import GRU, LSTM  # noqa: E402
from repro.nn.tensor import Tensor  # noqa: E402
from repro.pruning.bsp import BSPConfig, bsp_project_masks  # noqa: E402
from repro.sparse.blocks import grid_for  # noqa: E402
from repro.sparse.bspc import BSPCMatrix  # noqa: E402
from repro.sparse.csr import CSRMatrix  # noqa: E402
from repro.utils.rng import new_rng  # noqa: E402

SPARSE_BACKENDS = ["reference", "numpy"]


def median_seconds(fn: Callable[[], object], repeats: int) -> float:
    fn()  # warm up (also builds/caches any execution plan)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def pruned_matrix(size: int = 1024, strips: int = 8, blocks: int = 8) -> np.ndarray:
    rng = new_rng(0)
    weight = rng.standard_normal((size, size))
    masks = bsp_project_masks(
        {"w": weight},
        BSPConfig(col_rate=8, row_rate=2, num_row_strips=strips, num_col_blocks=blocks),
    )
    return masks["w"].apply_to_array(weight)


def bench_sparse(repeats: int) -> List[Dict]:
    size, strips, blocks = 1024, 8, 8
    pruned = pruned_matrix(size, strips, blocks)
    grid = grid_for(pruned, strips, blocks)
    bspc = BSPCMatrix.from_dense(pruned, grid)
    csr = CSRMatrix.from_dense(pruned)
    x = new_rng(1).standard_normal(size)
    batch = new_rng(2).standard_normal((size, 16))

    cases = [
        ("bspc_spmv", f"{size}x{size} grid={strips}x{blocks}",
         lambda b: (lambda: bspc.spmv(x, backend=b))),
        ("bspc_spmm", f"{size}x{size}x16 grid={strips}x{blocks}",
         lambda b: (lambda: bspc.spmm(batch, backend=b))),
        ("csr_spmv", f"{size}x{size}",
         lambda b: (lambda: csr.spmv(x, backend=b))),
        ("csr_spmm", f"{size}x{size}x16",
         lambda b: (lambda: csr.spmm(batch, backend=b))),
    ]
    rows = []
    for op, label, make in cases:
        medians = {b: median_seconds(make(b), repeats) for b in SPARSE_BACKENDS}
        baseline = medians["reference"]
        for backend in SPARSE_BACKENDS:
            rows.append({
                "op": op,
                "size": label,
                "backend": backend,
                "median_s": medians[backend],
                "speedup_vs_baseline": baseline / medians[backend],
                "baseline": "reference",
            })
    return rows


def bench_recurrent(repeats: int) -> List[Dict]:
    rows = []
    configs = [
        ("gru_sequence", GRU, (100, 16, 64)),
        ("gru_sequence", GRU, (100, 16, 256)),
        ("lstm_sequence", LSTM, (100, 16, 64)),
    ]
    input_dim, num_layers = 40, 2
    for op, module_cls, (seq_len, batch, hidden) in configs:
        rng = new_rng(0)
        model = module_cls(input_dim, hidden, num_layers=num_layers, rng=0)
        x = Tensor(rng.standard_normal((seq_len, batch, input_dim)))
        label = f"T={seq_len} B={batch} H={hidden} L={num_layers}"

        model.train()
        medians = {"tensor_tape": median_seconds(lambda: model(x), repeats)}
        model.eval()
        for backend in SPARSE_BACKENDS:
            def run(b=backend):
                with kernels.use_backend(b):
                    return model(x)

            medians[backend] = median_seconds(run, repeats)
        baseline = medians["tensor_tape"]
        for backend, median in medians.items():
            rows.append({
                "op": op,
                "size": label,
                "backend": backend,
                "median_s": median,
                "speedup_vs_baseline": baseline / median,
                "baseline": "tensor_tape",
            })
    return rows


def render(rows: List[Dict]) -> str:
    lines = [
        f"{'op':<14} {'size':<28} {'backend':<12} {'median':>10} {'speedup':>8}",
        "-" * 76,
    ]
    for row in rows:
        lines.append(
            f"{row['op']:<14} {row['size']:<28} {row['backend']:<12} "
            f"{row['median_s'] * 1e3:>8.3f}ms {row['speedup_vs_baseline']:>7.1f}x"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_kernels.json",
        help="output JSON path (default: repo-root BENCH_kernels.json)",
    )
    parser.add_argument(
        "--repeats", type=int, default=30,
        help="timed repetitions per case (median is reported)",
    )
    args = parser.parse_args(argv)

    rows = bench_sparse(args.repeats) + bench_recurrent(max(3, args.repeats // 3))
    print(render(rows))

    payload = {
        "meta": {
            "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "repeats": args.repeats,
            "default_backend": kernels.get_default_backend(),
        },
        "results": rows,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
