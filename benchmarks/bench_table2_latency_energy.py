"""Table II: mobile GPU/CPU latency, GOP/s, and energy efficiency.

Regenerates every row of the paper's Table II at paper scale (2-layer
GRU, hidden 1024, ~10M weights) through the full pipeline: BSP projection
→ compile (reorder + load elimination + BSPC) → calibrated Adreno 640 /
Kryo 485 simulation → ESE-normalized energy.
"""

import pytest

from repro.eval.paper_data import TABLE2
from repro.eval.table2 import Table2Config, render_table2, run_table2, sweep_point
from repro.eval.table2 import paper_scale_weights


def test_table2_report(benchmark, table2_result):
    """Print the measured-vs-paper table and assert the headline shapes."""
    print()
    print(benchmark(render_table2, table2_result))
    entries = table2_result.entries
    # Latency falls monotonically with the sweep's nominal rate order on CPU
    # (GPU plateaus at the overhead floor at extreme rates).
    cpu = [e.cpu_time_us for e in entries]
    assert cpu[0] > cpu[1] > cpu[2]
    # Energy efficiency crosses ESE (1.0) and grows by >25x dense→best.
    best_eff = max(e.gpu_efficiency for e in entries)
    assert best_eff > 25 * entries[0].gpu_efficiency
    # Dense row calibrated to the paper within 5%.
    assert entries[0].gpu_time_us == pytest.approx(TABLE2[0].gpu_time_us, rel=0.05)
    assert entries[0].cpu_time_us == pytest.approx(TABLE2[0].cpu_time_us, rel=0.05)


def bench_full_sweep():
    return run_table2(Table2Config())


def test_bench_table2_full_sweep(benchmark):
    """Wall-clock of the complete Table II sweep (all ten rows)."""
    result = benchmark.pedantic(bench_full_sweep, rounds=1, iterations=1)
    assert len(result.entries) == len(TABLE2)


def test_bench_table2_single_point(benchmark):
    """Wall-clock of one sweep point (project + compile + simulate)."""
    config = Table2Config()
    weights = paper_scale_weights(config)

    def point():
        return sweep_point(weights, 16.0, 16.0, config)

    measured_rate, gop, gpu_us, *_ = benchmark.pedantic(
        point, rounds=1, iterations=1
    )
    assert measured_rate > 100
    assert gpu_us > 0
