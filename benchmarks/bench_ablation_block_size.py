"""Ablation A: the auto-tuner's block-size (Numr x Numc) search.

Section IV-B's auto-tuner picks the BSP block grid giving "an optimal
combination of accuracy and performance".  This bench sweeps grids at a
fixed 103x target on a mid-scale GRU, reporting the latency/accuracy-proxy
frontier and the tuner's choice.
"""

import numpy as np
import pytest

from repro.compiler.autotune import find_best_block_size, tune_execution_config
from repro.eval.report import format_table
from repro.hw.profiles import ADRENO_640
from repro.utils.rng import new_rng


@pytest.fixture(scope="module")
def midscale_weights():
    rng = new_rng(0)
    h = 256
    return {
        "g0.hh": rng.standard_normal((3 * h, h)),
        "g1.ih": rng.standard_normal((3 * h, h)),
        "g1.hh": rng.standard_normal((3 * h, h)),
    }


def test_ablation_block_size(benchmark, midscale_weights):
    result = benchmark.pedantic(
        lambda: find_best_block_size(
            midscale_weights, ADRENO_640, col_rate=16.0, row_rate=8.0,
            strip_choices=(1, 2, 4, 8), block_choices=(2, 4, 8, 16),
        ),
        rounds=1, iterations=1,
    )
    print()
    print(
        format_table(
            ["Numr", "Numc", "latency us", "retained energy"],
            [
                (c.num_row_strips, c.num_col_blocks, f"{c.latency_us:.1f}",
                 f"{c.accuracy_proxy:.4f}")
                for c in result.trace
            ],
            title="Ablation: BSP block grid at 103x target (hidden 256)",
        )
    )
    print(f"tuner choice: Numr={result.best.num_row_strips} "
          f"Numc={result.best.num_col_blocks}")
    assert result.num_evaluated == 16
    # Finer grids retain more energy (accuracy proxy is monotone-ish in
    # grid resolution): the finest grid beats the coarsest.
    by_grid = {(c.num_row_strips, c.num_col_blocks): c for c in result.trace}
    assert by_grid[(8, 16)].accuracy_proxy > by_grid[(1, 2)].accuracy_proxy


def test_bench_tile_autotune(benchmark, midscale_weights):
    """Wall-clock of the execution-config (tile/unroll) search."""
    result = benchmark.pedantic(
        lambda: tune_execution_config(midscale_weights, ADRENO_640),
        rounds=1, iterations=1,
    )
    assert result.best.latency_us <= min(c.latency_us for c in result.trace)
