"""Table I: compression rate vs. phone error rate.

Trains the GRU acoustic model on the synthetic corpus and runs the BSP
schedule at the sweep's end points, verifying the paper's central accuracy
claims in miniature:

* ~10x BSP compression costs essentially no accuracy,
* degradation grows gracefully at extreme rates.

The default here is the minutes-scale ``Table1Config.fast()`` (three sweep
points, no baselines); the full ten-point sweep with all four baseline
methods takes ~5 minutes — run it via ``examples/compression_sweep.py`` or
by instantiating ``Table1Config()`` directly.
"""

import pytest

from repro.eval.table1 import Table1Config, render_table1, run_table1


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(Table1Config.fast())


def test_table1_report(benchmark, table1_result):
    print()
    print(benchmark(render_table1, table1_result))
    bsp = table1_result.bsp_entries()
    assert len(bsp) == 3
    dense, low, high = bsp
    # The 1x row is exactly the dense model.
    assert dense.per_pruned == pytest.approx(table1_result.dense_per)
    # ~10x compression: no meaningful accuracy loss (paper: 0.00 degrad).
    assert low.degradation <= 5.0
    # The extreme point compresses far more and may degrade more.
    assert high.measured_rate > low.measured_rate


def test_bench_table1_fast_sweep(benchmark):
    """Wall-clock of the fast Table I sweep (train + prune, 3 points)."""
    result = benchmark.pedantic(
        lambda: run_table1(Table1Config.fast()), rounds=1, iterations=1
    )
    assert len(result.entries) == 3


def test_bench_table1_dense_epoch(benchmark):
    """Wall-clock of one dense training epoch at sweep scale."""
    from repro.eval.table1 import run_table1_dense

    config = Table1Config(
        hidden_size=64, num_train=24, num_test=8, dense_epochs=0,
        include_baselines=False, bsp_sweep=(),
    )
    trainer = run_table1_dense(config)
    benchmark.pedantic(trainer.train_epoch, rounds=1, iterations=1)
