"""Ablation C: BSP vs. baseline compression methods at matched sparsity.

Pattern-level comparison (no training): at the same ~16x compression,
compile each method's sparsity pattern through its natural storage format
and simulate.  Reproduces the paper's systems-side ranking: block-
structured sparsity executes fastest, irregular sparsity slowest, with
whole-row structured close to BSP but (per Table I) at worse accuracy.
"""

import numpy as np
import pytest

from repro.compiler.codegen import CompileOptions
from repro.compiler.ir import TileConfig
from repro.compiler.pipeline import compile_for_simulation
from repro.eval.report import format_table
from repro.hw.profiles import ADRENO_640, KRYO_485
from repro.pruning.bank_balanced import bbs_project_masks
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.pruning.magnitude import magnitude_project_masks
from repro.pruning.structured import structured_project_masks
from repro.utils.rng import new_rng


def make_patterns():
    rng = new_rng(0)
    h = 512
    weights = {
        "g0.hh": rng.standard_normal((3 * h, h)),
        "g1.hh": rng.standard_normal((3 * h, h)),
    }
    patterns = {}
    bsp = bsp_project_masks(
        weights, BSPConfig(col_rate=8, row_rate=2, num_row_strips=8,
                           num_col_blocks=8)
    )
    patterns["BSP (block)"] = (
        {n: bsp[n].apply_to_array(w) for n, w in weights.items()}, "bspc"
    )
    mag = magnitude_project_masks(weights, 16.0)
    patterns["magnitude (ESE-style)"] = (
        {n: mag[n].apply_to_array(w) for n, w in weights.items()}, "csr"
    )
    bbs = bbs_project_masks(weights, 16.0, bank_size=64)
    patterns["bank-balanced (BBS)"] = (
        {n: bbs[n].apply_to_array(w) for n, w in weights.items()}, "csr"
    )
    rows = structured_project_masks(weights, 16.0, axis="row")
    patterns["row-structured"] = (
        {n: rows[n].apply_to_array(w) for n, w in weights.items()}, "bspc"
    )
    return patterns


def run_comparison():
    rows = []
    for name, (weights, format_name) in make_patterns().items():
        gpu_model = compile_for_simulation(
            weights, CompileOptions(format_name=format_name,
                                    tile=TileConfig(use_fp16=True),
                                    num_row_strips=8, num_col_blocks=8),
        )
        cpu_model = compile_for_simulation(
            weights, CompileOptions(format_name=format_name,
                                    tile=TileConfig(use_fp16=False),
                                    num_row_strips=8, num_col_blocks=8),
        )
        rows.append(
            (
                name,
                gpu_model.compression_rate,
                gpu_model.simulate(ADRENO_640).latency_us,
                cpu_model.simulate(KRYO_485).latency_us,
                gpu_model.plan.weight_bytes,
            )
        )
    return rows


def test_ablation_baseline_patterns(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["method", "rate", "GPU us", "CPU us", "stored bytes"],
            [
                (n, f"{r:.1f}x", f"{g:.1f}", f"{c:.1f}", b)
                for n, r, g, c, b in rows
            ],
            title="Ablation: sparsity patterns at matched ~16x compression",
        )
    )
    by_name = {r[0]: r for r in rows}
    bsp_gpu = by_name["BSP (block)"][2]
    mag_gpu = by_name["magnitude (ESE-style)"][2]
    bsp_cpu = by_name["BSP (block)"][3]
    mag_cpu = by_name["magnitude (ESE-style)"][3]
    # The systems claim: block structure executes faster than irregular
    # sparsity at the same compression, on both devices.
    assert bsp_gpu < mag_gpu
    assert bsp_cpu < mag_cpu
    # And stores fewer bytes (BSPC vs CSR index overhead).
    assert by_name["BSP (block)"][4] < by_name["magnitude (ESE-style)"][4]
