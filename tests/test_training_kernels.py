"""Gradient-equivalence suite for the fused training fast path.

The autograd tape (the ``reference`` backend of ``gru_sequence_grad`` /
``lstm_sequence_grad``, and the per-timestep cell path of
``GRU.forward``/``LSTM.forward`` under ``use_backend("reference")``) is
ground truth; the fused numpy BPTT kernels must reproduce its gradients to
tighter than 1e-6 across ragged lengths, single-frame utterances, and
pruned (masked) weights — and a short training run must produce the same
loss curve on both backends.
"""

import numpy as np
import pytest

from repro import kernels
from repro.nn import functional as F
from repro.nn.fused import fused_gru_layer, fused_lstm_layer
from repro.nn.rnn import GRU, LSTM
from repro.nn.tensor import Tensor
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_corpus
from repro.speech.trainer import Trainer, TrainerConfig
from repro.utils.rng import new_rng

TOL = dict(rtol=1e-6, atol=1e-6)

GRU_GRAD_NAMES = ("dx", "dw_ih", "dw_hh", "db_ih", "db_hh", "dh0")
LSTM_GRAD_NAMES = ("dx", "dw_ih", "dw_hh", "dbias", "dh0", "dc0")

# (T, B, D, H) shapes: single-frame single-utterance, small ragged-ish,
# and a wider case.
SHAPES = [(1, 1, 3, 4), (7, 2, 5, 6), (23, 4, 8, 16)]


def gru_inputs(rng, seq_len, batch, in_dim, hidden, prune=0.0):
    x = rng.standard_normal((seq_len, batch, in_dim))
    h0 = rng.standard_normal((batch, hidden))
    w_ih = rng.standard_normal((3 * hidden, in_dim))
    w_hh = rng.standard_normal((3 * hidden, hidden)) * 0.3
    if prune:
        w_ih = w_ih * (rng.random(w_ih.shape) >= prune)
        w_hh = w_hh * (rng.random(w_hh.shape) >= prune)
    b_ih = rng.standard_normal(3 * hidden)
    b_hh = rng.standard_normal(3 * hidden)
    return x, w_ih, w_hh, b_ih, b_hh, h0


def lstm_inputs(rng, seq_len, batch, in_dim, hidden, prune=0.0):
    x = rng.standard_normal((seq_len, batch, in_dim))
    h0 = rng.standard_normal((batch, hidden))
    c0 = rng.standard_normal((batch, hidden))
    w_ih = rng.standard_normal((4 * hidden, in_dim))
    w_hh = rng.standard_normal((4 * hidden, hidden)) * 0.3
    if prune:
        w_ih = w_ih * (rng.random(w_ih.shape) >= prune)
        w_hh = w_hh * (rng.random(w_hh.shape) >= prune)
    bias = rng.standard_normal(4 * hidden)
    return x, w_ih, w_hh, bias, h0, c0


class TestGRUSequenceGrad:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_forward_and_grads_match_tape(self, shape):
        rng = new_rng(shape[0])
        seq_len, batch, _, hidden = shape
        args = gru_inputs(rng, *shape)
        grad_out = rng.standard_normal((seq_len, batch, hidden))
        out_ref, h_ref, bwd_ref = kernels.gru_sequence_grad(*args, backend="reference")
        out_np, h_np, bwd_np = kernels.gru_sequence_grad(*args, backend="numpy")
        np.testing.assert_allclose(out_np, out_ref, **TOL)
        np.testing.assert_allclose(h_np, h_ref, **TOL)
        for name, g_ref, g_np in zip(GRU_GRAD_NAMES, bwd_ref(grad_out), bwd_np(grad_out)):
            np.testing.assert_allclose(g_np, g_ref, err_msg=name, **TOL)

    def test_grads_match_with_pruned_weights(self):
        rng = new_rng(11)
        args = gru_inputs(rng, 9, 3, 6, 8, prune=0.8)
        grad_out = rng.standard_normal((9, 3, 8))
        _, _, bwd_ref = kernels.gru_sequence_grad(*args, backend="reference")
        _, _, bwd_np = kernels.gru_sequence_grad(*args, backend="numpy")
        for name, g_ref, g_np in zip(GRU_GRAD_NAMES, bwd_ref(grad_out), bwd_np(grad_out)):
            np.testing.assert_allclose(g_np, g_ref, err_msg=name, **TOL)

    def test_final_state_gradient_seed(self):
        # grad_h_T must flow exactly like an extra gradient on out[-1].
        rng = new_rng(5)
        args = gru_inputs(rng, 6, 2, 4, 5)
        grad_out = rng.standard_normal((6, 2, 5))
        grad_h_T = rng.standard_normal((2, 5))
        _, _, bwd_ref = kernels.gru_sequence_grad(*args, backend="reference")
        _, _, bwd_np = kernels.gru_sequence_grad(*args, backend="numpy")
        for name, g_ref, g_np in zip(
            GRU_GRAD_NAMES, bwd_ref(grad_out, grad_h_T), bwd_np(grad_out, grad_h_T)
        ):
            np.testing.assert_allclose(g_np, g_ref, err_msg=name, **TOL)


class TestLSTMSequenceGrad:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_forward_and_grads_match_tape(self, shape):
        rng = new_rng(100 + shape[0])
        seq_len, batch, _, hidden = shape
        args = lstm_inputs(rng, *shape)
        grad_out = rng.standard_normal((seq_len, batch, hidden))
        out_ref, h_ref, c_ref, bwd_ref = kernels.lstm_sequence_grad(
            *args, backend="reference"
        )
        out_np, h_np, c_np, bwd_np = kernels.lstm_sequence_grad(*args, backend="numpy")
        np.testing.assert_allclose(out_np, out_ref, **TOL)
        np.testing.assert_allclose(h_np, h_ref, **TOL)
        np.testing.assert_allclose(c_np, c_ref, **TOL)
        for name, g_ref, g_np in zip(
            LSTM_GRAD_NAMES, bwd_ref(grad_out), bwd_np(grad_out)
        ):
            np.testing.assert_allclose(g_np, g_ref, err_msg=name, **TOL)

    def test_grads_match_with_pruned_weights(self):
        rng = new_rng(12)
        args = lstm_inputs(rng, 9, 3, 6, 8, prune=0.8)
        grad_out = rng.standard_normal((9, 3, 8))
        _, _, _, bwd_ref = kernels.lstm_sequence_grad(*args, backend="reference")
        _, _, _, bwd_np = kernels.lstm_sequence_grad(*args, backend="numpy")
        for name, g_ref, g_np in zip(
            LSTM_GRAD_NAMES, bwd_ref(grad_out), bwd_np(grad_out)
        ):
            np.testing.assert_allclose(g_np, g_ref, err_msg=name, **TOL)


def masked_sequence_loss(logits: Tensor, labels: np.ndarray, mask: np.ndarray):
    """The trainer's masked cross-entropy over a padded (T, B, C) batch."""
    t, b, c = logits.shape
    return F.cross_entropy(
        logits.reshape(t * b, c), labels.reshape(-1), weight_mask=mask.reshape(-1)
    )


def ragged_batch(rng, seq_len, batch, in_dim, num_classes):
    """Padded features/labels/mask with ragged true lengths (incl. length 1)."""
    lengths = np.sort(rng.integers(1, seq_len + 1, size=batch))
    lengths[-1] = seq_len  # keep the pad width meaningful
    features = rng.standard_normal((seq_len, batch, in_dim))
    labels = rng.integers(0, num_classes, size=(seq_len, batch))
    mask = np.zeros((seq_len, batch))
    for b, length in enumerate(lengths):
        mask[:length, b] = 1.0
    return features, labels, mask


class TestModuleGradEquivalence:
    """End-to-end: model grads under the fused path == tape path."""

    @pytest.mark.parametrize("cell_type", ["gru", "lstm"])
    def test_model_grads_match_across_ragged_batch(self, cell_type):
        rng = new_rng(3)
        config = AcousticModelConfig(
            input_dim=5, hidden_size=8, num_layers=2, cell_type=cell_type
        )
        features, labels, mask = ragged_batch(rng, 12, 4, 5, config.num_classes)

        grads = {}
        for backend in ("reference", "numpy"):
            model = GRUAcousticModel(config, rng=0).train()
            with kernels.use_backend(backend):
                loss = masked_sequence_loss(model(Tensor(features)), labels, mask)
                loss.backward()
            grads[backend] = {
                name: p.grad.copy() for name, p in model.named_parameters()
            }
        assert grads["reference"].keys() == grads["numpy"].keys()
        for name, g_ref in grads["reference"].items():
            np.testing.assert_allclose(
                grads["numpy"][name], g_ref, err_msg=name, **TOL
            )

    def test_single_frame_utterance(self):
        rng = new_rng(4)
        config = AcousticModelConfig(input_dim=4, hidden_size=6, num_layers=2)
        features = rng.standard_normal((1, 1, 4))
        labels = np.array([[2]])
        mask = np.ones((1, 1))
        grads = {}
        for backend in ("reference", "numpy"):
            model = GRUAcousticModel(config, rng=1).train()
            with kernels.use_backend(backend):
                loss = masked_sequence_loss(model(Tensor(features)), labels, mask)
                loss.backward()
            grads[backend] = {
                name: p.grad.copy() for name, p in model.named_parameters()
            }
        for name, g_ref in grads["reference"].items():
            np.testing.assert_allclose(
                grads["numpy"][name], g_ref, err_msg=name, **TOL
            )

    def test_fused_layer_final_state_connectivity(self):
        # Gradients must flow through the sliced final hidden state too.
        rng = new_rng(6)
        gru = GRU(4, 5, num_layers=1, rng=0)
        x = Tensor(rng.standard_normal((7, 2, 4)))
        out, finals = gru(x)
        (finals[-1].sum() + out.sum() * 0.0).backward()
        assert gru.cells[0].weight_hh.grad is not None
        assert np.linalg.norm(gru.cells[0].weight_hh.grad) > 0

    def test_fused_helpers_accumulate_input_grads(self):
        rng = new_rng(7)
        x = Tensor(rng.standard_normal((5, 2, 3)), requires_grad=True)
        gru = GRU(3, 4, num_layers=1, rng=0)
        cell = gru.cells[0]
        h0 = Tensor(np.zeros((2, 4)), requires_grad=True)
        out = fused_gru_layer(
            x, cell.weight_ih, cell.weight_hh, cell.bias_ih, cell.bias_hh, h0
        )
        out.sum().backward()
        assert x.grad is not None and x.grad.shape == x.shape
        assert h0.grad is not None and h0.grad.shape == h0.shape

        lstm = LSTM(3, 4, num_layers=1, rng=0)
        lcell = lstm.cells[0]
        x2 = Tensor(rng.standard_normal((5, 2, 3)), requires_grad=True)
        zeros_h = Tensor(np.zeros((2, 4)))
        zeros_c = Tensor(np.zeros((2, 4)))
        out2 = fused_lstm_layer(
            x2, lcell.weight_ih, lcell.weight_hh, lcell.bias, zeros_h, zeros_c
        )
        out2.sum().backward()
        assert x2.grad is not None and x2.grad.shape == x2.shape


class TestLossCurveParity:
    def test_short_training_run_matches_across_backends(self):
        """One short synthetic-TIMIT run per backend: same loss curve.

        The fused path reorders floating-point accumulations (whole-
        sequence GEMMs vs per-step ops), so parity is asserted to 1e-6 —
        far below any behavioral difference — rather than bit-exactly.
        """
        train, test = make_corpus(
            8, 2, SynthConfig(num_mels=8, max_phones=5, max_duration=4), seed=0
        )
        curves = {}
        for backend in ("reference", "numpy"):
            model = GRUAcousticModel(
                AcousticModelConfig(input_dim=8, hidden_size=12, num_layers=2),
                rng=0,
            )
            trainer = Trainer(
                model, train, test, TrainerConfig(batch_size=4, seed=0)
            )
            with kernels.use_backend(backend):
                for _ in range(2):
                    trainer.train_epoch()
            curves[backend] = np.array(trainer.log.losses)
        np.testing.assert_allclose(
            curves["numpy"], curves["reference"], rtol=1e-6, atol=1e-8
        )
