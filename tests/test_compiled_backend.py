"""The compiled C backend's build/cache machinery and failure modes.

Numerical agreement lives in ``test_kernels_equivalence.py`` (the
three-backend matrix); this file covers everything around it: content-
hash caching of the built ``.so``, the typed
:class:`~repro.errors.CompileBackendError` degradation path when no
working compiler exists, registry exclusion + numpy fallback, artifacts
tuned for ``"compiled"`` loading on hosts without it, and the shared
backend-name validation (``REPRO_KERNEL_BACKEND`` / ``--kernel-backend``
/ ``tune_plan``).
"""

import ctypes

import numpy as np
import pytest

from repro import engine, kernels
from repro.errors import CompileBackendError, ConfigError
from repro.kernels import compiled
from repro.kernels.registry import KernelRegistry
from repro.speech.model import AcousticModelConfig, GRUAcousticModel

requires_compiler = pytest.mark.skipif(
    not compiled.available(), reason="no working C compiler on this host"
)


@pytest.fixture
def fresh_state():
    """Run a test against pristine module state, then restore the
    process-wide handle (other tests rely on the registered backend)."""
    lib, err = compiled._LIB, compiled._LOAD_ERROR
    compiled._reset_for_tests()
    try:
        yield
    finally:
        compiled._LIB, compiled._LOAD_ERROR = lib, err


def tiny_model():
    return GRUAcousticModel(
        AcousticModelConfig(input_dim=8, hidden_size=12, num_layers=1), rng=0
    ).eval()


# ---------------------------------------------------------------------------
# Build + cache
# ---------------------------------------------------------------------------
@requires_compiler
class TestBuildCache:
    def test_so_cached_on_disk_and_reused(self, fresh_state, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_CACHE", str(tmp_path))
        lib = compiled.build_library()
        assert isinstance(lib, ctypes.CDLL)
        sos = sorted(tmp_path.glob("repro_kernels_*.so"))
        assert len(sos) == 1
        stamp = sos[0].stat().st_mtime_ns
        compiled.build_library()  # cache hit: same file, no rebuild
        assert sorted(tmp_path.glob("repro_kernels_*.so")) == sos
        assert sos[0].stat().st_mtime_ns == stamp

    def test_cache_key_covers_source_and_compiler(self):
        key = compiled._source_key("cc", ("-O3",))
        assert key != compiled._source_key("clang", ("-O3",))
        assert key != compiled._source_key("cc", ("-O2",))

    def test_library_handle_is_process_cached(self, fresh_state):
        assert compiled._library() is compiled._library()

    def test_corrupt_cached_so_raises_typed_error(self, fresh_state, tmp_path,
                                                  monkeypatch):
        # Plant garbage at the exact cache path *before* the first load:
        # a stale/corrupt cache entry must surface as the typed error,
        # not a raw OSError (and never silently rebuild over it).
        monkeypatch.setenv("REPRO_COMPILED_CACHE", str(tmp_path))
        cc = compiled.compiler_command()
        flags = ("-march=native", "-O3", "-shared", "-fPIC",
                 "-fvisibility=hidden")
        key = compiled._source_key(cc, flags)
        (tmp_path / f"repro_kernels_{key}.so").write_bytes(b"not an ELF")
        with pytest.raises(CompileBackendError):
            compiled._library()


# ---------------------------------------------------------------------------
# Graceful degradation without a compiler
# ---------------------------------------------------------------------------
class TestDegradation:
    def test_broken_cc_records_typed_error_once(self, fresh_state, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CC", str(tmp_path / "no-such-cc"))
        monkeypatch.setenv("REPRO_COMPILED_CACHE", str(tmp_path / "cache"))
        assert not compiled.available()
        err = compiled.load_error()
        assert isinstance(err, CompileBackendError)
        with pytest.raises(CompileBackendError):
            compiled._library()
        assert compiled.load_error() is err  # recorded once, not re-probed

    def test_failing_cc_surfaces_compiler_output(self, fresh_state, tmp_path,
                                                 monkeypatch):
        bad_cc = tmp_path / "bad-cc"
        bad_cc.write_text("#!/bin/sh\necho 'synthetic failure' >&2\nexit 1\n")
        bad_cc.chmod(0o755)
        monkeypatch.setenv("REPRO_CC", str(bad_cc))
        monkeypatch.setenv("REPRO_COMPILED_CACHE", str(tmp_path / "cache"))
        with pytest.raises(CompileBackendError, match="synthetic failure"):
            compiled.build_library()

    def test_backend_absent_from_registry_without_compiler(self, fresh_state,
                                                           tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CC", str(tmp_path / "no-such-cc"))
        target = KernelRegistry()
        target.register("csr_spmv", "numpy", lambda m, x: m @ x)
        assert compiled.register_compiled_backend(target) is False
        assert "compiled" not in target.backends()
        # and the numpy fallback keeps dispatching
        assert target.get("csr_spmv")(np.eye(2), np.ones(2)) is not None

    def test_registration_succeeds_with_compiler(self, fresh_state):
        if not compiled.available():
            pytest.skip("no working C compiler on this host")
        target = KernelRegistry()
        assert compiled.register_compiled_backend(target) is True
        assert "compiled" in target.backends()

    def test_artifact_tuned_for_missing_backend_warns_and_falls_back(
        self, rng, monkeypatch
    ):
        # A plan artifact tuned for "compiled" on another host must load
        # and run (on the default backend) when the backend is absent
        # here — with a warning, not a crash.
        plan = engine.compile_model(tiny_model())
        plan.backend = "compiled"
        monkeypatch.setattr(
            kernels, "backends", lambda: ("numpy", "reference")
        )
        features = rng.standard_normal((5, 2, 8))
        with pytest.warns(RuntimeWarning, match="tuned for kernel backend"):
            out = plan.forward_batch(features)
        assert out.shape[0] == 5
        # warned once, not once per call
        with kernels.use_backend("numpy"):
            plan.forward_batch(features)

    def test_plan_with_registered_backend_does_not_warn(self, rng):
        plan = engine.compile_model(tiny_model())
        plan.backend = "numpy"
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            plan.forward_batch(rng.standard_normal((3, 1, 8)))


# ---------------------------------------------------------------------------
# Backend-name validation (the shared resolve_backend seam)
# ---------------------------------------------------------------------------
class TestBackendValidation:
    def test_resolve_backend_accepts_registered(self):
        for name in kernels.backends():
            assert kernels.resolve_backend(name) == name

    def test_resolve_backend_rejects_unknown_with_listing(self):
        with pytest.raises(ConfigError, match="numpy"):
            kernels.resolve_backend("cuda")
        with pytest.raises(ConfigError, match="REPRO_KERNEL_BACKEND"):
            kernels.resolve_backend("cuda", "REPRO_KERNEL_BACKEND")

    def test_cli_rejects_unknown_backend(self):
        from repro.eval.runner import main

        # validation runs before the subcommand, so table1 never starts
        with pytest.raises(ConfigError, match="--kernel-backend"):
            main(["--kernel-backend", "cuda", "table1"])

    def test_tune_plan_rejects_unknown_backend(self, rng):
        from repro.compiler.autotune import tune_plan

        with pytest.raises(ConfigError, match="tune_plan backends"):
            tune_plan(
                tiny_model(),
                rng.standard_normal((4, 2, 8)),
                backends=(None, "cuda"),
            )


# ---------------------------------------------------------------------------
# int8 accumulator-stamp dispatch (f32 / f32w / f64)
# ---------------------------------------------------------------------------
@requires_compiler
class TestAccumulatorStamps:
    """The narrow-f32-accumulator scheme must only engage when the
    whole-row reduction provably fits the 2^24 integer-exactness bound
    (``strips * mc <= F32_EXACT_INNER``); past it, float codes must pair
    with the wide-accumulator ``f32w`` stamp — and stay bitwise equal to
    the reference backend either way."""

    def test_stamp_selection(self):
        from repro.kernels.quantized import F32_EXACT_INNER

        lib = compiled._library()
        fn, acc = compiled._int8_bspc_fn(lib, "spmm", np.dtype(np.float64), 8, 64)
        assert fn.__name__ == "repro_bspc_spmm_i8_f64" and acc == np.float64
        fn, acc = compiled._int8_bspc_fn(
            lib, "spmm", np.dtype(np.float32), 8, F32_EXACT_INNER // 8
        )
        assert fn.__name__ == "repro_bspc_spmm_i8_f32" and acc == np.float32
        fn, acc = compiled._int8_bspc_fn(
            lib, "spmv", np.dtype(np.float32), 8, F32_EXACT_INNER // 8 + 1
        )
        assert fn.__name__ == "repro_bspc_spmv_i8_f32w" and acc == np.float64

    def test_f32w_path_bitwise_vs_reference(self):
        # A structured 2048^2 BSP-pruned matrix keeps per-strip panels
        # narrow (float32 codes) while strips * mc = 2048 exceeds the
        # narrow-accumulator bound, forcing the f32w stamp.
        from repro.kernels.quantized import F32_EXACT_INNER, int8_bspc_plan
        from repro.pruning.bsp import BSPConfig, bsp_project_masks
        from repro.sparse.blocks import grid_for
        from repro.sparse.bspc import BSPCMatrix
        from repro.utils.rng import new_rng

        size, strips, blocks = 2048, 8, 8
        weight = new_rng(0).standard_normal((size, size))
        masks = bsp_project_masks(
            {"w": weight},
            BSPConfig(col_rate=8, row_rate=2, num_row_strips=strips,
                      num_col_blocks=blocks),
        )
        pruned = masks["w"].apply_to_array(weight)
        m = BSPCMatrix.from_dense(pruned, grid_for(pruned, strips, blocks))

        plan = int8_bspc_plan(m)
        n_strips, _, mc = plan.base.panels.shape
        assert plan.codes_f.dtype == np.float32
        assert n_strips * mc > F32_EXACT_INNER  # really the f32w stamp

        rng = new_rng(3)
        x = rng.standard_normal(size)
        expected = kernels.spmv_int8(m, x, backend="reference")
        np.testing.assert_array_equal(
            kernels.spmv_int8(m, x, backend="compiled"), expected
        )
        for batch in (7, 16):  # partial- and full-lane writeback
            xb = rng.standard_normal((size, batch))
            expected = kernels.spmm_int8(m, xb, backend="reference")
            np.testing.assert_array_equal(
                kernels.spmm_int8(m, xb, backend="compiled"), expected
            )


# ---------------------------------------------------------------------------
# tune_plan with the compiled candidate (the ISSUE acceptance invariant)
# ---------------------------------------------------------------------------
@requires_compiler
def test_tune_plan_with_compiled_candidate_keeps_speedup_invariant(rng):
    from repro.compiler.autotune import tune_plan

    result = tune_plan(
        tiny_model(),
        rng.standard_normal((12, 2, 8)),
        backends=(None, "compiled"),
        repeats=1,
    )
    # the tuned winner can never be slower than the measured baseline
    assert result.speedup >= 1.0
    assert any(c.backend == "compiled" for c in result.trace)
