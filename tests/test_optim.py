"""Tests for optimizers (repro.nn.optim)."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor


def quadratic_loss(param: Parameter, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad = np.array([0.5, -0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        target = np.array([1.0, -2.0, 3.0])
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.zeros(1))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(20):
                opt.zero_grad()
                quadratic_loss(p, np.array([1.0])).backward()
                opt.step()
            return abs(float(p.data[0]) - 1.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], momentum=1.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = Parameter(np.zeros(2))
        p.grad = np.ones(2)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step is ~lr in the gradient
        # direction regardless of gradient magnitude.
        p = Parameter(np.array([0.0]))
        p.grad = np.array([123.0])
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-8)

    def test_converges_on_quadratic(self):
        p = Parameter(np.zeros(3))
        target = np.array([1.0, -2.0, 3.0])
        opt = Adam([p], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            quadratic_loss(p, target).backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_handles_sparse_gradients_per_param_state(self):
        p1 = Parameter(np.zeros(1))
        p2 = Parameter(np.zeros(1))
        opt = Adam([p1, p2], lr=0.1)
        p1.grad = np.array([1.0])
        opt.step()  # p2 has no grad; its state must stay untouched
        p2.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(p2.data, [-0.1], atol=1e-8)

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.0])
        Adam([p], lr=0.1, weight_decay=1.0).step()
        assert float(p.data[0]) < 1.0

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_faster_than_sgd_on_ill_conditioned(self):
        # Diagonal quadratic with condition number 1000: Adam's
        # per-coordinate scaling wins.
        scales = np.array([1000.0, 1.0])
        target = np.array([1.0, 1.0])

        def run(opt_cls, **kw):
            p = Parameter(np.zeros(2))
            opt = opt_cls([p], **kw)
            for _ in range(100):
                opt.zero_grad()
                diff = p - Tensor(target)
                (diff * diff * scales).sum().backward()
                opt.step()
            return np.linalg.norm(p.data - target)

        assert run(Adam, lr=0.05) < run(SGD, lr=0.0005)
