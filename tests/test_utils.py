"""Tests for repro.utils (rng, validation) and repro.nn.init."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import init
from repro.utils.rng import derive_seed, new_rng, spawn_rngs
from repro.utils.validation import (
    check_2d,
    check_positive_int,
    check_probability,
    check_same_shape,
)


class TestRng:
    def test_new_rng_deterministic(self):
        assert new_rng(3).random() == new_rng(3).random()

    def test_new_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen

    def test_spawn_independent_children(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_spawn_stable_across_calls(self):
        a1, _ = spawn_rngs(5, 2)
        a2, _ = spawn_rngs(5, 2)
        assert a1.random() == a2.random()

    def test_spawn_count_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_derive_seed_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_derive_seed_salt_sensitive(self):
        assert derive_seed(1, 2) != derive_seed(1, 3)

    def test_derive_seed_none_base(self):
        assert derive_seed(None, 1) == derive_seed(None, 1)


class TestValidation:
    def test_check_2d_passes(self):
        out = check_2d(np.zeros((2, 3)))
        assert out.shape == (2, 3)

    def test_check_2d_rejects_1d(self):
        with pytest.raises(ShapeError):
            check_2d(np.zeros(3))

    def test_check_same_shape(self):
        check_same_shape(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(ShapeError):
            check_same_shape(np.zeros((2, 3)), np.zeros((3, 2)))

    def test_check_positive_int(self):
        assert check_positive_int(3, "x") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(ValueError):
            check_positive_int(2.5, "x")
        with pytest.raises(ValueError):
            check_positive_int(True, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")


class TestInit:
    def test_xavier_bounds(self):
        w = init.xavier_uniform((50, 100), rng=0)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)
        assert w.shape == (50, 100)

    def test_orthogonal_rows_orthonormal(self):
        w = init.orthogonal((10, 20), rng=0)
        np.testing.assert_allclose(w @ w.T, np.eye(10), atol=1e-10)

    def test_orthogonal_tall_columns_orthonormal(self):
        w = init.orthogonal((20, 10), rng=0)
        np.testing.assert_allclose(w.T @ w, np.eye(10), atol=1e-10)

    def test_orthogonal_gain(self):
        w = init.orthogonal((8, 8), rng=0, gain=2.0)
        np.testing.assert_allclose(w @ w.T, 4 * np.eye(8), atol=1e-9)

    def test_zeros(self):
        assert np.all(init.zeros((3, 4)) == 0.0)

    def test_normal_std(self):
        w = init.normal((2000,), std=0.5, rng=0)
        assert abs(w.std() - 0.5) < 0.05

    def test_deterministic(self):
        np.testing.assert_array_equal(
            init.xavier_uniform((4, 4), rng=1), init.xavier_uniform((4, 4), rng=1)
        )
