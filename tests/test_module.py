"""Tests for Module/Parameter (repro.nn.module) and Linear."""

import numpy as np
import pytest

from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from tests.conftest import check_gradient


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, rng=0)
        self.second = Linear(8, 2, rng=1)

    def forward(self, x):
        return self.second(self.first(x).relu())


class TestRegistration:
    def test_parameters_discovered(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_parameters()]
        assert names == [
            "first.weight",
            "first.bias",
            "second.weight",
            "second.bias",
        ]

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_named_modules(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_modules()]
        assert names == ["", "first", "second"]

    def test_parameter_always_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = TwoLayer()
        model.eval()
        assert not model.training
        assert not model.first.training
        model.train()
        assert model.second.training


class TestGradients:
    def test_zero_grad_clears_all(self, rng):
        model = TwoLayer()
        out = model(Tensor(rng.standard_normal((3, 4)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_gradients_flow_to_all_parameters(self, rng):
        model = TwoLayer()
        out = (model(Tensor(rng.standard_normal((5, 4)))) ** 2.0).sum()
        out.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, name


class TestStateDict:
    def test_round_trip(self, rng):
        model = TwoLayer()
        state = model.state_dict()
        model2 = TwoLayer()
        model2.load_state_dict(state)
        for (_, p1), (_, p2) in zip(
            model.named_parameters(), model2.named_parameters()
        ):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"][...] = 0.0
        assert not np.all(model.first.weight.data == 0.0)

    def test_missing_key_rejected(self):
        model = TwoLayer()
        state = model.state_dict()
        del state["first.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_rejected(self):
        model = TwoLayer()
        state = model.state_dict()
        state["extra"] = np.zeros(3)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 7, rng=0)
        out = layer(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 7)

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 7, rng=0)
        x = rng.standard_normal((3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias_option(self, rng):
        layer = Linear(4, 7, bias=False, rng=0)
        assert layer.bias is None
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x @ layer.weight.data.T)

    def test_weight_layout_row_major(self):
        layer = Linear(5, 3, rng=0)
        assert layer.weight.data.shape == (3, 5)

    def test_gradient_through_layer(self, rng):
        layer = Linear(4, 3, rng=0)
        check_gradient(
            lambda t: (layer(t) ** 2.0).sum(), rng.standard_normal((2, 4))
        )

    def test_deterministic_init(self):
        a = Linear(4, 3, rng=42)
        b = Linear(4, 3, rng=42)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)
