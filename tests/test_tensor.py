"""Tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest

from repro.errors import GradientError, ShapeError
from repro.nn.tensor import Tensor, as_tensor, concatenate, ones, stack, zeros
from tests.conftest import check_gradient


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_rejects_nonscalar(self):
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_tape(self):
        t = Tensor([1.0], requires_grad=True)
        d = (t * 2.0).detach()
        assert not d.requires_grad

    def test_numpy_returns_underlying(self):
        t = Tensor([1.0, 2.0])
        assert t.numpy() is t.data

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_as_tensor_identity(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_zeros_and_ones(self):
        assert np.all(zeros((2, 3)).data == 0.0)
        assert np.all(ones((2, 3)).data == 1.0)


class TestBackwardMechanics:
    def test_backward_requires_grad(self):
        with pytest.raises(GradientError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2.0
        with pytest.raises(GradientError):
            out.backward()

    def test_backward_with_explicit_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3.0).backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(t.grad, [3.0, 3.0])

    def test_seed_shape_checked(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 1.0
        with pytest.raises(ShapeError):
            out.backward(np.array([1.0]))

    def test_grad_accumulates_across_backward_calls(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 3.0).sum().backward()
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_zero_grad(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 3.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_reused_node_accumulates(self):
        t = Tensor([3.0], requires_grad=True)
        y = t * t  # t used twice
        y.sum().backward()
        np.testing.assert_allclose(t.grad, [6.0])

    def test_diamond_graph(self):
        # z = (t*2) + (t*3): gradient 5.
        t = Tensor([1.0], requires_grad=True)
        z = t * 2.0 + t * 3.0
        z.sum().backward()
        np.testing.assert_allclose(t.grad, [5.0])

    def test_deep_chain_no_recursion_error(self):
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(2000):
            out = out + 0.001
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradient(lambda t: (t + 2.0).sum(), rng.standard_normal((3, 4)))

    def test_sub(self, rng):
        check_gradient(lambda t: (t - 1.5).sum(), rng.standard_normal((3, 4)))

    def test_rsub(self, rng):
        check_gradient(lambda t: (1.5 - t).sum(), rng.standard_normal((3,)))

    def test_mul(self, rng):
        check_gradient(lambda t: (t * t).sum(), rng.standard_normal((3, 4)))

    def test_div(self, rng):
        a = rng.standard_normal((3, 4)) + 5.0
        check_gradient(lambda t: (1.0 / t).sum(), a)

    def test_neg(self, rng):
        check_gradient(lambda t: (-t).sum(), rng.standard_normal((4,)))

    def test_pow(self, rng):
        a = np.abs(rng.standard_normal((3,))) + 0.5
        check_gradient(lambda t: (t**3.0).sum(), a)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_broadcast_add_row(self, rng):
        row = rng.standard_normal((1, 4))
        other = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda t: (t + other).sum(), row)

    def test_broadcast_mul_scalar_tensor(self, rng):
        s = rng.standard_normal((1,))
        other = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda t: (t * other).sum(), s)

    def test_broadcast_vector_to_matrix(self, rng):
        v = rng.standard_normal((4,))
        other = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda t: (other * t).sum(), v)


class TestMatmulGradients:
    def test_matmul_2d_2d(self, rng):
        b = Tensor(rng.standard_normal((4, 5)))
        check_gradient(lambda t: (t @ b).sum(), rng.standard_normal((3, 4)))

    def test_matmul_grad_wrt_rhs(self, rng):
        a = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda t: (a @ t).sum(), rng.standard_normal((4, 5)))

    def test_matmul_1d_1d(self, rng):
        b = Tensor(rng.standard_normal(4))
        check_gradient(lambda t: (t @ b).sum(), rng.standard_normal(4))

    def test_matmul_1d_2d(self, rng):
        b = Tensor(rng.standard_normal((4, 3)))
        check_gradient(lambda t: (t @ b).sum(), rng.standard_normal(4))

    def test_matmul_2d_1d(self, rng):
        b = Tensor(rng.standard_normal(4))
        check_gradient(lambda t: (t @ b).sum(), rng.standard_normal((3, 4)))

    def test_matmul_rejects_3d(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)))
        with pytest.raises(ShapeError):
            a @ Tensor(rng.standard_normal((4, 2)))

    def test_matmul_value(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)


class TestReductions:
    def test_sum_all(self, rng):
        check_gradient(lambda t: t.sum(), rng.standard_normal((3, 4)))

    def test_sum_axis0(self, rng):
        check_gradient(lambda t: t.sum(axis=0).sum(), rng.standard_normal((3, 4)))

    def test_sum_axis_keepdims(self, rng):
        check_gradient(
            lambda t: t.sum(axis=1, keepdims=True).sum(), rng.standard_normal((3, 4))
        )

    def test_sum_negative_axis(self, rng):
        check_gradient(lambda t: t.sum(axis=-1).sum(), rng.standard_normal((3, 4)))

    def test_mean_all(self, rng):
        check_gradient(lambda t: t.mean(), rng.standard_normal((3, 4)))

    def test_mean_axis(self, rng):
        check_gradient(lambda t: t.mean(axis=0).sum(), rng.standard_normal((3, 4)))

    def test_max_all(self, rng):
        a = rng.standard_normal((3, 4))
        check_gradient(lambda t: t.max(), a)

    def test_max_axis_value(self, rng):
        a = rng.standard_normal((3, 4))
        np.testing.assert_allclose(Tensor(a).max(axis=1).data, a.max(axis=1))

    def test_mean_value(self, rng):
        a = rng.standard_normal((3, 4))
        np.testing.assert_allclose(Tensor(a).mean().data, a.mean())


class TestNonlinearities:
    def test_sigmoid_grad(self, rng):
        check_gradient(lambda t: t.sigmoid().sum(), rng.standard_normal((3, 4)))

    def test_tanh_grad(self, rng):
        check_gradient(lambda t: t.tanh().sum(), rng.standard_normal((3, 4)))

    def test_relu_grad(self, rng):
        a = rng.standard_normal((3, 4)) + 0.2  # keep away from the kink
        a[np.abs(a) < 1e-3] = 0.5
        check_gradient(lambda t: t.relu().sum(), a)

    def test_exp_grad(self, rng):
        check_gradient(lambda t: t.exp().sum(), rng.standard_normal((3,)))

    def test_log_grad(self, rng):
        a = np.abs(rng.standard_normal((3,))) + 1.0
        check_gradient(lambda t: t.log().sum(), a)

    def test_sigmoid_range(self, rng):
        out = Tensor(rng.standard_normal(100) * 10).sigmoid().data
        assert np.all(out > 0) and np.all(out < 1)

    def test_relu_value(self):
        np.testing.assert_allclose(
            Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0]
        )


class TestShapeOps:
    def test_reshape_grad(self, rng):
        check_gradient(
            lambda t: (t.reshape(12) * np.arange(12.0)).sum(),
            rng.standard_normal((3, 4)),
        )

    def test_reshape_tuple_arg(self, rng):
        t = Tensor(rng.standard_normal((3, 4)))
        assert t.reshape((4, 3)).shape == (4, 3)

    def test_transpose_grad(self, rng):
        w = Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda t: (t.T * w).sum(), rng.standard_normal((4, 3)))

    def test_transpose_axes(self, rng):
        a = rng.standard_normal((2, 3, 4))
        out = Tensor(a).transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)

    def test_transpose_axes_grad(self, rng):
        w = np.arange(24.0).reshape(4, 2, 3)
        check_gradient(
            lambda t: (t.transpose(2, 0, 1) * w).sum(), rng.standard_normal((2, 3, 4))
        )

    def test_getitem_row_grad(self, rng):
        check_gradient(lambda t: t[1].sum(), rng.standard_normal((3, 4)))

    def test_getitem_slice_grad(self, rng):
        check_gradient(lambda t: t[:, 1:3].sum(), rng.standard_normal((3, 4)))

    def test_getitem_value(self, rng):
        a = rng.standard_normal((3, 4))
        np.testing.assert_allclose(Tensor(a)[2].data, a[2])

    def test_concatenate_grad(self, rng):
        a = rng.standard_normal((2, 3))
        b = Tensor(rng.standard_normal((4, 3)))
        check_gradient(lambda t: (concatenate([t, b], axis=0) ** 2.0).sum(), a)

    def test_concatenate_axis1(self, rng):
        a = Tensor(rng.standard_normal((2, 3)))
        b = Tensor(rng.standard_normal((2, 5)))
        assert concatenate([a, b], axis=1).shape == (2, 8)

    def test_concatenate_empty_rejected(self):
        with pytest.raises(ValueError):
            concatenate([])

    def test_stack_grad(self, rng):
        a = rng.standard_normal((3,))
        b = Tensor(rng.standard_normal((3,)))
        check_gradient(lambda t: (stack([t, b], axis=0) ** 2.0).sum(), a)

    def test_stack_shape(self, rng):
        parts = [Tensor(rng.standard_normal((2, 3))) for _ in range(4)]
        assert stack(parts, axis=0).shape == (4, 2, 3)
        assert stack(parts, axis=1).shape == (2, 4, 3)

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError):
            stack([])


class TestComparisons:
    def test_gt_returns_array(self):
        out = Tensor([1.0, 3.0]) > 2.0
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, [False, True])

    def test_lt(self):
        np.testing.assert_array_equal(Tensor([1.0, 3.0]) < 2.0, [True, False])
