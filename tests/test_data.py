"""Tests for the sequence data pipeline (repro.nn.data)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.data import (
    Batch,
    DataLoader,
    Dataset,
    SequenceExample,
    collate,
    train_test_split,
)


def example(length: int, dim: int = 3, seed: int = 0) -> SequenceExample:
    rng = np.random.default_rng(seed)
    return SequenceExample(
        features=rng.standard_normal((length, dim)),
        labels=rng.integers(0, 5, length),
    )


class TestSequenceExample:
    def test_length(self):
        assert len(example(7)) == 7

    def test_rejects_1d_features(self):
        with pytest.raises(ShapeError):
            SequenceExample(features=np.zeros(5), labels=np.zeros(5, dtype=int))

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ShapeError):
            SequenceExample(features=np.zeros((5, 3)), labels=np.zeros(4, dtype=int))


class TestCollate:
    def test_pads_to_max_length(self):
        batch = collate([example(3), example(7), example(5)])
        assert batch.features.shape == (7, 3, 3)
        assert batch.labels.shape == (7, 3)
        assert batch.mask.shape == (7, 3)

    def test_mask_marks_real_frames(self):
        batch = collate([example(3), example(7)])
        np.testing.assert_array_equal(batch.mask[:, 0], [1, 1, 1, 0, 0, 0, 0])
        np.testing.assert_array_equal(batch.mask[:, 1], np.ones(7))

    def test_lengths(self):
        batch = collate([example(3), example(7)])
        np.testing.assert_array_equal(batch.lengths, [3, 7])

    def test_features_preserved(self):
        ex = example(4, seed=3)
        batch = collate([ex, example(6)])
        np.testing.assert_array_equal(batch.features[:4, 0, :], ex.features)

    def test_padding_is_zero(self):
        batch = collate([example(2), example(5)])
        assert np.all(batch.features[2:, 0, :] == 0.0)
        assert np.all(batch.labels[2:, 0] == 0)

    def test_num_frames(self):
        batch = collate([example(3), example(7)])
        assert batch.num_frames() == 10

    def test_batch_size_property(self):
        assert collate([example(3)] * 4).batch_size == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            collate([])

    def test_rejects_mixed_dims(self):
        with pytest.raises(ShapeError):
            collate([example(3, dim=3), example(3, dim=4)])


class TestDataLoader:
    def make_dataset(self, n=10):
        return Dataset([example(3 + i % 4, seed=i) for i in range(n)])

    def test_num_batches(self):
        loader = DataLoader(self.make_dataset(10), batch_size=3, shuffle=False)
        assert len(loader) == 4
        assert len(list(loader)) == 4

    def test_drop_last(self):
        loader = DataLoader(
            self.make_dataset(10), batch_size=3, shuffle=False, drop_last=True
        )
        assert len(loader) == 3
        assert all(b.batch_size == 3 for b in loader)

    def test_covers_all_examples(self):
        loader = DataLoader(self.make_dataset(10), batch_size=3, shuffle=True, rng=0)
        total = sum(batch.batch_size for batch in loader)
        assert total == 10

    def test_shuffle_is_deterministic_per_seed(self):
        def first_lengths(seed):
            loader = DataLoader(self.make_dataset(), batch_size=4, rng=seed)
            return next(iter(loader)).lengths.tolist()

        assert first_lengths(7) == first_lengths(7)

    def test_no_shuffle_preserves_order(self):
        dataset = self.make_dataset()
        loader = DataLoader(dataset, batch_size=4, shuffle=False)
        batch = next(iter(loader))
        np.testing.assert_array_equal(
            batch.lengths, [len(dataset[i]) for i in range(4)]
        )

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(self.make_dataset(), batch_size=0)


class TestSplit:
    def test_sizes(self):
        train, test = train_test_split(
            Dataset([example(3, seed=i) for i in range(10)]), 0.3, rng=0
        )
        assert len(test) == 3
        assert len(train) == 7

    def test_disjoint_and_complete(self):
        dataset = Dataset([example(3, seed=i) for i in range(10)])
        train, test = train_test_split(dataset, 0.3, rng=0)
        train_ids = {id(ex) for ex in train.examples}
        test_ids = {id(ex) for ex in test.examples}
        assert not train_ids & test_ids
        assert len(train_ids | test_ids) == 10

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(Dataset([example(3)]), 0.0)
