"""Tests for pruning-rate schedules (repro.pruning.schedule)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.pruning.bsp import BSPConfig, BSPPruner
from repro.pruning.schedule import (
    CubicRamp,
    GeometricRamp,
    OneShot,
    make_schedule,
)


class TestGeometric:
    def test_endpoints(self):
        ramp = GeometricRamp()
        assert ramp.rate_at(0, 4, 16.0) == pytest.approx(1.0)
        assert ramp.rate_at(4, 4, 16.0) == pytest.approx(16.0)

    def test_equal_multiplicative_steps(self):
        ramp = GeometricRamp()
        rates = [ramp.rate_at(k, 4, 16.0) for k in range(5)]
        ratios = [b / a for a, b in zip(rates, rates[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_clamps_past_total(self):
        assert GeometricRamp().rate_at(10, 4, 16.0) == pytest.approx(16.0)


class TestCubic:
    def test_endpoints(self):
        ramp = CubicRamp()
        assert ramp.rate_at(0, 4, 16.0) == pytest.approx(1.0)
        assert ramp.rate_at(4, 4, 16.0) == pytest.approx(16.0)

    def test_front_loads_pruning(self):
        # At the halfway point, cubic has removed more than geometric.
        halfway_cubic = CubicRamp().rate_at(2, 4, 16.0)
        halfway_geometric = GeometricRamp().rate_at(2, 4, 16.0)
        assert halfway_cubic > halfway_geometric

    def test_never_exceeds_target(self):
        ramp = CubicRamp()
        for k in range(10):
            assert ramp.rate_at(k, 4, 16.0) <= 16.0 + 1e-9


class TestOneShot:
    def test_immediate(self):
        assert OneShot().rate_at(0, 4, 16.0) == 16.0
        assert OneShot().rate_at(1, 4, 16.0) == 16.0


class TestFactory:
    def test_lookup(self):
        assert isinstance(make_schedule("geometric"), GeometricRamp)
        assert isinstance(make_schedule("cubic"), CubicRamp)
        assert isinstance(make_schedule("oneshot"), OneShot)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_schedule("linear")

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigError):
            GeometricRamp().rate_at(1, 4, 0.5)


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(["geometric", "cubic"]),
    total=st.integers(1, 10),
    target=st.floats(1.0, 64.0),
)
def test_property_ramps_monotone_and_bounded(name, total, target):
    """Every ramp is non-decreasing, starts at 1, ends at the target."""
    ramp = make_schedule(name)
    rates = [ramp.rate_at(k, total, target) for k in range(total + 1)]
    assert rates[0] == pytest.approx(1.0)
    assert rates[-1] == pytest.approx(target)
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    assert all(1.0 - 1e-9 <= r <= target + 1e-9 for r in rates)


class TestBSPIntegration:
    def test_bsp_accepts_ramp_choice(self, rng):
        from repro.nn.module import Parameter

        params = {"w": Parameter(rng.standard_normal((8, 8)))}
        for ramp in ("geometric", "cubic", "oneshot"):
            pruner = BSPPruner(
                params,
                BSPConfig(col_rate=4, row_rate=1, num_row_strips=2,
                          num_col_blocks=2, ramp=ramp,
                          step1_admm_epochs=2, step1_retrain_epochs=0,
                          step2_admm_epochs=0, step2_retrain_epochs=0),
            )
            assert pruner._ramp_rate >= 1.0

    def test_bsp_rejects_unknown_ramp(self):
        with pytest.raises(ConfigError):
            BSPConfig(ramp="sigmoid")

    def test_oneshot_ramp_starts_at_target(self, rng):
        from repro.nn.module import Parameter

        params = {"w": Parameter(rng.standard_normal((8, 8)))}
        pruner = BSPPruner(
            params,
            BSPConfig(col_rate=4, row_rate=1, num_row_strips=2,
                      num_col_blocks=2, ramp="oneshot",
                      step1_admm_epochs=3, step1_retrain_epochs=0,
                      step2_admm_epochs=0, step2_retrain_epochs=0),
        )
        assert pruner._ramp_rate == pytest.approx(4.0)
