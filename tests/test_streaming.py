"""Tests for the streaming inference runtime.

The central contract — the *chunk-exactness sweep* — is that a streaming
session fed an utterance in arbitrary chunk splits produces byte-identical
phone sequences to the offline ``decode_utterance`` path, across kernel
backends (``reference``/``numpy``) and quantization schemes
(``None``/``fp16``/``int8``), for GRU and LSTM (cell-state) plans.  Logits
are asserted too, as far as each scheme permits: **bit-exact** for int8
(per-frame activation scales + order-exact integer accumulation) and to
BLAS-reduction-order tolerance for float64/fp16.

Around the sweep: the streaming feature frontend's bit-exactness with the
offline featurizer, the incremental decoder's equivalence with
``smooth_labels``+``collapse_frames``, the state-carrying ``run_chunk``
API, and the deadline-batching stream scheduler.
"""

import numpy as np
import pytest

from repro import engine, kernels
from repro.errors import ConfigError, ShapeError, StreamError
from repro.speech.decoder import IncrementalDecoder, decode_utterance, smooth_labels
from repro.speech.features import (
    FeatureConfig,
    StreamingFrontend,
    log_mel_spectrogram,
)
from repro.speech.metrics import collapse_frames
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.phones import SILENCE_ID

# The chunk-exactness sweep runs under every registered backend —
# "compiled" joins the matrix automatically on hosts with a C toolchain.
BACKENDS = tuple(kernels.backends())
SCHEMES = (None, "fp16", "int8", "mixed")
CHUNK_SIZES = (1, 7, 25, None)  # None = the whole utterance in one chunk


def tiny_model(cell_type="gru", input_dim=8, hidden=16, seed=0):
    config = AcousticModelConfig(
        input_dim=input_dim, hidden_size=hidden, num_layers=2, cell_type=cell_type
    )
    return GRUAcousticModel(config, rng=seed).eval()


def chunk_starts(total, size):
    return range(0, total, size)


# ---------------------------------------------------------------------------
# The chunk-exactness property sweep (the acceptance criterion)
# ---------------------------------------------------------------------------
class TestChunkExactnessSweep:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("cell_type", ["gru", "lstm"])
    def test_streaming_equals_offline(self, backend, scheme, cell_type, rng_factory):
        plan = engine.compile_model(tiny_model(cell_type), scheme=scheme)
        with kernels.use_backend(backend):
            for utt_index in range(2):
                rng = rng_factory(1000 * utt_index + 17)
                total = int(rng.integers(40, 70))
                utterance = rng.standard_normal((total, 8))
                offline_logits = plan.forward_utterance(utterance)
                offline = decode_utterance(offline_logits, min_duration=2)
                for size in CHUNK_SIZES:
                    size = total if size is None else size
                    session = engine.StreamingSession(plan, min_duration=2)
                    state, phones, pieces = None, [], []
                    for start in chunk_starts(total, size):
                        chunk = utterance[start : start + size]
                        phones += session.feed(chunk)
                        logits, state = plan.run_chunk(chunk[:, None, :], state)
                        pieces.append(logits[:, 0])
                    phones += session.finish()
                    # Labels: byte-identical with the offline decode.
                    assert phones == offline, (backend, scheme, cell_type, size)
                    assert session.phones == offline
                    # Logits: as exact as the scheme permits.
                    chunked = np.concatenate(pieces)
                    if scheme == "int8":
                        np.testing.assert_array_equal(chunked, offline_logits)
                    else:
                        atol = 1e-4 if scheme == "fp16" else 1e-9
                        np.testing.assert_allclose(
                            chunked, offline_logits, atol=atol
                        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fmt", ["csr", "bspc"])
    def test_int8_sparse_plans_bitwise_chunk_exact(self, fmt, backend, rng_factory):
        # Per-column activation scales make even the sparse int8 spmm
        # paths bit-exact under chunking — and the integer accumulation
        # is reduction-order-free, so every backend (the compiled C one
        # included) must reproduce the *reference* offline logits bit for
        # bit under every chunk split.
        from repro.pruning.bsp import BSPConfig, bsp_project_masks

        model = tiny_model(hidden=24)
        masks = bsp_project_masks(
            model.prunable_weights(),
            BSPConfig(col_rate=4, row_rate=2, num_row_strips=4, num_col_blocks=4),
        )
        for name, param in model.prunable_parameters().items():
            param.data[...] = masks[name].apply_to_array(param.data)
        plan = engine.compile_model(
            model,
            scheme="int8",
            config=engine.EngineConfig(
                sparse_format=fmt, num_row_strips=4, num_col_blocks=4
            ),
        )
        rng = rng_factory(5)
        utterance = rng.standard_normal((41, 8))
        with kernels.use_backend("reference"):
            offline_logits = plan.forward_utterance(utterance)
        with kernels.use_backend(backend):
            for size in (1, 7, 41):
                state, pieces = None, []
                for start in chunk_starts(41, size):
                    logits, state = plan.run_chunk(
                        utterance[start : start + size][:, None, :], state
                    )
                    pieces.append(logits[:, 0])
                np.testing.assert_array_equal(
                    np.concatenate(pieces), offline_logits
                )


# ---------------------------------------------------------------------------
# run_chunk / PlanState
# ---------------------------------------------------------------------------
class TestRunChunkAPI:
    def make_plan(self, **kwargs):
        return engine.compile_model(tiny_model(**kwargs))

    def test_zero_length_chunk_passes_state_through(self, rng):
        plan = self.make_plan()
        _, state = plan.run_chunk(rng.standard_normal((5, 2, 8)))
        logits, state2 = plan.run_chunk(np.zeros((0, 2, 8)), state)
        assert logits.shape == (0, 2, plan.output.num_classes)
        for before, after in zip(state.layer_states, state2.layer_states):
            for a, b in zip(before, after):
                np.testing.assert_array_equal(a, b)
                assert a is not b  # pass-through still never aliases

    def test_state_batch_mismatch_rejected(self, rng):
        plan = self.make_plan()
        _, state = plan.run_chunk(rng.standard_normal((5, 2, 8)))
        with pytest.raises(ShapeError):
            plan.run_chunk(rng.standard_normal((5, 3, 8)), state)

    def test_rejects_wrong_rank_and_dim(self):
        plan = self.make_plan()
        with pytest.raises(ShapeError):
            plan.run_chunk(np.zeros((5, 8)))
        with pytest.raises(ShapeError):
            plan.run_chunk(np.zeros((5, 2, 9)))

    def test_fresh_state_matches_forward_batch(self, rng):
        plan = self.make_plan()
        x = rng.standard_normal((9, 3, 8))
        logits, _ = plan.run_chunk(x)
        np.testing.assert_array_equal(logits, plan.forward_batch(x))

    def test_lstm_cell_state_is_carried(self, rng):
        # Two components per layer, and chunked equals offline — the cell
        # state must actually flow between chunks for this to hold.
        plan = engine.compile_model(tiny_model("lstm"))
        state = plan.init_state(1)
        assert all(len(layer) == 2 for layer in state.layer_states)
        utterance = rng.standard_normal((23, 8))
        offline = plan.forward_utterance(utterance)
        pieces, carry = [], None
        for start in chunk_starts(23, 6):
            logits, carry = plan.run_chunk(
                utterance[start : start + 6][:, None, :], carry
            )
            pieces.append(logits[:, 0])
        np.testing.assert_allclose(np.concatenate(pieces), offline, atol=1e-9)

    def test_plan_state_stack_split_roundtrip(self, rng):
        plan = self.make_plan()
        _, s1 = plan.run_chunk(rng.standard_normal((4, 1, 8)))
        _, s2 = plan.run_chunk(rng.standard_normal((6, 1, 8)))
        stacked = engine.PlanState.stack([s1, s2])
        assert stacked.batch_size == 2
        parts = stacked.split()
        for original, part in zip((s1, s2), parts):
            for layer_a, layer_b in zip(original.layer_states, part.layer_states):
                for a, b in zip(layer_a, layer_b):
                    np.testing.assert_array_equal(a, b)

    def test_batched_sessions_independent_of_cobatching(self, rng):
        # Row b of a batched run_chunk carries session b's stream as if
        # it ran alone.  The per-step recurrent GEMM's row count is the
        # batch size, so co-batching can shift its BLAS reduction order
        # by float epsilon — logits agree to ~1e-12 and labels exactly
        # (chunk *splits* at fixed batch are bitwise for int8; see the
        # sweep above).
        plan = engine.compile_model(tiny_model(), scheme="int8")
        utterances = [rng.standard_normal((20, 8)) for _ in range(3)]
        solo = [plan.forward_utterance(u) for u in utterances]
        carry = None
        pieces = []
        batch = np.stack(utterances, axis=1)
        for start in chunk_starts(20, 5):
            logits, carry = plan.run_chunk(batch[start : start + 5], carry)
            pieces.append(logits)
        batched = np.concatenate(pieces)
        for b, expected in enumerate(solo):
            np.testing.assert_allclose(batched[:, b], expected, atol=1e-12)
            np.testing.assert_array_equal(
                batched[:, b].argmax(axis=1), expected.argmax(axis=1)
            )


# ---------------------------------------------------------------------------
# Streaming frontend
# ---------------------------------------------------------------------------
class TestStreamingFrontend:
    @pytest.mark.parametrize("total", [0, 1, 399, 400, 401, 4000, 7213])
    @pytest.mark.parametrize("split", [1, 160, 1024])
    def test_bit_exact_with_offline_featurizer(self, total, split, rng_factory):
        rng = rng_factory(total + split)
        signal = rng.standard_normal(total)
        config = FeatureConfig()
        offline = log_mel_spectrogram(signal, config)
        frontend = StreamingFrontend(config)
        pieces = [frontend.push(signal[i : i + split]) for i in range(0, total, split)]
        pieces.append(frontend.finish())
        np.testing.assert_array_equal(np.concatenate(pieces), offline)
        assert frontend.frames_emitted == len(offline)

    def test_push_before_full_frame_emits_nothing(self):
        frontend = StreamingFrontend(FeatureConfig())
        assert frontend.push(np.zeros(399)).shape == (0, 40)
        assert frontend.push(np.zeros(1)).shape == (1, 40)

    def test_finish_twice_raises(self):
        frontend = StreamingFrontend(FeatureConfig())
        frontend.finish()
        with pytest.raises(StreamError):
            frontend.finish()
        with pytest.raises(StreamError):
            frontend.push(np.zeros(10))

    def test_rejects_non_1d_samples(self):
        with pytest.raises(ConfigError):
            StreamingFrontend(FeatureConfig()).push(np.zeros((4, 2)))


# ---------------------------------------------------------------------------
# Incremental decoder
# ---------------------------------------------------------------------------
class TestIncrementalDecoder:
    def offline(self, labels, min_duration):
        return collapse_frames(smooth_labels(np.asarray(labels), min_duration))

    def test_equals_offline_smooth_collapse_property(self, rng_factory):
        rng = rng_factory(99)
        for _ in range(150):
            length = int(rng.integers(0, 40))
            labels = rng.integers(0, 4, size=length)
            labels = np.where(labels == 3, SILENCE_ID, labels)
            for min_duration in (1, 2, 3):
                expected = self.offline(labels, min_duration)
                for split in (1, 3, max(length, 1)):
                    decoder = IncrementalDecoder(min_duration)
                    got = []
                    for i in range(0, length, split):
                        got += decoder.push(labels[i : i + split])
                    got += decoder.finish()
                    assert got == expected, (labels.tolist(), min_duration, split)

    def test_commits_as_soon_as_run_survives(self):
        decoder = IncrementalDecoder(min_duration=3)
        assert decoder.push(np.array([7])) == [7]  # first run always survives
        assert decoder.push(np.array([8, 8])) == []  # boundary run undecided
        assert decoder.pending
        assert decoder.push(np.array([8])) == [8]  # reached min_duration
        assert not decoder.pending
        assert decoder.finish() == []

    def test_short_boundary_run_inherits_and_vanishes(self):
        decoder = IncrementalDecoder(min_duration=3)
        decoder.push(np.array([7, 7, 7]))
        decoder.push(np.array([8]))  # too short, still open
        assert decoder.finish() == []  # inherits 7, merges away

    def test_silence_dropped(self):
        decoder = IncrementalDecoder(min_duration=1)
        got = decoder.push(np.array([SILENCE_ID, 5, 5, SILENCE_ID, 6]))
        got += decoder.finish()
        assert got == [5, 6]

    def test_push_after_finish_raises(self):
        decoder = IncrementalDecoder()
        decoder.finish()
        with pytest.raises(StreamError):
            decoder.push(np.array([1]))

    def test_validation(self):
        with pytest.raises(ConfigError):
            IncrementalDecoder(min_duration=0)
        with pytest.raises(ShapeError):
            IncrementalDecoder().push(np.zeros((2, 2), dtype=np.int64))


# ---------------------------------------------------------------------------
# Streaming sessions (client API)
# ---------------------------------------------------------------------------
class TestStreamingSession:
    def test_feed_after_finish_raises(self, rng):
        session = engine.StreamingSession(engine.compile_model(tiny_model()))
        session.finish()
        with pytest.raises(StreamError):
            session.feed(rng.standard_normal((4, 8)))

    def test_empty_chunk_is_a_no_op(self):
        session = engine.StreamingSession(engine.compile_model(tiny_model()))
        assert session.feed(np.zeros((0, 8))) == []
        assert session.frames_fed == 0

    def test_rejects_wrong_dim(self):
        session = engine.StreamingSession(engine.compile_model(tiny_model()))
        with pytest.raises(ShapeError):
            session.feed(np.zeros((4, 9)))

    def test_feed_audio_requires_frontend(self):
        session = engine.StreamingSession(engine.compile_model(tiny_model()))
        with pytest.raises(StreamError):
            session.feed_audio(np.zeros(100))

    def test_raw_audio_stream_matches_offline_pipeline(self, rng):
        # End to end: waveform chunks → StreamingFrontend → run_chunk →
        # incremental decode equals featurize-then-decode offline.
        config = FeatureConfig()
        plan = engine.compile_model(tiny_model(input_dim=config.num_mels))
        signal = rng.standard_normal(5000)
        offline_features = log_mel_spectrogram(signal, config)
        offline = decode_utterance(
            plan.forward_utterance(offline_features), min_duration=2
        )
        session = engine.StreamingSession(
            plan, min_duration=2, frontend=StreamingFrontend(config)
        )
        phones = []
        for start in range(0, len(signal), 700):
            phones += session.feed_audio(signal[start : start + 700])
        phones += session.finish()
        assert phones == offline


# ---------------------------------------------------------------------------
# Stream scheduler (deadline batching)
# ---------------------------------------------------------------------------
class TestStreamScheduler:
    def make(self, scheme=None, **config):
        plan = engine.compile_model(tiny_model(), scheme=scheme)
        defaults = dict(max_batch_size=4, max_wait_frames=1000, min_duration=2)
        defaults.update(config)
        return plan, engine.StreamScheduler(plan, engine.StreamConfig(**defaults))

    def test_concurrent_sessions_match_offline(self, rng_factory):
        plan, scheduler = self.make()
        rng = rng_factory(42)
        utterances = [
            rng.standard_normal((int(rng.integers(30, 60)), 8)) for _ in range(8)
        ]
        offline = [
            decode_utterance(plan.forward_utterance(u), min_duration=2)
            for u in utterances
        ]
        sids = [scheduler.open() for _ in utterances]
        collected = {sid: [] for sid in sids}
        for start in range(0, max(len(u) for u in utterances), 10):
            for sid, utterance in zip(sids, utterances):
                chunk = utterance[start : start + 10]
                if len(chunk):
                    scheduler.feed(sid, chunk)
            for sid in sids:
                collected[sid] += scheduler.poll(sid)
        for sid, utterance in zip(sids, utterances):
            collected[sid] += scheduler.finish(sid)
        assert [collected[sid] for sid in sids] == offline
        stats = scheduler.stats
        assert stats.sessions_opened == stats.sessions_finished == 8
        assert stats.frames == sum(len(u) for u in utterances)
        assert len(stats.chunk_latency_s) == stats.chunks
        assert stats.mean_batch_size > 1.0  # equal-length chunks did batch
        assert stats.p50_latency_s <= stats.p95_latency_s

    def test_full_group_runs_without_deadline(self, rng):
        _, scheduler = self.make(max_batch_size=2, max_wait_frames=10_000)
        a, b = scheduler.open(), scheduler.open()
        scheduler.feed(a, rng.standard_normal((5, 8)))
        assert scheduler.pending() == 1  # batch not full, deadline far
        scheduler.feed(b, rng.standard_normal((5, 8)))
        assert scheduler.pending() == 0  # group filled → ran
        assert scheduler.stats.batches == 1
        assert scheduler.stats.batched_chunks == 2

    def test_deadline_forces_partial_batch(self, rng):
        _, scheduler = self.make(max_batch_size=8, max_wait_frames=10)
        a, b = scheduler.open(), scheduler.open()
        scheduler.feed(a, rng.standard_normal((5, 8)))
        assert scheduler.pending() == 1
        scheduler.feed(b, rng.standard_normal((4, 8)))  # unequal length:
        assert scheduler.pending() == 2  # cannot share a's batch
        scheduler.feed(b, rng.standard_normal((7, 8)))  # a waited 11 > 10
        assert scheduler.stats.batches == 1  # a's group ran, forced solo
        assert scheduler.stats.batched_chunks == 1
        assert scheduler.pending() == 2  # b's two chunks still queued
        scheduler.flush()
        assert scheduler.pending() == 0

    def test_unequal_chunk_lengths_never_share_a_batch(self, rng):
        _, scheduler = self.make(max_batch_size=4, max_wait_frames=0)
        a, b = scheduler.open(), scheduler.open()
        scheduler.feed(a, rng.standard_normal((3, 8)))
        scheduler.feed(b, rng.standard_normal((4, 8)))
        assert scheduler.stats.batches == 2
        assert scheduler.stats.mean_batch_size == 1.0

    def test_sessions_chunks_run_in_order(self, rng):
        # A session's second chunk must never run before (or batch with)
        # its first: only head chunks are eligible.
        plan, scheduler = self.make(max_batch_size=4, max_wait_frames=10_000)
        sid = scheduler.open()
        utterance = rng.standard_normal((20, 8))
        scheduler.feed(sid, utterance[:10])
        scheduler.feed(sid, utterance[10:])
        assert scheduler.pending() == 2  # same session: no self-batching
        phones = scheduler.finish(sid)
        offline = decode_utterance(plan.forward_utterance(utterance), min_duration=2)
        assert phones == offline

    def test_unknown_session_raises(self):
        _, scheduler = self.make()
        with pytest.raises(StreamError):
            scheduler.feed(99, np.zeros((3, 8)))
        sid = scheduler.open()
        scheduler.finish(sid)
        with pytest.raises(StreamError):
            scheduler.poll(sid)

    def test_unknown_sid_message_names_the_sid(self):
        # Typed error, never a KeyError — and the message must carry the
        # offending sid so fleet logs are actionable.
        _, scheduler = self.make()
        for op in (
            lambda: scheduler.feed(42, np.zeros((3, 8))),
            lambda: scheduler.poll(42),
            lambda: scheduler.finish(42),
        ):
            with pytest.raises(StreamError, match="unknown session id 42"):
                op()

    def test_finished_sid_distinguished_from_unknown(self):
        _, scheduler = self.make()
        sid = scheduler.open()
        scheduler.finish(sid)
        for op in (
            lambda: scheduler.feed(sid, np.zeros((3, 8))),
            lambda: scheduler.poll(sid),
            lambda: scheduler.finish(sid),
        ):
            with pytest.raises(
                StreamError, match=f"session {sid} already finished"
            ):
                op()

    def test_feed_shape_validation_is_typed(self):
        from repro.errors import ShapeError as SE

        _, scheduler = self.make()
        sid = scheduler.open()
        with pytest.raises(SE):
            scheduler.feed(sid, np.zeros((3, 5)))  # wrong feature dim
        with pytest.raises(SE):
            scheduler.feed(sid, np.zeros(3))  # wrong rank

    def test_journal_hook_records_replayable_stream(self, rng):
        from repro.engine.fabric import SessionJournal

        plan = engine.compile_model(tiny_model())
        journal = SessionJournal()
        scheduler = engine.StreamScheduler(
            plan, engine.StreamConfig(min_duration=2), journal=journal
        )
        utterance = rng.standard_normal((30, 8))
        sid = scheduler.open()
        for start in range(0, 30, 7):
            scheduler.feed(sid, utterance[start : start + 7])
        scheduler.feed(sid, np.zeros((0, 8)))  # rejected chunks never journal
        phones = scheduler.finish(sid)
        assert journal.finished(sid)
        assert journal.frames(sid) == 30

        # Replaying the journal into a *fresh* scheduler reproduces the
        # stream byte-identically (this is what fabric re-homing does).
        replayed = engine.StreamScheduler(plan, engine.StreamConfig(min_duration=2))
        rid = replayed.open()
        for chunk in journal.chunks(sid):
            replayed.feed(rid, chunk)
        assert replayed.finish(rid) == phones

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            engine.StreamConfig(max_batch_size=0)
        with pytest.raises(ConfigError):
            engine.StreamConfig(max_wait_frames=-1)
        with pytest.raises(ConfigError):
            engine.StreamConfig(min_duration=0)

    def test_stream_bench_harness_runs_and_matches_offline(self):
        from repro.eval.stream_bench import (
            StreamBenchConfig,
            render_stream_bench,
            run_stream_bench,
        )

        result = run_stream_bench(
            StreamBenchConfig(num_sessions=4, hidden_size=16, repeats=1)
        )
        assert len(result.rows) == 2
        offline, streamed = result.rows
        assert offline.decode_match == 1.0
        assert streamed.decode_match == 1.0  # the chunk-exactness guarantee
        assert streamed.p50_latency_ms is not None
        assert streamed.p50_latency_ms <= streamed.p95_latency_ms
        rendered = render_stream_bench(result)
        assert "offline batched" in rendered and "streaming chunk=" in rendered
        assert len(result.to_rows()) == 2

    def test_int8_scheduler_bitwise_matches_solo_session(self, rng_factory):
        # Batched scheduling must not perturb a session's hypothesis:
        # with int8 plans the logits are bitwise identical, so this holds
        # by construction — assert it end to end.
        plan, scheduler = self.make(scheme="int8", max_batch_size=3)
        rng = rng_factory(7)
        utterances = [rng.standard_normal((30, 8)) for _ in range(3)]
        solo = []
        for utterance in utterances:
            session = engine.StreamingSession(plan, min_duration=2)
            phones = []
            for start in range(0, 30, 6):
                phones += session.feed(utterance[start : start + 6])
            solo.append(phones + session.finish())
        sids = [scheduler.open() for _ in utterances]
        for start in range(0, 30, 6):
            for sid, utterance in zip(sids, utterances):
                scheduler.feed(sid, utterance[start : start + 6])
        got = [scheduler.finish(sid) for sid in sids]
        assert got == solo


# ---------------------------------------------------------------------------
# Hot-swap: carrying live session state across a plan swap
# ---------------------------------------------------------------------------
class TestHotSwap:
    """`StreamScheduler.swap_plan` contract: a same-architecture swap
    carries every live session's recurrent state across the new plan and
    — when the candidate has identical weights — decodes byte-identical
    to never having swapped, for every scheme and cell type.  A
    mismatched architecture raises a typed
    :class:`~repro.errors.SwapError` *before* any session is touched."""

    def compile_pair(self, scheme, cell_type, seed=0):
        """Two independently compiled plans of the same weights."""
        return (
            engine.compile_model(tiny_model(cell_type, seed=seed), scheme=scheme),
            engine.compile_model(tiny_model(cell_type, seed=seed), scheme=scheme),
        )

    def run_split(self, incumbent, candidate, utterances, swap_at):
        """Feed ``swap_at`` frames on ``incumbent``, swap to
        ``candidate`` mid-utterance, feed the rest; return hypotheses."""
        scheduler = engine.StreamScheduler(
            incumbent,
            engine.StreamConfig(max_batch_size=4, max_wait_frames=0, min_duration=2),
        )
        sids = [scheduler.open() for _ in utterances]
        for sid, utterance in zip(sids, utterances):
            scheduler.feed(sid, utterance[:swap_at])
        old = scheduler.swap_plan(candidate)
        assert old is incumbent
        assert scheduler.plan is candidate
        for sid, utterance in zip(sids, utterances):
            scheduler.feed(sid, utterance[swap_at:])
        return [scheduler.finish(sid) for sid in sids], scheduler

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("cell_type", ["gru", "lstm"])
    def test_mid_utterance_swap_decodes_identically(
        self, scheme, cell_type, rng_factory
    ):
        incumbent, candidate = self.compile_pair(scheme, cell_type)
        rng = rng_factory(99)
        utterances = [rng.standard_normal((44, 8)) for _ in range(3)]
        uninterrupted = [
            decode_utterance(incumbent.forward_utterance(u), min_duration=2)
            for u in utterances
        ]
        swapped, scheduler = self.run_split(
            incumbent, candidate, utterances, swap_at=20
        )
        assert swapped == uninterrupted, (scheme, cell_type)
        assert scheduler.stats.plan_swaps == 1

    def test_architecture_mismatch_raises_and_preserves_sessions(
        self, rng_factory
    ):
        from repro.errors import SwapError

        incumbent = engine.compile_model(tiny_model())
        wrong = engine.compile_model(tiny_model(hidden=24))
        rng = rng_factory(5)
        utterance = rng.standard_normal((40, 8))
        scheduler = engine.StreamScheduler(
            incumbent,
            engine.StreamConfig(max_batch_size=2, max_wait_frames=0, min_duration=2),
        )
        sid = scheduler.open()
        scheduler.feed(sid, utterance[:20])
        with pytest.raises(SwapError, match="architecture mismatch"):
            scheduler.swap_plan(wrong)
        # The rejected swap touched nothing: the session continues on the
        # incumbent and still decodes exactly.
        assert scheduler.plan is incumbent
        assert scheduler.stats.plan_swaps == 0
        scheduler.feed(sid, utterance[20:])
        offline = decode_utterance(
            incumbent.forward_utterance(utterance), min_duration=2
        )
        assert scheduler.finish(sid) == offline

    @pytest.mark.parametrize(
        "incumbent_scheme,candidate_scheme",
        [("fp16", None), (None, "int8"), ("mixed", None), ("int8", "mixed")],
    )
    def test_swap_across_schemes_rejected(
        self, incumbent_scheme, candidate_scheme, rng_factory
    ):
        # Per-slot (scheme, format) is part of the signature: a candidate
        # on a different quantization grid must NOT inherit live state —
        # the carried trajectory was produced by different numerics, so
        # the swap raises a typed SwapError and touches nothing.
        from repro.errors import SwapError

        incumbent = engine.compile_model(tiny_model(), scheme=incumbent_scheme)
        candidate = engine.compile_model(tiny_model(), scheme=candidate_scheme)
        assert incumbent.signature() != candidate.signature()
        rng = rng_factory(11)
        utterance = rng.standard_normal((40, 8))
        scheduler = engine.StreamScheduler(
            incumbent,
            engine.StreamConfig(max_batch_size=2, max_wait_frames=0, min_duration=2),
        )
        sid = scheduler.open()
        scheduler.feed(sid, utterance[:20])
        with pytest.raises(SwapError, match="architecture mismatch"):
            scheduler.swap_plan(candidate)
        # The rejected swap left the session on the incumbent, still exact.
        assert scheduler.plan is incumbent
        assert scheduler.stats.plan_swaps == 0
        scheduler.feed(sid, utterance[20:])
        offline = decode_utterance(
            incumbent.forward_utterance(utterance), min_duration=2
        )
        assert scheduler.finish(sid) == offline

    def test_swap_across_formats_rejected(self, rng_factory):
        # Same weights, same scheme, different sparse packing: formats
        # are part of the lowered contract too.
        from repro.errors import SwapError

        incumbent = engine.compile_model(tiny_model(), scheme=None)
        candidate = engine.compile_model(
            tiny_model(),
            scheme=None,
            config=engine.EngineConfig(sparse_format="bspc"),
        )
        assert incumbent.signature() != candidate.signature()
        scheduler = engine.StreamScheduler(
            incumbent,
            engine.StreamConfig(max_batch_size=2, max_wait_frames=0, min_duration=2),
        )
        with pytest.raises(SwapError, match="architecture mismatch"):
            scheduler.swap_plan(candidate)

    def test_identity_swap_counts_but_changes_nothing(self, rng_factory):
        plan = engine.compile_model(tiny_model())
        rng = rng_factory(3)
        utterance = rng.standard_normal((30, 8))
        scheduler = engine.StreamScheduler(
            plan,
            engine.StreamConfig(max_batch_size=2, max_wait_frames=0, min_duration=2),
        )
        sid = scheduler.open()
        scheduler.feed(sid, utterance[:15])
        scheduler.swap_plan(plan)  # no-op swap is legal
        scheduler.feed(sid, utterance[15:])
        offline = decode_utterance(
            plan.forward_utterance(utterance), min_duration=2
        )
        assert scheduler.finish(sid) == offline
        assert scheduler.stats.plan_swaps == 1

    def test_adopt_installs_replayed_session(self, rng_factory):
        # The fabric's re-home path: reconstruct a session externally
        # (bare run_chunk + IncrementalDecoder), adopt it mid-stream,
        # and the continuation must decode exactly.
        plan = engine.compile_model(tiny_model(), scheme="int8")
        rng = rng_factory(21)
        utterance = rng.standard_normal((40, 8))
        state, decoder = None, IncrementalDecoder(min_duration=2)
        committed = []
        for start in range(0, 20, 10):
            logits, state = plan.run_chunk(
                utterance[start : start + 10][:, None, :], state
            )
            committed += decoder.push(logits[:, 0, :].argmax(axis=1))
        scheduler = engine.StreamScheduler(
            plan,
            engine.StreamConfig(max_batch_size=2, max_wait_frames=0, min_duration=2),
        )
        # committed=None: the already-delivered prefix is tracked by the
        # caller (the fabric), not re-queued for delivery.
        sid = scheduler.adopt(state, decoder, committed=None, frames=20)
        scheduler.feed(sid, utterance[20:])
        phones = committed + scheduler.poll(sid) + scheduler.finish(sid)
        offline = decode_utterance(
            plan.forward_utterance(utterance), min_duration=2
        )
        assert phones == offline

    def test_plan_signature_and_adapt_state(self):
        from repro.errors import ShapeError

        gru = engine.compile_model(tiny_model("gru"))
        lstm = engine.compile_model(tiny_model("lstm"))
        assert gru.signature() != lstm.signature()
        assert gru.signature() == engine.compile_model(tiny_model("gru")).signature()
        state = gru.init_state(2)
        with pytest.raises(ShapeError):
            lstm.adapt_state(state)  # GRU state lacks the cell component
        adapted = gru.adapt_state(state)
        assert len(adapted.layer_states) == len(state.layer_states)
