"""Tests for checkpointing (repro.nn.serialization)."""

import numpy as np
import pytest

from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.speech.model import AcousticModelConfig, GRUAcousticModel


@pytest.fixture
def model():
    return GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)


class TestRoundTrip:
    def test_parameters_survive(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        other = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=99)
        load_checkpoint(path, other)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_masks_survive_and_reapply(self, model, tmp_path):
        masks = bsp_project_masks(
            model.prunable_weights(),
            BSPConfig(col_rate=4, row_rate=1, num_row_strips=2, num_col_blocks=2),
        )
        masks.apply_to_params(model.prunable_parameters())
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model, masks=masks)
        other = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=99)
        _, loaded_masks, _ = load_checkpoint(path, other)
        assert len(loaded_masks) == len(masks)
        for name, mask in masks:
            np.testing.assert_array_equal(loaded_masks[name].keep, mask.keep)
            param = dict(other.named_parameters())[name]
            assert np.all(param.data[~mask.keep] == 0.0)

    def test_metadata_round_trip(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        meta = {"seed": 0, "per": 5.31, "note": "dense baseline"}
        save_checkpoint(path, model, metadata=meta)
        _, _, loaded = load_checkpoint(path)
        assert loaded == meta

    def test_state_without_model(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        state, masks, metadata = load_checkpoint(path)
        assert set(state) == set(model.state_dict())
        assert len(masks) == 0
        assert metadata == {}

    def test_empty_metadata_default(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        _, _, metadata = load_checkpoint(path)
        assert metadata == {}

    def test_shape_mismatch_on_load_rejected(self, model, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, model)
        wrong = GRUAcousticModel(AcousticModelConfig(hidden_size=24), rng=0)
        with pytest.raises(ValueError):
            load_checkpoint(path, wrong)
