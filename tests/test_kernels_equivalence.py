"""Backend equivalence suite for the kernel registry (repro.kernels).

The ``reference`` backend (the seed's straight-line loops) is ground
truth; every other backend must agree with it to ``np.allclose`` across
matrix shapes, sparsity patterns (including empty strips/rows and fully
pruned matrices), batch sizes, and non-contiguous inputs.
"""

import numpy as np
import pytest

from repro import kernels
from repro.errors import KernelError
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.sparse.blocks import BlockGrid, grid_for
from repro.sparse.bspc import BSPCMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.rng import new_rng

# Everything registered beyond the ground-truth loops: "numpy" always,
# "compiled" only on hosts where the C toolchain built and probed clean —
# the whole matrix below widens automatically when it is present.
FAST_BACKENDS = [b for b in kernels.registry.backends() if b != "reference"]


def test_compiled_backend_present_or_skipped():
    """Surface (as a skip, not silence) hosts where the compiled backend
    did not build; everywhere else it must be in the tested matrix."""
    from repro.kernels import compiled

    if not compiled.available():
        pytest.skip(f"compiled backend unavailable: {compiled.load_error()}")
    assert "compiled" in FAST_BACKENDS


def random_sparse(rng, shape, density):
    w = rng.standard_normal(shape)
    w[rng.random(shape) > density] = 0.0
    return w


def bsp_pruned(rng, shape=(32, 48), strips=4, blocks=3):
    w = rng.standard_normal(shape)
    masks = bsp_project_masks(
        {"w": w},
        BSPConfig(col_rate=4, row_rate=2, num_row_strips=strips, num_col_blocks=blocks),
    )
    return masks["w"].apply_to_array(w), grid_for(w, strips, blocks)


def sparse_cases(rng):
    """(name, dense, grid) triples spanning the tricky structures."""
    cases = []
    pruned, grid = bsp_pruned(rng)
    cases.append(("bsp_pruned", pruned, grid))
    w = random_sparse(rng, (17, 23), 0.3)  # uneven strip/block extents
    cases.append(("irregular_uneven", w, grid_for(w, 3, 4)))
    w = random_sparse(rng, (12, 12), 0.5)
    w[0:4, :] = 0.0  # strip 0 fully pruned; rows 0-3 empty
    cases.append(("empty_strip", w, grid_for(w, 3, 2)))
    w = rng.standard_normal((8, 10))
    w[:, 5:] = 0.0  # right-hand blocks empty
    cases.append(("empty_blocks", w, grid_for(w, 2, 2)))
    cases.append(("fully_pruned", np.zeros((9, 7)), BlockGrid(9, 7, 3, 2)))
    cases.append(("dense", rng.standard_normal((6, 5)), grid_for(np.zeros((6, 5)), 2, 2)))
    w = np.zeros((10, 8))
    w[3, 2] = 1.5  # single nonzero
    cases.append(("single_nnz", w, grid_for(w, 2, 2)))
    return cases


@pytest.fixture(scope="module")
def cases():
    return sparse_cases(new_rng(7))


@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestSparseEquivalence:
    def test_csr_spmv(self, cases, backend):
        rng = new_rng(1)
        for name, w, _ in cases:
            csr = CSRMatrix.from_dense(w)
            x = rng.standard_normal(w.shape[1])
            expected = csr.spmv(x, backend="reference")
            np.testing.assert_allclose(
                csr.spmv(x, backend=backend), expected, atol=1e-12, err_msg=name
            )

    def test_csr_spmm(self, cases, backend):
        rng = new_rng(2)
        for name, w, _ in cases:
            csr = CSRMatrix.from_dense(w)
            for batch in (1, 4):
                x = rng.standard_normal((w.shape[1], batch))
                expected = csr.spmm(x, backend="reference")
                np.testing.assert_allclose(
                    csr.spmm(x, backend=backend), expected, atol=1e-12, err_msg=name
                )

    def test_bspc_spmv(self, cases, backend):
        rng = new_rng(3)
        for name, w, grid in cases:
            bspc = BSPCMatrix.from_dense(w, grid)
            x = rng.standard_normal(w.shape[1])
            expected = bspc.spmv(x, backend="reference")
            np.testing.assert_allclose(expected, w @ x, atol=1e-12, err_msg=name)
            np.testing.assert_allclose(
                bspc.spmv(x, backend=backend), expected, atol=1e-12, err_msg=name
            )

    def test_bspc_spmm(self, cases, backend):
        rng = new_rng(4)
        for name, w, grid in cases:
            bspc = BSPCMatrix.from_dense(w, grid)
            for batch in (1, 3, 8):
                x = rng.standard_normal((w.shape[1], batch))
                expected = bspc.spmm(x, backend="reference")
                np.testing.assert_allclose(expected, w @ x, atol=1e-12, err_msg=name)
                np.testing.assert_allclose(
                    bspc.spmm(x, backend=backend), expected, atol=1e-12, err_msg=name
                )

    def test_non_finite_x0_does_not_poison_padding(self, cases, backend):
        # BSPC plans pad short strips with gather index 0; a non-finite
        # x[0] must only affect rows that genuinely read column 0.
        rng = new_rng(9)
        with np.errstate(invalid="ignore"):  # 0*inf where a row reads col 0
            for name, w, grid in cases:
                bspc = BSPCMatrix.from_dense(w, grid)
                x = rng.standard_normal(w.shape[1])
                x[0] = np.inf
                expected = bspc.spmv(x, backend="reference")
                np.testing.assert_allclose(
                    bspc.spmv(x, backend=backend), expected, atol=1e-12, err_msg=name
                )
                batch = rng.standard_normal((w.shape[1], 3))
                batch[0, :] = np.nan
                expected_mm = bspc.spmm(batch, backend="reference")
                np.testing.assert_allclose(
                    bspc.spmm(batch, backend=backend), expected_mm, atol=1e-12,
                    err_msg=name,
                )

    def test_non_contiguous_inputs(self, cases, backend):
        rng = new_rng(5)
        for name, w, grid in cases:
            bspc = BSPCMatrix.from_dense(w, grid)
            csr = CSRMatrix.from_dense(w)
            x = rng.standard_normal(2 * w.shape[1])[::2]  # strided view
            assert not x.flags["C_CONTIGUOUS"]
            np.testing.assert_allclose(
                bspc.spmv(x, backend=backend),
                bspc.spmv(np.ascontiguousarray(x), backend="reference"),
                atol=1e-12,
                err_msg=name,
            )
            big = rng.standard_normal((w.shape[1], 6))
            xt = big.T[:3].T  # non-contiguous 2-D view
            np.testing.assert_allclose(
                csr.spmm(xt, backend=backend),
                csr.spmm(np.ascontiguousarray(xt), backend="reference"),
                atol=1e-12,
                err_msg=name,
            )


@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestRecurrentEquivalence:
    SHAPES = [
        (1, 1, 3, 4),  # single step, single batch
        (7, 3, 5, 8),
        (12, 2, 8, 8),  # D == H
    ]

    def _weights(self, rng, gates, d, h):
        w_ih = rng.standard_normal((gates * h, d))
        w_hh = rng.standard_normal((gates * h, h)) * 0.3
        return w_ih, w_hh

    def test_gru_sequence(self, backend):
        rng = new_rng(11)
        for t, b, d, h in self.SHAPES:
            x = rng.standard_normal((t, b, d))
            w_ih, w_hh = self._weights(rng, 3, d, h)
            b_ih, b_hh = rng.standard_normal(3 * h), rng.standard_normal(3 * h)
            h0 = rng.standard_normal((b, h))
            ref_out, ref_h = kernels.gru_sequence(
                x, w_ih, w_hh, b_ih, b_hh, h0, backend="reference"
            )
            out, h_final = kernels.gru_sequence(
                x, w_ih, w_hh, b_ih, b_hh, h0, backend=backend
            )
            np.testing.assert_allclose(out, ref_out, atol=1e-10)
            np.testing.assert_allclose(h_final, ref_h, atol=1e-10)

    def test_lstm_sequence(self, backend):
        rng = new_rng(12)
        for t, b, d, h in self.SHAPES:
            x = rng.standard_normal((t, b, d))
            w_ih, w_hh = self._weights(rng, 4, d, h)
            bias = rng.standard_normal(4 * h)
            h0, c0 = np.zeros((b, h)), np.zeros((b, h))
            ref_out, ref_h, ref_c = kernels.lstm_sequence(
                x, w_ih, w_hh, bias, h0, c0, backend="reference"
            )
            out, h_final, c_final = kernels.lstm_sequence(
                x, w_ih, w_hh, bias, h0, c0, backend=backend
            )
            np.testing.assert_allclose(out, ref_out, atol=1e-10)
            np.testing.assert_allclose(h_final, ref_h, atol=1e-10)
            np.testing.assert_allclose(c_final, ref_c, atol=1e-10)

    def test_non_contiguous_sequence(self, backend):
        rng = new_rng(13)
        t, b, d, h = 6, 2, 4, 5
        x = rng.standard_normal((2 * t, b, d))[::2]  # strided time axis
        assert not x.flags["C_CONTIGUOUS"]
        w_ih, w_hh = self._weights(rng, 3, d, h)
        b_ih, b_hh = rng.standard_normal(3 * h), rng.standard_normal(3 * h)
        h0 = np.zeros((b, h))
        ref_out, _ = kernels.gru_sequence(
            np.ascontiguousarray(x), w_ih, w_hh, b_ih, b_hh, h0, backend="reference"
        )
        out, _ = kernels.gru_sequence(x, w_ih, w_hh, b_ih, b_hh, h0, backend=backend)
        np.testing.assert_allclose(out, ref_out, atol=1e-10)


class TestModuleFastPath:
    """GRU/LSTM modules must produce tape-path results in eval mode."""

    def test_gru_eval_matches_train(self, rng):
        from repro.nn.rnn import GRU
        from repro.nn.tensor import Tensor

        gru = GRU(6, 9, num_layers=2, rng=0)
        x = Tensor(rng.standard_normal((8, 3, 6)))
        out_train, finals_train = gru(x)
        out_eval, finals_eval = gru.eval()(x)
        assert not out_eval.requires_grad
        np.testing.assert_allclose(out_eval.data, out_train.data, atol=1e-10)
        for a, b in zip(finals_train, finals_eval):
            np.testing.assert_allclose(b.data, a.data, atol=1e-10)

    def test_lstm_eval_matches_train(self, rng):
        from repro.nn.rnn import LSTM
        from repro.nn.tensor import Tensor

        lstm = LSTM(6, 9, num_layers=2, rng=0)
        x = Tensor(rng.standard_normal((8, 3, 6)))
        out_train = lstm(x)
        out_eval = lstm.eval()(x)
        np.testing.assert_allclose(out_eval.data, out_train.data, atol=1e-10)

    def test_grad_requiring_input_uses_tape_in_eval(self, rng):
        from repro.nn.rnn import GRU
        from repro.nn.tensor import Tensor

        gru = GRU(4, 5, rng=0).eval()
        x = Tensor(rng.standard_normal((3, 2, 4)), requires_grad=True)
        out, _ = gru(x)
        out.sum().backward()
        assert x.grad is not None  # fell back to the differentiable path


@pytest.mark.parametrize("backend", FAST_BACKENDS)
class TestInt8Kernels:
    """The int8 numpy and compiled-C kernels must agree *exactly* with
    the int64-accumulating reference implementations (same codes, same
    integer sums, same dequant multiply order), and closely with the
    float result."""

    def test_csr_spmv_int8_exact_vs_reference(self, cases, backend):
        rng = new_rng(21)
        for name, w, _ in cases:
            csr = CSRMatrix.from_dense(w)
            x = rng.standard_normal(w.shape[1])
            expected = kernels.spmv_int8(csr, x, backend="reference")
            np.testing.assert_array_equal(
                kernels.spmv_int8(csr, x, backend=backend), expected, err_msg=name
            )

    def test_csr_spmm_int8_exact_vs_reference(self, cases, backend):
        rng = new_rng(22)
        for name, w, _ in cases:
            csr = CSRMatrix.from_dense(w)
            for batch in (1, 4):
                x = rng.standard_normal((w.shape[1], batch))
                expected = kernels.spmm_int8(csr, x, backend="reference")
                np.testing.assert_array_equal(
                    kernels.spmm_int8(csr, x, backend=backend), expected,
                    err_msg=name,
                )

    def test_bspc_spmv_int8_exact_vs_reference(self, cases, backend):
        rng = new_rng(23)
        for name, w, grid in cases:
            bspc = BSPCMatrix.from_dense(w, grid)
            x = rng.standard_normal(w.shape[1])
            expected = kernels.spmv_int8(bspc, x, backend="reference")
            np.testing.assert_array_equal(
                kernels.spmv_int8(bspc, x, backend=backend), expected, err_msg=name
            )

    def test_bspc_spmm_int8_exact_vs_reference(self, cases, backend):
        rng = new_rng(24)
        for name, w, grid in cases:
            bspc = BSPCMatrix.from_dense(w, grid)
            for batch in (1, 3, 16, 21):  # spans partial / full / multi tile
                x = rng.standard_normal((w.shape[1], batch))
                expected = kernels.spmm_int8(bspc, x, backend="reference")
                np.testing.assert_array_equal(
                    kernels.spmm_int8(bspc, x, backend=backend), expected,
                    err_msg=name,
                )

    def test_linear_int8_exact_vs_reference(self, rng, backend):
        for m, k in [(5, 7), (3, 1), (8, 3000)]:  # 3000 forces chunking
            codes, scale = kernels.int8_codes(rng.standard_normal((m, k)) * 2)
            x = rng.standard_normal((4, k))
            expected = kernels.linear_int8(codes, scale, x, backend="reference")
            np.testing.assert_array_equal(
                kernels.linear_int8(codes, scale, x, backend=backend), expected
            )
            # pre-cast float32 codes (what compiled plans pass) agree too
            np.testing.assert_array_equal(
                kernels.linear_int8(codes.astype(np.float32), scale, x, backend=backend),
                expected,
            )


class TestInt8Helpers:
    def test_int8_close_to_float(self, cases):
        # The whole point: quantized results track the float ones.
        rng = new_rng(25)
        for name, w, _ in cases:
            csr = CSRMatrix.from_dense(w)
            x = rng.standard_normal(w.shape[1])
            expected = w @ x
            got = kernels.spmv_int8(csr, x)
            scale = np.abs(expected).max() or 1.0
            assert np.abs(got - expected).max() <= 0.05 * scale + 1e-12, name

    def test_int8_codes_round_trip(self, rng):
        w = rng.standard_normal((6, 5))
        codes, scale = kernels.int8_codes(w)
        assert codes.dtype == np.int8
        assert np.abs(codes).max() <= 127
        np.testing.assert_allclose(codes * scale, w, atol=scale / 2 + 1e-12)

    def test_int8_codes_zero_matrix(self):
        codes, scale = kernels.int8_codes(np.zeros((3, 3)))
        assert scale == 1.0 and not codes.any()

    def test_int8_plan_cached_and_invalidated(self, rng):
        # Exercises the numpy plan cache specifically (the reference
        # kernels are plan-free), so the backend is pinned per call.
        w, _ = bsp_pruned(rng)
        csr = CSRMatrix.from_dense(w)
        x = rng.standard_normal(w.shape[1])
        kernels.spmv_int8(csr, x, backend="numpy")
        plan = csr._int8_kernel_plan
        kernels.spmv_int8(csr, x, backend="numpy")
        assert csr._int8_kernel_plan is plan
        csr.values = csr.values * 2.0  # structural reassignment drops both
        assert not hasattr(csr, "_int8_kernel_plan")
        assert not hasattr(csr, "_kernel_plan")
        csr.invalidate_plan()  # idempotent, also clears after in-place edits
        np.testing.assert_array_equal(
            kernels.spmv_int8(csr, x, backend="numpy"),
            kernels.spmv_int8(csr, x, backend="reference"),
        )


class TestPlanCaching:
    # Plan caching belongs to the numpy backend (reference kernels never
    # build plans), so these pin backend="numpy" on plan-building calls.
    def test_plan_cached_and_reused(self, rng):
        w, grid = bsp_pruned(rng)
        bspc = BSPCMatrix.from_dense(w, grid)
        bspc.spmv(rng.standard_normal(w.shape[1]), backend="numpy")
        plan = bspc._kernel_plan
        bspc.spmv(rng.standard_normal(w.shape[1]), backend="numpy")
        assert bspc._kernel_plan is plan

    def test_field_reassignment_invalidates(self, rng):
        w, grid = bsp_pruned(rng)
        bspc = BSPCMatrix.from_dense(w, grid)
        bspc.spmv(rng.standard_normal(w.shape[1]), backend="numpy")
        bspc.strips = bspc.strips
        assert not hasattr(bspc, "_kernel_plan")
        csr = CSRMatrix.from_dense(w)
        csr.spmv(rng.standard_normal(w.shape[1]), backend="numpy")
        csr.values = csr.values * 2.0
        assert not hasattr(csr, "_kernel_plan")
        np.testing.assert_allclose(
            csr.spmv(np.ones(w.shape[1])), 2.0 * w @ np.ones(w.shape[1]), atol=1e-12
        )

    def test_invalidate_plan_after_inplace_mutation(self, rng):
        w, grid = bsp_pruned(rng)
        csr = CSRMatrix.from_dense(w)
        x = rng.standard_normal(w.shape[1])
        csr.spmv(x)
        csr.values[...] = 0.0
        csr.invalidate_plan()
        np.testing.assert_allclose(csr.spmv(x), np.zeros(w.shape[0]), atol=1e-12)


class TestRegistry:
    def test_unknown_op_rejected(self):
        with pytest.raises(KernelError):
            kernels.registry.get("nope")

    def test_unknown_backend_rejected(self):
        with pytest.raises(KernelError):
            kernels.registry.get("csr_spmv", backend="cuda")
        with pytest.raises(KernelError):
            kernels.set_default_backend("cuda")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KernelError):
            kernels.registry.register("csr_spmv", "numpy", lambda m, x: x)

    def test_use_backend_restores_default(self, rng):
        before = kernels.get_default_backend()
        with kernels.use_backend("reference"):
            assert kernels.get_default_backend() == "reference"
        assert kernels.get_default_backend() == before

    def test_use_backend_restores_on_error(self):
        before = kernels.get_default_backend()
        with pytest.raises(RuntimeError):
            with kernels.use_backend("reference"):
                raise RuntimeError("boom")
        assert kernels.get_default_backend() == before


class TestNumericExecutor:
    def test_matches_dense_compute(self, rng):
        from repro.hw import NumericExecutor

        w, _ = bsp_pruned(rng)
        for fmt in ("bspc", "csr", "dense"):
            ex = NumericExecutor(
                {"w": w}, format_name=fmt, num_row_strips=4, num_col_blocks=3
            )
            x = rng.standard_normal(w.shape[1])
            np.testing.assert_allclose(ex.matvec("w", x), w @ x, atol=1e-12)
            batch = rng.standard_normal((w.shape[1], 4))
            np.testing.assert_allclose(ex.matmat("w", batch), w @ batch, atol=1e-12)

    def test_unknown_layer_rejected(self, rng):
        from repro.errors import SimulationError
        from repro.hw import NumericExecutor

        ex = NumericExecutor({})
        with pytest.raises(SimulationError):
            ex.matvec("missing", np.zeros(3))
