"""Tests for CSR/CSC storage (repro.sparse.csr / csc)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import SparsityError
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


def sparse_matrix(rng, shape=(6, 8), density=0.3):
    dense = rng.standard_normal(shape)
    dense[rng.random(shape) > density] = 0.0
    return dense


class TestCSR:
    def test_round_trip(self, rng):
        dense = sparse_matrix(rng)
        np.testing.assert_array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)

    def test_nnz(self, rng):
        dense = sparse_matrix(rng)
        assert CSRMatrix.from_dense(dense).nnz == np.count_nonzero(dense)

    def test_row_nnz(self, rng):
        dense = sparse_matrix(rng)
        np.testing.assert_array_equal(
            CSRMatrix.from_dense(dense).row_nnz(), (dense != 0).sum(axis=1)
        )

    def test_density(self):
        dense = np.zeros((4, 5))
        dense[0, 0] = 1.0
        assert CSRMatrix.from_dense(dense).density() == 1 / 20

    def test_spmv_matches_dense(self, rng):
        dense = sparse_matrix(rng)
        x = rng.standard_normal(8)
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).spmv(x), dense @ x)

    def test_spmm_matches_dense(self, rng):
        dense = sparse_matrix(rng)
        x = rng.standard_normal((8, 3))
        np.testing.assert_allclose(CSRMatrix.from_dense(dense).spmm(x), dense @ x)

    def test_spmv_rejects_wrong_length(self, rng):
        csr = CSRMatrix.from_dense(sparse_matrix(rng))
        with pytest.raises(SparsityError):
            csr.spmv(np.zeros(7))

    def test_spmm_rejects_wrong_inner(self, rng):
        csr = CSRMatrix.from_dense(sparse_matrix(rng))
        with pytest.raises(SparsityError):
            csr.spmm(np.zeros((7, 2)))

    def test_empty_matrix(self):
        csr = CSRMatrix.from_dense(np.zeros((3, 4)))
        assert csr.nnz == 0
        np.testing.assert_array_equal(csr.to_dense(), np.zeros((3, 4)))
        np.testing.assert_array_equal(csr.spmv(np.ones(4)), np.zeros(3))

    def test_nbytes_scales_with_nnz(self, rng):
        dense = sparse_matrix(rng, density=0.5)
        sparser = sparse_matrix(rng, density=0.1)
        assert CSRMatrix.from_dense(dense).nbytes() > CSRMatrix.from_dense(
            sparser
        ).nbytes()

    def test_nbytes_counts_per_nonzero_index(self):
        dense = np.eye(4)
        csr = CSRMatrix.from_dense(dense)
        # 4 values * 2B + 4 indices * 2B + 5 row ptrs * 4B
        assert csr.nbytes(value_bytes=2, index_bytes=2) == 8 + 8 + 20

    def test_validation_bad_row_ptr(self):
        with pytest.raises(SparsityError):
            CSRMatrix(
                shape=(2, 2),
                values=np.ones(1),
                col_indices=np.zeros(1, dtype=int),
                row_ptr=np.array([0, 1]),  # wrong length
            )

    def test_validation_decreasing_row_ptr(self):
        with pytest.raises(SparsityError):
            CSRMatrix(
                shape=(2, 2),
                values=np.ones(2),
                col_indices=np.zeros(2, dtype=int),
                row_ptr=np.array([0, 2, 2 - 1]),
            )

    def test_validation_col_index_range(self):
        with pytest.raises(SparsityError):
            CSRMatrix(
                shape=(2, 2),
                values=np.ones(1),
                col_indices=np.array([5]),
                row_ptr=np.array([0, 1, 1]),
            )


class TestCSC:
    def test_round_trip(self, rng):
        dense = sparse_matrix(rng)
        np.testing.assert_array_equal(CSCMatrix.from_dense(dense).to_dense(), dense)

    def test_spmv_matches_dense(self, rng):
        dense = sparse_matrix(rng)
        x = rng.standard_normal(8)
        np.testing.assert_allclose(CSCMatrix.from_dense(dense).spmv(x), dense @ x)

    def test_nnz(self, rng):
        dense = sparse_matrix(rng)
        assert CSCMatrix.from_dense(dense).nnz == np.count_nonzero(dense)

    def test_spmv_rejects_wrong_length(self, rng):
        csc = CSCMatrix.from_dense(sparse_matrix(rng))
        with pytest.raises(SparsityError):
            csc.spmv(np.zeros(9))

    def test_empty(self):
        csc = CSCMatrix.from_dense(np.zeros((3, 4)))
        assert csc.nnz == 0

    def test_validation_bad_col_ptr(self):
        with pytest.raises(SparsityError):
            CSCMatrix(
                shape=(2, 2),
                values=np.ones(1),
                row_indices=np.zeros(1, dtype=int),
                col_ptr=np.array([0, 1]),
            )

    def test_csr_csc_agree(self, rng):
        dense = sparse_matrix(rng)
        x = rng.standard_normal(8)
        np.testing.assert_allclose(
            CSRMatrix.from_dense(dense).spmv(x), CSCMatrix.from_dense(dense).spmv(x)
        )


@settings(max_examples=40, deadline=None)
@given(
    dense=hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 12), st.integers(1, 12)),
        elements=st.sampled_from([0.0, 0.0, 0.0, 1.0, -2.0, 3.5]),
    )
)
def test_property_csr_round_trip(dense):
    """CSR from_dense → to_dense is the identity for any matrix."""
    np.testing.assert_array_equal(CSRMatrix.from_dense(dense).to_dense(), dense)


@settings(max_examples=40, deadline=None)
@given(
    dense=hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 10), st.integers(1, 10)),
        elements=st.sampled_from([0.0, 0.0, 1.0, -1.5]),
    )
)
def test_property_csr_spmv_matches_dense(dense):
    """CSR spmv agrees with the dense product for any pattern."""
    x = np.arange(1.0, dense.shape[1] + 1.0)
    np.testing.assert_allclose(CSRMatrix.from_dense(dense).spmv(x), dense @ x)
