"""Tests for the E-RNN baseline and the roofline report."""

import numpy as np
import pytest

from repro.compiler.codegen import CompileOptions
from repro.compiler.pipeline import compile_weights
from repro.errors import ConfigError
from repro.hw.profiles import ADRENO_640, KRYO_485
from repro.hw.roofline import render_roofline, roofline
from repro.nn.module import Parameter
from repro.pruning.block_circulant import project_block_circulant
from repro.pruning.ernn import ERNNCompressor, ERNNConfig


def drive(pruner, params, rng, epochs, batches=3, lr=0.01):
    for _ in range(epochs):
        for _ in range(batches):
            for p in params.values():
                p.grad = 0.01 * rng.standard_normal(p.data.shape)
            pruner.on_batch_backward()
            for p in params.values():
                p.data -= lr * p.grad
            pruner.on_batch_end()
        pruner.on_epoch_end()


class TestERNN:
    def make_params(self, rng):
        return {"w": Parameter(rng.standard_normal((16, 16)))}

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ERNNConfig(block_size=0)
        with pytest.raises(ConfigError):
            ERNNConfig(rho=0.0)
        with pytest.raises(ConfigError):
            ERNNConfig(admm_epochs=-1)

    def test_phase_progression(self, rng):
        params = self.make_params(rng)
        pruner = ERNNCompressor(params, ERNNConfig(block_size=4, admm_epochs=2,
                                                   retrain_epochs=1))
        assert not pruner.finished
        drive(pruner, params, rng, 2)
        assert pruner._hardened
        assert not pruner.finished
        drive(pruner, params, rng, 1)
        assert pruner.finished

    def test_hardened_weights_exactly_circulant(self, rng):
        params = self.make_params(rng)
        pruner = ERNNCompressor(params, ERNNConfig(block_size=4, admm_epochs=1,
                                                   retrain_epochs=1))
        drive(pruner, params, rng, 2)
        w = params["w"].data
        np.testing.assert_allclose(project_block_circulant(w, 4), w, atol=1e-12)
        assert pruner.primal_residual() == pytest.approx(0.0, abs=1e-10)

    def test_admm_reduces_residual(self, rng):
        """On a pure quadratic pull toward a fixed target, the convex-set
        ADMM drives the weights toward circulant structure."""
        params = self.make_params(rng)
        target = rng.standard_normal((16, 16))
        pruner = ERNNCompressor(params, ERNNConfig(block_size=4, rho=0.5,
                                                   admm_epochs=100,
                                                   retrain_epochs=0))
        initial = pruner.primal_residual()
        for _ in range(60):
            for _ in range(3):
                params["w"].grad = 0.2 * (params["w"].data - target)
                pruner.on_batch_backward()
                params["w"].data -= 0.05 * params["w"].grad
                pruner.on_batch_end()
            pruner.on_epoch_end()
        assert pruner.primal_residual() < 0.5 * initial

    def test_compression_rate(self, rng):
        params = self.make_params(rng)
        pruner = ERNNCompressor(params, ERNNConfig(block_size=4))
        assert pruner.compression_rate() == pytest.approx(4.0)

    def test_masks_all_ones(self, rng):
        params = self.make_params(rng)
        pruner = ERNNCompressor(params, ERNNConfig(block_size=4))
        assert pruner.masks["w"].nnz == 256

    def test_penalty_added_to_grads(self, rng):
        params = self.make_params(rng)
        pruner = ERNNCompressor(params, ERNNConfig(block_size=4, rho=1.0))
        params["w"].grad = None
        pruner.on_batch_backward()
        expected = params["w"].data - pruner._z["w"]
        np.testing.assert_allclose(params["w"].grad, expected)


class TestRoofline:
    def plans(self, rng):
        dense = {"w": rng.standard_normal((1024, 1024))}
        tiny = {"w": np.zeros((1024, 1024))}
        tiny["w"][0, 0] = 1.0
        return (
            compile_weights(dense, CompileOptions(), timesteps=30),
            compile_weights(tiny, CompileOptions(), timesteps=30),
        )

    def test_dense_is_compute_or_memory_bound(self, rng):
        dense_plan, _ = self.plans(rng)
        report = roofline(dense_plan, ADRENO_640)
        assert report.dominant_bound() in ("compute", "memory")

    def test_extreme_compression_is_overhead_bound(self, rng):
        _, tiny_plan = self.plans(rng)
        report = roofline(tiny_plan, ADRENO_640)
        assert report.dominant_bound() == "overhead"

    def test_layer_fields_consistent(self, rng):
        dense_plan, _ = self.plans(rng)
        report = roofline(dense_plan, KRYO_485)
        layer = report.layers[0]
        assert layer.busy_us == pytest.approx(
            max(layer.compute_us, layer.memory_us) + layer.overhead_us
        )
        assert layer.arithmetic_intensity > 0

    def test_counts_sum_to_layers(self, rng):
        dense_plan, _ = self.plans(rng)
        report = roofline(dense_plan, ADRENO_640)
        assert sum(report.counts().values()) == len(report.layers)

    def test_render(self, rng):
        dense_plan, _ = self.plans(rng)
        text = render_roofline(roofline(dense_plan, ADRENO_640))
        assert "dominant bound" in text
        assert "flop/B" in text

    def test_intensity_falls_with_sparsity(self, rng):
        """Sparser layers do less work per byte of (index-laden) traffic —
        the memory-bound drift the paper describes."""
        from repro.pruning.bsp import BSPConfig, bsp_project_masks

        w = rng.standard_normal((1024, 1024))
        masks = bsp_project_masks(
            {"w": w},
            BSPConfig(col_rate=16, row_rate=4, num_row_strips=8, num_col_blocks=8),
        )
        dense_plan = compile_weights({"w": w}, CompileOptions(), timesteps=30)
        sparse_plan = compile_weights(
            {"w": masks["w"].apply_to_array(w)}, CompileOptions(), timesteps=30
        )
        dense_ai = roofline(dense_plan, ADRENO_640).layers[0].arithmetic_intensity
        sparse_ai = roofline(sparse_plan, ADRENO_640).layers[0].arithmetic_intensity
        assert sparse_ai < dense_ai
