"""Tests for compression accounting (repro.pruning.metrics)."""

import numpy as np
import pytest

from repro.pruning.mask import MaskSet, PruningMask
from repro.pruning.metrics import (
    FRAMES_PER_INFERENCE,
    gop_per_frame,
    report_from_arrays,
    report_from_masks,
)


class TestReports:
    def make_masks(self):
        keep_a = np.zeros((4, 8), dtype=bool)
        keep_a[:2, :4] = True  # 8 of 32
        keep_b = np.ones((4, 4), dtype=bool)  # dense
        return MaskSet({"a": PruningMask(keep_a), "b": PruningMask(keep_b)})

    def test_report_from_masks_totals(self):
        report = report_from_masks(self.make_masks())
        assert report.total_params == 48
        assert report.kept_params == 24
        assert report.overall_rate == pytest.approx(2.0)

    def test_per_matrix_fields(self):
        report = report_from_masks(self.make_masks())
        by_name = {m.name: m for m in report.matrices}
        assert by_name["a"].kept_rows == 2
        assert by_name["a"].kept_cols == 4
        assert by_name["a"].compression_rate == pytest.approx(4.0)
        assert by_name["b"].density == 1.0

    def test_kept_params_millions(self):
        report = report_from_masks(self.make_masks())
        assert report.kept_params_millions() == pytest.approx(24 / 1e6)

    def test_report_from_arrays(self, rng):
        w = rng.standard_normal((4, 4))
        w[2:, :] = 0.0
        report = report_from_arrays({"w": w})
        assert report.kept_params == 8
        assert report.matrices[0].kept_rows == 2
        assert report.matrices[0].kept_cols == 4

    def test_report_from_arrays_1d(self):
        report = report_from_arrays({"b": np.array([1.0, 0.0, 2.0])})
        assert report.kept_params == 2
        assert report.matrices[0].kept_rows == 0  # not defined for 1-D

    def test_empty_matrix_infinite_rate(self):
        report = report_from_arrays({"w": np.zeros((2, 2))})
        assert report.overall_rate == float("inf")


class TestGOP:
    def test_paper_dense_convention(self):
        # 9.6M weights at the paper's convention ≈ 0.58 GOP/frame.
        assert gop_per_frame(9_600_000) == pytest.approx(0.576, abs=0.01)

    def test_scales_linearly_with_nnz(self):
        assert gop_per_frame(2_000_000) == pytest.approx(2 * gop_per_frame(1_000_000))

    def test_custom_context(self):
        assert gop_per_frame(1000, frames_per_inference=1) == pytest.approx(2e-6)

    def test_default_context_constant(self):
        assert FRAMES_PER_INFERENCE == 30
