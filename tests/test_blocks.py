"""Tests for block partitioning (repro.sparse.blocks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sparse.blocks import BlockGrid, grid_for


class TestBlockGrid:
    def test_even_split_bounds(self):
        grid = BlockGrid(8, 12, 4, 3)
        assert grid.row_bounds() == [(0, 2), (2, 4), (4, 6), (6, 8)]
        assert grid.col_bounds() == [(0, 4), (4, 8), (8, 12)]

    def test_uneven_split_sizes_differ_by_at_most_one(self):
        grid = BlockGrid(10, 7, 3, 3)
        row_sizes = [stop - start for start, stop in grid.row_bounds()]
        col_sizes = [stop - start for start, stop in grid.col_bounds()]
        assert max(row_sizes) - min(row_sizes) <= 1
        assert max(col_sizes) - min(col_sizes) <= 1

    def test_num_blocks(self):
        assert BlockGrid(8, 8, 2, 4).num_blocks == 8

    def test_regions_cover_matrix_exactly(self):
        grid = BlockGrid(7, 9, 3, 4)
        coverage = np.zeros((7, 9), dtype=int)
        for region in grid.regions():
            rs, cs = region.slice()
            coverage[rs, cs] += 1
        np.testing.assert_array_equal(coverage, np.ones((7, 9), dtype=int))

    def test_region_lookup(self):
        grid = BlockGrid(8, 8, 2, 2)
        region = grid.region(1, 0)
        assert region.row_start == 4 and region.col_start == 0
        assert region.shape == (4, 4)

    def test_strip_of_row(self):
        grid = BlockGrid(8, 8, 4, 2)
        assert grid.strip_of_row(0) == 0
        assert grid.strip_of_row(7) == 3
        assert grid.strip_of_row(3) == 1

    def test_block_of_col(self):
        grid = BlockGrid(8, 9, 2, 3)
        assert grid.block_of_col(0) == 0
        assert grid.block_of_col(8) == 2

    def test_strip_of_row_out_of_range(self):
        with pytest.raises(IndexError):
            BlockGrid(8, 8, 2, 2).strip_of_row(8)

    def test_block_of_col_out_of_range(self):
        with pytest.raises(IndexError):
            BlockGrid(8, 8, 2, 2).block_of_col(-1)

    def test_too_many_strips_rejected(self):
        with pytest.raises(ConfigError):
            BlockGrid(4, 8, 5, 2)

    def test_too_many_blocks_rejected(self):
        with pytest.raises(ConfigError):
            BlockGrid(8, 4, 2, 5)

    def test_zero_dims_rejected(self):
        with pytest.raises(ValueError):
            BlockGrid(0, 4, 1, 1)

    def test_validate_matrix(self):
        grid = BlockGrid(4, 6, 2, 2)
        grid.validate_matrix(np.zeros((4, 6)))
        with pytest.raises(ConfigError):
            grid.validate_matrix(np.zeros((4, 5)))

    def test_grid_for(self):
        grid = grid_for(np.zeros((6, 8)), 2, 4)
        assert grid.shape == (6, 8)

    def test_grid_for_rejects_1d(self):
        with pytest.raises(ConfigError):
            grid_for(np.zeros(5), 1, 1)


@settings(max_examples=50, deadline=None)
@given(
    rows=st.integers(1, 40),
    cols=st.integers(1, 40),
    data=st.data(),
)
def test_property_regions_partition_matrix(rows, cols, data):
    """Every grid's regions tile the matrix with no gaps or overlaps."""
    strips = data.draw(st.integers(1, rows))
    blocks = data.draw(st.integers(1, cols))
    grid = BlockGrid(rows, cols, strips, blocks)
    coverage = np.zeros((rows, cols), dtype=int)
    for region in grid.regions():
        rs, cs = region.slice()
        coverage[rs, cs] += 1
    assert np.all(coverage == 1)


@settings(max_examples=50, deadline=None)
@given(rows=st.integers(1, 30), strips=st.integers(1, 30))
def test_property_strip_lookup_consistent(rows, strips):
    """strip_of_row agrees with row_bounds for every row."""
    if strips > rows:
        strips = rows
    grid = BlockGrid(rows, 4, strips, 1)
    bounds = grid.row_bounds()
    for row in range(rows):
        strip = grid.strip_of_row(row)
        start, stop = bounds[strip]
        assert start <= row < stop
