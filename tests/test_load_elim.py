"""Tests for redundant-load elimination (repro.compiler.load_elim)."""

import numpy as np
import pytest

from repro.compiler.ir import TileConfig
from repro.compiler.load_elim import elimination_ratio, naive_loads, tiled_loads
from repro.compiler.reorder import identity_groups, reorder_rows
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.pruning.projections import project_unstructured
from repro.sparse.blocks import grid_for


def bsp_mask(rng, shape=(32, 32), col_rate=4.0):
    w = rng.standard_normal(shape)
    masks = bsp_project_masks(
        {"w": w},
        BSPConfig(col_rate=col_rate, row_rate=1.0, num_row_strips=4,
                  num_col_blocks=4),
    )
    return masks["w"].keep, grid_for(w, 4, 4)


class TestNaiveLoads:
    def test_counts_nonzeros(self, rng):
        mask, _ = bsp_mask(rng)
        assert naive_loads(mask) == mask.sum()

    def test_zero_mask(self):
        assert naive_loads(np.zeros((4, 4), dtype=bool)) == 0


class TestTiledLoads:
    def test_never_exceeds_naive(self, rng):
        mask, grid = bsp_mask(rng)
        _, groups = reorder_rows(mask, grid)
        tile = TileConfig(rows_per_thread=4)
        assert tiled_loads(mask, groups, tile) <= naive_loads(mask)

    def test_bsp_pattern_shares_loads_across_tile(self, rng):
        """Rows of one strip share kept columns, so a 4-row tile loads
        each column once instead of 4 times: ~4x elimination."""
        mask, grid = bsp_mask(rng)
        _, groups = reorder_rows(mask, grid)
        tile = TileConfig(rows_per_thread=4)
        ratio = elimination_ratio(mask, groups, tile)
        assert ratio > 0.6  # most loads eliminated

    def test_tile_of_one_eliminates_nothing(self, rng):
        mask, grid = bsp_mask(rng)
        _, groups = reorder_rows(mask, grid)
        tile = TileConfig(rows_per_thread=1)
        assert tiled_loads(mask, groups, tile) == naive_loads(mask)

    def test_larger_tiles_never_increase_loads(self, rng):
        mask, grid = bsp_mask(rng)
        _, groups = reorder_rows(mask, grid)
        loads = [
            tiled_loads(mask, groups, TileConfig(rows_per_thread=r))
            for r in (1, 2, 4, 8)
        ]
        assert all(b <= a for a, b in zip(loads, loads[1:]))

    def test_unstructured_pattern_benefits_less(self, rng):
        """The paper's claim: load elimination is enabled *by* block
        pruning; random patterns share few columns between rows."""
        shape = (32, 32)
        w = rng.standard_normal(shape)
        bsp_keep, grid = bsp_mask(rng, shape, col_rate=4.0)
        unstructured = project_unstructured(w, rate=4.0).keep
        tile = TileConfig(rows_per_thread=4)
        _, bsp_groups = reorder_rows(bsp_keep, grid)
        _, un_groups = reorder_rows(unstructured, grid)
        bsp_ratio = elimination_ratio(bsp_keep, bsp_groups, tile)
        un_ratio = elimination_ratio(unstructured, un_groups, tile)
        assert bsp_ratio > un_ratio

    def test_reorder_improves_or_preserves_elimination(self, rng):
        mask, grid = bsp_mask(rng)
        tile = TileConfig(rows_per_thread=4)
        _, reordered = reorder_rows(mask, grid)
        _, unordered = identity_groups(mask)
        assert tiled_loads(mask, reordered, tile) <= tiled_loads(
            mask, unordered, tile
        )

    def test_zero_mask_ratio(self):
        mask = np.zeros((4, 4), dtype=bool)
        _, groups = identity_groups(mask)
        assert elimination_ratio(mask, groups, TileConfig()) == 0.0
