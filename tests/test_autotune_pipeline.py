"""Tests for compile pipeline + auto-tuner (repro.compiler.pipeline/autotune)."""

import numpy as np
import pytest

from repro.compiler.autotune import (
    TuningCandidate,
    default_tile_space,
    find_best_block_size,
    tune_execution_config,
)
from repro.compiler.codegen import CompileOptions
from repro.compiler.ir import TileConfig
from repro.compiler.pipeline import CompiledModel, compile_model, compile_weights
from repro.errors import CompilationError
from repro.hw.profiles import ADRENO_640, KRYO_485
from repro.pruning.bsp import BSPConfig, bsp_project_masks


def pruned_weights(rng, compression=8.0):
    weights = {
        "a": rng.standard_normal((24, 32)),
        "b": rng.standard_normal((24, 24)),
    }
    if compression <= 1.0:
        return weights
    masks = bsp_project_masks(
        weights,
        BSPConfig(col_rate=compression / 2, row_rate=2.0, num_row_strips=4,
                  num_col_blocks=4),
    )
    return {n: masks[n].apply_to_array(w) for n, w in weights.items()}


class TestCompileWeights:
    def test_plan_has_one_layer_per_matrix(self, rng):
        plan = compile_weights(pruned_weights(rng), timesteps=10)
        assert [l.name for l in plan.layers] == ["a", "b"]
        assert plan.timesteps == 10

    def test_rejects_empty(self):
        with pytest.raises(CompilationError):
            compile_weights({})

    def test_compiled_model_properties(self, rng):
        compiled = compile_model(pruned_weights(rng), timesteps=10)
        assert isinstance(compiled, CompiledModel)
        assert compiled.compression_rate > 1.0
        assert compiled.gop_per_frame == compiled.plan.gop_per_inference

    def test_simulate_and_energy(self, rng):
        compiled = compile_model(pruned_weights(rng), timesteps=10)
        sim = compiled.simulate(ADRENO_640)
        report = compiled.energy(ADRENO_640)
        assert report.latency_us == pytest.approx(sim.latency_us)
        assert report.normalized_efficiency > 0

    def test_dense_compression_is_one(self, rng):
        compiled = compile_model(pruned_weights(rng, compression=1.0), timesteps=10)
        assert compiled.compression_rate == pytest.approx(1.0)

    def test_ablation_passes_affect_latency(self, rng):
        """Disabling reorder + load elimination must not make the model
        faster — the ablation direction of the paper's Section IV-B."""
        weights = pruned_weights(rng, compression=16.0)
        full = compile_model(weights, CompileOptions(), timesteps=10)
        stripped = compile_model(
            weights,
            CompileOptions(enable_reorder=False, enable_load_elimination=False),
            timesteps=10,
        )
        assert (
            full.simulate(KRYO_485).latency_us
            <= stripped.simulate(KRYO_485).latency_us + 1e-9
        )


class TestTileSpace:
    def test_default_space_nonempty(self):
        space = default_tile_space()
        assert len(space) >= 6
        assert all(isinstance(t, TileConfig) for t in space)

    def test_max_rows_respected(self):
        space = default_tile_space(max_rows_per_thread=4)
        assert max(t.rows_per_thread for t in space) == 4


class TestTuneExecutionConfig:
    def test_best_is_minimum_of_trace(self, rng):
        result = tune_execution_config(pruned_weights(rng), ADRENO_640)
        assert result.best.latency_us == min(c.latency_us for c in result.trace)
        assert result.num_evaluated == len(default_tile_space())

    def test_explicit_space(self, rng):
        space = [TileConfig(rows_per_thread=1), TileConfig(rows_per_thread=8)]
        result = tune_execution_config(
            pruned_weights(rng), ADRENO_640, tile_space=space
        )
        assert result.num_evaluated == 2
        assert result.best.tile in space

    def test_empty_space_rejected(self, rng):
        with pytest.raises(CompilationError):
            tune_execution_config(pruned_weights(rng), ADRENO_640, tile_space=[])

    def test_candidate_score(self):
        cand = TuningCandidate(
            tile=TileConfig(), num_row_strips=4, num_col_blocks=4,
            latency_us=100.0, accuracy_proxy=0.9,
        )
        assert cand.score() == 100.0
        assert cand.score(accuracy_weight=10.0) == pytest.approx(91.0)


class TestBlockSizeSearch:
    def test_returns_feasible_grid(self, rng):
        weights = {
            "a": rng.standard_normal((16, 16)),
            "b": rng.standard_normal((16, 16)),
        }
        result = find_best_block_size(
            weights, ADRENO_640, col_rate=4.0, row_rate=2.0,
            strip_choices=(2, 4), block_choices=(2, 4),
        )
        assert result.best.num_row_strips in (2, 4)
        assert result.best.num_col_blocks in (2, 4)
        assert result.num_evaluated == 4

    def test_accuracy_proxy_in_unit_interval(self, rng):
        weights = {"a": rng.standard_normal((16, 16))}
        result = find_best_block_size(
            weights, ADRENO_640, col_rate=4.0, row_rate=1.0,
            strip_choices=(2,), block_choices=(2, 4),
        )
        for cand in result.trace:
            assert 0.0 <= cand.accuracy_proxy <= 1.0

    def test_infeasible_grids_skipped(self, rng):
        weights = {"a": rng.standard_normal((4, 4))}
        result = find_best_block_size(
            weights, ADRENO_640, col_rate=2.0, row_rate=1.0,
            strip_choices=(2, 64), block_choices=(2, 64),
        )
        assert result.num_evaluated == 1  # only (2, 2) feasible

    def test_all_infeasible_rejected(self, rng):
        weights = {"a": rng.standard_normal((4, 4))}
        with pytest.raises(CompilationError):
            find_best_block_size(
                weights, ADRENO_640, col_rate=2.0, row_rate=1.0,
                strip_choices=(64,), block_choices=(64,),
            )

    def test_accuracy_weight_changes_choice_possible(self, rng):
        # With a huge accuracy weight, the best grid is the one with the
        # highest retained-energy proxy.
        weights = {"a": rng.standard_normal((32, 32))}
        result = find_best_block_size(
            weights, ADRENO_640, col_rate=8.0, row_rate=1.0,
            strip_choices=(1, 8), block_choices=(1, 8),
            accuracy_weight=1e9,
        )
        best_proxy = max(c.accuracy_proxy for c in result.trace)
        assert result.best.accuracy_proxy == pytest.approx(best_proxy)
