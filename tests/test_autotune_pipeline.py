"""Tests for compile pipeline + auto-tuner (repro.compiler.pipeline/autotune)."""

import numpy as np
import pytest

from repro.compiler.autotune import (
    TuningCandidate,
    default_tile_space,
    find_best_block_size,
    tune_execution_config,
    tune_plan,
)
from repro.compiler.codegen import CompileOptions
from repro.compiler.ir import TileConfig
from repro.compiler.pipeline import CompiledModel, compile_for_simulation, compile_weights
from repro.errors import CompilationError, ConfigError
from repro.hw.profiles import ADRENO_640, KRYO_485
from repro.pruning.bsp import BSPConfig, bsp_project_masks


def pruned_weights(rng, compression=8.0):
    weights = {
        "a": rng.standard_normal((24, 32)),
        "b": rng.standard_normal((24, 24)),
    }
    if compression <= 1.0:
        return weights
    masks = bsp_project_masks(
        weights,
        BSPConfig(col_rate=compression / 2, row_rate=2.0, num_row_strips=4,
                  num_col_blocks=4),
    )
    return {n: masks[n].apply_to_array(w) for n, w in weights.items()}


class TestCompileWeights:
    def test_plan_has_one_layer_per_matrix(self, rng):
        plan = compile_weights(pruned_weights(rng), timesteps=10)
        assert [l.name for l in plan.layers] == ["a", "b"]
        assert plan.timesteps == 10

    def test_rejects_empty(self):
        with pytest.raises(CompilationError):
            compile_weights({})

    def test_compiled_model_properties(self, rng):
        compiled = compile_for_simulation(pruned_weights(rng), timesteps=10)
        assert isinstance(compiled, CompiledModel)
        assert compiled.compression_rate > 1.0
        assert compiled.gop_per_frame == compiled.plan.gop_per_inference

    def test_simulate_and_energy(self, rng):
        compiled = compile_for_simulation(pruned_weights(rng), timesteps=10)
        sim = compiled.simulate(ADRENO_640)
        report = compiled.energy(ADRENO_640)
        assert report.latency_us == pytest.approx(sim.latency_us)
        assert report.normalized_efficiency > 0

    def test_dense_compression_is_one(self, rng):
        compiled = compile_for_simulation(pruned_weights(rng, compression=1.0), timesteps=10)
        assert compiled.compression_rate == pytest.approx(1.0)

    def test_ablation_passes_affect_latency(self, rng):
        """Disabling reorder + load elimination must not make the model
        faster — the ablation direction of the paper's Section IV-B."""
        weights = pruned_weights(rng, compression=16.0)
        full = compile_for_simulation(weights, CompileOptions(), timesteps=10)
        stripped = compile_for_simulation(
            weights,
            CompileOptions(enable_reorder=False, enable_load_elimination=False),
            timesteps=10,
        )
        assert (
            full.simulate(KRYO_485).latency_us
            <= stripped.simulate(KRYO_485).latency_us + 1e-9
        )


class TestTileSpace:
    def test_default_space_nonempty(self):
        space = default_tile_space()
        assert len(space) >= 6
        assert all(isinstance(t, TileConfig) for t in space)

    def test_max_rows_respected(self):
        space = default_tile_space(max_rows_per_thread=4)
        assert max(t.rows_per_thread for t in space) == 4


class TestTuneExecutionConfig:
    def test_best_is_minimum_of_trace(self, rng):
        result = tune_execution_config(pruned_weights(rng), ADRENO_640)
        assert result.best.latency_us == min(c.latency_us for c in result.trace)
        assert result.num_evaluated == len(default_tile_space())

    def test_explicit_space(self, rng):
        space = [TileConfig(rows_per_thread=1), TileConfig(rows_per_thread=8)]
        result = tune_execution_config(
            pruned_weights(rng), ADRENO_640, tile_space=space
        )
        assert result.num_evaluated == 2
        assert result.best.tile in space

    def test_empty_space_rejected(self, rng):
        with pytest.raises(CompilationError):
            tune_execution_config(pruned_weights(rng), ADRENO_640, tile_space=[])

    def test_candidate_score(self):
        cand = TuningCandidate(
            tile=TileConfig(), num_row_strips=4, num_col_blocks=4,
            latency_us=100.0, accuracy_proxy=0.9,
        )
        assert cand.score() == 100.0
        assert cand.score(accuracy_weight=10.0) == pytest.approx(91.0)


class TestBlockSizeSearch:
    def test_returns_feasible_grid(self, rng):
        weights = {
            "a": rng.standard_normal((16, 16)),
            "b": rng.standard_normal((16, 16)),
        }
        result = find_best_block_size(
            weights, ADRENO_640, col_rate=4.0, row_rate=2.0,
            strip_choices=(2, 4), block_choices=(2, 4),
        )
        assert result.best.num_row_strips in (2, 4)
        assert result.best.num_col_blocks in (2, 4)
        assert result.num_evaluated == 4

    def test_accuracy_proxy_in_unit_interval(self, rng):
        weights = {"a": rng.standard_normal((16, 16))}
        result = find_best_block_size(
            weights, ADRENO_640, col_rate=4.0, row_rate=1.0,
            strip_choices=(2,), block_choices=(2, 4),
        )
        for cand in result.trace:
            assert 0.0 <= cand.accuracy_proxy <= 1.0

    def test_infeasible_grids_skipped(self, rng):
        weights = {"a": rng.standard_normal((4, 4))}
        result = find_best_block_size(
            weights, ADRENO_640, col_rate=2.0, row_rate=1.0,
            strip_choices=(2, 64), block_choices=(2, 64),
        )
        assert result.num_evaluated == 1  # only (2, 2) feasible

    def test_all_infeasible_rejected(self, rng):
        weights = {"a": rng.standard_normal((4, 4))}
        with pytest.raises(CompilationError):
            find_best_block_size(
                weights, ADRENO_640, col_rate=2.0, row_rate=1.0,
                strip_choices=(64,), block_choices=(64,),
            )

    def test_accuracy_weight_changes_choice_possible(self, rng):
        # With a huge accuracy weight, the best grid is the one with the
        # highest retained-energy proxy.
        weights = {"a": rng.standard_normal((32, 32))}
        result = find_best_block_size(
            weights, ADRENO_640, col_rate=8.0, row_rate=1.0,
            strip_choices=(1, 8), block_choices=(1, 8),
            accuracy_weight=1e9,
        )
        best_proxy = max(c.accuracy_proxy for c in result.trace)
        assert result.best.accuracy_proxy == pytest.approx(best_proxy)


class TestMeasuredTunePlan:
    """tune_plan measures the real engine; all assertions here are about
    the search structure, not about which candidate happens to win on
    this machine."""

    def make_workload(self, pruned=True, seed=0):
        from repro.pruning.bsp import bsp_project_masks as project
        from repro.speech.model import AcousticModelConfig, GRUAcousticModel

        model = GRUAcousticModel(
            AcousticModelConfig(input_dim=8, hidden_size=16, num_layers=2),
            rng=seed,
        ).eval()
        if pruned:
            masks = project(
                model.prunable_weights(),
                BSPConfig(col_rate=4, row_rate=2, num_row_strips=4,
                          num_col_blocks=4),
            )
            for name, param in model.prunable_parameters().items():
                param.data[...] = masks[name].apply_to_array(param.data)
        sample = np.random.default_rng(seed + 1).standard_normal((10, 2, 8))
        return model, sample

    def test_tuned_never_slower_than_default(self):
        model, sample = self.make_workload()
        result = tune_plan(model, sample, repeats=1)
        assert result.speedup >= 1.0
        assert result.best.measured_s == min(c.measured_s for c in result.trace)
        assert result.trace[0].label == "default"
        assert result.baseline_s == result.trace[0].measured_s

    def test_winner_plan_runs_and_matches_its_graph(self):
        from repro import engine

        model, sample = self.make_workload()
        result = tune_plan(model, sample, repeats=1)
        logits = result.plan.forward_batch(sample)
        assert logits.shape == (10, 2, model.config.num_classes)
        # The winning graph relowers to the identical computation.
        relowered = engine.lower_graph(result.graph)
        np.testing.assert_array_equal(relowered.forward_batch(sample), logits)

    def test_trace_covers_prefilter_refinements_without_duplicates(self):
        model, sample = self.make_workload()
        result = tune_plan(model, sample, repeats=1, prefilter_top=2)
        # At most: default + sim-best + one runner-up per tunable slot
        # (4 cells × 2 matrices at this scale, output pinned dense);
        # fewer when a candidate repeats an already-measured config —
        # a configuration is never timed twice.
        assert 2 <= result.num_evaluated <= 1 + 1 + 4
        seen = set()
        for cand in result.trace:
            key = (cand.scheme, cand.backend, tuple(sorted(cand.formats.items())))
            assert key not in seen, f"duplicate measurement: {cand.label}"
            seen.add(key)

    def test_prefilter_top_one_skips_refinement(self):
        model, sample = self.make_workload()
        result = tune_plan(model, sample, repeats=1, prefilter_top=1)
        assert result.num_evaluated <= 2  # default + sim-best at most

    def test_dense_duplicate_of_baseline_not_remeasured(self):
        # formats=("dense",) pins every candidate to the baseline's
        # configuration: nothing but the default is ever measured, so a
        # noisy re-sample can't masquerade as a tuning "speedup".
        model, sample = self.make_workload(pruned=False)
        result = tune_plan(model, sample, formats=("dense",), repeats=1)
        assert result.num_evaluated == 1
        assert result.best.label == "default"
        assert result.speedup == 1.0

    def test_scheme_and_backend_sweep_recorded(self):
        model, sample = self.make_workload(pruned=False)
        result = tune_plan(
            model, sample, schemes=(None, "int8"),
            backends=(None, "reference"), formats=("dense",), repeats=1,
        )
        # (None, None) all-dense IS the baseline, so it is not re-timed;
        # the three genuinely new combinations are.
        combos = {(c.scheme, c.backend) for c in result.trace[1:]}
        assert combos == {
            (None, "reference"), ("int8", None), ("int8", "reference"),
        }

    def test_validation(self):
        model, sample = self.make_workload()
        with pytest.raises(ConfigError):
            tune_plan(model, sample, schemes=())
        with pytest.raises(ConfigError):
            tune_plan(model, sample, formats=("sparse?",))
        with pytest.raises(ConfigError):
            tune_plan(model, sample[0], repeats=1)  # wrong rank

    def test_tuned_artifact_round_trip(self, tmp_path):
        from repro import engine

        model, sample = self.make_workload()
        result = tune_plan(model, sample, repeats=1)
        engine.save_plan(tmp_path / "tuned.npz", result.plan)
        reloaded = engine.load_plan(tmp_path / "tuned.npz")
        np.testing.assert_array_equal(
            reloaded.forward_batch(sample), result.plan.forward_batch(sample)
        )
