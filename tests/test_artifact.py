"""Compiled-artifact round-trip tests (repro.engine.artifact).

The deployment contract: ``save_plan`` → ``load_plan`` reproduces
**bit-identical logits** for every scheme × sparse-format combination,
and the reloaded plan carries streaming state (``run_chunk``) exactly
like the original — including the int8 bitwise chunk-exactness.
"""

import numpy as np
import pytest

from repro import engine
from repro.errors import ArtifactError, ConfigError
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.speech.model import AcousticModelConfig, GRUAcousticModel

SCHEMES = (None, "fp16", "int8", "mixed")
FORMATS = (None, "csr", "bspc")


def laptop_model(cell_type="gru", seed=0):
    config = AcousticModelConfig(
        input_dim=8, hidden_size=24, num_layers=2, cell_type=cell_type
    )
    return GRUAcousticModel(config, rng=seed).eval()


def prune_model(model):
    masks = bsp_project_masks(
        model.prunable_weights(),
        BSPConfig(col_rate=4, row_rate=2, num_row_strips=4, num_col_blocks=4),
    )
    for name, param in model.prunable_parameters().items():
        param.data[...] = masks[name].apply_to_array(param.data)
    return model


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("fmt", FORMATS)
    def test_bit_identical_logits(self, scheme, fmt, tmp_path, rng_factory):
        # dense (None) stays unpruned; forced formats get a pruned model
        # so the sparse packings actually hold sparse patterns.
        model = laptop_model()
        if fmt is not None:
            prune_model(model)
        config = engine.EngineConfig(
            sparse_format=fmt, num_row_strips=4, num_col_blocks=4
        )
        plan = engine.compile_model(model, scheme=scheme, config=config)
        x = rng_factory(7).standard_normal((13, 3, 8))
        expected = plan.forward_batch(x)

        path = tmp_path / "plan.npz"
        engine.save_plan(path, plan)
        reloaded = engine.load_plan(path)
        np.testing.assert_array_equal(reloaded.forward_batch(x), expected)
        # The reloaded plan advertises the same compilation decisions.
        assert reloaded.scheme == plan.scheme
        assert reloaded.graph.formats() == plan.graph.formats()

    def test_lstm_round_trip(self, tmp_path, rng):
        plan = engine.compile_model(laptop_model(cell_type="lstm"))
        x = rng.standard_normal((9, 2, 8))
        engine.save_plan(tmp_path / "lstm.npz", plan)
        reloaded = engine.load_plan(tmp_path / "lstm.npz")
        np.testing.assert_array_equal(
            reloaded.forward_batch(x), plan.forward_batch(x)
        )

    def test_compile_rnn_round_trip(self, tmp_path, rng):
        model = prune_model(laptop_model())
        weights = {
            name: p.data.copy()
            for name, p in model.named_parameters()
            if name.startswith("gru.") and p.data.ndim == 2
        }
        plan = engine.compile_rnn(
            weights,
            config=engine.EngineConfig(sparse_format="auto", num_row_strips=4,
                                       num_col_blocks=4),
        )
        x = rng.standard_normal((6, 2, 8))
        engine.save_plan(tmp_path / "rnn.npz", plan)
        np.testing.assert_array_equal(
            engine.load_plan(tmp_path / "rnn.npz").forward_batch(x),
            plan.forward_batch(x),
        )

    def test_tuned_backend_survives(self, tmp_path, rng):
        from repro.compiler.pipeline import build_layer_graph

        graph = build_layer_graph(laptop_model(), backend="reference")
        plan = engine.lower_graph(graph)
        engine.save_plan(tmp_path / "b.npz", plan)
        reloaded = engine.load_plan(tmp_path / "b.npz")
        assert reloaded.backend == "reference"


class TestStreamingStateCarry:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_run_chunk_carry_matches_original(self, scheme, tmp_path, rng_factory):
        model = prune_model(laptop_model())
        config = engine.EngineConfig(
            sparse_format="auto", num_row_strips=4, num_col_blocks=4
        )
        plan = engine.compile_model(model, scheme=scheme, config=config)
        engine.save_plan(tmp_path / "s.npz", plan)
        reloaded = engine.load_plan(tmp_path / "s.npz")

        x = rng_factory(11).standard_normal((20, 2, 8))
        state_a, state_b = None, None
        for chunk in (x[:7], x[7:8], x[8:]):
            logits_a, state_a = plan.run_chunk(chunk, state_a)
            logits_b, state_b = reloaded.run_chunk(chunk, state_b)
            np.testing.assert_array_equal(logits_b, logits_a)
        for layer_a, layer_b in zip(state_a.layer_states, state_b.layer_states):
            for comp_a, comp_b in zip(layer_a, layer_b):
                np.testing.assert_array_equal(comp_b, comp_a)

    def test_chunked_reload_equals_offline_original(self, tmp_path, rng):
        # Cross guarantee: reloaded streaming == original offline batch.
        plan = engine.compile_model(laptop_model(), scheme="int8")
        engine.save_plan(tmp_path / "c.npz", plan)
        reloaded = engine.load_plan(tmp_path / "c.npz")
        x = rng.standard_normal((15, 2, 8))
        offline = plan.forward_batch(x)
        state = None
        chunks = []
        for start in range(0, 15, 4):
            logits, state = reloaded.run_chunk(x[start:start + 4], state)
            chunks.append(logits)
        np.testing.assert_array_equal(np.concatenate(chunks, axis=0), offline)


class TestArtifactValidation:
    def test_save_requires_graph(self, tmp_path):
        plan = engine.compile_model(laptop_model())
        plan.graph = None  # a hand-assembled plan cannot round-trip
        with pytest.raises(ConfigError):
            engine.save_plan(tmp_path / "x.npz", plan)

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(ArtifactError):
            engine.load_plan(path)

    def test_save_creates_parent_dirs(self, tmp_path):
        plan = engine.compile_model(laptop_model())
        path = tmp_path / "nested" / "dir" / "plan.npz"
        engine.save_plan(path, plan)
        assert path.exists()

    def test_unwritable_target_raises_artifact_error(self, tmp_path):
        # A *file* where the parent directory must go: the OS raises
        # NotADirectoryError, callers must see a typed ArtifactError.
        # (chmod-based unwritability is no good here — the suite runs
        # as root, which ignores permission bits.)
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        plan = engine.compile_model(laptop_model())
        with pytest.raises(ArtifactError, match="cannot write artifact"):
            engine.save_plan(blocker / "plan.npz", plan)
        assert blocker.read_text() == ""  # the blocker was not clobbered


class TestCrashSafety:
    """The artifact contract of the serving fabric: a reader sees either
    a complete artifact or a clear :class:`ArtifactError` — never a
    numpy/zipfile traceback, never a torn write."""

    def test_missing_file_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="missing, truncated"):
            engine.load_plan(tmp_path / "nope.npz")

    def test_truncated_artifact_raises_artifact_error(self, tmp_path):
        path = tmp_path / "plan.npz"
        engine.save_plan(path, engine.compile_model(laptop_model()))
        whole = path.read_bytes()
        # Every truncation point must fail *cleanly*, not with a numpy
        # internal error: sweep a few cut points including mid-header.
        for keep in (0, 1, 10, len(whole) // 3, len(whole) - 7):
            path.write_bytes(whole[:keep])
            with pytest.raises(ArtifactError):
                engine.load_plan(path)

    def test_corrupted_bytes_fail_checksum(self, tmp_path):
        path = tmp_path / "plan.npz"
        engine.save_plan(path, engine.compile_model(laptop_model()))
        blob = bytearray(path.read_bytes())
        # npz members are stored deflated, so a flipped byte usually
        # breaks the zip CRC first; both detection paths must surface as
        # ArtifactError.  Flip a byte in the middle of the archive.
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError):
            engine.load_plan(path)

    def test_checksum_catches_array_swap(self, tmp_path):
        # Rewrite one weight array through the zip layer (valid zip,
        # valid npz, wrong bytes): only the content checksum can catch
        # this class of corruption.
        path = tmp_path / "plan.npz"
        engine.save_plan(path, engine.compile_model(laptop_model()))
        with np.load(path) as data:
            arrays = {key: data[key] for key in data.files}
        victim = next(
            key
            for key in arrays
            if key != "meta.json" and arrays[key].dtype == np.float64
            and arrays[key].size
        )
        arrays[victim] = arrays[victim] + 1.0
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        with pytest.raises(ArtifactError, match="checksum"):
            engine.load_plan(path)

    def test_atomic_save_replaces_existing(self, tmp_path):
        path = tmp_path / "plan.npz"
        plan_a = engine.compile_model(laptop_model(seed=0))
        plan_b = engine.compile_model(laptop_model(seed=1))
        engine.save_plan(path, plan_a)
        engine.save_plan(path, plan_b)  # atomic os.replace over the old
        x = np.zeros((3, 1, 8))
        np.testing.assert_array_equal(
            engine.load_plan(path).forward_batch(x), plan_b.forward_batch(x)
        )
        # No temp files left behind by either save.
        assert [p.name for p in tmp_path.iterdir()] == ["plan.npz"]
