"""Tests for the ADMM pruning machinery (repro.pruning.admm)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.admm import ADMMPruner, ADMMTarget
from repro.pruning.projections import project_unstructured


def make_pruner(rng, rate=4.0, rho=0.1, shape=(6, 8)):
    param = Parameter(rng.standard_normal(shape))
    target = ADMMTarget(
        name="w", param=param, projection=lambda w: project_unstructured(w, rate)
    )
    return param, ADMMPruner([target], rho=rho)


class TestConstruction:
    def test_z_initialized_to_projection(self, rng):
        param, pruner = make_pruner(rng, rate=4.0)
        z = pruner.variables["w"].z
        assert np.count_nonzero(z) == int(np.ceil(param.size / 4.0))
        # Z agrees with W wherever it is nonzero.
        nz = z != 0
        np.testing.assert_array_equal(z[nz], param.data[nz])

    def test_u_initialized_to_zero(self, rng):
        _, pruner = make_pruner(rng)
        assert np.all(pruner.variables["w"].u == 0.0)

    def test_rejects_bad_rho(self, rng):
        param = Parameter(rng.standard_normal((2, 2)))
        target = ADMMTarget("w", param, lambda w: project_unstructured(w, 2.0))
        with pytest.raises(ConfigError):
            ADMMPruner([target], rho=0.0)

    def test_rejects_empty_targets(self):
        with pytest.raises(ConfigError):
            ADMMPruner([], rho=0.1)

    def test_rejects_duplicate_names(self, rng):
        param = Parameter(rng.standard_normal((2, 2)))
        t = ADMMTarget("w", param, lambda w: project_unstructured(w, 2.0))
        with pytest.raises(ConfigError):
            ADMMPruner([t, t], rho=0.1)


class TestPenalty:
    def test_penalty_gradient_formula(self, rng):
        param, pruner = make_pruner(rng, rho=0.5)
        var = pruner.variables["w"]
        var.u = rng.standard_normal(param.data.shape) * 0.1
        param.grad = None
        pruner.add_penalty_gradients()
        expected = 0.5 * (param.data - var.z + var.u)
        np.testing.assert_allclose(param.grad, expected)

    def test_penalty_adds_to_existing_grad(self, rng):
        param, pruner = make_pruner(rng, rho=0.5)
        base = rng.standard_normal(param.data.shape)
        param.grad = base.copy()
        pruner.add_penalty_gradients()
        var = pruner.variables["w"]
        np.testing.assert_allclose(
            param.grad, base + 0.5 * (param.data - var.z + var.u)
        )

    def test_penalty_value_nonnegative(self, rng):
        _, pruner = make_pruner(rng)
        assert pruner.penalty_value() >= 0.0

    def test_penalty_value_zero_when_converged(self, rng):
        param, pruner = make_pruner(rng, rate=1.0)  # keep-all set: Z == W
        assert pruner.penalty_value() == pytest.approx(0.0)


class TestConvergence:
    def test_admm_converges_when_support_is_unambiguous(self, rng):
        """Minimize ||W - W0||^2 s.t. W 4x-sparse, where W0 has a clearly
        separated magnitude structure (1/4 large entries, rest tiny).

        With an unambiguous support the nonconvex ADMM iteration settles:
        W lands on the constraint set and recovers W0's large entries.
        (With ambiguous magnitudes the support can limit-cycle — which is
        why BSP hardens masks from Z and retrains rather than iterating
        ADMM to exact convergence.)
        """
        w0 = 0.01 * rng.standard_normal((6, 8))
        large = rng.choice(48, size=12, replace=False)
        w0.reshape(-1)[large] = 3.0 + rng.random(12)
        param, pruner = make_pruner(rng, rate=4.0, rho=2.0)
        lr = 0.05
        for step in range(400):
            param.grad = 2.0 * (param.data - w0)
            pruner.add_penalty_gradients()
            param.data -= lr * param.grad
            if step % 5 == 4:
                pruner.dual_update()
        assert pruner.primal_residual() < 0.1
        mask = pruner.finalize(apply=False)["w"]
        np.testing.assert_array_equal(
            np.sort(np.flatnonzero(mask.keep.reshape(-1))), np.sort(large)
        )

    def test_dual_update_sets_z_to_projection_support(self, rng):
        param, pruner = make_pruner(rng, rate=4.0)
        pruner.dual_update()
        z = pruner.variables["w"].z
        assert np.count_nonzero(z) == int(np.ceil(param.size / 4.0))

    def test_u_accumulates_residual(self, rng):
        param, pruner = make_pruner(rng, rate=4.0)
        pruner.dual_update()
        var = pruner.variables["w"]
        np.testing.assert_allclose(var.u, param.data - var.z)


class TestFinalize:
    def test_masks_match_z_support(self, rng):
        param, pruner = make_pruner(rng, rate=4.0)
        masks = pruner.finalize(apply=False)
        np.testing.assert_array_equal(
            masks["w"].keep, pruner.variables["w"].z != 0
        )

    def test_apply_zeros_pruned_weights(self, rng):
        param, pruner = make_pruner(rng, rate=4.0)
        masks = pruner.finalize(apply=True)
        assert np.count_nonzero(param.data) == masks["w"].nnz

    def test_no_apply_leaves_weights(self, rng):
        param, pruner = make_pruner(rng, rate=4.0)
        before = param.data.copy()
        pruner.finalize(apply=False)
        np.testing.assert_array_equal(param.data, before)

    def test_multiple_targets(self, rng):
        params = [Parameter(rng.standard_normal((4, 4))) for _ in range(3)]
        targets = [
            ADMMTarget(f"w{i}", p, lambda w: project_unstructured(w, 2.0))
            for i, p in enumerate(params)
        ]
        pruner = ADMMPruner(targets, rho=0.1)
        masks = pruner.finalize()
        assert len(masks) == 3
        for i in range(3):
            assert masks[f"w{i}"].nnz == 8
