"""Tests for repro.sweep: grid construction, chaos-resume bit-exactness
across quantization schemes, retry budgets, straggler kills, and
registry lineage."""

import json

import numpy as np
import pytest

from repro.engine.registry import PlanRegistry
from repro.errors import ConfigError, SweepError
from repro.sweep import (
    SweepCell,
    SweepConfig,
    build_grid,
    chaos_fault_for,
    load_cell_result,
    run_sweep,
)
from repro.sweep.cell import cell_dir

_TINY = dict(
    rates=((2.0, 1.25),),
    workers=2,
    hidden_size=12,
    num_train=6,
    num_test=2,
    batch_size=3,
    dense_epochs=1,
)


def _config(tmp_path, name="state", schemes=(None,), **overrides):
    settings = dict(_TINY, schemes=schemes)
    settings.update(overrides)
    return SweepConfig(state_dir=tmp_path / name, **settings)


class TestGrid:
    def test_cell_name_is_registry_safe(self):
        cell = SweepCell(col_rate=8.0, row_rate=1.25, scheme="int8")
        assert cell.name == "c8-r1.25-int8-g2x2"
        assert cell.nominal_compression == pytest.approx(10.0)

    def test_scheme_none_reads_float(self):
        assert "float" in SweepCell(2.0, 1.25, None).name

    def test_validation(self):
        with pytest.raises(ConfigError):
            SweepCell(col_rate=0.5, row_rate=1.25, scheme=None)
        with pytest.raises(ConfigError):
            SweepCell(col_rate=2.0, row_rate=1.25, scheme="fp32")
        with pytest.raises(ConfigError):
            SweepCell(2.0, 1.25, None, num_row_strips=0)

    def test_build_grid_deterministic_order(self):
        grid = build_grid(
            rates=((2.0, 1.25), (4.0, 1.25)),
            schemes=(None, "int8"),
        )
        assert [cell.name for cell in grid] == [
            "c2-r1.25-float-g2x2",
            "c2-r1.25-int8-g2x2",
            "c4-r1.25-float-g2x2",
            "c4-r1.25-int8-g2x2",
        ]

    def test_build_grid_rejects_empty_axes(self):
        with pytest.raises(ConfigError):
            build_grid(rates=(), schemes=(None,))

    def test_chaos_fault_deterministic_and_in_range(self, tmp_path):
        config = _config(tmp_path)
        total_steps = config.total_cell_epochs * config.steps_per_epoch
        for index in range(8):
            fault = chaos_fault_for(config, index)
            assert fault == chaos_fault_for(config, index)
            # The crash step k = crash_after_chunks + 1 must leave a
            # checkpoint before it and work after it.
            assert 0 <= fault.crash_after_chunks < total_steps - 1


class TestCellResult:
    def test_load_rejects_missing_and_partial(self, tmp_path):
        assert load_cell_result(tmp_path) is None
        (tmp_path / "result.json").write_text("{not json")
        assert load_cell_result(tmp_path) is None
        (tmp_path / "result.json").write_text(json.dumps({"per": 1.0}))
        assert load_cell_result(tmp_path) is None


class TestSweepRobustness:
    def test_chaos_resume_bit_exact_across_schemes(self, tmp_path):
        """The acceptance property: a sweep whose every cell is crashed
        mid-training and resumed must be bit-identical to a clean sweep,
        for each scheme in {None, fp16, int8}."""
        schemes = (None, "fp16", "int8")
        clean = run_sweep(_config(tmp_path, "clean", schemes=schemes))

        chaos_config = _config(
            tmp_path, "chaos", schemes=schemes, retry_budget=0
        )
        with pytest.raises(SweepError, match="failed permanently"):
            run_sweep(chaos_config, chaos=True)
        # Every cell crashed and none completed...
        for cell in chaos_config.grid():
            directory = cell_dir(chaos_config.state_dir, cell.name)
            assert load_cell_result(directory) is None
            assert (directory / "checkpoint.npz").exists()
        # ...and the resume pass finishes them from their checkpoints.
        resumed = run_sweep(_config(tmp_path, "chaos", schemes=schemes))
        assert [o.status for o in resumed.outcomes] == ["ok"] * len(schemes)

        for a, b in zip(clean.outcomes, resumed.outcomes):
            assert a.cell.name == b.cell.name
            assert a.result["weights_sha256"] == b.result["weights_sha256"]
            assert a.result["loss_curve"] == b.result["loss_curve"]
            assert a.result["per"] == b.result["per"]
            assert a.result["measured_rate"] == b.result["measured_rate"]

    def test_in_pass_retry_recovers(self, tmp_path):
        config = _config(tmp_path, retry_budget=1)
        result = run_sweep(config, chaos=True)
        outcome = result.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.attempts == 2
        assert outcome.failures == ["crash (injected)"]

    def test_resume_skips_completed_cells(self, tmp_path):
        config = _config(tmp_path)
        first = run_sweep(config)
        assert [o.status for o in first.outcomes] == ["ok"]
        second = run_sweep(config)
        assert [o.status for o in second.outcomes] == ["cached"]
        assert second.outcomes[0].attempts == 0
        assert (
            second.outcomes[0].result["weights_sha256"]
            == first.outcomes[0].result["weights_sha256"]
        )

    def test_straggler_killed_and_reported(self, tmp_path):
        config = _config(tmp_path, retry_budget=0, cell_timeout_s=0.05)
        with pytest.raises(SweepError, match="straggler"):
            run_sweep(config)

    def test_summary_table_renders(self, tmp_path):
        result = run_sweep(_config(tmp_path))
        table = result.summary_table()
        assert "c2-r1.25-float-g2x2" in table
        assert "dense baseline" in table


class TestRegistryPublication:
    def test_lineage_and_provenance(self, tmp_path):
        config = _config(tmp_path, schemes=(None, "int8"))
        result = run_sweep(config)
        registry = PlanRegistry(config.registry_root())
        for outcome in result.outcomes:
            chain = registry.lineage(outcome.cell.name, "v2")
            assert [entry.version for entry in chain] == ["v1", "v2"]
            dense_entry, cell_entry = chain
            assert dense_entry.parent is None
            assert cell_entry.parent == "v1"
            assert dense_entry.meta["extra"]["role"] == "dense-baseline"
            extra = cell_entry.meta["extra"]
            assert extra["role"] == "sweep-cell"
            assert extra["cell"] == outcome.cell.to_dict()
            assert extra["per"] == outcome.result["per"]
            assert extra["weights_sha256"] == outcome.result["weights_sha256"]

    def test_publish_is_idempotent_on_resume(self, tmp_path):
        config = _config(tmp_path)
        run_sweep(config)
        run_sweep(config)  # cached cells must not create new versions
        registry = PlanRegistry(config.registry_root())
        assert registry.versions(config.grid()[0].name) == ["v1", "v2"]

    def test_published_plans_execute(self, tmp_path):
        from repro.engine.artifact import load_plan
        from repro.utils.rng import new_rng

        config = _config(tmp_path, schemes=("int8",))
        run_sweep(config)
        registry = PlanRegistry(config.registry_root())
        entry = registry.resolve(config.grid()[0].name, "v2")
        plan = load_plan(entry.artifact_path)
        logits = plan.forward_utterance(
            new_rng(0).standard_normal((10, plan.input_dim))
        )
        assert logits.shape[0] == 10
        assert np.all(np.isfinite(logits))
