"""Tests for the compiled execution engine (repro.engine).

Covers the three contracts the subsystem makes:

* packing-only plans are **bit-exact** with the eval-mode Module path
  (and therefore decode to identical phone sequences),
* quantized plans track the simulated-quantization eager path within
  scheme-appropriate tolerance (including PER on a trained model),
* the serving micro-batcher handles ragged streams — length-1 and
  mixed-length utterances — reproduces per-utterance decoding, and
  rejects malformed submissions (0-frame, wrong rank/feature dim) at
  submit time,
* stale CSR/BSPC kernel plans are rebuilt, never silently reused, after
  packed weights are mutated.
"""

import numpy as np
import pytest

from repro import engine, kernels
from repro.errors import ConfigError, ShapeError
from repro.nn.quantize import quantize_model
from repro.nn.tensor import Tensor
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.speech.decoder import decode_utterance
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import make_corpus
from repro.speech.trainer import Trainer, TrainerConfig
from repro.utils.rng import new_rng


def laptop_model(cell_type="gru", seed=0, hidden=24):
    config = AcousticModelConfig(
        input_dim=8, hidden_size=hidden, num_layers=2, cell_type=cell_type
    )
    return GRUAcousticModel(config, rng=seed).eval()


def prune_model(model, col_rate=4, row_rate=2, strips=4, blocks=4):
    masks = bsp_project_masks(
        model.prunable_weights(),
        BSPConfig(
            col_rate=col_rate,
            row_rate=row_rate,
            num_row_strips=strips,
            num_col_blocks=blocks,
        ),
    )
    for name, param in model.prunable_parameters().items():
        param.data[...] = masks[name].apply_to_array(param.data)
    return model


class TestPackingOnlyEquivalence:
    # The packing-only guarantee is defined against the *fused-kernel*
    # (numpy backend) eval path — the plan replays exactly those ops —
    # so the eager side pins that backend: under a reference-backend
    # test run the eager op order differs at float epsilon.
    def test_gru_bit_exact(self, rng):
        model = laptop_model()
        x = rng.standard_normal((13, 3, 8))
        plan = engine.compile_model(model)
        with kernels.use_backend("numpy"):
            expected = model(Tensor(x)).data
        np.testing.assert_array_equal(plan.forward_batch(x), expected)

    def test_lstm_bit_exact(self, rng):
        model = laptop_model(cell_type="lstm", seed=3)
        x = rng.standard_normal((9, 2, 8))
        plan = engine.compile_model(model)
        with kernels.use_backend("numpy"):
            expected = model(Tensor(x)).data
        np.testing.assert_array_equal(plan.forward_batch(x), expected)

    def test_repeated_and_shrinking_batches_reuse_buffers(self, rng):
        # Growing then shrinking batch shapes must not leak stale values
        # from the reused workspace buffers.
        model = laptop_model()
        plan = engine.compile_model(model)
        for shape in [(20, 4, 8), (5, 2, 8), (20, 4, 8), (1, 1, 8)]:
            x = rng.standard_normal(shape)
            with kernels.use_backend("numpy"):
                expected = model(Tensor(x)).data
            np.testing.assert_array_equal(plan.forward_batch(x), expected)

    def test_forward_utterance_matches_batch(self, rng):
        model = laptop_model()
        plan = engine.compile_model(model)
        utterance = rng.standard_normal((11, 8))
        np.testing.assert_array_equal(
            plan.forward_utterance(utterance),
            plan.forward_batch(utterance[:, None, :])[:, 0],
        )

    def test_decodes_identical_on_synthetic_corpus(self):
        train, test = make_corpus(6, 4, seed=5)
        model = GRUAcousticModel(rng=1).eval()
        plan = engine.compile_model(model)
        for example in test.examples:
            eager_logits = model(Tensor(example.features[:, None, :])).data[:, 0]
            assert decode_utterance(
                plan.forward_utterance(example.features), min_duration=2
            ) == decode_utterance(eager_logits, min_duration=2)

    def test_plan_snapshots_weights(self, rng):
        model = laptop_model()
        x = rng.standard_normal((4, 2, 8))
        plan = engine.compile_model(model)
        before = plan.forward_batch(x)
        for param in model.parameters():
            param.data[...] += 1.0
        np.testing.assert_array_equal(plan.forward_batch(x), before)

    def test_zero_length_batch(self):
        plan = engine.compile_model(laptop_model())
        logits = plan.forward_batch(np.zeros((0, 2, 8)))
        assert logits.shape[0] == 0 and logits.shape[1] == 2


class TestSparsePacking:
    @pytest.mark.parametrize("fmt", ["auto", "csr", "bspc"])
    def test_pruned_model_matches_dense_plan(self, fmt, rng):
        model = prune_model(laptop_model())
        x = rng.standard_normal((10, 3, 8))
        eager = model(Tensor(x)).data
        plan = engine.compile_model(
            model,
            config=engine.EngineConfig(
                sparse_format=fmt, num_row_strips=4, num_col_blocks=4
            ),
        )
        np.testing.assert_allclose(plan.forward_batch(x), eager, atol=1e-10)

    def test_compile_rnn_from_weight_dict(self, rng):
        model = prune_model(laptop_model())
        weights = {
            name: param.data.copy()
            for name, param in model.named_parameters()
            if name.startswith("gru.") and param.data.ndim == 2
        }
        plan = engine.compile_rnn(
            weights,
            config=engine.EngineConfig(sparse_format="auto", num_row_strips=4,
                                       num_col_blocks=4),
        )
        x = rng.standard_normal((6, 2, 8))
        hidden = plan.forward_batch(x)
        assert hidden.shape == (6, 2, model.config.hidden_size)
        # Biases are zero in compile_rnn, so compare against a stripped model.
        for name, param in model.named_parameters():
            if param.data.ndim == 1:
                param.data[...] = 0.0
        expected, _ = model.gru(Tensor(x))
        np.testing.assert_allclose(hidden, expected.data, atol=1e-10)

    def test_compile_rnn_rejects_bad_keys(self):
        with pytest.raises(ConfigError):
            engine.compile_rnn({"nope": np.zeros((4, 4))})


class TestPlanCacheInvalidation:
    """Mutating packed sparse weights after ``compile_model`` must not
    leave stale CSR/BSPC kernel plans in use: ``invalidate_plan()`` (the
    documented protocol after in-place writes) and structural-field
    reassignment (automatic) both force a rebuild, and the rebuilt plan
    reflects the mutated weights — not the snapshot the stale plan held.

    These tests exercise the *numpy* plan cache specifically (the
    reference kernels are plan-free and re-read values every call), so
    the forwards pin that backend.
    """

    def sparse_plan(self, fmt, scheme=None):
        config = engine.EngineConfig(
            sparse_format=fmt, num_row_strips=4, num_col_blocks=4
        )
        model = prune_model(laptop_model())
        return model, engine.compile_model(model, scheme=scheme, config=config), config

    def forward(self, plan, x):
        with kernels.use_backend("numpy"):
            return plan.forward_batch(x)

    def recompiled(self, model, scheme, config, x):
        """Forward through a fresh compile of the (mutated) model."""
        return self.forward(
            engine.compile_model(model, scheme=scheme, config=config), x
        )

    def double_layer0_input_weight(self, model):
        for name, param in model.named_parameters():
            if name == "gru.cell0.weight_ih":
                param.data[...] *= 2.0

    def test_csr_int8_plan_rebuilt_after_inplace_mutation(self, rng):
        model, plan, config = self.sparse_plan("csr", scheme="int8")
        x = rng.standard_normal((6, 2, 8))
        baseline = self.forward(plan, x)
        matrix = plan.layers[0].input_proj.matrix
        stale = matrix._int8_kernel_plan  # built eagerly at compile time
        matrix.values *= 2.0  # in-place mutation: invisible to the cache
        matrix.invalidate_plan()
        after = self.forward(plan, x)
        assert matrix._int8_kernel_plan is not stale  # rebuilt, not reused
        assert np.abs(after - baseline).max() > 0.0
        self.double_layer0_input_weight(model)
        np.testing.assert_allclose(
            after, self.recompiled(model, "int8", config, x), atol=1e-10
        )

    def test_bspc_plan_rebuilt_after_inplace_panel_mutation(self, rng):
        model, plan, config = self.sparse_plan("bspc")
        x = rng.standard_normal((6, 2, 8))
        baseline = self.forward(plan, x)
        matrix = plan.layers[0].input_proj.matrix
        stale = matrix._kernel_plan
        for strip in matrix.strips:  # the packed plan copied these panels
            for block in strip.blocks:
                block.panel *= 2.0
        matrix.invalidate_plan()
        after = self.forward(plan, x)
        assert matrix._kernel_plan is not stale
        assert np.abs(after - baseline).max() > 0.0
        self.double_layer0_input_weight(model)
        np.testing.assert_allclose(
            after, self.recompiled(model, None, config, x), atol=1e-10
        )

    def test_structural_reassignment_invalidates_both_plan_caches(self, rng):
        model, plan, config = self.sparse_plan("csr", scheme="int8")
        x = rng.standard_normal((5, 2, 8))
        self.forward(plan, x)
        matrix = plan.layers[0].input_proj.matrix
        assert hasattr(matrix, "_int8_kernel_plan")
        matrix.values = matrix.values * 2.0  # reassignment → auto-drop
        assert not hasattr(matrix, "_kernel_plan")
        assert not hasattr(matrix, "_int8_kernel_plan")
        self.double_layer0_input_weight(model)
        np.testing.assert_allclose(
            self.forward(plan, x),
            self.recompiled(model, "int8", config, x),
            atol=1e-10,
        )


class TestQuantizedPlans:
    def test_fp16_close_to_simulated_eager(self, rng):
        model = laptop_model()
        x = rng.standard_normal((12, 3, 8))
        plan = engine.compile_model(model, scheme="fp16")
        simulated = laptop_model()
        quantize_model(simulated, "fp16")
        expected = simulated(Tensor(x)).data
        # Engine computes in float32 over the same fp16-rounded weights.
        np.testing.assert_allclose(plan.forward_batch(x), expected, atol=1e-3)

    def test_int8_close_to_simulated_eager(self, rng):
        model = laptop_model()
        x = rng.standard_normal((12, 3, 8))
        plan = engine.compile_model(model, scheme="int8")
        simulated = laptop_model()
        quantize_model(simulated, "int8")
        expected = simulated(Tensor(x)).data
        # Activation quantization adds error beyond the weight round-trip.
        scale = np.abs(expected).max()
        assert np.abs(plan.forward_batch(x) - expected).max() < 0.1 * scale

    def test_quantized_smaller_than_packed(self):
        model = laptop_model()
        packed = engine.compile_model(model).nbytes()
        fp16 = engine.compile_model(model, scheme="fp16").nbytes()
        int8 = engine.compile_model(model, scheme="int8").nbytes()
        assert int8 < fp16 < packed

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            engine.compile_model(laptop_model(), scheme="int4")

    def test_quantized_per_matches_simulated_within_tolerance(self):
        # The acceptance-criterion check: a trained model's PER under the
        # engine's real quantized execution stays close to the PER of the
        # simulated (round-tripped weights, float math) eager path.
        train, test = make_corpus(10, 6, seed=2)
        model = GRUAcousticModel(rng=0)
        trainer = Trainer(model, train, test, TrainerConfig(batch_size=4, seed=0))
        trainer.train_dense(3)
        model.eval()
        for scheme in ("fp16", "int8"):
            simulated = GRUAcousticModel(rng=0)
            simulated.load_state_dict(model.state_dict())
            quantize_model(simulated, scheme)
            simulated.eval()
            plan = engine.compile_model(model, scheme=scheme)
            refs, sim_hyps, eng_hyps = [], [], []
            from repro.speech.metrics import collapse_frames, phone_error_rate

            for example in test.examples:
                refs.append(collapse_frames(example.labels))
                logits = simulated(Tensor(example.features[:, None, :])).data[:, 0]
                sim_hyps.append(decode_utterance(logits, min_duration=2))
                eng_hyps.append(
                    decode_utterance(
                        plan.forward_utterance(example.features), min_duration=2
                    )
                )
            sim_per = phone_error_rate(refs, sim_hyps)
            eng_per = phone_error_rate(refs, eng_hyps)
            assert abs(eng_per - sim_per) <= 5.0, (scheme, sim_per, eng_per)


class TestForwardValidation:
    def test_rejects_wrong_rank(self):
        plan = engine.compile_model(laptop_model())
        with pytest.raises(ShapeError):
            plan.forward_batch(np.zeros((4, 8)))

    def test_rejects_wrong_input_dim(self):
        plan = engine.compile_model(laptop_model())
        with pytest.raises(ShapeError):
            plan.forward_batch(np.zeros((4, 2, 9)))

    def test_rejects_bad_lengths(self):
        plan = engine.compile_model(laptop_model())
        x = np.zeros((4, 2, 8))
        with pytest.raises(ShapeError):
            plan.forward_batch(x, lengths=np.array([1, 2, 3]))
        with pytest.raises(ShapeError):
            plan.forward_batch(x, lengths=np.array([5, 1]))


class TestServing:
    def make_plan(self):
        return engine.compile_model(laptop_model())

    def eager_decode(self, plan, utterance):
        if len(utterance) == 0:
            return []
        return decode_utterance(plan.forward_utterance(utterance))

    def test_ragged_stream_matches_per_utterance(self, rng):
        plan = self.make_plan()
        lengths = [1, 1, 7, 30, 30, 30, 2, 55, 16]
        utterances = [rng.standard_normal((t, 8)) for t in lengths]
        hypotheses, stats = engine.serve_stream(plan, utterances)
        assert hypotheses == [self.eager_decode(plan, u) for u in utterances]
        assert stats.utterances == len(lengths)
        assert stats.batched_utterances == len(lengths)
        assert stats.real_frames == sum(lengths)
        assert stats.batch_frames >= stats.real_frames

    def test_submit_rejects_empty_utterance_at_submit_time(self):
        batcher = engine.MicroBatcher(self.make_plan())
        with pytest.raises(ShapeError):
            batcher.submit(np.zeros((0, 8)))
        # Nothing was queued and no id was burned by the rejection.
        assert batcher.pending() == 0
        assert batcher.stats.utterances == 0

    def test_submit_rejects_wrong_rank_and_dim_at_submit_time(self, rng):
        batcher = engine.MicroBatcher(self.make_plan())
        with pytest.raises(ShapeError):
            batcher.submit(np.zeros(8))  # rank 1
        with pytest.raises(ShapeError):
            batcher.submit(np.zeros((4, 2, 8)))  # rank 3
        with pytest.raises(ShapeError):
            batcher.submit(np.zeros((4, 9)))  # wrong feature dim
        # A bad submission must not poison the batch for good utterances.
        good = rng.standard_normal((6, 8))
        uid = batcher.submit(good)
        batcher.flush()
        assert batcher.result(uid) == self.eager_decode(batcher.plan, good)

    def test_full_bucket_runs_eagerly(self, rng):
        plan = self.make_plan()
        config = engine.ServingConfig(max_batch_size=3, bucket_width=10)
        batcher = engine.MicroBatcher(plan, config)
        ids = [batcher.submit(rng.standard_normal((8, 8))) for _ in range(3)]
        assert batcher.pending() == 0  # flushed the moment it filled
        assert all(isinstance(batcher.result(uid), list) for uid in ids)
        straggler = rng.standard_normal((9, 8))
        extra = batcher.submit(straggler)
        assert batcher.pending() == 1
        with pytest.raises(KeyError):
            batcher.result(extra)
        batcher.flush()
        assert batcher.result(extra) == self.eager_decode(plan, straggler)

    def test_bucketing_separates_lengths(self, rng):
        plan = self.make_plan()
        config = engine.ServingConfig(max_batch_size=8, bucket_width=10)
        batcher = engine.MicroBatcher(plan, config)
        batcher.submit(rng.standard_normal((5, 8)))
        batcher.submit(rng.standard_normal((25, 8)))
        assert len(batcher._pending) == 2
        batcher.flush()
        assert batcher.stats.batches == 2

    def test_rejects_wrong_feature_dim(self):
        batcher = engine.MicroBatcher(self.make_plan())
        with pytest.raises(ShapeError):
            batcher.submit(np.zeros((4, 9)))

    def test_serve_stream_propagates_submit_validation(self, rng):
        plan = self.make_plan()
        with pytest.raises(ShapeError):
            engine.serve_stream(
                plan, [rng.standard_normal((5, 8)), np.zeros((0, 8))]
            )

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            engine.ServingConfig(max_batch_size=0)
        with pytest.raises(ConfigError):
            engine.ServingConfig(bucket_width=0)

    def test_stats_padding_overhead(self, rng):
        plan = self.make_plan()
        config = engine.ServingConfig(max_batch_size=2, bucket_width=100)
        _, stats = engine.serve_stream(
            plan, [rng.standard_normal((10, 8)), rng.standard_normal((20, 8))], config
        )
        assert stats.batches == 1
        assert stats.batch_frames == 40 and stats.real_frames == 30
        assert stats.padding_overhead == pytest.approx(0.25)
        assert stats.mean_batch_size == 2.0


class TestServeBenchHarness:
    def test_runs_and_packing_row_matches_eager(self):
        from repro.eval.serve_bench import (
            ServeBenchConfig,
            render_serve_bench,
            run_serve_bench,
        )

        result = run_serve_bench(
            ServeBenchConfig(
                num_utterances=6, hidden_size=16, repeats=1, schemes=(None,)
            )
        )
        assert len(result.rows) == 2
        packed = result.rows[1]
        assert packed.decode_match == 1.0
        assert packed.weight_bytes is not None
        rendered = render_serve_bench(result)
        assert "eager per-utterance" in rendered and "engine[packed]" in rendered
        assert len(result.to_rows()) == 2
