"""Tests for BSP (repro.pruning.bsp) — the paper's Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.bsp import BSPConfig, BSPPruner, bsp_project_masks
from repro.sparse.blocks import grid_for


def params_for(rng, shapes=((12, 16), (12, 12))):
    return {
        f"w{i}": Parameter(rng.standard_normal(shape))
        for i, shape in enumerate(shapes)
    }


class TestBSPConfig:
    def test_nominal_compression(self):
        assert BSPConfig(col_rate=16, row_rate=2).nominal_compression == 32

    def test_rejects_sub_one_rates(self):
        with pytest.raises(ConfigError):
            BSPConfig(col_rate=0.5)
        with pytest.raises(ConfigError):
            BSPConfig(row_rate=0.0)

    def test_rejects_bad_rho(self):
        with pytest.raises(ConfigError):
            BSPConfig(rho=-1.0)

    def test_rejects_zero_strips(self):
        with pytest.raises(ConfigError):
            BSPConfig(num_row_strips=0)


class TestProjectMasks:
    def test_structure_block_columns_and_rows(self, rng):
        w = rng.standard_normal((16, 16))
        config = BSPConfig(
            col_rate=4, row_rate=2, num_row_strips=4, num_col_blocks=4
        )
        mask = bsp_project_masks({"w": w}, config)["w"]
        grid = grid_for(w, 4, 4)
        kept_rows = mask.keep.any(axis=1)
        # Row structure: exactly ceil(16/2)=8 surviving rows.
        assert kept_rows.sum() == 8
        # Block-column structure: within each block, surviving rows share
        # the same kept-column set.
        for region in grid.regions():
            rs, cs = region.slice()
            block = mask.keep[rs, cs]
            alive = block.any(axis=1)
            if alive.sum() > 1:
                rows = block[alive]
                assert np.all(rows == rows[0])

    def test_compression_approximates_nominal(self, rng):
        w = rng.standard_normal((64, 64))
        config = BSPConfig(col_rate=8, row_rate=2, num_row_strips=4, num_col_blocks=4)
        mask = bsp_project_masks({"w": w}, config)["w"]
        assert mask.compression_rate() == pytest.approx(16.0, rel=0.3)

    def test_rate_one_keeps_all(self, rng):
        w = rng.standard_normal((8, 8))
        mask = bsp_project_masks(
            {"w": w}, BSPConfig(col_rate=1, row_rate=1, num_row_strips=2, num_col_blocks=2)
        )["w"]
        assert mask.nnz == 64

    def test_multiple_matrices(self, rng):
        masks = bsp_project_masks(
            {"a": rng.standard_normal((8, 8)), "b": rng.standard_normal((12, 8))},
            BSPConfig(col_rate=4, row_rate=1, num_row_strips=2, num_col_blocks=2),
        )
        assert len(masks) == 2

    def test_deterministic(self, rng):
        w = rng.standard_normal((8, 8))
        config = BSPConfig(col_rate=4, row_rate=2, num_row_strips=2, num_col_blocks=2)
        a = bsp_project_masks({"w": w.copy()}, config)["w"]
        b = bsp_project_masks({"w": w.copy()}, config)["w"]
        np.testing.assert_array_equal(a.keep, b.keep)


class FakeEpoch:
    """Drives pruner hooks as a training epoch would, with tiny updates."""

    def __init__(self, params, rng, batches=3):
        self.params = params
        self.rng = rng
        self.batches = batches

    def run(self, pruner):
        for _ in range(self.batches):
            for param in self.params.values():
                param.grad = 0.01 * self.rng.standard_normal(param.data.shape)
            pruner.on_batch_backward()
            for param in self.params.values():
                param.data -= 0.01 * param.grad
            pruner.on_batch_end()
        pruner.on_epoch_end()


class TestPhaseMachine:
    def config(self, **kw):
        defaults = dict(
            col_rate=4,
            row_rate=2,
            num_row_strips=2,
            num_col_blocks=2,
            step1_admm_epochs=2,
            step1_retrain_epochs=1,
            step2_admm_epochs=2,
            step2_retrain_epochs=1,
        )
        defaults.update(kw)
        return BSPConfig(**defaults)

    def test_initial_phase(self, rng):
        pruner = BSPPruner(params_for(rng), self.config())
        assert pruner.phase == "step1_admm"
        assert not pruner.finished

    def test_full_phase_sequence(self, rng):
        params = params_for(rng)
        pruner = BSPPruner(params, self.config())
        epoch = FakeEpoch(params, rng)
        phases = [pruner.phase]
        for _ in range(6):
            epoch.run(pruner)
            phases.append(pruner.phase)
        assert phases == [
            "step1_admm",
            "step1_admm",
            "step1_retrain",
            "step2_admm",
            "step2_admm",
            "step2_retrain",
            "done",
        ]
        assert pruner.finished

    def test_zero_epoch_phases_skip(self, rng):
        params = params_for(rng)
        pruner = BSPPruner(
            params,
            self.config(
                step1_admm_epochs=1,
                step1_retrain_epochs=0,
                step2_admm_epochs=0,
                step2_retrain_epochs=0,
            ),
        )
        FakeEpoch(params, rng).run(pruner)
        assert pruner.finished

    def test_masks_none_before_step1_done(self, rng):
        pruner = BSPPruner(params_for(rng), self.config())
        assert pruner.masks is None

    def test_masks_after_step1(self, rng):
        params = params_for(rng)
        pruner = BSPPruner(params, self.config(step1_admm_epochs=1))
        FakeEpoch(params, rng).run(pruner)
        assert pruner.phase == "step1_retrain"
        assert pruner.masks is not None

    def test_final_masks_enforced_on_weights(self, rng):
        params = params_for(rng)
        pruner = BSPPruner(params, self.config())
        epoch = FakeEpoch(params, rng)
        while not pruner.finished:
            epoch.run(pruner)
        for name, param in params.items():
            mask = pruner.masks[name]
            assert np.all(param.data[~mask.keep] == 0.0)

    def test_ramp_rate_monotone_nondecreasing(self, rng):
        params = params_for(rng)
        pruner = BSPPruner(params, self.config(step1_admm_epochs=4))
        epoch = FakeEpoch(params, rng)
        rates = [pruner._ramp_rate]
        for _ in range(3):
            epoch.run(pruner)
            rates.append(pruner._ramp_rate)
        assert all(b >= a for a, b in zip(rates, rates[1:]))
        assert rates[-1] == pytest.approx(4.0)

    def test_final_compression_combines_steps(self, rng):
        params = params_for(rng, shapes=((16, 16),))
        pruner = BSPPruner(params, self.config())
        epoch = FakeEpoch(params, rng)
        while not pruner.finished:
            epoch.run(pruner)
        # col 4 x row 2 = ~8x
        assert pruner.masks.compression_rate() == pytest.approx(8.0, rel=0.35)

    def test_training_after_done_keeps_masks(self, rng):
        params = params_for(rng)
        pruner = BSPPruner(params, self.config())
        epoch = FakeEpoch(params, rng)
        while not pruner.finished:
            epoch.run(pruner)
        masks = pruner.masks
        epoch.run(pruner)  # extra epoch after done
        for name, param in params.items():
            assert np.all(param.data[~masks[name].keep] == 0.0)

    def test_primal_residual_zero_outside_admm(self, rng):
        params = params_for(rng)
        pruner = BSPPruner(params, self.config(step1_admm_epochs=1))
        FakeEpoch(params, rng).run(pruner)  # now in step1_retrain
        assert pruner.primal_residual() == 0.0

    def test_step2_respects_step1_structure(self, rng):
        params = params_for(rng, shapes=((16, 16),))
        pruner = BSPPruner(params, self.config())
        epoch = FakeEpoch(params, rng)
        while not pruner.finished:
            epoch.run(pruner)
        combined = pruner.masks["w0"]
        step1 = pruner.step1_masks["w0"]
        # Combined mask can only remove weights relative to step 1.
        assert np.all(~combined.keep | step1.keep)


@settings(max_examples=20, deadline=None)
@given(
    col_rate=st.floats(1.0, 8.0),
    row_rate=st.floats(1.0, 4.0),
    seed=st.integers(0, 100),
)
def test_property_bsp_masks_row_counts(col_rate, row_rate, seed):
    """Step 2 always keeps exactly ceil(rows/row_rate) rows."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((12, 12))
    mask = bsp_project_masks(
        {"w": w},
        BSPConfig(col_rate=col_rate, row_rate=row_rate, num_row_strips=3,
                  num_col_blocks=3),
    )["w"]
    expected_rows = int(np.ceil(12 / row_rate))
    assert mask.keep.any(axis=1).sum() == min(12, expected_rows)
