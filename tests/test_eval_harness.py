"""Tests for the experiment harnesses (repro.eval)."""

import numpy as np
import pytest

from repro.eval.figure4 import figure4_from_table2, render_figure4, run_figure4
from repro.eval.paper_data import (
    BSP_SWEEP,
    TABLE1,
    TABLE2,
    figure4_paper_speedups,
)
from repro.eval.report import fmt, format_table
from repro.eval.table1 import Table1Config, Table1Entry, run_table1, render_table1
from repro.eval.table2 import (
    Table2Config,
    paper_scale_weights,
    render_table2,
    run_table2,
)

# A laptop-fast Table II configuration used throughout this module.  The
# hidden size must be large enough that compute (not launch overhead)
# dominates the dense model, or compression cannot show a speedup.
FAST_T2 = Table2Config(
    hidden_size=192,
    input_dim=40,
    num_row_strips=4,
    num_col_blocks=4,
    timesteps=20,
    sweep=((1.0, 1.0, 1.0), (10.0, 1.0, 10.0), (16.0, 16.0, 103.0)),
)


class TestPaperData:
    def test_table1_bsp_rows_sorted_by_rate(self):
        rates = [r.overall_rate for r in TABLE1 if r.method == "BSP"]
        assert rates == sorted(rates)

    def test_table1_degradation_consistent(self):
        for row in TABLE1:
            if row.per_baseline is not None and row.per_pruned is not None:
                assert row.per_degradation == pytest.approx(
                    row.per_pruned - row.per_baseline, abs=0.02
                )

    def test_table2_monotone_latency(self):
        gpu = [r.gpu_time_us for r in TABLE2]
        assert gpu == sorted(gpu, reverse=True)

    def test_table2_gop_decreases(self):
        gop = [r.gop for r in TABLE2]
        assert gop == sorted(gop, reverse=True)

    def test_sweep_matches_table2_labels(self):
        assert [s[2] for s in BSP_SWEEP] == [r.compression for r in TABLE2]

    def test_figure4_derivation(self):
        points = figure4_paper_speedups()
        assert points[0][1] == pytest.approx(1.0)
        assert points[-1][1] == pytest.approx(3590.12 / 79.13, rel=1e-6)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.split("\n")
        assert len(lines) == 4
        assert lines[0].index("bb") == lines[2].index("2")

    def test_format_table_title(self):
        out = format_table(["x"], [["1"]], title="T")
        assert out.startswith("T\n")

    def test_format_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])

    def test_fmt_none(self):
        assert fmt(None) == "–"

    def test_fmt_float_precision(self):
        assert fmt(1.23456, 2) == "1.23"
        assert fmt(5, 2) == "5"


class TestTable2Harness:
    def test_runs_and_shapes(self):
        result = run_table2(FAST_T2)
        assert len(result.entries) == 3
        assert result.dense.label_rate == 1.0

    def test_latency_decreases_with_compression(self):
        result = run_table2(FAST_T2)
        gpu = [e.gpu_time_us for e in result.entries]
        assert gpu[0] > gpu[1] > gpu[2]
        cpu = [e.cpu_time_us for e in result.entries]
        assert cpu[0] > cpu[1] > cpu[2]

    def test_efficiency_increases_with_compression(self):
        result = run_table2(FAST_T2)
        eff = [e.gpu_efficiency for e in result.entries]
        assert eff[0] < eff[1] < eff[2]

    def test_gop_matches_compression(self):
        result = run_table2(FAST_T2)
        dense = result.entries[0]
        for entry in result.entries[1:]:
            assert entry.gop == pytest.approx(
                dense.gop / entry.measured_rate, rel=0.05
            )

    def test_paper_scale_weights_shapes(self):
        weights = paper_scale_weights(Table2Config(hidden_size=64, input_dim=24))
        assert weights["gru.cell0.weight_ih"].shape == (192, 24)
        assert weights["gru.cell1.weight_hh"].shape == (192, 64)

    def test_render_contains_paper_columns(self):
        out = render_table2(run_table2(FAST_T2))
        assert "paper" in out
        assert "103x" in out

    def test_deterministic(self):
        a = run_table2(FAST_T2)
        b = run_table2(FAST_T2)
        assert a.entries[1].gpu_time_us == b.entries[1].gpu_time_us


class TestFigure4Harness:
    def test_speedup_starts_at_one(self):
        figure = run_figure4(FAST_T2)
        assert figure.points[0].gpu_speedup == pytest.approx(1.0)
        assert figure.points[0].cpu_speedup == pytest.approx(1.0)

    def test_speedup_grows_with_compression(self):
        figure = run_figure4(FAST_T2)
        gpu = figure.gpu_series()
        assert gpu[-1] > gpu[1] > gpu[0]

    def test_derivation_from_table2_consistent(self):
        table2 = run_table2(FAST_T2)
        figure = figure4_from_table2(table2)
        assert figure.points[2].gpu_speedup == pytest.approx(
            table2.entries[0].gpu_time_us / table2.entries[2].gpu_time_us
        )

    def test_render(self):
        out = render_figure4(run_figure4(FAST_T2))
        assert "GPU speedup" in out
        assert "#" in out

    def test_plateau_ratio_defined(self):
        figure = run_figure4(FAST_T2)
        assert figure.plateau_ratio() > 0


class TestTable1Harness:
    """Uses a deliberately tiny configuration — minutes-scale correctness
    is covered by the benchmark; here we verify mechanics."""

    TINY = Table1Config(
        hidden_size=24,
        num_train=8,
        num_test=4,
        noise_level=0.4,
        dense_epochs=2,
        admm_epochs=1,
        retrain_epochs=1,
        num_row_strips=2,
        num_col_blocks=2,
        bsp_sweep=((1.0, 1.0, 1.0), (4.0, 2.0, 8.0)),
        include_baselines=False,
    )

    def test_runs_and_entry_fields(self):
        result = run_table1(self.TINY)
        assert len(result.entries) == 2
        dense = result.entries[0]
        assert dense.measured_rate == 1.0
        assert dense.per_pruned == result.dense_per
        pruned = result.entries[1]
        assert pruned.measured_rate > 1.0
        assert pruned.params_kept < dense.params_kept

    def test_degradation_property(self):
        entry = Table1Entry(
            method="BSP", label_rate=8, measured_rate=8,
            per_baseline=10.0, per_pruned=12.5, params_kept=100,
        )
        assert entry.degradation == pytest.approx(2.5)

    def test_with_baselines(self):
        config = Table1Config(
            hidden_size=24, num_train=8, num_test=4, noise_level=0.4,
            dense_epochs=1, admm_epochs=1, retrain_epochs=0,
            num_row_strips=2, num_col_blocks=2,
            bsp_sweep=((1.0, 1.0, 1.0),), include_baselines=True,
        )
        result = run_table1(config)
        methods = {e.method for e in result.entries}
        assert "ESE-style magnitude" in methods
        assert "BBS" in methods
        assert "C-LSTM-style circulant" in methods
        assert "E-RNN-style ADMM circulant" in methods
        assert "Row-structured" in methods

    def test_render(self):
        out = render_table1(run_table1(self.TINY))
        assert "paper degrad" in out
        assert "BSP" in out

    def test_fast_preset_valid(self):
        config = Table1Config.fast()
        assert config.dense_epochs > 0
        assert len(config.bsp_sweep) == 3
