"""Tests for repro.nn.functional."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.conftest import check_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((5, 7)))).data
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5))

    def test_stable_for_large_logits(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]])).data
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((4, 6)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12
        )

    def test_softmax_grad(self, rng):
        w = np.arange(12.0).reshape(3, 4)
        check_gradient(
            lambda t: (F.softmax(t) * w).sum(), rng.standard_normal((3, 4))
        )

    def test_log_softmax_grad(self, rng):
        w = rng.standard_normal((3, 4))
        check_gradient(
            lambda t: (F.log_softmax(t) * w).sum(), rng.standard_normal((3, 4))
        )

    def test_softmax_axis0(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((5, 7))), axis=0).data
        np.testing.assert_allclose(out.sum(axis=0), np.ones(7))


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.standard_normal((6, 4))
        targets = rng.integers(0, 4, 6)
        loss = F.cross_entropy(Tensor(logits), targets)
        expected = -np.mean(
            np.log(
                np.exp(logits)[np.arange(6), targets] / np.exp(logits).sum(axis=1)
            )
        )
        np.testing.assert_allclose(float(loss.data), expected, atol=1e-10)

    def test_gradient(self, rng):
        targets = rng.integers(0, 4, 5)
        check_gradient(
            lambda t: F.cross_entropy(t, targets), rng.standard_normal((5, 4))
        )

    def test_gradient_with_mask(self, rng):
        targets = rng.integers(0, 4, 5)
        mask = np.array([1.0, 0.0, 1.0, 1.0, 0.0])
        check_gradient(
            lambda t: F.cross_entropy(t, targets, weight_mask=mask),
            rng.standard_normal((5, 4)),
        )

    def test_masked_frames_do_not_contribute(self, rng):
        logits = rng.standard_normal((4, 3))
        targets = np.array([0, 1, 2, 0])
        mask = np.array([1.0, 1.0, 0.0, 0.0])
        masked = F.cross_entropy(Tensor(logits), targets, weight_mask=mask)
        only_first_two = F.cross_entropy(Tensor(logits[:2]), targets[:2])
        np.testing.assert_allclose(float(masked.data), float(only_first_two.data))

    def test_stable_for_extreme_logits(self):
        logits = np.array([[1000.0, -1000.0]])
        loss = F.cross_entropy(Tensor(logits), np.array([0]))
        assert np.isfinite(loss.data)
        np.testing.assert_allclose(float(loss.data), 0.0, atol=1e-9)

    def test_rejects_bad_logit_shape(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, dtype=int))

    def test_rejects_mismatched_targets(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(Tensor(np.zeros((3, 4))), np.zeros(2, dtype=int))

    def test_rejects_out_of_range_targets(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 3]))

    def test_rejects_bad_mask_shape(self):
        with pytest.raises(ShapeError):
            F.cross_entropy(
                Tensor(np.zeros((3, 4))), np.zeros(3, dtype=int), weight_mask=np.ones(2)
            )

    def test_uniform_logits_loss_is_log_c(self):
        loss = F.cross_entropy(Tensor(np.zeros((5, 8))), np.zeros(5, dtype=int))
        np.testing.assert_allclose(float(loss.data), np.log(8.0))


class TestMSE:
    def test_value(self, rng):
        pred = rng.standard_normal((3, 4))
        target = rng.standard_normal((3, 4))
        loss = F.mse_loss(Tensor(pred), target)
        np.testing.assert_allclose(float(loss.data), np.mean((pred - target) ** 2))

    def test_gradient(self, rng):
        target = rng.standard_normal((3, 4))
        check_gradient(lambda t: F.mse_loss(t, target), rng.standard_normal((3, 4)))

    def test_zero_at_target(self, rng):
        target = rng.standard_normal((3,))
        assert float(F.mse_loss(Tensor(target.copy()), target).data) == 0.0


class TestElementwiseWrappers:
    def test_sigmoid_wrapper(self, rng):
        x = rng.standard_normal(5)
        np.testing.assert_allclose(
            F.sigmoid(Tensor(x)).data, 1 / (1 + np.exp(-x))
        )

    def test_tanh_wrapper(self, rng):
        x = rng.standard_normal(5)
        np.testing.assert_allclose(F.tanh(Tensor(x)).data, np.tanh(x))

    def test_relu_wrapper(self):
        np.testing.assert_allclose(F.relu(Tensor([-1.0, 2.0])).data, [0.0, 2.0])
