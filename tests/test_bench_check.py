"""The run_bench --check gate's baseline handling (benchmarks/run_bench.py).

A baseline file that is unreadable, malformed, or missing a row must
fail with a message naming the file and the problem — never with a
KeyError/JSONDecodeError traceback — and a *current* row no baseline
knows about must be reported as unrecorded instead of silently passing.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "run_bench",
    Path(__file__).resolve().parents[1] / "benchmarks" / "run_bench.py",
)
run_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(run_bench)


def row(op="spmv", size="s", backend="numpy", median_s=1.0, speedup=2.0):
    return {
        "op": op,
        "size": size,
        "backend": backend,
        "median_s": median_s,
        "speedup_vs_baseline": speedup,
        "baseline": "reference",
    }


class TestLoadBaselineRows:
    def write(self, tmp_path, payload):
        path = tmp_path / "BENCH_x.json"
        path.write_text(payload if isinstance(payload, str) else json.dumps(payload))
        return path

    def test_valid_file_round_trips(self, tmp_path):
        path = self.write(tmp_path, {"meta": {}, "results": [row()]})
        assert run_bench.load_baseline_rows(path) == [row()]

    def test_missing_file_names_the_path(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read baseline"):
            run_bench.load_baseline_rows(tmp_path / "nope.json")

    def test_invalid_json_reported(self, tmp_path):
        path = self.write(tmp_path, "{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            run_bench.load_baseline_rows(path)

    def test_missing_results_key_reported(self, tmp_path):
        path = self.write(tmp_path, {"meta": {}})
        with pytest.raises(SystemExit, match="no 'results' key"):
            run_bench.load_baseline_rows(path)

    def test_non_list_results_reported(self, tmp_path):
        path = self.write(tmp_path, {"results": {"op": "x"}})
        with pytest.raises(SystemExit, match="must be a list"):
            run_bench.load_baseline_rows(path)

    def test_malformed_row_names_missing_fields(self, tmp_path):
        bad = {k: v for k, v in row().items() if k != "median_s"}
        path = self.write(tmp_path, {"results": [row(), bad]})
        with pytest.raises(SystemExit, match=r"results\[1\].*median_s"):
            run_bench.load_baseline_rows(path)


class TestCheckAgainst:
    def test_clean_check_passes(self):
        assert run_bench.check_against([row()], [row()], threshold=1.5) == []

    def test_recorded_row_missing_from_current(self):
        problems = run_bench.check_against([row()], [], threshold=1.5)
        assert len(problems) == 1
        assert "recorded but not re-run" in problems[0]

    def test_slowdown_reported(self):
        slow = row(median_s=10.0, speedup=2.0)
        problems = run_bench.check_against([row()], [slow], threshold=1.5)
        assert any("10000.000ms" in p for p in problems)

    def test_speedup_collapse_reported(self):
        collapsed = row(speedup=0.1)
        problems = run_bench.check_against([row()], [collapsed], threshold=1.5)
        assert any("speedup vs in-run baseline" in p for p in problems)

    def test_self_baselined_row_exempt_from_absolute(self):
        # A row that is its op's own in-run baseline (backend == baseline,
        # like the tile_ranking row) measures machine speed; only its
        # tracked ratio can fail it.
        recorded = row(backend="reference", median_s=0.01, speedup=0.35)
        slow_host = row(backend="reference", median_s=1.0, speedup=0.34)
        assert run_bench.check_against([recorded], [slow_host], 1.5) == []
