"""Tests for the matrix-reorder pass (repro.compiler.reorder)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.reorder import identity_groups, reorder_rows, row_signature
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.sparse.blocks import BlockGrid, grid_for


def bsp_mask(rng, shape=(16, 16), col_rate=4.0, row_rate=2.0, strips=4, blocks=4):
    w = rng.standard_normal(shape)
    masks = bsp_project_masks(
        {"w": w},
        BSPConfig(col_rate=col_rate, row_rate=row_rate, num_row_strips=strips,
                  num_col_blocks=blocks),
    )
    return masks["w"].keep, grid_for(w, strips, blocks)


class TestRowSignature:
    def test_signature_lists_touched_blocks(self):
        grid = BlockGrid(1, 8, 1, 4)
        row = np.array([1, 0, 0, 0, 0, 0, 1, 0], dtype=bool)
        assert row_signature(row, grid) == (0, 3)

    def test_empty_row_signature(self):
        grid = BlockGrid(1, 8, 1, 4)
        assert row_signature(np.zeros(8, dtype=bool), grid) == ()


class TestReorderRows:
    def test_permutation_is_valid(self, rng):
        mask, grid = bsp_mask(rng)
        permutation, _ = reorder_rows(mask, grid)
        assert sorted(permutation.tolist()) == list(range(16))

    def test_groups_cover_alive_rows_exactly(self, rng):
        mask, grid = bsp_mask(rng)
        _, groups = reorder_rows(mask, grid)
        alive = set(np.flatnonzero(mask.any(axis=1)).tolist())
        grouped = [int(r) for g in groups for r in g.rows]
        assert sorted(grouped) == sorted(alive)
        assert len(grouped) == len(set(grouped))

    def test_dead_rows_at_permutation_tail(self, rng):
        mask, grid = bsp_mask(rng, row_rate=2.0)
        permutation, groups = reorder_rows(mask, grid)
        num_alive = sum(g.num_rows for g in groups)
        tail = permutation[num_alive:]
        assert np.all(~mask[tail].any(axis=1))

    def test_rows_in_group_share_signature(self, rng):
        mask, grid = bsp_mask(rng)
        _, groups = reorder_rows(mask, grid)
        for group in groups:
            signatures = {row_signature(mask[r], grid) for r in group.rows}
            assert len(signatures) == 1
            assert signatures.pop() == group.pattern_key

    def test_nnz_per_row_correct(self, rng):
        mask, grid = bsp_mask(rng)
        _, groups = reorder_rows(mask, grid)
        for group in groups:
            np.testing.assert_array_equal(
                group.nnz_per_row, mask[group.rows].sum(axis=1)
            )

    def test_unique_cols_correct(self, rng):
        mask, grid = bsp_mask(rng)
        _, groups = reorder_rows(mask, grid)
        for group in groups:
            assert group.unique_cols == int(np.any(mask[group.rows], axis=0).sum())

    def test_groups_sorted_by_work(self, rng):
        mask, grid = bsp_mask(rng)
        _, groups = reorder_rows(mask, grid)
        works = [g.total_nnz for g in groups]
        assert works == sorted(works, reverse=True)

    def test_semantics_preserved_under_permutation(self, rng):
        """Executing rows in permuted order then unpermuting outputs equals
        the original product — the pass's correctness contract."""
        w = rng.standard_normal((16, 16))
        masks = bsp_project_masks(
            {"w": w}, BSPConfig(col_rate=4, row_rate=2, num_row_strips=4,
                                num_col_blocks=4)
        )
        pruned = masks["w"].apply_to_array(w)
        grid = grid_for(w, 4, 4)
        permutation, _ = reorder_rows(pruned != 0, grid)
        x = rng.standard_normal(16)
        reordered_out = pruned[permutation] @ x
        restored = np.empty_like(reordered_out)
        restored[np.argsort(np.argsort(permutation))] = 0  # placate linters
        inverse = np.argsort(permutation)
        np.testing.assert_allclose(reordered_out[inverse], pruned @ x)

    def test_dense_mask_single_group(self, rng):
        mask = np.ones((8, 8), dtype=bool)
        grid = BlockGrid(8, 8, 2, 2)
        _, groups = reorder_rows(mask, grid)
        assert len(groups) == 1
        assert groups[0].num_rows == 8

    def test_all_zero_mask(self):
        grid = BlockGrid(4, 4, 2, 2)
        permutation, groups = reorder_rows(np.zeros((4, 4), dtype=bool), grid)
        assert groups == []
        assert sorted(permutation.tolist()) == [0, 1, 2, 3]


class TestIdentityGroups:
    def test_single_group_original_order(self, rng):
        mask, _ = bsp_mask(rng, row_rate=1.0)
        permutation, groups = identity_groups(mask)
        assert len(groups) == 1
        np.testing.assert_array_equal(groups[0].rows, np.arange(16))

    def test_dead_rows_excluded_from_group(self, rng):
        mask, _ = bsp_mask(rng, row_rate=2.0)
        _, groups = identity_groups(mask)
        alive = np.flatnonzero(mask.any(axis=1))
        np.testing.assert_array_equal(groups[0].rows, alive)

    def test_all_zero(self):
        permutation, groups = identity_groups(np.zeros((4, 4), dtype=bool))
        assert groups == []
        assert len(permutation) == 4


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(2, 20),
    cols=st.integers(2, 20),
    density=st.floats(0.0, 1.0),
    seed=st.integers(0, 10_000),
)
def test_property_reorder_permutation_always_valid(rows, cols, density, seed):
    """Any mask yields a complete permutation and disjoint groups."""
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    grid = BlockGrid(rows, cols, min(2, rows), min(2, cols))
    permutation, groups = reorder_rows(mask, grid)
    assert sorted(permutation.tolist()) == list(range(rows))
    grouped = [int(r) for g in groups for r in g.rows]
    assert len(grouped) == len(set(grouped))
    assert sorted(grouped) == sorted(np.flatnonzero(mask.any(axis=1)).tolist())
