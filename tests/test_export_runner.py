"""Tests for result export (repro.eval.export) and the CLI runner."""

import csv
import json

import numpy as np
import pytest

from repro.eval.export import load_json, result_rows, to_csv, to_json
from repro.eval.figure4 import Figure4Point, Figure4Result
from repro.eval.runner import build_parser, main
from repro.eval.table1 import Table1Entry, Table1Result
from repro.eval.table2 import Table2Entry, Table2Result


@pytest.fixture
def table2_result():
    return Table2Result(
        entries=[
            Table2Entry(1.0, 1.0, 0.58, 3500.0, 160.0, 0.9, 7000.0, 80.0, 0.25),
            Table2Entry(10.0, 9.9, 0.058, 450.0, 130.0, 7.0, 900.0, 45.0, 2.0),
        ]
    )


@pytest.fixture
def table1_result():
    return Table1Result(
        dense_per=5.3,
        entries=[
            Table1Entry("BSP", 1.0, 1.0, 5.3, 5.3, 1000),
            Table1Entry("BSP", 10.0, 8.0, 5.3, 5.8, 125),
        ],
    )


@pytest.fixture
def figure4_result():
    return Figure4Result(
        points=[
            Figure4Point(1.0, 1.0, 1.0, 1.0),
            Figure4Point(10.0, 9.9, 7.8, 7.7),
        ]
    )


class TestRows:
    def test_table1_rows(self, table1_result):
        rows = result_rows(table1_result)
        assert len(rows) == 2
        assert rows[1]["degradation"] == pytest.approx(0.5)
        assert rows[1]["params_kept"] == 125

    def test_table2_rows(self, table2_result):
        rows = result_rows(table2_result)
        assert rows[0]["gpu_time_us"] == 3500.0
        assert set(rows[0]) >= {"gop", "cpu_efficiency", "measured_rate"}

    def test_figure4_rows(self, figure4_result):
        rows = result_rows(figure4_result)
        assert rows[1]["gpu_speedup"] == 7.8

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            result_rows("not a result")


class TestFiles:
    def test_json_round_trip(self, table2_result, tmp_path):
        path = tmp_path / "t2.json"
        to_json(table2_result, path)
        rows = load_json(path)
        assert rows == result_rows(table2_result)

    def test_csv_readable(self, table1_result, tmp_path):
        path = tmp_path / "t1.csv"
        to_csv(table1_result, path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["method"] == "BSP"

    def test_csv_empty_result(self, tmp_path):
        path = tmp_path / "empty.csv"
        to_csv(Figure4Result(points=[]), path)
        assert path.read_text() == ""


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        for command in ("table1", "table2", "figure4", "all"):
            args = parser.parse_args([command] if command != "all" else ["all"])
            assert args.command == command

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure4_command_end_to_end(self, tmp_path, capsys, monkeypatch):
        # Patch the sweep to a fast configuration so the CLI test is quick.
        import repro.eval.runner as runner
        from repro.eval.table2 import Table2Config

        fast = Table2Config(
            hidden_size=64, input_dim=24, timesteps=5,
            sweep=((1.0, 1.0, 1.0), (10.0, 1.0, 10.0)),
        )
        monkeypatch.setattr(runner, "Table2Config", lambda: fast)
        out = tmp_path / "fig4.json"
        assert main(["figure4", "--json", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "GPU speedup" in captured
        rows = json.loads(out.read_text())
        assert len(rows) == 2
        assert rows[0]["gpu_speedup"] == pytest.approx(1.0)

    def test_table2_command_csv(self, tmp_path, capsys, monkeypatch):
        import repro.eval.runner as runner
        from repro.eval.table2 import Table2Config

        fast = Table2Config(
            hidden_size=64, input_dim=24, timesteps=5,
            sweep=((1.0, 1.0, 1.0),),
        )
        monkeypatch.setattr(runner, "Table2Config", lambda: fast)
        out = tmp_path / "t2.csv"
        assert main(["table2", "--csv", str(out)]) == 0
        assert out.exists()
        assert "Table II" in capsys.readouterr().out
