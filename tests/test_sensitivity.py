"""Tests for per-layer sensitivity analysis (repro.pruning.sensitivity)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.bsp import BSPConfig
from repro.pruning.sensitivity import (
    allocate_rates,
    probe_sensitivity,
    sensitivity_configs,
)


def quadratic_loss_fn(params, anchors):
    """Loss = sum ||W_i - anchor_i||^2 — reflects in-place edits."""

    def loss():
        return float(
            sum(np.sum((p.data - a) ** 2) for p, a in zip(params.values(), anchors))
        )

    return loss


@pytest.fixture
def setup(rng):
    params = {
        "sensitive": Parameter(rng.standard_normal((8, 8)) * 3.0),
        "robust": Parameter(rng.standard_normal((8, 8)) * 0.01),
    }
    anchors = [params["sensitive"].data.copy(), params["robust"].data.copy()]
    return params, quadratic_loss_fn(params, anchors)


class TestProbe:
    def test_weights_restored_exactly(self, setup):
        params, loss_fn = setup
        before = {n: p.data.copy() for n, p in params.items()}
        probe_sensitivity(params, loss_fn, rates=(2.0, 4.0),
                          num_row_strips=2, num_col_blocks=2)
        for name, param in params.items():
            np.testing.assert_array_equal(param.data, before[name])

    def test_baseline_is_unpruned_loss(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(2.0,),
                                   num_row_strips=2, num_col_blocks=2)
        assert report.baseline_loss == pytest.approx(loss_fn())

    def test_large_weights_more_sensitive(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(2.0, 4.0),
                                   num_row_strips=2, num_col_blocks=2)
        by_name = {l.name: l for l in report.layers}
        assert (
            by_name["sensitive"].mean_degradation
            > by_name["robust"].mean_degradation
        )

    def test_ranking_most_sensitive_first(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(4.0,),
                                   num_row_strips=2, num_col_blocks=2)
        assert report.ranking()[0] == "sensitive"

    def test_higher_rate_hurts_more(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(2.0, 8.0),
                                   num_row_strips=2, num_col_blocks=2)
        layer = [l for l in report.layers if l.name == "sensitive"][0]
        assert layer.losses[1] >= layer.losses[0]

    def test_degradation_at_lookup(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(2.0, 8.0),
                                   num_row_strips=2, num_col_blocks=2)
        layer = report.layers[0]
        assert layer.degradation_at(7.9) == layer.losses[1] - layer.baseline_loss

    def test_rejects_empty_params(self):
        with pytest.raises(ConfigError):
            probe_sensitivity({}, lambda: 0.0)

    def test_rejects_bad_rates(self, setup):
        params, loss_fn = setup
        with pytest.raises(ConfigError):
            probe_sensitivity(params, loss_fn, rates=(0.5,))
        with pytest.raises(ConfigError):
            probe_sensitivity(params, loss_fn, rates=())


class TestAllocation:
    def test_budget_met(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(2.0, 4.0),
                                   num_row_strips=2, num_col_blocks=2)
        sizes = {n: p.size for n, p in params.items()}
        rates = allocate_rates(report, sizes, target_rate=4.0)
        kept = sum(sizes[n] / rates[n] for n in sizes)
        assert kept == pytest.approx(sum(sizes.values()) / 4.0, rel=0.25)

    def test_sensitive_layer_gets_lower_rate(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(2.0, 4.0),
                                   num_row_strips=2, num_col_blocks=2)
        sizes = {n: p.size for n, p in params.items()}
        rates = allocate_rates(report, sizes, target_rate=4.0)
        assert rates["sensitive"] < rates["robust"]

    def test_clamping(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(2.0,),
                                   num_row_strips=2, num_col_blocks=2)
        sizes = {n: p.size for n, p in params.items()}
        rates = allocate_rates(report, sizes, target_rate=60.0, max_rate=8.0)
        assert all(r <= 8.0 for r in rates.values())

    def test_rejects_bad_target(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(2.0,),
                                   num_row_strips=2, num_col_blocks=2)
        with pytest.raises(ConfigError):
            allocate_rates(report, {n: p.size for n, p in params.items()}, 0.5)

    def test_rejects_missing_sizes(self, setup):
        params, loss_fn = setup
        report = probe_sensitivity(params, loss_fn, rates=(2.0,),
                                   num_row_strips=2, num_col_blocks=2)
        with pytest.raises(ConfigError):
            allocate_rates(report, {}, 4.0)


class TestConfigs:
    def test_configs_from_rates(self):
        configs = sensitivity_configs({"a": 4.0, "b": 8.0})
        assert configs["a"].col_rate == 4.0
        assert configs["b"].col_rate == 8.0
        assert configs["a"].row_rate == 1.0

    def test_base_settings_propagated(self):
        base = BSPConfig(num_row_strips=2, num_col_blocks=2, rho=0.5,
                         ramp="cubic")
        configs = sensitivity_configs({"a": 4.0}, base)
        assert configs["a"].rho == 0.5
        assert configs["a"].ramp == "cubic"
        assert configs["a"].num_row_strips == 2
