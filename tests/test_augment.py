"""Tests for feature-space augmentation (repro.speech.augment)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.data import Dataset, SequenceExample
from repro.speech.augment import (
    AugmentConfig,
    add_noise,
    augment_dataset,
    spec_mask,
    spectral_tilt,
    time_warp,
)


@pytest.fixture
def example(rng):
    return SequenceExample(
        features=rng.standard_normal((12, 8)),
        labels=rng.integers(0, 5, 12),
    )


class TestAddNoise:
    def test_labels_unchanged(self, example):
        out = add_noise(example, 0.5, rng=0)
        np.testing.assert_array_equal(out.labels, example.labels)

    def test_zero_level_identity(self, example):
        out = add_noise(example, 0.0, rng=0)
        np.testing.assert_array_equal(out.features, example.features)

    def test_original_not_mutated(self, example):
        before = example.features.copy()
        add_noise(example, 1.0, rng=0)
        np.testing.assert_array_equal(example.features, before)

    def test_rejects_negative(self, example):
        with pytest.raises(ConfigError):
            add_noise(example, -0.1)

    def test_deterministic(self, example):
        a = add_noise(example, 0.5, rng=3)
        b = add_noise(example, 0.5, rng=3)
        np.testing.assert_array_equal(a.features, b.features)


class TestSpectralTilt:
    def test_tilt_is_rank_one_in_frequency(self, example):
        out = spectral_tilt(example, 0.5, rng=0)
        delta = out.features - example.features
        # Same offset per frame.
        np.testing.assert_allclose(delta, np.broadcast_to(delta[0], delta.shape))

    def test_zero_strength_identity(self, example):
        out = spectral_tilt(example, 0.0, rng=0)
        np.testing.assert_array_equal(out.features, example.features)

    def test_rejects_negative(self, example):
        with pytest.raises(ConfigError):
            spectral_tilt(example, -1.0)


class TestTimeWarp:
    def test_length_within_stretch(self, example):
        out = time_warp(example, max_stretch=0.25, rng=0)
        assert abs(len(out) - 12) <= 12 * 0.25 + 1

    def test_labels_warped_with_features(self, example):
        out = time_warp(example, max_stretch=0.3, rng=1)
        assert out.features.shape[0] == out.labels.shape[0]
        # Every output frame is a copy of some input frame with its label.
        for t in range(len(out)):
            matches = np.where(
                (example.features == out.features[t]).all(axis=1)
            )[0]
            assert len(matches) >= 1
            assert example.labels[matches[0]] == out.labels[t]

    def test_zero_stretch_identity(self, example):
        out = time_warp(example, max_stretch=0.0, rng=0)
        np.testing.assert_array_equal(out.features, example.features)

    def test_rejects_bad_stretch(self, example):
        with pytest.raises(ConfigError):
            time_warp(example, max_stretch=1.0)


class TestSpecMask:
    def test_masks_applied(self, example):
        out = spec_mask(example, max_time_frames=3, max_freq_bins=3,
                        fill_value=0.0, rng=0)
        assert (out.features == 0.0).any()

    def test_labels_unchanged(self, example):
        out = spec_mask(example, rng=0)
        np.testing.assert_array_equal(out.labels, example.labels)

    def test_zero_sizes_identity(self, example):
        out = spec_mask(example, max_time_frames=0, max_freq_bins=0, rng=0)
        np.testing.assert_array_equal(out.features, example.features)

    def test_rejects_negative_sizes(self, example):
        with pytest.raises(ConfigError):
            spec_mask(example, max_time_frames=-1)


class TestAugmentDataset:
    def make_dataset(self, rng, n=4):
        return Dataset(
            [
                SequenceExample(
                    features=rng.standard_normal((10, 6)),
                    labels=rng.integers(0, 4, 10),
                )
                for _ in range(n)
            ]
        )

    def test_size_grows(self, rng):
        dataset = self.make_dataset(rng)
        out = augment_dataset(dataset, copies=2, rng=0)
        assert len(out) == 12

    def test_originals_preserved_first(self, rng):
        dataset = self.make_dataset(rng)
        out = augment_dataset(dataset, copies=1, rng=0)
        for i in range(4):
            np.testing.assert_array_equal(
                out[i].features, dataset[i].features
            )

    def test_copies_zero(self, rng):
        dataset = self.make_dataset(rng)
        out = augment_dataset(dataset, copies=0, rng=0)
        assert len(out) == 4

    def test_deterministic(self, rng):
        dataset = self.make_dataset(rng)
        a = augment_dataset(dataset, copies=1, rng=5)
        b = augment_dataset(dataset, copies=1, rng=5)
        np.testing.assert_array_equal(a[5].features, b[5].features)

    def test_rejects_negative_copies(self, rng):
        with pytest.raises(ConfigError):
            augment_dataset(self.make_dataset(rng), copies=-1)

    def test_config_disable_spec_mask(self, rng):
        dataset = self.make_dataset(rng)
        out = augment_dataset(
            dataset, copies=1,
            config=AugmentConfig(noise_level=0.0, tilt_strength=0.0,
                                 max_stretch=0.0, use_spec_mask=False),
            rng=0,
        )
        np.testing.assert_array_equal(out[4].features, dataset[0].features)
