"""Tests for the acoustic model and trainer (repro.speech.model/trainer)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.tensor import Tensor
from repro.pruning.bsp import BSPConfig, BSPPruner
from repro.pruning.magnitude import MagnitudeConfig, MagnitudePruner
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.phones import NUM_CLASSES
from repro.speech.synth import SynthConfig, make_corpus
from repro.speech.trainer import Trainer, TrainerConfig


def tiny_setup(seed=0, hidden=24, train_n=8, test_n=4, noise=0.4):
    train, test = make_corpus(
        train_n, test_n, SynthConfig(noise_level=noise,
                                     min_phones=3, max_phones=5), seed=seed
    )
    model = GRUAcousticModel(AcousticModelConfig(hidden_size=hidden), rng=seed)
    trainer = Trainer(
        model, train, test, TrainerConfig(batch_size=4, seed=seed,
                                          learning_rate=5e-3)
    )
    return model, trainer


class TestModel:
    def test_forward_shapes(self, rng):
        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        logits = model(Tensor(rng.standard_normal((6, 3, 40))))
        assert logits.shape == (6, 3, NUM_CLASSES)

    def test_prunable_excludes_input_layer_by_default(self):
        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        names = set(model.prunable_parameters())
        assert "gru.cell0.weight_ih" not in names
        assert "gru.cell0.weight_hh" in names
        assert "gru.cell1.weight_ih" in names
        assert "gru.cell1.weight_hh" in names

    def test_prunable_can_include_input_layer(self):
        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        names = set(model.prunable_parameters(exclude_input_layer=False))
        assert "gru.cell0.weight_ih" in names

    def test_prunable_excludes_biases_and_output(self):
        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        for name in model.prunable_parameters(exclude_input_layer=False):
            assert "bias" not in name
            assert not name.startswith("output")

    def test_prunable_weights_are_copies(self):
        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        weights = model.prunable_weights()
        name = next(iter(weights))
        weights[name][...] = 0.0
        assert not np.all(dict(model.named_parameters())[name].data == 0.0)

    def test_prunable_param_count(self):
        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        count = model.prunable_param_count()
        assert count == sum(p.size for p in model.prunable_parameters().values())

    def test_paper_scale_config(self):
        config = AcousticModelConfig().paper_scale()
        assert config.hidden_size == 1024
        assert config.num_layers == 2

    def test_deterministic_init(self, rng):
        a = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=5)
        b = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=5)
        x = rng.standard_normal((3, 2, 40))
        np.testing.assert_array_equal(a(Tensor(x)).data, b(Tensor(x)).data)


class TestTrainerConfig:
    def test_rejects_bad_lr(self):
        with pytest.raises(ConfigError):
            TrainerConfig(learning_rate=0.0)

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigError):
            TrainerConfig(batch_size=0)

    def test_rejects_bad_clip(self):
        with pytest.raises(ConfigError):
            TrainerConfig(grad_clip=0.0)


class TestTraining:
    def test_loss_decreases(self):
        _, trainer = tiny_setup()
        first = trainer.train_epoch()
        for _ in range(4):
            last = trainer.train_epoch()
        assert last < first

    def test_training_is_deterministic(self):
        _, t1 = tiny_setup(seed=3)
        _, t2 = tiny_setup(seed=3)
        assert t1.train_epoch() == t2.train_epoch()

    def test_log_records_epochs(self):
        _, trainer = tiny_setup()
        trainer.train_dense(3)
        assert len(trainer.log.losses) == 3
        assert trainer.log.final_loss == trainer.log.losses[-1]

    def test_evaluate_returns_sane_values(self):
        _, trainer = tiny_setup()
        trainer.train_dense(2)
        result = trainer.evaluate()
        assert result.per >= 0.0
        assert 0.0 <= result.frame_accuracy <= 1.0
        assert result.num_utterances == 4

    def test_evaluate_on_custom_dataset(self):
        _, trainer = tiny_setup()
        result = trainer.evaluate(trainer.train_set)
        assert result.num_utterances == 8

    def test_gradient_clipping_applied(self):
        # A huge learning rate with clipping must not produce NaNs in one
        # epoch (unclipped it would explode through the GRU recurrence).
        model, trainer = tiny_setup()
        trainer.train_epoch()
        for param in model.parameters():
            assert np.all(np.isfinite(param.data))


class TestPruningIntegration:
    def test_run_pruning_until_finished(self):
        model, trainer = tiny_setup()
        trainer.train_dense(2)
        pruner = MagnitudePruner(
            model.prunable_parameters(),
            MagnitudeConfig(rate=4.0, num_stages=2, retrain_epochs=1),
        )
        epochs = trainer.run_pruning(pruner)
        assert pruner.finished
        assert epochs == 3

    def test_run_pruning_respects_max_epochs(self):
        model, trainer = tiny_setup()
        pruner = MagnitudePruner(
            model.prunable_parameters(),
            MagnitudeConfig(rate=4.0, num_stages=50, retrain_epochs=0),
        )
        assert trainer.run_pruning(pruner, max_epochs=2) == 2

    def test_bsp_end_to_end_masks_enforced(self):
        model, trainer = tiny_setup()
        trainer.train_dense(2)
        pruner = BSPPruner(
            model.prunable_parameters(),
            BSPConfig(
                col_rate=4, row_rate=2, num_row_strips=2, num_col_blocks=2,
                step1_admm_epochs=2, step1_retrain_epochs=1,
                step2_admm_epochs=2, step2_retrain_epochs=1,
            ),
        )
        trainer.run_pruning(pruner)
        assert pruner.finished
        for name, param in model.prunable_parameters().items():
            assert np.all(param.data[~pruner.masks[name].keep] == 0.0)

    def test_bsp_weights_stay_finite(self):
        model, trainer = tiny_setup()
        pruner = BSPPruner(
            model.prunable_parameters(),
            BSPConfig(col_rate=4, row_rate=1, num_row_strips=2, num_col_blocks=2,
                      step1_admm_epochs=1, step1_retrain_epochs=1,
                      step2_admm_epochs=0, step2_retrain_epochs=0),
        )
        trainer.run_pruning(pruner)
        for param in model.parameters():
            assert np.all(np.isfinite(param.data))
