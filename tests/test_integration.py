"""End-to-end integration tests: train → prune → compile → simulate.

These exercise the full RTMobile pipeline on laptop-scale models and check
the cross-module invariants the paper's claims rest on.
"""

import numpy as np
import pytest

from repro.compiler.codegen import CompileOptions
from repro.compiler.ir import TileConfig
from repro.compiler.pipeline import compile_for_simulation
from repro.hw.profiles import ADRENO_640, KRYO_485
from repro.pruning.bsp import BSPConfig, BSPPruner, bsp_project_masks
from repro.pruning.magnitude import magnitude_project_masks
from repro.sparse.blocks import grid_for
from repro.sparse.bspc import BSPCMatrix
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_corpus
from repro.speech.trainer import Trainer, TrainerConfig


@pytest.fixture(scope="module")
def trained_pruned():
    """Train once, BSP-prune once; shared across this module's tests."""
    train, test = make_corpus(
        16, 6, SynthConfig(noise_level=0.4, min_phones=3, max_phones=6), seed=0
    )
    model = GRUAcousticModel(AcousticModelConfig(hidden_size=32), rng=0)
    trainer = Trainer(
        model, train, test, TrainerConfig(batch_size=4, seed=0, learning_rate=5e-3)
    )
    trainer.train_dense(3)
    dense_per = trainer.evaluate().per
    pruner = BSPPruner(
        model.prunable_parameters(),
        BSPConfig(
            col_rate=4, row_rate=2, num_row_strips=2, num_col_blocks=2,
            step1_admm_epochs=2, step1_retrain_epochs=1,
            step2_admm_epochs=2, step2_retrain_epochs=1,
        ),
    )
    trainer.run_pruning(pruner)
    return model, trainer, pruner, dense_per


class TestEndToEnd:
    def test_pruner_finished(self, trained_pruned):
        _, _, pruner, _ = trained_pruned
        assert pruner.finished

    def test_compression_achieved(self, trained_pruned):
        _, _, pruner, _ = trained_pruned
        assert pruner.masks.compression_rate() > 4.0

    def test_pruned_model_still_functions(self, trained_pruned):
        _, trainer, _, dense_per = trained_pruned
        pruned_per = trainer.evaluate().per
        # At this modest rate the pruned model stays in the same accuracy
        # regime as the dense one (the paper's central accuracy claim).
        assert pruned_per <= dense_per + 25.0

    def test_compiled_latency_beats_dense(self, trained_pruned):
        model, _, _, _ = trained_pruned
        pruned_weights = model.prunable_weights()
        compiled = compile_for_simulation(pruned_weights, timesteps=10)
        dense_weights = {
            name: np.random.default_rng(0).standard_normal(w.shape)
            for name, w in pruned_weights.items()
        }
        dense = compile_for_simulation(dense_weights, timesteps=10)
        for device in (ADRENO_640, KRYO_485):
            assert (
                compiled.simulate(device).latency_us
                < dense.simulate(device).latency_us
            )

    def test_bspc_execution_matches_model_weights(self, trained_pruned):
        """The compiled storage format computes exactly what the pruned
        model computes: BSPC spmv == dense masked matvec per matrix."""
        model, _, _, _ = trained_pruned
        rng = np.random.default_rng(1)
        for name, weight in model.prunable_weights().items():
            grid = grid_for(weight, 2, 2)
            bspc = BSPCMatrix.from_dense(weight, grid)
            x = rng.standard_normal(weight.shape[1])
            np.testing.assert_allclose(bspc.spmv(x), weight @ x, atol=1e-10)

    def test_plan_compression_matches_mask_compression(self, trained_pruned):
        model, _, pruner, _ = trained_pruned
        compiled = compile_for_simulation(model.prunable_weights(), timesteps=10)
        assert compiled.compression_rate == pytest.approx(
            pruner.masks.compression_rate(), rel=0.01
        )


class TestStructuredVsUnstructuredLatency:
    """The paper's systems claim: at matched compression, BSP patterns run
    faster than unstructured (ESE-style) patterns through the compiler."""

    def test_bsp_compiles_faster_than_unstructured(self, rng):
        h = 256
        weights = {
            "hh0": rng.standard_normal((3 * h, h)),
            "hh1": rng.standard_normal((3 * h, h)),
        }
        rate = 16.0
        bsp = bsp_project_masks(
            weights,
            BSPConfig(col_rate=8, row_rate=2, num_row_strips=4, num_col_blocks=4),
        )
        mag = magnitude_project_masks(weights, rate)
        bsp_w = {n: bsp[n].apply_to_array(w) for n, w in weights.items()}
        mag_w = {n: mag[n].apply_to_array(w) for n, w in weights.items()}
        bsp_model = compile_for_simulation(bsp_w, CompileOptions(format_name="bspc"),
                                  timesteps=10)
        mag_model = compile_for_simulation(mag_w, CompileOptions(format_name="csr"),
                                  timesteps=10)
        for device in (ADRENO_640, KRYO_485):
            assert (
                bsp_model.simulate(device).latency_us
                < mag_model.simulate(device).latency_us
            )

    def test_bspc_stores_less_than_csr_at_same_rate(self, rng):
        h = 96
        weights = {"hh": rng.standard_normal((3 * h, h))}
        bsp = bsp_project_masks(
            weights,
            BSPConfig(col_rate=8, row_rate=2, num_row_strips=4, num_col_blocks=4),
        )
        pruned = bsp["hh"].apply_to_array(weights["hh"])
        bspc_plan = compile_for_simulation({"hh": pruned},
                                  CompileOptions(format_name="bspc")).plan
        csr_plan = compile_for_simulation({"hh": pruned},
                                 CompileOptions(format_name="csr")).plan
        assert bspc_plan.weight_bytes < csr_plan.weight_bytes


class TestReproducibility:
    def test_full_pipeline_bit_deterministic(self):
        def run():
            train, test = make_corpus(
                6, 3, SynthConfig(noise_level=0.4, min_phones=3, max_phones=4),
                seed=11,
            )
            model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=11)
            trainer = Trainer(model, train, test,
                              TrainerConfig(batch_size=4, seed=11))
            trainer.train_dense(2)
            masks = bsp_project_masks(
                model.prunable_weights(),
                BSPConfig(col_rate=4, row_rate=1, num_row_strips=2,
                          num_col_blocks=2),
            )
            pruned = {
                n: masks[n].apply_to_array(w)
                for n, w in model.prunable_weights().items()
            }
            compiled = compile_for_simulation(pruned, timesteps=10)
            return (
                trainer.evaluate().per,
                compiled.simulate(ADRENO_640).latency_us,
            )

        assert run() == run()
