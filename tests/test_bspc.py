"""Tests for the BSPC storage format (repro.sparse.bspc)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SparsityError
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.sparse.blocks import BlockGrid, grid_for
from repro.sparse.bspc import BSPCBlock, BSPCMatrix, BSPCStrip
from repro.sparse.csr import CSRMatrix


def bsp_pruned_matrix(rng, shape=(16, 24), col_rate=4.0, row_rate=2.0,
                      strips=4, blocks=3):
    w = rng.standard_normal(shape)
    masks = bsp_project_masks(
        {"w": w},
        BSPConfig(
            col_rate=col_rate,
            row_rate=row_rate,
            num_row_strips=strips,
            num_col_blocks=blocks,
        ),
    )
    return masks["w"].apply_to_array(w), grid_for(w, strips, blocks)


class TestRoundTrip:
    def test_bsp_pruned_round_trip(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        bspc = BSPCMatrix.from_dense(pruned, grid)
        np.testing.assert_array_equal(bspc.to_dense(), pruned)

    def test_dense_matrix_round_trip(self, rng):
        w = rng.standard_normal((8, 12))
        grid = grid_for(w, 2, 3)
        np.testing.assert_array_equal(BSPCMatrix.from_dense(w, grid).to_dense(), w)

    def test_all_zero_round_trip(self):
        grid = BlockGrid(4, 6, 2, 2)
        bspc = BSPCMatrix.from_dense(np.zeros((4, 6)), grid)
        np.testing.assert_array_equal(bspc.to_dense(), np.zeros((4, 6)))
        assert bspc.nnz == 0

    def test_irregular_pattern_round_trip(self, rng):
        w = rng.standard_normal((8, 8))
        w[rng.random((8, 8)) > 0.3] = 0.0
        grid = grid_for(w, 2, 2)
        np.testing.assert_array_equal(BSPCMatrix.from_dense(w, grid).to_dense(), w)


class TestSpmv:
    def test_matches_dense_product(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        x = rng.standard_normal(pruned.shape[1])
        np.testing.assert_allclose(
            BSPCMatrix.from_dense(pruned, grid).spmv(x), pruned @ x
        )

    def test_matches_csr(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        x = rng.standard_normal(pruned.shape[1])
        np.testing.assert_allclose(
            BSPCMatrix.from_dense(pruned, grid).spmv(x),
            CSRMatrix.from_dense(pruned).spmv(x),
        )

    def test_rejects_wrong_length(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        bspc = BSPCMatrix.from_dense(pruned, grid)
        with pytest.raises(SparsityError):
            bspc.spmv(np.zeros(pruned.shape[1] + 1))


class TestFill:
    def test_bsp_pattern_has_perfect_fill(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        assert BSPCMatrix.from_dense(pruned, grid).fill() == 1.0

    def test_irregular_pattern_has_low_fill(self, rng):
        w = rng.standard_normal((16, 16))
        w[rng.random((16, 16)) > 0.1] = 0.0  # random 10% pattern
        grid = grid_for(w, 2, 2)
        bspc = BSPCMatrix.from_dense(w, grid)
        if bspc.stored_values:  # pattern non-empty
            assert bspc.fill() < 0.8

    def test_empty_fill_is_one(self):
        grid = BlockGrid(4, 4, 2, 2)
        assert BSPCMatrix.from_dense(np.zeros((4, 4)), grid).fill() == 1.0


class TestStructureQueries:
    def test_kept_rows(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        expected = np.flatnonzero(np.any(pruned != 0, axis=1))
        np.testing.assert_array_equal(
            BSPCMatrix.from_dense(pruned, grid).kept_row_indices(), expected
        )

    def test_unique_cols(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        expected = np.flatnonzero(np.any(pruned != 0, axis=0))
        np.testing.assert_array_equal(
            BSPCMatrix.from_dense(pruned, grid).unique_col_indices(), expected
        )

    def test_nnz_matches_dense(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        assert BSPCMatrix.from_dense(pruned, grid).nnz == np.count_nonzero(pruned)


class TestStorageModel:
    def test_smaller_than_csr_for_block_patterns(self, rng):
        # The point of the format: per-block row/col indices beat
        # per-nonzero CSR indices for BSP patterns.
        pruned, grid = bsp_pruned_matrix(rng, shape=(48, 64), strips=4, blocks=4)
        bspc_bytes = BSPCMatrix.from_dense(pruned, grid).nbytes()
        csr_bytes = CSRMatrix.from_dense(pruned).nbytes()
        assert bspc_bytes < csr_bytes

    def test_permutation_adds_bytes(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        plain = BSPCMatrix.from_dense(pruned, grid)
        perm = np.random.default_rng(0).permutation(pruned.shape[0])
        with_perm = BSPCMatrix.from_dense(pruned, grid, row_permutation=perm)
        assert with_perm.nbytes() == plain.nbytes() + pruned.shape[0] * 2

    def test_value_bytes_scaling(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        bspc = BSPCMatrix.from_dense(pruned, grid)
        assert bspc.nbytes(value_bytes=4) > bspc.nbytes(value_bytes=2)


class TestValidation:
    def test_wrong_strip_count_rejected(self):
        grid = BlockGrid(4, 4, 2, 2)
        with pytest.raises(SparsityError):
            BSPCMatrix(grid=grid, strips=[])

    def test_wrong_block_count_rejected(self):
        grid = BlockGrid(4, 4, 2, 2)
        strip = BSPCStrip(kept_rows=np.array([0]), blocks=[])
        with pytest.raises(SparsityError):
            BSPCMatrix(grid=grid, strips=[strip, strip])

    def test_panel_row_mismatch_rejected(self):
        grid = BlockGrid(4, 4, 1, 1)
        bad = BSPCStrip(
            kept_rows=np.array([0, 1]),
            blocks=[BSPCBlock(kept_cols=np.array([0]), panel=np.zeros((3, 1)))],
        )
        with pytest.raises(SparsityError):
            BSPCMatrix(grid=grid, strips=[bad])

    def test_panel_col_mismatch_rejected(self):
        with pytest.raises(SparsityError):
            BSPCBlock(kept_cols=np.array([0, 1]), panel=np.zeros((2, 1)))

    def test_bad_permutation_rejected(self, rng):
        pruned, grid = bsp_pruned_matrix(rng)
        with pytest.raises(SparsityError):
            BSPCMatrix.from_dense(
                pruned, grid, row_permutation=np.zeros(pruned.shape[0], dtype=int)
            )


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(2, 20),
    cols=st.integers(2, 20),
    density=st.floats(0.05, 1.0),
    seed=st.integers(0, 10_000),
)
def test_property_bspc_round_trip_any_pattern(rows, cols, density, seed):
    """BSPC encodes *any* sparsity pattern losslessly."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((rows, cols))
    w[rng.random((rows, cols)) > density] = 0.0
    grid = BlockGrid(rows, cols, min(3, rows), min(3, cols))
    bspc = BSPCMatrix.from_dense(w, grid)
    np.testing.assert_array_equal(bspc.to_dense(), w)
    x = rng.standard_normal(cols)
    np.testing.assert_allclose(bspc.spmv(x), w @ x, atol=1e-12)
