"""Tests for the unified layer-graph IR and the shared pass pipeline.

The contract under test: the analytic simulator and the execution engine
lower from the *same* graph after the *same* passes — format decisions
live in the compiler (nothing `_choose_format`-ish remains inline in the
engine), pinned attributes survive the pipeline, and graph serialization
round-trips every decision the executable lowering reads.
"""

import numpy as np
import pytest

from repro import engine
from repro.compiler.ir import (
    GraphNode,
    GraphOptions,
    LayerGraph,
    WeightSlot,
    graph_from_arrays,
    graph_to_arrays,
)
from repro.compiler.passes import (
    load_elim_pass,
    reorder_pass,
    run_passes,
    select_formats_pass,
    select_kernels_pass,
)
from repro.compiler.pipeline import build_layer_graph, rnn_graph_from_weights
from repro.errors import CompilationError, ConfigError
from repro.hw.executor import NumericExecutor
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.speech.model import AcousticModelConfig, GRUAcousticModel


def laptop_model(cell_type="gru", hidden=24, seed=0):
    config = AcousticModelConfig(
        input_dim=8, hidden_size=hidden, num_layers=2, cell_type=cell_type
    )
    return GRUAcousticModel(config, rng=seed).eval()


def prune_model(model, col_rate=4, row_rate=2):
    masks = bsp_project_masks(
        model.prunable_weights(),
        BSPConfig(col_rate=col_rate, row_rate=row_rate,
                  num_row_strips=4, num_col_blocks=4),
    )
    for name, param in model.prunable_parameters().items():
        param.data[...] = masks[name].apply_to_array(param.data)
    return model


def single_slot_graph(weight, options=GraphOptions(), **slot_kwargs):
    # Mirror the frontends: the slot inherits the graph-level grid.
    slot_kwargs.setdefault(
        "grid", (options.num_row_strips, options.num_col_blocks)
    )
    slot = WeightSlot(name="w", op="linear", array=weight, **slot_kwargs)
    return (
        LayerGraph(
            nodes=[GraphNode(name="w", kind="linear", weights={"w": slot})],
            options=options,
        ),
        slot,
    )


class TestFrontend:
    def test_gru_graph_structure(self):
        graph = build_layer_graph(laptop_model())
        kinds = [node.kind for node in graph.nodes]
        assert kinds == ["gru_cell", "gru_cell", "output"]
        assert graph.cell_type == "gru"
        cell0 = graph.nodes[0]
        assert set(cell0.weights) == {"ih", "hh"}
        assert set(cell0.params) == {"bias_ih", "bias_hh"}
        assert cell0.weights["ih"].op == "linear"
        assert cell0.weights["hh"].op == "recurrent_matvec"

    def test_lstm_graph_structure(self):
        graph = build_layer_graph(laptop_model(cell_type="lstm"))
        assert [n.kind for n in graph.nodes] == ["lstm_cell", "lstm_cell", "output"]
        assert set(graph.nodes[0].params) == {"bias"}

    def test_output_slot_pinned_dense(self):
        graph = build_layer_graph(
            laptop_model(), options=GraphOptions(sparse_format="csr")
        )
        assert graph.nodes[-1].weights["w"].format == "dense"
        run_passes(graph)
        assert graph.nodes[-1].weights["w"].format == "dense"

    def test_graph_snapshots_weights(self):
        model = laptop_model()
        graph = build_layer_graph(model)
        before = graph.nodes[0].weights["ih"].array.copy()
        for param in model.parameters():
            param.data[...] += 1.0
        np.testing.assert_array_equal(graph.nodes[0].weights["ih"].array, before)

    def test_rejects_non_rnn_model(self):
        with pytest.raises(ConfigError):
            build_layer_graph(object())

    def test_rnn_graph_from_weights(self):
        model = laptop_model()
        weights = {
            name: p.data.copy()
            for name, p in model.named_parameters()
            if name.startswith("gru.") and p.data.ndim == 2
        }
        graph = rnn_graph_from_weights(weights)
        assert [n.kind for n in graph.nodes] == ["gru_cell", "gru_cell"]
        np.testing.assert_array_equal(
            graph.nodes[0].params["bias_ih"], np.zeros(3 * 24)
        )

    def test_rnn_graph_rejects_bad_keys(self):
        with pytest.raises(ConfigError):
            rnn_graph_from_weights({"nope": np.zeros((4, 4))})


class TestFormatSelection:
    def test_none_request_keeps_dense(self, rng):
        graph, slot = single_slot_graph(rng.standard_normal((16, 16)))
        select_formats_pass(graph)
        assert slot.format == "dense"

    def test_auto_dense_above_threshold(self, rng):
        graph, slot = single_slot_graph(
            rng.standard_normal((16, 16)),
            GraphOptions(sparse_format="auto", sparsity_threshold=0.5),
        )
        select_formats_pass(graph)
        assert slot.format == "dense"

    def test_auto_picks_bspc_for_block_patterns(self, rng):
        weight = rng.standard_normal((16, 16))
        weight[:, 8:] = 0.0  # whole block-columns removed: BSP-shaped
        graph, slot = single_slot_graph(
            weight, GraphOptions(sparse_format="auto", num_row_strips=2,
                                 num_col_blocks=2),
        )
        select_formats_pass(graph)
        assert slot.format == "bspc"
        assert slot.prebuilt is not None  # probe reused by the lowering

    def test_auto_picks_csr_for_irregular_patterns(self, rng):
        weight = rng.standard_normal((16, 16))
        weight[rng.random((16, 16)) < 0.8] = 0.0  # scattered zeros
        graph, slot = single_slot_graph(
            weight, GraphOptions(sparse_format="auto", num_row_strips=2,
                                 num_col_blocks=2),
        )
        select_formats_pass(graph)
        assert slot.format == "csr"

    def test_pinned_format_survives_passes(self, rng):
        graph, slot = single_slot_graph(
            rng.standard_normal((16, 16)),
            GraphOptions(sparse_format="auto"),
            format="csr",
        )
        run_passes(graph)
        assert slot.format == "csr"

    def test_demote_full_density_only_when_asked(self, rng):
        weight = rng.standard_normal((8, 8))  # fully dense
        graph, slot = single_slot_graph(
            weight, GraphOptions(sparse_format="csr", demote_full_density=True)
        )
        select_formats_pass(graph)
        assert slot.format == "dense"  # the analytic frontend's convention
        graph, slot = single_slot_graph(
            weight, GraphOptions(sparse_format="csr")
        )
        select_formats_pass(graph)
        assert slot.format == "csr"  # the engine honours forced formats


class TestAnalysisPasses:
    def test_reorder_annotates_sparse_candidates_only(self, rng):
        model = prune_model(laptop_model())
        graph = build_layer_graph(
            model, options=GraphOptions(sparse_format="auto", num_row_strips=4,
                                        num_col_blocks=4)
        )
        reorder_pass(graph)
        annotated = [s.name for _, _, s in graph.slots()
                     if s.row_permutation is not None]
        assert "cell1.weight_hh" in annotated  # pruned → candidate
        assert "output.weight" not in annotated  # pinned dense

    def test_analytic_mode_annotates_everything(self, rng):
        graph = build_layer_graph(laptop_model())
        reorder_pass(graph, analytic=True)
        load_elim_pass(graph, analytic=True)
        for _, _, slot in graph.slots():
            assert slot.row_permutation is not None
            assert slot.act_loads_per_step <= slot.act_loads_naive

    def test_load_elim_disabled_keeps_naive(self, rng):
        model = prune_model(laptop_model())
        graph = build_layer_graph(
            model,
            options=GraphOptions(sparse_format="auto",
                                 enable_load_elimination=False,
                                 num_row_strips=4, num_col_blocks=4),
        )
        reorder_pass(graph, analytic=True)
        load_elim_pass(graph, analytic=True)
        for _, _, slot in graph.slots():
            assert slot.act_loads_per_step == slot.act_loads_naive


class TestKernelSelectionAndBoundaries:
    def test_kernels_named_per_format_and_scheme(self, rng):
        model = prune_model(laptop_model())
        graph = build_layer_graph(
            model, scheme="int8",
            options=GraphOptions(sparse_format="csr", num_row_strips=4,
                                 num_col_blocks=4),
        )
        run_passes(graph)
        kernels = {slot.name: slot.kernel for _, _, slot in graph.slots()}
        assert kernels["cell0.weight_hh"] == "csr_spmm_int8"
        assert kernels["output.weight"] == "linear_int8_rowwise"

    def test_float_kernels(self, rng):
        graph = build_layer_graph(
            prune_model(laptop_model()),
            options=GraphOptions(sparse_format="bspc", num_row_strips=4,
                                 num_col_blocks=4),
        )
        run_passes(graph)
        assert graph.slot("cell0.weight_ih").kernel == "bspc_spmm"
        assert graph.slot("output.weight").kernel == "blas_matmul"

    def test_int8_quantize_boundaries(self):
        graph = build_layer_graph(laptop_model(), scheme="int8")
        run_passes(graph)
        policies = {b.slot: b.policy for b in graph.boundaries}
        assert policies["cell0.weight_ih"] == "int8-activations-per-frame"
        assert policies["cell0.weight_hh"] == "int8-weights-dequantized"
        assert all(b.op == "quantize" for b in graph.boundaries)

    def test_no_boundaries_without_scheme(self):
        graph = build_layer_graph(laptop_model())
        run_passes(graph)
        assert graph.boundaries == []


class TestUnifiedLowering:
    def test_engine_has_no_inline_format_decisions(self):
        # The acceptance criterion of the unification: format decisions
        # live in the compiler's pass pipeline, not in engine/plan.py.
        import repro.engine.plan as plan_module

        assert not hasattr(plan_module, "_choose_format")
        assert not hasattr(plan_module, "_engine_grid")

    def test_compile_model_attaches_graph(self):
        plan = engine.compile_model(laptop_model())
        assert plan.graph is not None
        assert [n.kind for n in plan.graph.nodes] == [
            "gru_cell", "gru_cell", "output",
        ]
        assert not plan.graph.undecided()

    def test_lower_graph_equals_compile_model(self, rng):
        model = prune_model(laptop_model())
        config = engine.EngineConfig(sparse_format="auto", num_row_strips=4,
                                     num_col_blocks=4)
        x = rng.standard_normal((9, 2, 8))
        via_compile = engine.compile_model(model, config=config)
        graph = build_layer_graph(model, options=config.graph_options())
        via_graph = engine.lower_graph(graph)
        np.testing.assert_array_equal(
            via_compile.forward_batch(x), via_graph.forward_batch(x)
        )

    def test_lower_graph_runs_passes_when_undecided(self, rng):
        graph = build_layer_graph(laptop_model())
        assert graph.undecided()
        plan = engine.lower_graph(graph)
        assert not graph.undecided()
        num_classes = graph.nodes[-1].weights["w"].shape[0]
        assert plan.forward_batch(
            rng.standard_normal((3, 1, 8))
        ).shape == (3, 1, num_classes)

    def test_backend_pinning_round_trips(self, rng):
        graph = build_layer_graph(laptop_model(), backend="reference")
        plan = engine.lower_graph(graph)
        assert plan.backend == "reference"
        x = rng.standard_normal((5, 2, 8))
        default = engine.compile_model(laptop_model())
        # Dense packing-only plans never dispatch through the registry,
        # so the pinned backend must not change the numbers.
        np.testing.assert_array_equal(
            plan.forward_batch(x), default.forward_batch(x)
        )

    def test_numeric_executor_from_graph(self, rng):
        model = prune_model(laptop_model())
        graph = build_layer_graph(
            model, options=GraphOptions(sparse_format="auto", num_row_strips=4,
                                        num_col_blocks=4)
        )
        run_passes(graph)
        executor = NumericExecutor.from_graph(graph)
        x = rng.standard_normal(24)
        slot = graph.slot("cell1.weight_hh")
        np.testing.assert_allclose(
            executor.matvec("cell1.weight_hh", x), slot.array @ x, atol=1e-10
        )


class TestGraphSerialization:
    def test_round_trip_preserves_decisions(self, rng):
        model = prune_model(laptop_model())
        graph = build_layer_graph(
            model, scheme="int8",
            options=GraphOptions(sparse_format="auto", num_row_strips=4,
                                 num_col_blocks=4),
            backend="numpy",
        )
        run_passes(graph)
        meta, arrays = graph_to_arrays(graph)
        restored = graph_from_arrays(meta, arrays)
        assert restored.scheme == "int8"
        assert restored.backend == "numpy"
        assert restored.cell_type == "gru"
        assert restored.formats() == graph.formats()
        assert not restored.undecided()
        for (_, _, a), (_, _, b) in zip(graph.slots(), restored.slots()):
            np.testing.assert_array_equal(a.array, b.array)
            assert a.grid == tuple(b.grid)

    def test_unknown_version_rejected(self):
        graph = build_layer_graph(laptop_model())
        meta, arrays = graph_to_arrays(graph)
        meta["version"] = 99
        with pytest.raises(CompilationError):
            graph_from_arrays(meta, arrays)


class TestDeprecatedAlias:
    def test_pipeline_compile_model_warns_and_delegates(self, rng):
        from repro.compiler.pipeline import compile_for_simulation, compile_model

        weights = {"w": rng.standard_normal((16, 16))}
        with pytest.warns(DeprecationWarning):
            aliased = compile_model(weights, timesteps=10)
        direct = compile_for_simulation(weights, timesteps=10)
        assert aliased.plan.total_nnz == direct.plan.total_nnz
        assert aliased.compression_rate == direct.compression_rate
