"""Serving-fabric robustness tests (repro.engine.fabric).

The contract under test: a supervised multi-process fabric where a
killed or stalled worker's sessions are re-homed by journal replay and
finish **byte-identical** to a single-process run (chunk-exactness makes
replay exact), overload sheds with a typed ``OverloadError`` while
admitted sessions keep decoding exactly, and every fault is injected
deterministically so each scenario replays identically.
"""

import numpy as np
import pytest

from repro.engine import (
    FabricConfig,
    FaultConfig,
    ServingFabric,
    SessionJournal,
    StreamConfig,
    compile_model,
)
from repro.engine.fabric import HashRing, WorkerFailure
from repro.errors import (
    ConfigError,
    FabricError,
    OverloadError,
    ShapeError,
    StreamError,
)
from repro.speech.decoder import decode_utterance
from repro.speech.model import AcousticModelConfig, GRUAcousticModel

SCHEMES = (None, "fp16", "int8")

STREAM = StreamConfig(max_batch_size=4, max_wait_frames=8, min_duration=2)


def small_plan(scheme=None, seed=0):
    config = AcousticModelConfig(
        input_dim=8, hidden_size=16, num_layers=2, cell_type="gru"
    )
    model = GRUAcousticModel(config, rng=seed).eval()
    return compile_model(model, scheme=scheme)


def make_utterances(num, base_frames=46, rng_seed=1):
    rng = np.random.default_rng(rng_seed)
    return [rng.standard_normal((base_frames + 7 * i, 8)) for i in range(num)]


def fabric_config(**overrides):
    defaults = dict(
        num_workers=2,
        stream=STREAM,
        backoff_base_s=0.0,  # tests assert the schedule, not wall time
        rpc_timeout_s=20.0,
        heartbeat_timeout_s=20.0,
    )
    defaults.update(overrides)
    return FabricConfig(**defaults)


def offline_phones(plan, utterances):
    return [
        decode_utterance(
            plan.forward_utterance(u), min_duration=STREAM.min_duration
        )
        for u in utterances
    ]


def stream_all(fabric, utterances, chunk=13):
    """Feed every utterance through the fabric; returns phones per sid."""
    sids = [fabric.open() for _ in utterances]
    outs = {sid: [] for sid in sids}
    for utterance, sid in zip(utterances, sids):
        for start in range(0, len(utterance), chunk):
            fabric.feed(sid, utterance[start : start + chunk], block=True)
        outs[sid].extend(fabric.poll(sid))
    for sid in sids:
        outs[sid].extend(fabric.finish(sid))
    return [outs[sid] for sid in sids]


def open_on_worker(fabric, worker, limit=64):
    """Open sessions until one lands on ``worker`` (consistent hashing
    makes the search deterministic and short)."""
    for _ in range(limit):
        sid = fabric.open()
        if fabric._sessions[sid].worker == worker:
            return sid
    raise AssertionError(f"no session routed to worker {worker} in {limit} tries")


class TestFabricBasics:
    def test_no_fault_decode_matches_single_process(self):
        plan = small_plan()
        utterances = make_utterances(4)
        with ServingFabric.from_plan(plan, fabric_config()) as fabric:
            streamed = stream_all(fabric, utterances)
            fleet = fabric.stats()
        assert streamed == offline_phones(plan, utterances)
        assert fleet.restarts == 0
        assert fleet.sessions_finished == 4
        assert fleet.chunks > 0

    def test_sessions_spread_across_workers(self):
        plan = small_plan()
        with ServingFabric.from_plan(
            plan, fabric_config(num_workers=2)
        ) as fabric:
            sids = [fabric.open() for _ in range(16)]
            homes = {fabric._sessions[sid].worker for sid in sids}
            for sid in sids:
                fabric.finish(sid)
        assert homes == {0, 1}

    def test_unknown_and_finished_sids_are_typed(self):
        plan = small_plan()
        with ServingFabric.from_plan(plan, fabric_config()) as fabric:
            with pytest.raises(StreamError, match="unknown session id 9"):
                fabric.poll(9)
            sid = fabric.open()
            fabric.finish(sid)
            with pytest.raises(
                StreamError, match=f"session {sid} already finished"
            ):
                fabric.feed(sid, np.zeros((4, 8)))

    def test_feed_validates_feature_shape(self):
        plan = small_plan()
        with ServingFabric.from_plan(plan, fabric_config()) as fabric:
            sid = fabric.open()
            with pytest.raises(ShapeError, match="features"):
                fabric.feed(sid, np.zeros((4, 5)))
            fabric.finish(sid)

    def test_empty_chunk_is_a_noop(self):
        plan = small_plan()
        with ServingFabric.from_plan(plan, fabric_config()) as fabric:
            sid = fabric.open()
            fabric.feed(sid, np.zeros((0, 8)))
            assert fabric.finish(sid) == []

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="num_workers"):
            FabricConfig(num_workers=0)
        with pytest.raises(ConfigError, match="max_restarts"):
            FabricConfig(max_restarts=-1)
        with pytest.raises(ConfigError, match="timeouts"):
            FabricConfig(rpc_timeout_s=0)

    def test_default_backlog_bound_is_deadline_aware(self):
        config = fabric_config()
        assert config.backlog_frames_bound == (
            STREAM.max_wait_frames * STREAM.max_batch_size
        )
        explicit = fabric_config(max_backlog_frames=7)
        assert explicit.backlog_frames_bound == 7


class TestCrashRecovery:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("crash_after", [1, 5])
    def test_killed_worker_sessions_rehome_byte_identical(
        self, scheme, crash_after
    ):
        """The headline guarantee: kill a worker mid-stream at a seeded
        point; its re-homed sessions finish byte-identical to a
        single-process run, for every quantization scheme."""
        plan = small_plan(scheme=scheme)
        utterances = make_utterances(4)
        config = fabric_config(
            faults=FaultConfig(crash_after_chunks=crash_after, target_worker=0)
        )
        with ServingFabric.from_plan(plan, config) as fabric:
            streamed = stream_all(fabric, utterances)
            fleet = fabric.stats()
        assert streamed == offline_phones(plan, utterances)
        assert fleet.crashes_detected >= 1
        assert fleet.restarts >= 1
        assert fleet.sessions_rehomed >= 1

    def test_crash_surfacing_in_finish_is_replayed(self):
        """A worker that dies after its last chunk still yields the
        exact tail: finish is journaled before its RPC, so recovery
        re-runs the finish on the replacement worker."""
        plan = small_plan()
        utterance = make_utterances(1, base_frames=30)[0]
        config = fabric_config(
            faults=FaultConfig(crash_after_chunks=2, target_worker=0)
        )
        with ServingFabric.from_plan(plan, config) as fabric:
            sid = open_on_worker(fabric, 0)
            for start in range(0, 30, 10):  # 3 chunks; dies on the 3rd
                fabric.feed(sid, utterance[start : start + 10])
            phones = fabric.finish(sid)
            fleet = fabric.stats()
        assert phones == offline_phones(plan, [utterance])[0]
        assert fleet.crashes_detected >= 1
        assert fleet.sessions_rehomed >= 1

    def test_recovery_is_deterministic(self):
        """Same seed, same fault plan → identical fleet counters and
        identical phones across two independent runs."""
        plan = small_plan()
        utterances = make_utterances(3)
        config = fabric_config(
            faults=FaultConfig(crash_after_chunks=2, target_worker=0)
        )

        def run():
            with ServingFabric.from_plan(plan, config) as fabric:
                streamed = stream_all(fabric, utterances)
                fleet = fabric.stats()
            return streamed, (
                fleet.crashes_detected,
                fleet.restarts,
                fleet.sessions_rehomed,
            )

        first, second = run(), run()
        assert first == second

    def test_repeat_crash_exhausts_budget_and_rehomes_permanently(self):
        """A crash-looping worker burns its restart budget, is marked
        permanently dead, and the ring re-homes its slice onto the
        survivor — which still finishes everything byte-identically."""
        plan = small_plan()
        utterances = make_utterances(4)
        config = fabric_config(
            max_restarts=2,
            faults=FaultConfig(
                crash_after_chunks=1, target_worker=0, repeat=True
            ),
        )
        with ServingFabric.from_plan(plan, config) as fabric:
            streamed = stream_all(fabric, utterances)
            fleet = fabric.stats()
            dead_rows = [w for w in fleet.workers if not w.alive]
            homes = {
                session.worker for session in fabric._sessions.values()
            }
        assert streamed == offline_phones(plan, utterances)
        assert len(dead_rows) == 1 and dead_rows[0].index == 0
        assert dead_rows[0].restarts == 2
        assert homes == {1}

    def test_backoff_schedule_is_exponential_and_capped(self):
        plan = small_plan()
        utterances = make_utterances(2)
        config = fabric_config(
            max_restarts=3,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
            faults=FaultConfig(
                crash_after_chunks=1, target_worker=0, repeat=True
            ),
        )
        with ServingFabric.from_plan(plan, config) as fabric:
            sid = open_on_worker(fabric, 0)
            utterance = make_utterances(1, base_frames=30)[0]
            for start in range(0, 30, 10):
                fabric.feed(sid, utterance[start : start + 10], block=True)
            fabric.finish(sid)
            history = list(fabric._supervisor.backoff_history)
        # base * 2**(n-1), capped: 0.01, 0.02, 0.02 (cap)
        assert history[:3] == [0.01, 0.02, 0.02]

    def test_all_workers_dead_raises_fabric_error(self):
        plan = small_plan()
        config = fabric_config(
            num_workers=1,
            max_restarts=1,
            faults=FaultConfig(
                crash_after_chunks=1, target_worker=0, repeat=True
            ),
        )
        utterance = make_utterances(1)[0]
        with ServingFabric.from_plan(plan, config) as fabric:
            sid = fabric.open()
            with pytest.raises(FabricError, match="no live workers"):
                for start in range(0, len(utterance), 7):
                    fabric.feed(sid, utterance[start : start + 7], block=True)
                fabric.finish(sid)


class TestStallDetection:
    def test_stalled_worker_is_killed_and_sessions_rehome(self):
        """A worker that hangs (alive but unresponsive) trips the RPC
        timeout, is classified as a stall, killed, restarted — and its
        sessions still finish byte-identically via replay."""
        plan = small_plan()
        utterance = make_utterances(1, base_frames=32)[0]
        config = fabric_config(
            rpc_timeout_s=0.75,
            faults=FaultConfig(
                stall_after_chunks=1, stall_seconds=60.0, target_worker=0
            ),
        )
        with ServingFabric.from_plan(plan, config) as fabric:
            sid = open_on_worker(fabric, 0)
            fabric.feed(sid, utterance[:16])
            fabric.feed(sid, utterance[16:])  # worker hangs on this one
            phones = fabric.poll(sid)  # trips the stall detector
            phones += fabric.finish(sid)
            fleet = fabric.stats()
        assert phones == offline_phones(plan, [utterance])[0]
        assert fleet.stalls_detected >= 1
        assert fleet.restarts >= 1
        assert fleet.sessions_rehomed >= 1

    def test_check_sweep_catches_stall_on_idle_worker(self):
        """The heartbeat sweep finds a stalled worker without any
        session traffic touching it."""
        plan = small_plan()
        config = fabric_config(
            heartbeat_timeout_s=0.75,
            faults=FaultConfig(
                stall_after_chunks=0, stall_seconds=60.0, target_worker=0
            ),
        )
        with ServingFabric.from_plan(plan, config) as fabric:
            sid = open_on_worker(fabric, 0)
            fabric.feed(sid, np.zeros((4, 8)))  # arms the stall
            failed = fabric.check()
            fleet = fabric.stats()
        assert failed == [0]
        assert fleet.stalls_detected == 1
        assert fleet.restarts == 1


class TestOverload:
    def test_saturated_worker_sheds_chunks_with_typed_error(self):
        """Acks never drain (drop_ack_rate=1), so in-flight work only
        grows: the fabric must shed with OverloadError once the
        deadline-aware frame bound is hit, and the bound must hold."""
        plan = small_plan()
        config = fabric_config(
            faults=FaultConfig(drop_ack_rate=1.0, seed=7, target_worker=0),
        )
        utterance = make_utterances(1, base_frames=200)[0]
        with ServingFabric.from_plan(plan, config) as fabric:
            sid = open_on_worker(fabric, 0)
            with pytest.raises(OverloadError, match="backlog"):
                for start in range(0, len(utterance), 8):
                    fabric.feed(sid, utterance[start : start + 8])
            fleet = fabric.stats()
        assert fleet.chunks_shed >= 1
        # The admission gate never let the queue exceed its bound.
        assert fleet.max_backlog_frames_seen <= fleet.backlog_frames_bound

    def test_session_capacity_sheds_new_sessions(self):
        plan = small_plan()
        config = fabric_config(num_workers=1, max_sessions_per_worker=3)
        with ServingFabric.from_plan(plan, config) as fabric:
            sids = [fabric.open() for _ in range(3)]
            with pytest.raises(OverloadError, match="session capacity"):
                fabric.open()
            fleet = fabric.stats()
            assert fleet.sessions_shed == 1
            # Finishing one frees a slot: graceful degradation, not a
            # latched failure.
            fabric.finish(sids[0])
            sids.append(fabric.open())
            for sid in sids[1:]:
                fabric.finish(sid)

    def test_survivors_unaffected_by_neighbor_overload(self):
        """Saturating worker 0 must not degrade worker 1's sessions:
        they stream to completion and decode byte-identically."""
        plan = small_plan()
        config = fabric_config(
            faults=FaultConfig(drop_ack_rate=1.0, seed=7, target_worker=0),
        )
        utterances = make_utterances(6)
        with ServingFabric.from_plan(plan, config) as fabric:
            sids = [fabric.open() for _ in utterances]
            survivors = [
                (utterance, sid)
                for utterance, sid in zip(utterances, sids)
                if fabric._sessions[sid].worker == 1
            ]
            assert survivors  # the hash ring spreads 6 sessions
            outs = {sid: [] for _, sid in survivors}
            for utterance, sid in survivors:
                for start in range(0, len(utterance), 13):
                    fabric.feed(sid, utterance[start : start + 13], block=True)
                outs[sid].extend(fabric.poll(sid))
            for _, sid in survivors:
                outs[sid].extend(fabric.finish(sid))
            fleet = fabric.stats()
        expected = offline_phones(plan, [u for u, _ in survivors])
        assert [outs[sid] for _, sid in survivors] == expected
        survivor_row = next(w for w in fleet.workers if w.index == 1)
        assert survivor_row.alive and survivor_row.snapshot is not None
        assert survivor_row.snapshot["chunks"] > 0

    def test_blocking_feed_waits_out_backpressure(self):
        """block=True converts shedding into backpressure: a fast
        producer completes losslessly against a healthy worker."""
        plan = small_plan()
        utterances = make_utterances(2, base_frames=120)
        config = fabric_config(max_backlog_frames=16, max_pending_chunks=2)
        with ServingFabric.from_plan(plan, config) as fabric:
            streamed = stream_all(fabric, utterances, chunk=8)
        assert streamed == offline_phones(plan, utterances)


class TestHashRing:
    def test_assignment_is_deterministic(self):
        ring = HashRing(range(4))
        first = [ring.assign(sid, range(4)) for sid in range(64)]
        second = [HashRing(range(4)).assign(sid, range(4)) for sid in range(64)]
        assert first == second

    def test_removing_a_worker_only_moves_its_keys(self):
        ring = HashRing(range(4))
        alive = [0, 1, 2, 3]
        before = {sid: ring.assign(sid, alive) for sid in range(256)}
        after = {sid: ring.assign(sid, [0, 1, 3]) for sid in range(256)}
        for sid in range(256):
            if before[sid] != 2:
                assert after[sid] == before[sid]
            else:
                assert after[sid] != 2

    def test_revived_worker_reclaims_its_slice(self):
        ring = HashRing(range(3))
        before = {sid: ring.assign(sid, range(3)) for sid in range(128)}
        ring.assign(0, [0, 2])  # worker 1 "dies"...
        after = {sid: ring.assign(sid, range(3)) for sid in range(128)}
        assert after == before  # ...and its return restores the map

    def test_no_live_workers_is_typed(self):
        ring = HashRing(range(2))
        with pytest.raises(FabricError, match="no live workers"):
            ring.assign(0, [])

    def test_validation(self):
        with pytest.raises(ConfigError):
            HashRing([])
        with pytest.raises(ConfigError):
            HashRing([0], replicas=0)


class TestSessionJournal:
    def test_records_and_replays_in_order(self):
        journal = SessionJournal()
        journal.open(3)
        chunks = [np.full((2, 4), i, dtype=np.float64) for i in range(5)]
        for chunk in chunks:
            journal.record(3, chunk)
        assert journal.frames(3) == 10
        assert not journal.finished(3)
        replay = journal.chunks(3)
        assert len(replay) == 5
        for logged, original in zip(replay, chunks):
            np.testing.assert_array_equal(logged, original)
        journal.mark_finished(3)
        assert journal.finished(3)

    def test_double_open_and_post_finish_record_are_typed(self):
        journal = SessionJournal()
        journal.open(1)
        with pytest.raises(StreamError, match="already open"):
            journal.open(1)
        journal.mark_finished(1)
        with pytest.raises(StreamError, match="already finished"):
            journal.record(1, np.zeros((1, 4)))

    def test_unknown_sid_is_typed(self):
        journal = SessionJournal()
        with pytest.raises(StreamError, match="no journal for session id 7"):
            journal.record(7, np.zeros((1, 4)))

    def test_close_frees_the_log(self):
        journal = SessionJournal()
        journal.open(0)
        journal.record(0, np.zeros((3, 4)))
        assert 0 in journal
        journal.close(0)
        assert 0 not in journal
        journal.close(0)  # idempotent


class TestFaultConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultConfig(crash_after_chunks=-1)
        with pytest.raises(ConfigError):
            FaultConfig(drop_ack_rate=1.5)
        with pytest.raises(ConfigError):
            FaultConfig(stall_seconds=-1.0)

    def test_applies_only_to_first_incarnation_unless_repeat(self):
        fault = FaultConfig(crash_after_chunks=1, target_worker=2)
        assert fault.applies_to(2, 0)
        assert not fault.applies_to(2, 1)
        assert not fault.applies_to(0, 0)
        looping = FaultConfig(
            crash_after_chunks=1, target_worker=2, repeat=True
        )
        assert looping.applies_to(2, 5)


class TestWorkerFailure:
    def test_message_carries_index_and_classification(self):
        failure = WorkerFailure(3, "stall", "no poll reply within 0.50s")
        assert "worker 3 stall" in str(failure)


# ---------------------------------------------------------------------------
# Hot-swap across the fleet
# ---------------------------------------------------------------------------
def save_artifact(tmp_path, plan, name):
    from repro.engine import save_plan

    path = tmp_path / name
    save_plan(path, plan)
    return str(path)


def segment_decode(segments):
    """Parent-side reference: decode ``(plan, chunks)`` runs in order,
    carrying state across plan boundaries — what a session that lived
    through a hot-swap must have produced."""
    from repro.speech.decoder import IncrementalDecoder

    state, decoder, phones = None, IncrementalDecoder(STREAM.min_duration), []
    for plan, chunks in segments:
        if state is not None:
            state = plan.adapt_state(state)
        for chunk in chunks:
            logits, state = plan.run_chunk(chunk[:, None, :], state)
            phones.extend(decoder.push(logits[:, 0, :].argmax(axis=1)))
    return phones + decoder.finish()


class TestFleetHotSwap:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_swap_mid_stream_decodes_identically(self, scheme, tmp_path):
        # Identical weights recompiled into a second artifact: swapping
        # mid-utterance must be invisible in the decode.
        plan = small_plan(scheme)
        candidate = save_artifact(tmp_path, small_plan(scheme), "v2.npz")
        utterances = make_utterances(4)
        with ServingFabric.from_plan(plan, fabric_config()) as fabric:
            sids = [fabric.open() for _ in utterances]
            outs = {sid: [] for sid in sids}
            for sid, utterance in zip(sids, utterances):
                fabric.feed(sid, utterance[:20], block=True)
            fabric.swap(candidate)
            for sid in sids:
                assert fabric.session_version(sid) == candidate
            for sid, utterance in zip(sids, utterances):
                fabric.feed(sid, utterance[20:], block=True)
            for sid in sids:
                outs[sid].extend(fabric.finish(sid))
            fleet = fabric.stats()
        assert [outs[sid] for sid in sids] == offline_phones(plan, utterances)
        assert fleet.plan_swaps == 1
        assert fleet.restarts == 0

    def test_architecture_mismatch_rejected_fleet_intact(self, tmp_path):
        plan = small_plan()
        wrong_config = AcousticModelConfig(
            input_dim=8, hidden_size=32, num_layers=2, cell_type="gru"
        )
        wrong = compile_model(GRUAcousticModel(wrong_config, rng=0).eval())
        candidate = save_artifact(tmp_path, wrong, "wrong.npz")
        utterances = make_utterances(2)
        with ServingFabric.from_plan(plan, fabric_config()) as fabric:
            sids = [fabric.open() for _ in utterances]
            for sid, utterance in zip(sids, utterances):
                fabric.feed(sid, utterance[:20], block=True)
            from repro.errors import SwapError

            with pytest.raises(SwapError, match="architecture mismatch"):
                fabric.swap(candidate)
            # Nothing moved: sessions finish exactly on the incumbent.
            for sid, utterance in zip(sids, utterances):
                fabric.feed(sid, utterance[20:], block=True)
            outs = [fabric.finish(sid) for sid in sids]
            assert fabric.stats().plan_swaps == 0
        assert outs == offline_phones(plan, utterances)

    def test_crash_on_swap_recovers_byte_identical(self, tmp_path):
        # The deployment-time crash: worker 0 dies on receipt of the
        # swap command.  Recovery replays its sessions and the swap is
        # re-issued — the client-visible stream must be unchanged.
        plan = small_plan()
        candidate = save_artifact(tmp_path, small_plan(), "v2.npz")
        utterances = make_utterances(4)
        config = fabric_config(
            faults=FaultConfig(crash_on_swap=True, target_worker=0)
        )
        with ServingFabric.from_plan(plan, config) as fabric:
            sids = [fabric.open() for _ in utterances]
            outs = {sid: [] for sid in sids}
            for sid, utterance in zip(sids, utterances):
                fabric.feed(sid, utterance[:20], block=True)
            fabric.swap(candidate)
            for sid, utterance in zip(sids, utterances):
                fabric.feed(sid, utterance[20:], block=True)
            for sid in sids:
                outs[sid].extend(fabric.finish(sid))
            fleet = fabric.stats()
        assert [outs[sid] for sid in sids] == offline_phones(plan, utterances)
        assert fleet.plan_swaps == 1
        assert fleet.crashes_detected >= 1
        assert fleet.restarts >= 1
        assert fleet.sessions_rehomed >= 1

    def test_crash_on_swap_divergent_candidate_replays_per_segment(
        self, tmp_path
    ):
        # Divergent candidate weights make per-version replay
        # observable: chunks fed before the swap must replay under the
        # old plan, chunks after under the new one — even for sessions
        # whose worker crashed mid-swap and were reconstructed entirely
        # from the journal.
        plan = small_plan()
        candidate_plan = small_plan(seed=1)
        candidate = save_artifact(tmp_path, candidate_plan, "v2.npz")
        utterances = make_utterances(4)
        config = fabric_config(
            faults=FaultConfig(crash_on_swap=True, target_worker=0)
        )
        chunk = 13
        with ServingFabric.from_plan(plan, config) as fabric:
            sids = [fabric.open() for _ in utterances]
            outs = {sid: [] for sid in sids}
            pre = {}
            for sid, utterance in zip(sids, utterances):
                pre[sid] = [
                    utterance[start : start + chunk]
                    for start in range(0, 20, chunk)
                ]
                for piece in pre[sid]:
                    fabric.feed(sid, piece, block=True)
            fabric.swap(candidate)
            post = {}
            for sid, utterance in zip(sids, utterances):
                post[sid] = [
                    utterance[start : start + chunk]
                    for start in range(20, len(utterance), chunk)
                ]
                for piece in post[sid]:
                    fabric.feed(sid, piece, block=True)
            for sid in sids:
                outs[sid].extend(fabric.finish(sid))
            fleet = fabric.stats()
        expected = [
            segment_decode([(plan, pre[sid]), (candidate_plan, post[sid])])
            for sid in sids
        ]
        assert [outs[sid] for sid in sids] == expected
        assert fleet.crashes_detected >= 1
        assert fleet.plan_swaps == 1


# ---------------------------------------------------------------------------
# Canary rollout + automatic rollback
# ---------------------------------------------------------------------------
def make_registry(tmp_path, incumbent, candidate):
    from repro.engine.registry import PlanRegistry

    registry = PlanRegistry(tmp_path / "registry")
    registry.publish("am", incumbent)
    registry.publish("am", candidate, parent="v1")
    return registry


def run_canary_workload(fabric, utterances, chunk=13):
    """Open/feed/finish every utterance; returns (hyps, opened_version)."""
    sids = [fabric.open() for _ in utterances]
    opened = {sid: fabric.session_version(sid) for sid in sids}
    outs = {sid: [] for sid in sids}
    for sid, utterance in zip(sids, utterances):
        for start in range(0, len(utterance), chunk):
            fabric.feed(sid, utterance[start : start + chunk], block=True)
    for sid in sids:
        outs[sid].extend(fabric.finish(sid))
    return [outs[sid] for sid in sids], [opened[sid] for sid in sids]


class TestCanaryRollout:
    def canary_config(self, **overrides):
        from repro.engine.fabric import CanaryConfig

        # The candidate's first chunk pays a lazy artifact-load
        # cold-start; with a handful of samples that dominates p95, so
        # the latency gate is opened wide — these tests pin decisions
        # on decode agreement, not timing.
        defaults = dict(fraction=0.5, decide_after=2, max_p95_ratio=1000.0)
        defaults.update(overrides)
        return CanaryConfig(**defaults)

    def test_fraction_routing_is_deterministic(self, tmp_path):
        incumbent = small_plan()
        registry = make_registry(tmp_path, incumbent, small_plan())
        fabric = ServingFabric.from_registry(
            registry, "am", "v1", fabric_config()
        )
        candidate_path = str(registry.resolve("am", "v2").artifact_path)
        with fabric:
            fabric.start_canary("v2", self.canary_config(decide_after=64))
            sids = [fabric.open() for _ in range(8)]
            routed = [
                sid
                for sid in sids
                if fabric.session_version(sid) == candidate_path
            ]
            assert len(routed) == 4  # floor-stride admits exactly 50%
            assert fabric.canary_report().sessions_routed == 4
            for sid in sids:
                fabric.finish(sid)

    def test_divergent_candidate_rolls_back(self, tmp_path):
        incumbent = small_plan()
        registry = make_registry(tmp_path, incumbent, small_plan(seed=1))
        utterances = make_utterances(8)
        incumbent_path = str(registry.resolve("am", "v1").artifact_path)
        fabric = ServingFabric.from_registry(
            registry, "am", "v1", fabric_config()
        )
        with fabric:
            fabric.start_canary("v2", self.canary_config())
            hyps, opened = run_canary_workload(fabric, utterances)
            report = fabric.canary_report()
            fleet = fabric.stats()
            # New sessions after rollback route to the incumbent again.
            sid = fabric.open()
            assert fabric.session_version(sid) == incumbent_path
            fabric.finish(sid)
        assert report.decision == "rollback"
        assert report.agreement < 1.0
        assert fleet.plan_swaps == 0  # the incumbent was never touched
        offline = offline_phones(incumbent, utterances)
        incumbent_results = [
            (hyp, ref)
            for hyp, ref, version in zip(hyps, offline, opened)
            if version == incumbent_path
        ]
        assert incumbent_results  # the stride kept incumbent traffic
        assert all(hyp == ref for hyp, ref in incumbent_results)
        # The decision is durable in the registry.
        assert registry.resolve("am", "v2").status == "rolled_back"
        history = registry.resolve("am", "v2").meta["history"]
        assert history[-1]["decision"] == "rollback"

    def test_clean_candidate_promotes_and_swaps(self, tmp_path):
        incumbent = small_plan()
        registry = make_registry(tmp_path, incumbent, small_plan())
        utterances = make_utterances(8)
        candidate_path = str(registry.resolve("am", "v2").artifact_path)
        fabric = ServingFabric.from_registry(
            registry, "am", "v1", fabric_config()
        )
        with fabric:
            fabric.start_canary("v2", self.canary_config())
            hyps, _ = run_canary_workload(fabric, utterances)
            report = fabric.canary_report()
            fleet = fabric.stats()
            sid = fabric.open()  # post-promote traffic serves v2
            assert fabric.session_version(sid) == candidate_path
            fabric.finish(sid)
        assert report.decision == "promote"
        assert report.agreement == 1.0
        assert fleet.plan_swaps == 1
        # Identical weights: every session (canary, carried-across, and
        # incumbent) decodes exactly.
        assert hyps == offline_phones(incumbent, utterances)
        assert registry.resolve("am", "v2").status == "serving"
        assert registry.resolve("am", "v1").status == "superseded"

    def test_crash_during_canary_recovers_and_rolls_back(self, tmp_path):
        incumbent = small_plan()
        registry = make_registry(tmp_path, incumbent, small_plan(seed=1))
        utterances = make_utterances(6)
        incumbent_path = str(registry.resolve("am", "v1").artifact_path)
        fabric = ServingFabric.from_registry(
            registry,
            "am",
            "v1",
            fabric_config(
                faults=FaultConfig(crash_after_chunks=3, target_worker=0)
            ),
        )
        with fabric:
            fabric.start_canary("v2", self.canary_config())
            hyps, opened = run_canary_workload(fabric, utterances)
            report = fabric.canary_report()
            fleet = fabric.stats()
        assert report.decision == "rollback"
        assert fleet.crashes_detected >= 1
        assert fleet.restarts >= 1
        offline = offline_phones(incumbent, utterances)
        assert all(
            hyp == ref
            for hyp, ref, version in zip(hyps, offline, opened)
            if version == incumbent_path
        )

    def test_swap_blocked_while_canary_active(self, tmp_path):
        from repro.errors import SwapError

        registry = make_registry(tmp_path, small_plan(), small_plan())
        fabric = ServingFabric.from_registry(
            registry, "am", "v1", fabric_config()
        )
        with fabric:
            fabric.start_canary("v2", self.canary_config())
            with pytest.raises(SwapError, match="canary rollout is active"):
                fabric.swap("v2")
            with pytest.raises(SwapError, match="already active"):
                fabric.start_canary("v2", self.canary_config())

    def test_force_decide_without_evidence_rolls_back(self, tmp_path):
        from repro.errors import SwapError

        registry = make_registry(tmp_path, small_plan(), small_plan())
        fabric = ServingFabric.from_registry(
            registry, "am", "v1", fabric_config()
        )
        with fabric:
            fabric.start_canary("v2", self.canary_config())
            with pytest.raises(SwapError, match="window not full"):
                fabric.decide_canary()
            report = fabric.decide_canary(force=True)
        assert report.decision == "rollback"
        assert report.reason == "no canary sessions scored"

    def test_canary_arch_mismatch_rejected(self, tmp_path):
        from repro.errors import SwapError

        wrong_config = AcousticModelConfig(
            input_dim=8, hidden_size=32, num_layers=2, cell_type="gru"
        )
        wrong = compile_model(GRUAcousticModel(wrong_config, rng=0).eval())
        registry = make_registry(tmp_path, small_plan(), wrong)
        fabric = ServingFabric.from_registry(
            registry, "am", "v1", fabric_config()
        )
        with fabric:
            with pytest.raises(SwapError, match="architecture mismatch"):
                fabric.start_canary("v2", self.canary_config())
            assert fabric.canary_report() is None

    def test_canary_config_validation(self):
        from repro.engine.fabric import CanaryConfig

        with pytest.raises(ConfigError):
            CanaryConfig(fraction=0.0)
        with pytest.raises(ConfigError):
            CanaryConfig(fraction=1.5)
        with pytest.raises(ConfigError):
            CanaryConfig(decide_after=0)
        with pytest.raises(ConfigError):
            CanaryConfig(min_agreement=-0.1)
        with pytest.raises(ConfigError):
            CanaryConfig(max_p95_ratio=0.0)


# ---------------------------------------------------------------------------
# FleetStats edge cases (empty fleets must report zeros, not crash)
# ---------------------------------------------------------------------------
class TestFleetStatsEdges:
    def test_empty_fleet_percentiles_and_batches_are_zero(self):
        from repro.engine.fabric import FleetStats, WorkerStats

        empty = FleetStats()
        assert empty.p50_latency_s == 0.0
        assert empty.p95_latency_s == 0.0
        assert empty.mean_batch_size == 0.0
        assert empty.chunks == 0
        assert empty.batches == 0
        assert empty.version_latencies("anything") == []
        unreachable = WorkerStats(
            index=0, alive=False, incarnation=0, restarts=0, snapshot=None
        )
        assert unreachable.p50_latency_s == 0.0
        assert unreachable.p95_latency_s == 0.0

    def test_partial_snapshots_do_not_divide_by_zero(self):
        from repro.engine.fabric import FleetStats, WorkerStats

        # A snapshot missing counters (an older worker, a torn stats
        # reply) must degrade to zeros, not KeyError/ZeroDivisionError.
        fleet = FleetStats(
            workers=[
                WorkerStats(
                    index=0, alive=True, incarnation=0, restarts=0,
                    snapshot={"latencies_s": []},
                )
            ]
        )
        assert fleet.mean_batch_size == 0.0
        assert fleet.p95_latency_s == 0.0

    def test_journal_segments_split_at_swap_marks(self, rng):
        journal = SessionJournal()
        journal.open(7, version="v1")
        a, b, c = (rng.standard_normal((4, 8)) for _ in range(3))
        journal.record(7, a)
        journal.mark_swap(7, "v2")
        journal.record(7, b)
        journal.record(7, c)
        segments = journal.segments(7)
        assert [(v, len(chunks)) for v, chunks in segments] == [
            ("v1", 1), ("v2", 2),
        ]
        assert journal.version(7) == "v2"
        # A swap before any chunk rewrites the open version instead of
        # splitting an empty segment.
        journal.open(8, version="v1")
        journal.mark_swap(8, "v2")
        journal.record(8, a)
        assert journal.segments(8) == [("v2", (a,))]
        # Consecutive marks with no chunks between collapse.
        journal.mark_swap(8, "v3")
        journal.mark_swap(8, "v4")
        assert [(v, len(chunks)) for v, chunks in journal.segments(8)] == [
            ("v2", 1), ("v4", 0),
        ]
