"""Tests for GRU/LSTM cells and sequence wrappers (repro.nn.rnn)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.rnn import GRU, LSTM, GRUCell, LSTMCell
from repro.nn.tensor import Tensor


def manual_gru_step(cell: GRUCell, x: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Reference numpy implementation of the paper's GRU equations."""
    hs = cell.hidden_size
    w_ih, w_hh = cell.weight_ih.data, cell.weight_hh.data
    b_ih, b_hh = cell.bias_ih.data, cell.bias_hh.data
    gx = x @ w_ih.T + b_ih
    gh = h @ w_hh.T + b_hh
    sigmoid = lambda v: 1.0 / (1.0 + np.exp(-v))
    z = sigmoid(gx[:, :hs] + gh[:, :hs])
    r = sigmoid(gx[:, hs : 2 * hs] + gh[:, hs : 2 * hs])
    h_tilde = np.tanh(gx[:, 2 * hs :] + r * gh[:, 2 * hs :])
    return (1 - z) * h + z * h_tilde


class TestGRUCell:
    def test_output_shape(self, rng):
        cell = GRUCell(6, 10, rng=0)
        h = cell(Tensor(rng.standard_normal((4, 6))), cell.init_hidden(4))
        assert h.shape == (4, 10)

    def test_matches_manual_equations(self, rng):
        cell = GRUCell(5, 7, rng=0)
        x = rng.standard_normal((3, 5))
        h = rng.standard_normal((3, 7))
        out = cell(Tensor(x), Tensor(h)).data
        np.testing.assert_allclose(out, manual_gru_step(cell, x, h), atol=1e-12)

    def test_weight_shapes(self):
        cell = GRUCell(5, 7, rng=0)
        assert cell.weight_ih.data.shape == (21, 5)
        assert cell.weight_hh.data.shape == (21, 7)
        assert cell.bias_ih.data.shape == (21,)

    def test_init_hidden_zero(self):
        cell = GRUCell(5, 7, rng=0)
        assert np.all(cell.init_hidden(3).data == 0.0)

    def test_rejects_wrong_input_size(self, rng):
        cell = GRUCell(5, 7, rng=0)
        with pytest.raises(ShapeError):
            cell(Tensor(rng.standard_normal((3, 4))), cell.init_hidden(3))

    def test_hidden_stays_bounded(self, rng):
        # GRU hidden state is a convex combination of h and tanh output,
        # so it stays in [-1, 1] when started at zero.
        cell = GRUCell(4, 8, rng=0)
        h = cell.init_hidden(2)
        for _ in range(50):
            h = cell(Tensor(rng.standard_normal((2, 4)) * 3), h)
        assert np.all(np.abs(h.data) <= 1.0)

    def test_gradients_flow(self, rng):
        cell = GRUCell(4, 6, rng=0)
        h = cell(Tensor(rng.standard_normal((2, 4))), cell.init_hidden(2))
        h.sum().backward()
        for name in ("weight_ih", "weight_hh", "bias_ih", "bias_hh"):
            assert getattr(cell, name).grad is not None, name

    def test_deterministic_init(self):
        a = GRUCell(4, 6, rng=9)
        b = GRUCell(4, 6, rng=9)
        np.testing.assert_array_equal(a.weight_hh.data, b.weight_hh.data)


class TestGRUSequence:
    def test_output_shapes(self, rng):
        gru = GRU(5, 8, num_layers=2, rng=0)
        out, finals = gru(Tensor(rng.standard_normal((7, 3, 5))))
        assert out.shape == (7, 3, 8)
        assert len(finals) == 2
        assert finals[0].shape == (3, 8)

    def test_last_output_equals_final_hidden(self, rng):
        gru = GRU(5, 8, num_layers=2, rng=0)
        out, finals = gru(Tensor(rng.standard_normal((7, 3, 5))))
        np.testing.assert_allclose(out.data[-1], finals[-1].data)

    def test_matches_unrolled_cells(self, rng):
        gru = GRU(4, 6, num_layers=1, rng=0)
        x = rng.standard_normal((5, 2, 4))
        out, _ = gru(Tensor(x))
        h = np.zeros((2, 6))
        for t in range(5):
            h = manual_gru_step(gru.cells[0], x[t], h)
            np.testing.assert_allclose(out.data[t], h, atol=1e-12)

    def test_rejects_2d_input(self, rng):
        gru = GRU(4, 6, rng=0)
        with pytest.raises(ShapeError):
            gru(Tensor(rng.standard_normal((5, 4))))

    def test_rejects_wrong_h0_count(self, rng):
        gru = GRU(4, 6, num_layers=2, rng=0)
        with pytest.raises(ShapeError):
            gru(Tensor(rng.standard_normal((5, 2, 4))), h0=[gru.cells[0].init_hidden(2)])

    def test_custom_h0_used(self, rng):
        gru = GRU(4, 6, num_layers=1, rng=0)
        x = rng.standard_normal((1, 2, 4))
        h0 = rng.standard_normal((2, 6))
        out, _ = gru(Tensor(x), h0=[Tensor(h0)])
        np.testing.assert_allclose(
            out.data[0], manual_gru_step(gru.cells[0], x[0], h0), atol=1e-12
        )

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            GRU(4, 6, num_layers=0)

    def test_gradient_through_time(self, rng):
        gru = GRU(3, 5, num_layers=2, rng=0)
        out, _ = gru(Tensor(rng.standard_normal((6, 2, 3))))
        out.sum().backward()
        for cell in gru.cells:
            assert cell.weight_hh.grad is not None
            assert np.linalg.norm(cell.weight_hh.grad) > 0

    def test_layers_have_independent_weights(self):
        gru = GRU(6, 6, num_layers=2, rng=0)
        assert not np.allclose(
            gru.cells[0].weight_hh.data, gru.cells[1].weight_hh.data
        )


class TestLSTM:
    def test_cell_output_shapes(self, rng):
        cell = LSTMCell(5, 9, rng=0)
        h, c = cell(Tensor(rng.standard_normal((3, 5))), cell.init_hidden(3))
        assert h.shape == (3, 9)
        assert c.shape == (3, 9)

    def test_forget_gate_bias_initialized_to_one(self):
        cell = LSTMCell(5, 9, rng=0)
        np.testing.assert_array_equal(cell.bias.data[9:18], np.ones(9))

    def test_sequence_shape(self, rng):
        lstm = LSTM(5, 9, num_layers=2, rng=0)
        out = lstm(Tensor(rng.standard_normal((6, 3, 5))))
        assert out.shape == (6, 3, 9)

    def test_rejects_2d_input(self, rng):
        lstm = LSTM(5, 9, rng=0)
        with pytest.raises(ShapeError):
            lstm(Tensor(rng.standard_normal((6, 5))))

    def test_rejects_zero_layers(self):
        with pytest.raises(ValueError):
            LSTM(4, 6, num_layers=0)

    def test_gradients_flow(self, rng):
        lstm = LSTM(4, 6, rng=0)
        out = lstm(Tensor(rng.standard_normal((5, 2, 4))))
        out.sum().backward()
        assert lstm.cells[0].weight_ih.grad is not None

    def test_hidden_bounded(self, rng):
        lstm = LSTM(4, 6, rng=0)
        out = lstm(Tensor(rng.standard_normal((30, 2, 4))))
        assert np.all(np.abs(out.data) <= 1.0)  # |h| = |o * tanh(c)| <= 1
