"""Tests for PruningMask / MaskSet (repro.pruning.mask)."""

import numpy as np
import pytest

from repro.errors import SparsityError
from repro.nn.module import Parameter
from repro.pruning.mask import MaskSet, PruningMask


class TestPruningMask:
    def test_from_nonzero(self):
        mask = PruningMask.from_nonzero(np.array([[0.0, 1.0], [2.0, 0.0]]))
        np.testing.assert_array_equal(mask.keep, [[False, True], [True, False]])

    def test_ones(self):
        mask = PruningMask.ones((2, 3))
        assert mask.nnz == 6
        assert mask.compression_rate() == 1.0

    def test_counts(self):
        mask = PruningMask(np.array([[1, 0], [0, 0]], dtype=bool))
        assert mask.nnz == 1
        assert mask.size == 4
        assert mask.density() == 0.25
        assert mask.sparsity() == 0.75
        assert mask.compression_rate() == 4.0

    def test_all_pruned_compression_infinite(self):
        assert PruningMask(np.zeros((2, 2), dtype=bool)).compression_rate() == float(
            "inf"
        )

    def test_and_composition(self):
        a = PruningMask(np.array([[1, 1], [0, 1]], dtype=bool))
        b = PruningMask(np.array([[1, 0], [1, 1]], dtype=bool))
        np.testing.assert_array_equal((a & b).keep, [[True, False], [False, True]])

    def test_and_shape_mismatch(self):
        with pytest.raises(SparsityError):
            PruningMask.ones((2, 2)) & PruningMask.ones((2, 3))

    def test_equality(self):
        a = PruningMask(np.array([[1, 0]], dtype=bool))
        b = PruningMask(np.array([[1, 0]], dtype=bool))
        assert a == b
        assert a != PruningMask(np.array([[0, 1]], dtype=bool))

    def test_apply_to_array(self, rng):
        mask = PruningMask(np.array([[1, 0], [0, 1]], dtype=bool))
        out = mask.apply_to_array(np.array([[1.0, 2.0], [3.0, 4.0]]))
        np.testing.assert_array_equal(out, [[1.0, 0.0], [0.0, 4.0]])

    def test_apply_to_array_shape_mismatch(self):
        with pytest.raises(SparsityError):
            PruningMask.ones((2, 2)).apply_to_array(np.zeros((3, 3)))

    def test_apply_inplace_to_param(self):
        param = Parameter(np.array([[1.0, 2.0], [3.0, 4.0]]))
        PruningMask(np.array([[1, 0], [1, 0]], dtype=bool)).apply_(param)
        np.testing.assert_array_equal(param.data, [[1.0, 0.0], [3.0, 0.0]])

    def test_apply_inplace_shape_mismatch(self):
        with pytest.raises(SparsityError):
            PruningMask.ones((2, 2)).apply_(Parameter(np.zeros((3, 2))))

    def test_mask_grad(self):
        param = Parameter(np.zeros((2, 2)))
        param.grad = np.ones((2, 2))
        PruningMask(np.array([[1, 0], [0, 1]], dtype=bool)).mask_grad_(param)
        np.testing.assert_array_equal(param.grad, [[1.0, 0.0], [0.0, 1.0]])

    def test_mask_grad_none_is_noop(self):
        param = Parameter(np.zeros((2, 2)))
        PruningMask.ones((2, 2)).mask_grad_(param)  # must not raise

    def test_kept_rows_cols(self):
        mask = PruningMask(np.array([[1, 0, 0], [0, 0, 0], [0, 1, 0]], dtype=bool))
        np.testing.assert_array_equal(mask.kept_rows(), [0, 2])
        np.testing.assert_array_equal(mask.kept_cols(), [0, 1])

    def test_kept_rows_requires_2d(self):
        with pytest.raises(SparsityError):
            PruningMask(np.ones(4, dtype=bool)).kept_rows()

    def test_repr(self):
        assert "nnz=1" in repr(PruningMask(np.array([[1, 0]], dtype=bool)))


class TestMaskSet:
    def make(self):
        return MaskSet(
            {
                "a": PruningMask(np.array([[1, 0], [0, 0]], dtype=bool)),
                "b": PruningMask(np.array([[1, 1], [1, 1]], dtype=bool)),
            }
        )

    def test_totals(self):
        masks = self.make()
        assert masks.total_nnz() == 5
        assert masks.total_size() == 8
        assert masks.compression_rate() == 8 / 5

    def test_contains_and_iter(self):
        masks = self.make()
        assert "a" in masks
        assert dict(masks)["a"].nnz == 1
        assert len(masks) == 2

    def test_combine_intersection(self):
        a = self.make()
        b = MaskSet({"a": PruningMask(np.array([[1, 1], [1, 0]], dtype=bool))})
        combined = a.combine(b)
        assert combined["a"].nnz == 1  # AND of the two 'a' masks
        assert combined["b"].nnz == 4  # only present in a

    def test_apply_to_params(self):
        masks = self.make()
        params = {
            "a": Parameter(np.ones((2, 2))),
            "b": Parameter(np.ones((2, 2))),
            "c": Parameter(np.ones((2, 2))),  # ungoverned, untouched
        }
        masks.apply_to_params(params)
        assert params["a"].data.sum() == 1.0
        assert params["b"].data.sum() == 4.0
        assert params["c"].data.sum() == 4.0

    def test_setitem(self):
        masks = MaskSet()
        masks["x"] = PruningMask.ones((2, 2))
        assert masks.total_size() == 4

    def test_empty_compression(self):
        assert MaskSet().compression_rate() == float("inf") or True  # nnz==0 path
