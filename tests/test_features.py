"""Tests for the acoustic front-end (repro.speech.features)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.speech.features import (
    FeatureConfig,
    add_deltas,
    dct_matrix,
    frame_signal,
    hz_to_mel,
    log_mel_spectrogram,
    mel_filterbank,
    mel_to_hz,
    mfcc,
)


class TestMelScale:
    def test_round_trip(self):
        hz = np.array([100.0, 1000.0, 4000.0])
        np.testing.assert_allclose(mel_to_hz(hz_to_mel(hz)), hz, rtol=1e-10)

    def test_monotone(self):
        mels = hz_to_mel(np.linspace(0, 8000, 100))
        assert np.all(np.diff(mels) > 0)

    def test_zero_maps_to_zero(self):
        assert hz_to_mel(0.0) == 0.0


class TestFilterbank:
    def test_shape(self):
        bank = mel_filterbank(40, 512, 16000)
        assert bank.shape == (40, 257)

    def test_nonnegative(self):
        bank = mel_filterbank(40, 512, 16000)
        assert np.all(bank >= 0)

    def test_every_filter_nonempty(self):
        bank = mel_filterbank(40, 512, 16000)
        assert np.all(bank.sum(axis=1) > 0)

    def test_rejects_bad_range(self):
        with pytest.raises(ConfigError):
            mel_filterbank(10, 512, 16000, fmin=9000.0)

    def test_rejects_zero_filters(self):
        with pytest.raises(ConfigError):
            mel_filterbank(0, 512, 16000)


class TestFraming:
    def test_frame_count(self):
        frames = frame_signal(np.zeros(1000), frame_length=400, hop_length=160)
        assert frames.shape == (1 + int(np.ceil((1000 - 400) / 160)), 400)

    def test_short_signal_single_frame(self):
        frames = frame_signal(np.ones(100), 400, 160)
        assert frames.shape == (1, 400)
        assert frames[0, :100].sum() == 100
        assert frames[0, 100:].sum() == 0  # zero padded

    def test_hop_offsets(self):
        signal = np.arange(1000.0)
        frames = frame_signal(signal, 400, 160)
        np.testing.assert_array_equal(frames[1, :10], signal[160:170])

    def test_empty_signal(self):
        assert frame_signal(np.zeros(0), 400, 160).shape == (0, 400)

    def test_rejects_2d(self):
        with pytest.raises(ConfigError):
            frame_signal(np.zeros((10, 2)), 4, 2)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ConfigError):
            frame_signal(np.zeros(10), 0, 2)


class TestDCT:
    def test_orthonormal_rows(self):
        basis = dct_matrix(13, 40)
        np.testing.assert_allclose(basis @ basis.T, np.eye(13), atol=1e-12)

    def test_shape(self):
        assert dct_matrix(13, 40).shape == (13, 40)

    def test_first_row_constant(self):
        basis = dct_matrix(3, 8)
        assert np.allclose(basis[0], basis[0, 0])


class TestFeatureExtraction:
    def make_tone(self, freq=440.0, seconds=0.3, rate=16000):
        t = np.arange(int(seconds * rate)) / rate
        return np.sin(2 * np.pi * freq * t)

    def test_log_mel_shape(self):
        config = FeatureConfig()
        feats = log_mel_spectrogram(self.make_tone(), config)
        assert feats.shape[1] == config.num_mels
        assert feats.shape[0] > 0

    def test_tone_peaks_at_expected_mel(self):
        config = FeatureConfig()
        low = log_mel_spectrogram(self.make_tone(300.0), config).mean(axis=0)
        high = log_mel_spectrogram(self.make_tone(3000.0), config).mean(axis=0)
        assert low.argmax() < high.argmax()

    def test_mfcc_shape(self):
        config = FeatureConfig()
        feats = mfcc(self.make_tone(), config)
        assert feats.shape[1] == config.num_mfcc

    def test_finite_on_silence(self):
        feats = log_mel_spectrogram(np.zeros(4000), FeatureConfig())
        assert np.all(np.isfinite(feats))

    def test_config_rejects_small_fft(self):
        with pytest.raises(ConfigError):
            FeatureConfig(fft_size=256, frame_length=400)

    def test_add_deltas_doubles_dims(self, rng):
        feats = rng.standard_normal((10, 13))
        out = add_deltas(feats)
        assert out.shape == (10, 26)
        np.testing.assert_array_equal(out[:, :13], feats)

    def test_add_deltas_values(self):
        feats = np.arange(5.0)[:, None]
        out = add_deltas(feats)
        np.testing.assert_allclose(out[1:-1, 1], 1.0)  # constant slope

    def test_add_deltas_single_frame(self):
        out = add_deltas(np.ones((1, 3)))
        np.testing.assert_array_equal(out[:, 3:], np.zeros((1, 3)))

    def test_add_deltas_rejects_1d(self):
        with pytest.raises(ConfigError):
            add_deltas(np.zeros(5))
