"""Tests for the synthetic corpus generator (repro.speech.synth)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.speech.phones import NUM_CLASSES, SILENCE_ID
from repro.speech.synth import (
    SynthConfig,
    make_corpus,
    make_dataset,
    phone_formants,
    phone_prototypes,
    synth_utterance,
    synth_waveform,
    waveform_example,
)
from repro.utils.rng import new_rng


class TestConfig:
    def test_defaults_valid(self):
        SynthConfig()

    def test_rejects_bad_phone_range(self):
        with pytest.raises(ConfigError):
            SynthConfig(min_phones=5, max_phones=3)

    def test_rejects_bad_durations(self):
        with pytest.raises(ConfigError):
            SynthConfig(min_duration=0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ConfigError):
            SynthConfig(noise_level=-1.0)

    def test_rejects_tiny_num_mels(self):
        with pytest.raises(ConfigError):
            SynthConfig(num_mels=2)


class TestPrototypes:
    def test_shape(self):
        assert phone_prototypes(SynthConfig()).shape == (NUM_CLASSES, 40)

    def test_deterministic_for_fixed_seed(self):
        a = phone_prototypes(SynthConfig())
        b = phone_prototypes(SynthConfig())
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_prototypes(self):
        a = phone_prototypes(SynthConfig())
        b = phone_prototypes(SynthConfig(prototype_seed=999))
        assert not np.allclose(a, b)

    def test_silence_low_energy(self):
        protos = phone_prototypes(SynthConfig())
        assert protos[SILENCE_ID].mean() < protos[1:].mean()

    def test_phones_distinct(self):
        protos = phone_prototypes(SynthConfig())
        # No two phones share a prototype.
        for i in range(1, 5):
            for j in range(i + 1, 6):
                assert not np.allclose(protos[i], protos[j])


class TestUtterance:
    def make(self, seed=0, **kw):
        config = SynthConfig(**kw)
        return synth_utterance(config, phone_prototypes(config), new_rng(seed))

    def test_shapes_consistent(self):
        ex = self.make()
        assert ex.features.shape == (len(ex.labels), 40)

    def test_labels_in_range(self):
        ex = self.make()
        assert ex.labels.min() >= 0
        assert ex.labels.max() < NUM_CLASSES

    def test_silence_padding(self):
        ex = self.make(silence_frames=3)
        assert np.all(ex.labels[:3] == SILENCE_ID)
        assert np.all(ex.labels[-3:] == SILENCE_ID)

    def test_no_silence_inside_speech(self):
        ex = self.make(silence_frames=2)
        inner = ex.labels[2:-2]
        assert np.all(inner != SILENCE_ID)

    def test_duration_bounds_respected(self):
        ex = self.make(min_duration=3, max_duration=5, silence_frames=0,
                       coarticulation=0)
        runs = []
        start = 0
        for t in range(1, len(ex.labels) + 1):
            if t == len(ex.labels) or ex.labels[t] != ex.labels[start]:
                runs.append(t - start)
                start = t
        # Adjacent equal phones can merge runs, so only the lower bound is
        # guaranteed per run.
        assert min(runs) >= 3

    def test_zero_noise_matches_prototypes_without_speaker_variation(self):
        config = SynthConfig(noise_level=0.0, speaker_tilt=0.0, coarticulation=0)
        protos = phone_prototypes(config)
        ex = synth_utterance(config, protos, new_rng(0))
        np.testing.assert_allclose(ex.features, protos[ex.labels], atol=1e-12)

    def test_noise_level_scales_deviation(self):
        quiet = SynthConfig(noise_level=0.1, speaker_tilt=0.0, coarticulation=0)
        loud = SynthConfig(noise_level=1.0, speaker_tilt=0.0, coarticulation=0)
        protos = phone_prototypes(quiet)
        dev_q = np.abs(
            synth_utterance(quiet, protos, new_rng(1)).features
            - protos[synth_utterance(quiet, protos, new_rng(1)).labels]
        ).mean()
        dev_l = np.abs(
            synth_utterance(loud, protos, new_rng(1)).features
            - protos[synth_utterance(loud, protos, new_rng(1)).labels]
        ).mean()
        assert dev_l > dev_q

    def test_deterministic_given_rng(self):
        config = SynthConfig()
        protos = phone_prototypes(config)
        a = synth_utterance(config, protos, new_rng(7))
        b = synth_utterance(config, protos, new_rng(7))
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestDatasets:
    def test_make_dataset_size(self):
        assert len(make_dataset(5, seed=0)) == 5

    def test_make_dataset_deterministic(self):
        a = make_dataset(3, seed=1)
        b = make_dataset(3, seed=1)
        for x, y in zip(a.examples, b.examples):
            np.testing.assert_array_equal(x.features, y.features)

    def test_make_dataset_utterances_differ(self):
        data = make_dataset(2, seed=0)
        assert len(data[0]) != len(data[1]) or not np.allclose(
            data[0].features[:3], data[1].features[:3]
        )

    def test_make_corpus_disjoint_seeds(self):
        train, test = make_corpus(3, 2, seed=0)
        assert len(train) == 3
        assert len(test) == 2
        # Different RNG streams: first utterances differ.
        assert len(train[0]) != len(test[0]) or not np.allclose(
            train[0].features[:2], test[0].features[:2]
        )

    def test_rejects_zero_utterances(self):
        with pytest.raises(ConfigError):
            make_dataset(0)


class TestWaveformPath:
    def test_formants_shape_and_silence(self):
        formants = phone_formants()
        assert formants.shape == (NUM_CLASSES, 3)
        assert np.all(formants[SILENCE_ID] == 0.0)
        assert np.all(formants[1:, 0] > 0)

    def test_waveform_length(self):
        from repro.speech.features import FeatureConfig

        labels = np.array([0, 1, 1, 2, 0])
        wave = synth_waveform(labels, rng=0)
        assert len(wave) == len(labels) * FeatureConfig().hop_length

    def test_silence_frames_quiet(self):
        labels = np.array([0, 1, 0])
        wave = synth_waveform(labels, rng=0)
        hop = 160
        silence_rms = np.sqrt(np.mean(wave[:hop] ** 2))
        speech_rms = np.sqrt(np.mean(wave[hop : 2 * hop] ** 2))
        assert speech_rms > 10 * silence_rms

    def test_waveform_example_consistent(self):
        wave, example = waveform_example(seed=0)
        assert example.features.shape[0] == len(example.labels)
        assert len(wave) >= len(example.labels) * 160
