"""Tests for the baseline compression methods (magnitude, BBS, structured,
block-circulant) and the shared PruningMethod protocol."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.bank_balanced import BBSConfig, BBSPruner, bbs_project_masks
from repro.pruning.base import DenseBaseline, PruningMethod
from repro.pruning.block_circulant import (
    BlockCirculantCompressor,
    BlockCirculantConfig,
    circulant_compression_rate,
    project_block_circulant,
)
from repro.pruning.magnitude import (
    MagnitudeConfig,
    MagnitudePruner,
    magnitude_project_masks,
)
from repro.pruning.structured import (
    StructuredConfig,
    StructuredPruner,
    structured_project_masks,
)


def params_for(rng, shapes=((8, 12), (8, 8))):
    return {
        f"w{i}": Parameter(rng.standard_normal(shape))
        for i, shape in enumerate(shapes)
    }


def run_epochs(pruner, params, rng, max_epochs=20):
    epochs = 0
    while not pruner.finished and epochs < max_epochs:
        for _ in range(2):
            for p in params.values():
                p.grad = 0.01 * rng.standard_normal(p.data.shape)
            pruner.on_batch_backward()
            for p in params.values():
                p.data -= 0.01 * p.grad
            pruner.on_batch_end()
        pruner.on_epoch_end()
        epochs += 1
    return epochs


class TestProtocol:
    def test_base_hooks_are_noops(self, rng):
        method = PruningMethod(params_for(rng))
        method.on_batch_backward()
        method.on_batch_end()
        method.on_epoch_end()
        assert method.finished
        assert method.masks is None
        assert method.compression_rate() == 1.0

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            PruningMethod({})

    def test_dense_baseline_all_ones(self, rng):
        method = DenseBaseline(params_for(rng))
        assert method.masks.compression_rate() == 1.0


class TestMagnitude:
    def test_schedule_ramps_geometrically(self):
        config = MagnitudeConfig(rate=8.0, num_stages=3)
        assert config.stage_rate(1) == pytest.approx(2.0)
        assert config.stage_rate(2) == pytest.approx(4.0)
        assert config.stage_rate(3) == pytest.approx(8.0)
        assert config.stage_rate(5) == pytest.approx(8.0)  # clamped

    def test_reaches_target_rate(self, rng):
        params = params_for(rng)
        pruner = MagnitudePruner(params, MagnitudeConfig(rate=4.0, num_stages=2,
                                                         retrain_epochs=1))
        run_epochs(pruner, params, rng)
        assert pruner.finished
        assert pruner.masks.compression_rate() == pytest.approx(4.0, rel=0.1)

    def test_weights_zeroed_by_masks(self, rng):
        params = params_for(rng)
        pruner = MagnitudePruner(params, MagnitudeConfig(rate=4.0, num_stages=2,
                                                         retrain_epochs=0))
        run_epochs(pruner, params, rng)
        for name, p in params.items():
            assert np.all(p.data[~pruner.masks[name].keep] == 0.0)

    def test_one_shot_projection(self, rng):
        masks = magnitude_project_masks(
            {"w": rng.standard_normal((8, 8))}, rate=4.0
        )
        assert masks["w"].nnz == 16

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            MagnitudeConfig(rate=0.5)
        with pytest.raises(ConfigError):
            MagnitudeConfig(num_stages=0)


class TestBBS:
    def test_reaches_target(self, rng):
        params = params_for(rng)
        pruner = BBSPruner(params, BBSConfig(rate=4.0, bank_size=4, num_stages=2,
                                             retrain_epochs=1))
        run_epochs(pruner, params, rng)
        assert pruner.finished
        assert pruner.masks.compression_rate() == pytest.approx(4.0, rel=0.1)

    def test_rows_balanced(self, rng):
        params = params_for(rng, shapes=((8, 16),))
        pruner = BBSPruner(params, BBSConfig(rate=4.0, bank_size=4, num_stages=1,
                                             retrain_epochs=0))
        run_epochs(pruner, params, rng)
        counts = pruner.masks["w0"].keep.sum(axis=1)
        assert len(set(counts.tolist())) == 1

    def test_bank_clamped_to_width(self, rng):
        params = params_for(rng, shapes=((4, 6),))
        pruner = BBSPruner(params, BBSConfig(rate=2.0, bank_size=32, num_stages=1,
                                             retrain_epochs=0))
        run_epochs(pruner, params, rng)
        assert pruner.masks is not None

    def test_one_shot_projection(self, rng):
        masks = bbs_project_masks({"w": rng.standard_normal((4, 8))}, 2.0, 4)
        assert masks["w"].compression_rate() == pytest.approx(2.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            BBSConfig(bank_size=0)


class TestStructured:
    def test_row_pruning_removes_whole_rows(self, rng):
        params = params_for(rng, shapes=((8, 8),))
        pruner = StructuredPruner(
            params, StructuredConfig(rate=2.0, axis="row", admm_epochs=2,
                                     retrain_epochs=1)
        )
        run_epochs(pruner, params, rng)
        keep = pruner.masks["w0"].keep
        row_alive = keep.any(axis=1)
        assert row_alive.sum() == 4
        assert np.all(keep[row_alive])

    def test_column_pruning_removes_whole_columns(self, rng):
        params = params_for(rng, shapes=((8, 8),))
        pruner = StructuredPruner(
            params, StructuredConfig(rate=4.0, axis="column", admm_epochs=2,
                                     retrain_epochs=0)
        )
        run_epochs(pruner, params, rng)
        keep = pruner.masks["w0"].keep
        col_alive = keep.any(axis=0)
        assert col_alive.sum() == 2
        assert np.all(keep[:, col_alive])

    def test_one_shot_projection(self, rng):
        masks = structured_project_masks(
            {"w": rng.standard_normal((8, 8))}, 2.0, axis="row"
        )
        assert masks["w"].keep.any(axis=1).sum() == 4

    def test_rejects_bad_axis(self):
        with pytest.raises(ConfigError):
            StructuredConfig(axis="diagonal")
        with pytest.raises(ConfigError):
            structured_project_masks({"w": np.ones((2, 2))}, 2.0, axis="bad")


class TestBlockCirculant:
    def test_projection_produces_circulant_blocks(self, rng):
        w = rng.standard_normal((8, 8))
        out = project_block_circulant(w, 4)
        block = out[:4, :4]
        for i in range(4):
            for j in range(4):
                assert block[i, j] == pytest.approx(block[(i + 1) % 4, (j + 1) % 4])

    def test_projection_idempotent(self, rng):
        w = rng.standard_normal((8, 8))
        once = project_block_circulant(w, 4)
        np.testing.assert_allclose(project_block_circulant(once, 4), once)

    def test_projection_preserves_diagonal_means(self, rng):
        w = rng.standard_normal((4, 4))
        out = project_block_circulant(w, 4)
        diag0 = [w[i, i] for i in range(4)]
        assert out[0, 0] == pytest.approx(np.mean(diag0))

    def test_edge_blocks_untouched(self, rng):
        w = rng.standard_normal((6, 6))
        out = project_block_circulant(w, 4)
        np.testing.assert_array_equal(out[4:, :], w[4:, :])
        np.testing.assert_array_equal(out[:4, 4:], w[:4, 4:])

    def test_block_size_one_is_identity(self, rng):
        w = rng.standard_normal((4, 4))
        np.testing.assert_array_equal(project_block_circulant(w, 1), w)

    def test_compression_rate_exact_division(self):
        assert circulant_compression_rate((8, 8), 4) == pytest.approx(4.0)
        assert circulant_compression_rate((16, 16), 8) == pytest.approx(8.0)

    def test_compression_rate_with_edges(self):
        rate = circulant_compression_rate((10, 10), 4)
        assert 1.0 < rate < 4.0  # edge blocks stay dense

    def test_compressor_keeps_weights_circulant(self, rng):
        params = params_for(rng, shapes=((8, 8),))
        compressor = BlockCirculantCompressor(
            params, BlockCirculantConfig(block_size=4, train_epochs=2)
        )
        run_epochs(compressor, params, rng)
        w = params["w0"].data
        np.testing.assert_allclose(project_block_circulant(w, 4), w, atol=1e-12)

    def test_compressor_compression_rate(self, rng):
        params = params_for(rng, shapes=((8, 8),))
        compressor = BlockCirculantCompressor(
            params, BlockCirculantConfig(block_size=4, train_epochs=0)
        )
        assert compressor.compression_rate() == pytest.approx(4.0)

    def test_masks_are_all_ones(self, rng):
        params = params_for(rng, shapes=((8, 8),))
        compressor = BlockCirculantCompressor(
            params, BlockCirculantConfig(block_size=4, train_epochs=0)
        )
        assert compressor.masks["w0"].nnz == 64

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            BlockCirculantConfig(block_size=0)
        with pytest.raises(ConfigError):
            project_block_circulant(np.ones((4, 4)), 0)
        with pytest.raises(ConfigError):
            project_block_circulant(np.ones(4), 2)
