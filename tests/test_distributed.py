"""Tests for repro.training.distributed: data-parallel determinism,
crash/stall supervision with bit-exact recovery, and restart budgets."""

import numpy as np
import pytest

from repro.errors import ConfigError, TrainingError
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_corpus
from repro.speech.trainer import TrainerConfig
from repro.training import DistConfig, DistributedTrainer
from repro.utils.faults import FaultConfig

_CORPUS = dict(num_train=6, num_test=2, hidden=12, batch=3, seed=0)


def _build(dist: DistConfig) -> DistributedTrainer:
    train_set, test_set = make_corpus(
        _CORPUS["num_train"], _CORPUS["num_test"], SynthConfig(),
        seed=_CORPUS["seed"],
    )
    model = GRUAcousticModel(
        AcousticModelConfig(hidden_size=_CORPUS["hidden"]),
        rng=_CORPUS["seed"],
    )
    return DistributedTrainer(
        model,
        train_set,
        test_set,
        TrainerConfig(batch_size=_CORPUS["batch"], seed=_CORPUS["seed"]),
        dist,
    )


def _train_epochs(dist: DistConfig, epochs: int = 2):
    with _build(dist) as trainer:
        for _ in range(epochs):
            trainer.train_epoch()
        weights = {
            name: value.copy()
            for name, value in trainer.model.state_dict().items()
        }
        return weights, list(trainer.log.losses), trainer


class TestDistConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DistConfig(num_workers=0)
        with pytest.raises(ConfigError):
            DistConfig(rpc_timeout_s=0)
        with pytest.raises(ConfigError):
            DistConfig(max_restarts=-1)
        with pytest.raises(ConfigError):
            DistConfig(chunk_elems=0)


class TestDeterminism:
    def test_bit_identical_run_to_run(self):
        first, losses_a, _ = _train_epochs(DistConfig(num_workers=2))
        second, losses_b, _ = _train_epochs(DistConfig(num_workers=2))
        assert losses_a == losses_b
        for name, value in first.items():
            np.testing.assert_array_equal(value, second[name])

    def test_small_chunks_change_nothing(self):
        # The chunked all-reduce granularity is a transport detail; the
        # reduction order (fixed worker order) is what the math pins.
        coarse, losses_a, _ = _train_epochs(DistConfig(num_workers=2))
        fine, losses_b, _ = _train_epochs(
            DistConfig(num_workers=2, chunk_elems=64)
        )
        assert losses_a == losses_b
        for name, value in coarse.items():
            np.testing.assert_array_equal(value, fine[name])


class TestRecovery:
    def test_crash_recovers_bit_identical(self):
        clean, clean_losses, _ = _train_epochs(DistConfig(num_workers=2))
        chaos = DistConfig(
            num_workers=2,
            faults=FaultConfig(crash_after_chunks=1, target_worker=1),
        )
        weights, losses, trainer = _train_epochs(chaos)
        assert [e.reason for e in trainer.restart_log] == ["crash"]
        assert trainer.restart_log[0].worker == 1
        assert losses == clean_losses
        for name, value in clean.items():
            np.testing.assert_array_equal(value, weights[name])

    def test_stall_recovers_bit_identical(self):
        clean, clean_losses, _ = _train_epochs(DistConfig(num_workers=2))
        chaos = DistConfig(
            num_workers=2,
            rpc_timeout_s=1.0,
            faults=FaultConfig(
                stall_after_chunks=1, stall_seconds=30.0, target_worker=0
            ),
        )
        weights, losses, trainer = _train_epochs(chaos)
        assert [e.reason for e in trainer.restart_log] == ["stall"]
        assert losses == clean_losses
        for name, value in clean.items():
            np.testing.assert_array_equal(value, weights[name])

    def test_restart_budget_exhausted_raises_typed(self):
        # repeat=True re-arms the crash in every incarnation, so the
        # worker can never come back and the budget must run out.
        chaos = DistConfig(
            num_workers=2,
            max_restarts=1,
            faults=FaultConfig(
                crash_after_chunks=0, target_worker=0, repeat=True
            ),
        )
        with _build(chaos) as trainer:
            with pytest.raises(TrainingError, match="restart"):
                trainer.train_epoch()

    def test_backoff_is_capped_exponential(self):
        chaos = DistConfig(
            num_workers=2,
            max_restarts=3,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
            faults=FaultConfig(
                crash_after_chunks=0, target_worker=0, repeat=True
            ),
        )
        with _build(chaos) as trainer:
            with pytest.raises(TrainingError):
                trainer.train_epoch()
            assert trainer.backoff_history == [0.01, 0.02, 0.02]


class TestLifecycle:
    def test_close_is_idempotent(self):
        trainer = _build(DistConfig(num_workers=2))
        trainer.train_epoch()
        trainer.close()
        trainer.close()

    def test_single_worker_matches_single_process(self):
        from repro.speech.trainer import Trainer

        train_set, test_set = make_corpus(
            _CORPUS["num_train"], _CORPUS["num_test"], SynthConfig(),
            seed=_CORPUS["seed"],
        )
        model = GRUAcousticModel(
            AcousticModelConfig(hidden_size=_CORPUS["hidden"]),
            rng=_CORPUS["seed"],
        )
        single = Trainer(
            model, train_set, test_set,
            TrainerConfig(batch_size=_CORPUS["batch"], seed=_CORPUS["seed"]),
        )
        single.train_epoch()

        weights, losses, _ = _train_epochs(DistConfig(num_workers=1), epochs=1)
        # One shard means no cross-shard reduction: losses and weights
        # must be bit-identical to the in-process trainer.
        assert losses == list(single.log.losses)
        for name, value in single.model.state_dict().items():
            np.testing.assert_array_equal(value, weights[name])
