"""Project/rate parity for block-circulant compression on ragged shapes.

``project_block_circulant`` constrains only *full* ``b × b`` blocks; edge
blocks on shapes not divisible by ``b`` stay unconstrained.  The storage
accounting in ``circulant_compression_rate`` must charge exactly what the
projection leaves free: ``b`` values per full block, every edge element
at full cost.  These tests count the projected matrix's degrees of
freedom independently and hold the two functions in lockstep, so the
rate can never overstate compression on non-divisible shapes.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pruning.block_circulant import (
    circulant_compression_rate,
    project_block_circulant,
)

# Divisible, ragged-rows, ragged-cols, ragged-both, block > dim.
SHAPES = [
    (8, 8, 4),
    (10, 10, 4),
    (10, 6, 4),
    (6, 10, 4),
    (10, 10, 3),
    (7, 5, 4),
    (3, 3, 4),
    (12, 10, 5),
    (1, 1, 1),
]


def stored_values_of_projection(rows, cols, b):
    """Degrees of freedom of a projected matrix, counted from scratch:
    each full block is determined by its ``b`` diagonal means, every
    element outside the full-block region stays independent."""
    full_r, full_c = rows // b, cols // b
    full_block_values = full_r * full_c * b
    edge_values = rows * cols - full_r * full_c * b * b
    return full_block_values + edge_values


class TestProjectRateParity:
    @pytest.mark.parametrize("rows,cols,b", SHAPES)
    def test_rate_matches_projection_freedom(self, rows, cols, b):
        stored = stored_values_of_projection(rows, cols, b)
        rate = circulant_compression_rate((rows, cols), b)
        assert rate == pytest.approx((rows * cols) / stored)
        # Never credits more compression than the full-block count can buy.
        assert rate <= b

    @pytest.mark.parametrize("rows,cols,b", SHAPES)
    def test_edges_left_unconstrained(self, rows, cols, b, rng_factory):
        rng = rng_factory(rows * 100 + cols * 10 + b)
        weight = rng.standard_normal((rows, cols))
        projected = project_block_circulant(weight, b)
        full_r, full_c = rows // b, cols // b
        # Everything outside the full-block region is untouched...
        np.testing.assert_array_equal(
            projected[full_r * b :, :], weight[full_r * b :, :]
        )
        np.testing.assert_array_equal(
            projected[: full_r * b, full_c * b :],
            weight[: full_r * b, full_c * b :],
        )
        # ...and every full block really is circulant (constant diagonals).
        i_idx, j_idx = np.indices((b, b))
        diag = (i_idx - j_idx) % b
        for r0 in range(0, full_r * b, b):
            for c0 in range(0, full_c * b, b):
                block = projected[r0 : r0 + b, c0 : c0 + b]
                for d in range(b):
                    values = block[diag == d]
                    np.testing.assert_allclose(values, values[0])

    def test_projection_is_idempotent_on_ragged_shape(self, rng_factory):
        weight = rng_factory(3).standard_normal((10, 7))
        once = project_block_circulant(weight, 4)
        np.testing.assert_allclose(project_block_circulant(once, 4), once)

    def test_divisible_shape_rate_is_block_size(self):
        assert circulant_compression_rate((16, 16), 4) == pytest.approx(4.0)

    def test_all_edge_shape_rate_is_one(self):
        # No full block fits: nothing is constrained, nothing is saved.
        assert circulant_compression_rate((3, 3), 4) == pytest.approx(1.0)


class TestRateValidation:
    def test_zero_block_size_rejected(self):
        with pytest.raises(ConfigError, match="block_size"):
            circulant_compression_rate((8, 8), 0)

    def test_negative_block_size_rejected(self):
        with pytest.raises(ConfigError, match="block_size"):
            circulant_compression_rate((8, 8), -2)

    def test_non_2d_shape_rejected(self):
        with pytest.raises(ConfigError, match="2-D"):
            circulant_compression_rate((8, 8, 8), 4)

    def test_negative_dimension_rejected(self):
        with pytest.raises(ConfigError, match=">= 0"):
            circulant_compression_rate((-1, 8), 4)

    def test_empty_shape_is_infinite(self):
        assert circulant_compression_rate((0, 8), 4) == float("inf")
