"""Tests for plan visualization and the per-layer BSP driver."""

import numpy as np
import pytest

from repro.compiler.codegen import CompileOptions
from repro.compiler.pipeline import compile_weights
from repro.compiler.visualize import describe_plan, render_pattern
from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.pruning.per_layer import PerLayerBSPPruner
from repro.sparse.blocks import BlockGrid, grid_for


class TestRenderPattern:
    def test_dense_matrix_all_shaded(self, rng):
        out = render_pattern(rng.standard_normal((8, 8)))
        assert " " not in out.replace("\n", "")
        assert "#" in out

    def test_zero_matrix_all_blank(self):
        out = render_pattern(np.zeros((8, 8)))
        assert set(out.replace("\n", "")) <= {" "}

    def test_row_pruned_shows_blank_rows(self, rng):
        w = rng.standard_normal((8, 8))
        w[4:] = 0.0
        lines = render_pattern(w, max_rows=8, max_cols=8).split("\n")
        assert all(set(line) <= {" "} for line in lines[4:])
        assert all("#" in line for line in lines[:4])

    def test_downsampling_caps_size(self, rng):
        out = render_pattern(rng.standard_normal((200, 300)),
                             max_rows=16, max_cols=40)
        lines = out.split("\n")
        assert len(lines) <= 16
        assert max(len(line) for line in lines) <= 40

    def test_grid_draws_boundaries(self, rng):
        w = rng.standard_normal((8, 8))
        grid = BlockGrid(8, 8, 2, 2)
        out = render_pattern(w, max_rows=8, max_cols=8, grid=grid)
        assert "|" in out
        assert any(set(line) == {"-"} for line in out.split("\n"))

    def test_bsp_pattern_looks_blocky(self, rng):
        w = rng.standard_normal((16, 16))
        masks = bsp_project_masks(
            {"w": w},
            BSPConfig(col_rate=4, row_rate=2, num_row_strips=2, num_col_blocks=2),
        )
        pruned = masks["w"].apply_to_array(w)
        out = render_pattern(pruned, max_rows=16, max_cols=16)
        assert "#" in out and " " in out

    def test_rejects_1d(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            render_pattern(np.zeros(4))


class TestDescribePlan:
    def test_mentions_every_layer(self, rng):
        weights = {
            "a": rng.standard_normal((16, 16)),
            "b": rng.standard_normal((16, 16)),
        }
        plan = compile_weights(weights, CompileOptions(num_row_strips=2,
                                                       num_col_blocks=2),
                               timesteps=5)
        text = describe_plan(plan)
        assert "a:" in text and "b:" in text
        assert "2 layers" in text
        assert "GOP/frame" in text

    def test_reports_elimination(self, rng):
        w = rng.standard_normal((16, 16))
        masks = bsp_project_masks(
            {"w": w},
            BSPConfig(col_rate=4, row_rate=1, num_row_strips=2, num_col_blocks=2),
        )
        plan = compile_weights(
            {"w": masks["w"].apply_to_array(w)},
            CompileOptions(num_row_strips=2, num_col_blocks=2),
            timesteps=5,
        )
        assert "eliminated" in describe_plan(plan)


class TestPerLayerBSP:
    def make_params(self, rng):
        return {
            "a": Parameter(rng.standard_normal((8, 8))),
            "b": Parameter(rng.standard_normal((8, 8))),
        }

    def make_config(self, rate, admm=1, retrain=0):
        return BSPConfig(
            col_rate=rate, row_rate=1, num_row_strips=2, num_col_blocks=2,
            step1_admm_epochs=admm, step1_retrain_epochs=retrain,
            step2_admm_epochs=0, step2_retrain_epochs=0,
        )

    def drive(self, pruner, params, rng, epochs):
        for _ in range(epochs):
            for _ in range(2):
                for p in params.values():
                    p.grad = 0.01 * rng.standard_normal(p.data.shape)
                pruner.on_batch_backward()
                for p in params.values():
                    p.data -= 0.01 * p.grad
                pruner.on_batch_end()
            pruner.on_epoch_end()

    def test_different_rates_per_layer(self, rng):
        params = self.make_params(rng)
        pruner = PerLayerBSPPruner(
            params, {"a": self.make_config(2.0), "b": self.make_config(4.0)}
        )
        self.drive(pruner, params, rng, 2)
        assert pruner.finished
        masks = pruner.masks
        assert masks["a"].compression_rate() == pytest.approx(2.0, rel=0.2)
        assert masks["b"].compression_rate() == pytest.approx(4.0, rel=0.2)

    def test_unequal_phase_lengths(self, rng):
        params = self.make_params(rng)
        pruner = PerLayerBSPPruner(
            params,
            {"a": self.make_config(2.0, admm=1), "b": self.make_config(4.0, admm=3)},
        )
        self.drive(pruner, params, rng, 1)
        assert not pruner.finished  # b still pruning
        assert pruner.masks is None or pruner.masks is not None  # no crash
        self.drive(pruner, params, rng, 3)
        assert pruner.finished

    def test_missing_config_rejected(self, rng):
        params = self.make_params(rng)
        with pytest.raises(ConfigError):
            PerLayerBSPPruner(params, {"a": self.make_config(2.0)})

    def test_phase_summary(self, rng):
        params = self.make_params(rng)
        pruner = PerLayerBSPPruner(
            params, {"a": self.make_config(2.0), "b": self.make_config(2.0)}
        )
        summary = pruner.phase_summary()
        assert summary == {"a": "step1_admm", "b": "step1_admm"}

    def test_masks_enforced_on_weights(self, rng):
        params = self.make_params(rng)
        pruner = PerLayerBSPPruner(
            params, {"a": self.make_config(4.0), "b": self.make_config(4.0)}
        )
        self.drive(pruner, params, rng, 2)
        for name, param in params.items():
            assert np.all(param.data[~pruner.masks[name].keep] == 0.0)


class TestLSTMModelOption:
    def test_lstm_forward_shapes(self, rng):
        from repro.nn.tensor import Tensor
        from repro.speech.model import AcousticModelConfig, GRUAcousticModel
        from repro.speech.phones import NUM_CLASSES

        model = GRUAcousticModel(
            AcousticModelConfig(hidden_size=16, cell_type="lstm"), rng=0
        )
        logits = model(Tensor(rng.standard_normal((5, 2, 40))))
        assert logits.shape == (5, 2, NUM_CLASSES)

    def test_lstm_prunable_parameters(self):
        from repro.speech.model import AcousticModelConfig, GRUAcousticModel

        model = GRUAcousticModel(
            AcousticModelConfig(hidden_size=16, cell_type="lstm"), rng=0
        )
        names = set(model.prunable_parameters())
        assert "gru.cell0.weight_hh" in names
        assert "gru.cell0.weight_ih" not in names
        # LSTM weights are 4H tall.
        assert model.prunable_parameters()["gru.cell0.weight_hh"].data.shape == (64, 16)

    def test_lstm_trains(self):
        from repro.speech.model import AcousticModelConfig, GRUAcousticModel
        from repro.speech.synth import SynthConfig, make_corpus
        from repro.speech.trainer import Trainer, TrainerConfig

        train, test = make_corpus(
            6, 3, SynthConfig(noise_level=0.4, min_phones=3, max_phones=4), seed=0
        )
        model = GRUAcousticModel(
            AcousticModelConfig(hidden_size=16, cell_type="lstm"), rng=0
        )
        trainer = Trainer(model, train, test, TrainerConfig(batch_size=4, seed=0))
        first = trainer.train_epoch()
        for _ in range(3):
            last = trainer.train_epoch()
        assert last < first

    def test_bad_cell_type_rejected(self):
        from repro.speech.model import AcousticModelConfig

        with pytest.raises(ValueError):
            AcousticModelConfig(cell_type="rnn")
