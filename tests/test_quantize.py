"""Tests for post-training quantization (repro.nn.quantize)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.quantize import (
    dequantize_int8,
    int8_round_trip,
    quantization_error,
    quantize_fp16,
    quantize_int8,
    quantize_model,
)
from repro.speech.model import AcousticModelConfig, GRUAcousticModel


class TestFp16:
    def test_representable_values_unchanged(self):
        values = np.array([0.0, 1.0, -2.5, 0.5, 1024.0])
        np.testing.assert_array_equal(quantize_fp16(values), values)

    def test_rounding_small_values(self):
        # 1 + 2^-12 is not representable in fp16 (10 mantissa bits).
        value = np.array([1.0 + 2.0**-12])
        assert quantize_fp16(value)[0] != value[0]

    def test_saturation_not_inf(self):
        out = quantize_fp16(np.array([1e6, -1e6]))
        assert np.all(np.isfinite(out))
        np.testing.assert_array_equal(np.abs(out), [65504.0, 65504.0])

    def test_zeros_stay_zero(self):
        np.testing.assert_array_equal(quantize_fp16(np.zeros(4)), np.zeros(4))

    def test_relative_error_small(self, rng):
        w = rng.standard_normal((64, 64))
        err = np.abs(quantize_fp16(w) - w) / np.maximum(np.abs(w), 1e-12)
        assert err.max() < 1e-3  # fp16 has ~3 decimal digits


class TestInt8:
    def test_codes_in_range(self, rng):
        codes, _ = quantize_int8(rng.standard_normal((16, 16)) * 5)
        assert codes.dtype == np.int8
        assert codes.min() >= -127
        assert codes.max() <= 127

    def test_peak_maps_to_127(self, rng):
        w = rng.standard_normal((8, 8))
        codes, scale = quantize_int8(w)
        peak_idx = np.unravel_index(np.argmax(np.abs(w)), w.shape)
        assert abs(int(codes[peak_idx])) == 127
        assert scale == pytest.approx(np.abs(w).max() / 127.0)

    def test_round_trip_error_bounded(self, rng):
        w = rng.standard_normal((32, 32))
        reconstructed = int8_round_trip(w)
        assert np.abs(w - reconstructed).max() <= np.abs(w).max() / 127.0 * 0.5 + 1e-12

    def test_zero_matrix(self):
        codes, scale = quantize_int8(np.zeros((4, 4)))
        assert np.all(codes == 0)
        np.testing.assert_array_equal(dequantize_int8(codes, scale), np.zeros((4, 4)))

    def test_dequantize_rejects_bad_scale(self):
        with pytest.raises(ConfigError):
            dequantize_int8(np.zeros(4, dtype=np.int8), 0.0)

    def test_pruned_zeros_stay_zero(self, rng):
        w = rng.standard_normal((8, 8))
        w[::2] = 0.0
        reconstructed = int8_round_trip(w)
        assert np.all(reconstructed[::2] == 0.0)


class TestErrorMetric:
    def test_int8_worse_than_fp16(self, rng):
        w = rng.standard_normal((64, 64))
        assert quantization_error(w, "int8") > quantization_error(w, "fp16")

    def test_unknown_scheme_rejected(self, rng):
        with pytest.raises(ConfigError):
            quantization_error(rng.standard_normal(4), "int4")


class TestQuantizeModel:
    def test_in_place_and_errors_reported(self):
        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        errors = quantize_model(model, "int8")
        assert set(errors) == set(before)
        changed = any(
            not np.array_equal(before[n], p.data)
            for n, p in model.named_parameters()
        )
        assert changed
        assert all(e >= 0 for e in errors.values())

    def test_fp16_preserves_function_closely(self, rng):
        from repro.nn.tensor import Tensor

        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        x = rng.standard_normal((5, 2, 40))
        dense_out = model(Tensor(x)).data.copy()
        quantize_model(model, "fp16")
        quant_out = model(Tensor(x)).data
        np.testing.assert_allclose(quant_out, dense_out, atol=1e-2)

    def test_sparsity_survives(self):
        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        params = model.prunable_parameters()
        name, param = next(iter(params.items()))
        param.data[0, :] = 0.0
        quantize_model(model, "int8")
        assert np.all(param.data[0, :] == 0.0)

    def test_unknown_scheme_rejected(self):
        model = GRUAcousticModel(AcousticModelConfig(hidden_size=16), rng=0)
        with pytest.raises(ConfigError):
            quantize_model(model, "fp8")
