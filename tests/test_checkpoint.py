"""Tests for repro.utils.atomic_write / stats / faults and
repro.training.checkpoint: atomic write discipline, optimizer and ADMM
state round trips, and bit-exact checkpointed resume."""

import json
import os

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigError
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, Optimizer
from repro.pruning.admm import ADMMPruner, ADMMTarget
from repro.pruning.bsp import BSPConfig, BSPPruner
from repro.pruning.mask import PruningMask
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_corpus
from repro.speech.trainer import Trainer, TrainerConfig
from repro.training import (
    CheckpointConfig,
    load_training_checkpoint,
    restore_training_checkpoint,
    run_checkpointed,
    save_training_checkpoint,
)
from repro.utils.atomic_write import (
    atomic_write,
    atomic_write_json,
    content_checksum,
)
from repro.utils.stats import Summary, percentile, summarize


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write(path, lambda handle: handle.write(b"payload"))
        assert path.read_bytes() == b"payload"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old")
        atomic_write(path, lambda handle: handle.write(b"new"))
        assert path.read_bytes() == b"new"

    def test_text_mode(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write(path, lambda handle: handle.write("héllo"), text=True)
        assert path.read_text(encoding="utf-8") == "héllo"

    def test_failure_keeps_original_and_leaves_no_temp(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"original")

        def boom(handle):
            handle.write(b"partial")
            raise OSError("disk full")

        with pytest.raises(OSError, match="disk full"):
            atomic_write(path, boom)
        assert path.read_bytes() == b"original"
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_json_round_trip_sorted(self, tmp_path):
        path = tmp_path / "r.json"
        atomic_write_json(path, {"b": 2, "a": [1, 2]})
        text = path.read_text(encoding="utf-8")
        assert json.loads(text) == {"a": [1, 2], "b": 2}
        assert text.index('"a"') < text.index('"b"')


class TestContentChecksum:
    def test_stable_across_key_order(self):
        arrays = {"w": np.arange(4.0), "b": np.zeros(2)}
        reordered = {"b": np.zeros(2), "w": np.arange(4.0)}
        assert content_checksum({"x": 1}, arrays) == content_checksum(
            {"x": 1}, reordered
        )

    def test_sensitive_to_bytes_and_meta(self):
        arrays = {"w": np.arange(4.0)}
        base = content_checksum({"x": 1}, arrays)
        assert content_checksum({"x": 2}, arrays) != base
        assert content_checksum({"x": 1}, {"w": np.arange(1, 5.0)}) != base

    def test_sensitive_to_dtype_and_shape(self):
        a = np.zeros(4, dtype=np.float64)
        assert content_checksum({}, {"w": a}) != content_checksum(
            {}, {"w": a.astype(np.float32)}
        )
        assert content_checksum({}, {"w": a}) != content_checksum(
            {}, {"w": a.reshape(2, 2)}
        )


class TestStats:
    def test_percentile_empty_is_zero(self):
        assert percentile([], 95) == 0.0

    def test_percentile_single(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 95) == 7.0

    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == pytest.approx(2.5)
        assert percentile(values, 100) == 4.0

    def test_summarize_empty_all_zero(self):
        summary = summarize([])
        assert summary == Summary(
            count=0, mean=0.0, p50=0.0, p95=0.0, min=0.0, max=0.0
        )

    def test_summarize_values(self):
        summary = summarize([2.0, 4.0, 6.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(4.0)
        assert summary.min == 2.0 and summary.max == 6.0
        assert set(summary.to_dict()) == {
            "count", "mean", "p50", "p95", "min", "max"
        }


class TestFaultsAlias:
    def test_fabric_module_reexports_shared_faults(self):
        from repro.engine.fabric import faults as fabric_faults
        from repro.utils import faults as shared

        assert fabric_faults.FaultConfig is shared.FaultConfig
        assert fabric_faults.FaultInjector is shared.FaultInjector
        assert fabric_faults.CRASH_EXIT_CODE == shared.CRASH_EXIT_CODE

    def test_on_step_is_on_chunk(self):
        from repro.utils.faults import FaultInjector

        assert FaultInjector.on_step is FaultInjector.on_chunk


def _grads_for(step: int, shape) -> np.ndarray:
    rng = np.random.default_rng(1000 + step)
    return rng.standard_normal(shape)


class TestOptimizerState:
    def test_base_optimizer_stateless(self):
        param = Parameter(np.ones(3))
        opt = Optimizer([param])
        assert opt.state_dict() == {}
        with pytest.raises(ValueError):
            opt.load_state_dict({"0.m": np.zeros(3)})

    @pytest.mark.parametrize("make", [
        lambda p: SGD([p], lr=0.1, momentum=0.9),
        lambda p: Adam([p], lr=0.1),
    ])
    def test_round_trip_continues_bit_identically(self, make):
        param = Parameter(np.linspace(-1, 1, 6).reshape(2, 3))
        opt = make(param)
        for step in range(3):
            param.grad = _grads_for(step, param.data.shape)
            opt.step()
        state = {k: v.copy() for k, v in opt.state_dict().items()}
        snapshot = param.data.copy()

        for step in range(3, 5):  # the uninterrupted branch
            param.grad = _grads_for(step, param.data.shape)
            opt.step()
        expected = param.data.copy()

        fresh = Parameter(snapshot.copy())
        opt2 = make(fresh)
        opt2.load_state_dict(state)
        for step in range(3, 5):  # the restored branch, same grads
            fresh.grad = _grads_for(step, fresh.data.shape)
            opt2.step()
        np.testing.assert_array_equal(fresh.data, expected)

    def test_adam_state_has_moments_and_timestep(self):
        param = Parameter(np.ones(4))
        opt = Adam([param], lr=0.1)
        param.grad = np.ones(4)
        opt.step()
        state = opt.state_dict()
        assert set(state) == {"0.m", "0.v", "0.t"}
        assert int(state["0.t"]) == 1

    def test_adam_load_rejects_missing_and_mismatched(self):
        param = Parameter(np.ones(4))
        opt = Adam([param], lr=0.1)
        param.grad = np.ones(4)
        opt.step()
        state = opt.state_dict()
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(4))], lr=0.1).load_state_dict(
                {k: v for k, v in state.items() if k != "0.t"}
            )
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(5))], lr=0.1).load_state_dict(state)


def _make_admm(param: Parameter) -> ADMMPruner:
    projection = lambda w: PruningMask(np.abs(w) >= np.median(np.abs(w)))
    return ADMMPruner([ADMMTarget("w", param, projection)], rho=0.1)


class TestADMMState:
    def test_round_trip_continues_bit_identically(self):
        param = Parameter(np.linspace(-2, 2, 8).reshape(2, 4))
        pruner = _make_admm(param)
        param.data += 0.1
        pruner.dual_update()
        state = {k: v.copy() for k, v in pruner.state_dict().items()}
        snapshot = param.data.copy()

        param.data += 0.05
        pruner.dual_update()
        expected_z = pruner.variables["w"].z.copy()
        expected_u = pruner.variables["w"].u.copy()

        fresh = Parameter(snapshot.copy())
        restored = _make_admm(fresh)
        restored.load_state_dict(state)
        np.testing.assert_array_equal(restored.variables["w"].z, state["w::z"])
        fresh.data += 0.05
        restored.dual_update()
        np.testing.assert_array_equal(restored.variables["w"].z, expected_z)
        np.testing.assert_array_equal(restored.variables["w"].u, expected_u)

    def test_load_rejects_wrong_keys_and_shapes(self):
        param = Parameter(np.ones((2, 4)))
        pruner = _make_admm(param)
        state = pruner.state_dict()
        with pytest.raises(ConfigError):
            _make_admm(Parameter(np.ones((2, 4)))).load_state_dict(
                {"w::z": state["w::z"]}
            )
        with pytest.raises(ConfigError):
            _make_admm(Parameter(np.ones((2, 4)))).load_state_dict(
                {"w::z": np.ones((3, 4)), "w::u": np.ones((3, 4))}
            )


_SMALL = dict(num_train=6, num_test=2, hidden=12, batch=3, seed=0)


def _build_training(with_method: bool = True):
    train_set, test_set = make_corpus(
        _SMALL["num_train"], _SMALL["num_test"], SynthConfig(),
        seed=_SMALL["seed"],
    )
    model = GRUAcousticModel(
        AcousticModelConfig(hidden_size=_SMALL["hidden"]), rng=_SMALL["seed"]
    )
    trainer = Trainer(
        model, train_set, test_set,
        TrainerConfig(batch_size=_SMALL["batch"], seed=_SMALL["seed"]),
    )
    method = None
    if with_method:
        method = BSPPruner(
            model.prunable_parameters(),
            BSPConfig(
                col_rate=2, row_rate=1.25,
                step1_admm_epochs=1, step1_retrain_epochs=1,
                step2_admm_epochs=1, step2_retrain_epochs=1,
            ),
        )
    return model, trainer, method


class TestTrainingCheckpoint:
    def test_save_load_round_trip(self, tmp_path):
        model, trainer, method = _build_training()
        path = tmp_path / "ckpt.npz"
        save_training_checkpoint(path, trainer, method, extra={"cell": "x"})
        loaded = load_training_checkpoint(path)
        assert loaded.epoch == 0 and loaded.step == 0
        assert loaded.meta["method_class"] == "BSPPruner"
        assert loaded.meta["extra"] == {"cell": "x"}
        assert loaded.meta["rng"] == {"seed": 0, "epoch": 0}
        np.testing.assert_array_equal(
            loaded.model_state()["gru.cell0.weight_ih"],
            model.state_dict()["gru.cell0.weight_ih"],
        )

    def test_step_must_match_losses(self, tmp_path):
        _, trainer, _ = _build_training(with_method=False)
        with pytest.raises(ConfigError):
            save_training_checkpoint(
                tmp_path / "c.npz", trainer, step=2, epoch_losses=[1.0]
            )

    def test_missing_file_raises_typed(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_training_checkpoint(tmp_path / "nope.npz")

    def test_truncated_raises_typed(self, tmp_path):
        _, trainer, _ = _build_training(with_method=False)
        path = tmp_path / "ckpt.npz"
        save_training_checkpoint(path, trainer)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CheckpointError, match="missing, truncated"):
            load_training_checkpoint(path)

    def test_bitflip_fails_checksum(self, tmp_path):
        _, trainer, _ = _build_training(with_method=False)
        path = tmp_path / "ckpt.npz"
        save_training_checkpoint(path, trainer)
        # Corrupt one byte inside a *stored* array member, re-zipping so
        # the container stays readable and only the content changed.
        import io
        import zipfile

        with np.load(path) as data:
            arrays = {key: data[key].copy() for key in data.files}
        victim = next(k for k in arrays if k.startswith("model::"))
        buffer = arrays[victim]
        buffer.reshape(-1)[0] += 1e-9
        with zipfile.ZipFile(path, "w") as archive:
            for key, value in arrays.items():
                entry = io.BytesIO()
                np.save(entry, value)
                archive.writestr(f"{key}.npy", entry.getvalue())
        with pytest.raises(CheckpointError, match="checksum"):
            load_training_checkpoint(path)

    def test_foreign_npz_raises_typed(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(CheckpointError, match="not a training checkpoint"):
            load_training_checkpoint(path)

    def test_restore_method_class_mismatch(self, tmp_path):
        _, trainer, method = _build_training()
        path = tmp_path / "ckpt.npz"
        save_training_checkpoint(path, trainer, method)
        _, fresh_trainer, _ = _build_training(with_method=False)
        with pytest.raises(CheckpointError, match="BSPPruner"):
            restore_training_checkpoint(path, fresh_trainer, None)

    def test_restore_shape_mismatch(self, tmp_path):
        _, trainer, _ = _build_training(with_method=False)
        path = tmp_path / "ckpt.npz"
        save_training_checkpoint(path, trainer)
        other_model = GRUAcousticModel(
            AcousticModelConfig(hidden_size=16), rng=0
        )
        other = Trainer(
            other_model, trainer.train_set, trainer.test_set,
            TrainerConfig(batch_size=3, seed=0),
        )
        with pytest.raises(CheckpointError, match="does not match"):
            restore_training_checkpoint(path, other, None)


class TestRunCheckpointed:
    def test_dense_resume_bit_exact(self, tmp_path):
        clean_model, clean_trainer, _ = _build_training(with_method=False)
        run_checkpointed(
            clean_trainer, None,
            CheckpointConfig(path=tmp_path / "clean.npz"), max_epochs=2,
        )

        class Boom(Exception):
            pass

        def crash(step):
            if step == 3:  # mid-epoch: 2 steps per epoch at these sizes
                raise Boom()

        model, trainer, _ = _build_training(with_method=False)
        config = CheckpointConfig(path=tmp_path / "chaos.npz")
        with pytest.raises(Boom):
            run_checkpointed(
                trainer, None, config, max_epochs=2, on_step=crash
            )
        model, trainer, _ = _build_training(with_method=False)
        run_checkpointed(trainer, None, config, max_epochs=2)
        assert trainer.log.losses == clean_trainer.log.losses
        for name, value in clean_model.state_dict().items():
            np.testing.assert_array_equal(value, model.state_dict()[name])

    @pytest.mark.parametrize("crash_step", [1, 3, 5])
    def test_bsp_prune_retrain_resume_bit_exact(self, tmp_path, crash_step):
        clean_model, clean_trainer, clean_method = _build_training()
        run_checkpointed(
            clean_trainer, clean_method,
            CheckpointConfig(path=tmp_path / "clean.npz"), max_epochs=10,
        )
        assert clean_method.finished

        class Boom(Exception):
            pass

        def crash(step):
            if step == crash_step:
                raise Boom()

        model, trainer, method = _build_training()
        config = CheckpointConfig(path=tmp_path / "chaos.npz")
        with pytest.raises(Boom):
            run_checkpointed(
                trainer, method, config, max_epochs=10, on_step=crash
            )
        # A fresh process would rebuild everything from scratch.
        model, trainer, method = _build_training()
        run_checkpointed(trainer, method, config, max_epochs=10)
        assert method.finished
        assert trainer.log.losses == clean_trainer.log.losses
        for name, value in clean_model.state_dict().items():
            np.testing.assert_array_equal(value, model.state_dict()[name])

    def test_every_steps_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            CheckpointConfig(path=tmp_path / "c.npz", every_steps=0)

    def test_trainer_start_step_guard(self):
        _, trainer, _ = _build_training(with_method=False)
        with pytest.raises(ConfigError):
            trainer.train_epoch(start_step=2, prior_losses=[1.0])

    def test_trainer_epoch_setter_guard(self):
        _, trainer, _ = _build_training(with_method=False)
        with pytest.raises(ConfigError):
            trainer.epoch = -1
