"""Tests for PER / edit distance / decoding (repro.speech.metrics, decoder)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.speech.decoder import (
    decode_batch,
    decode_utterance,
    greedy_frame_labels,
    smooth_labels,
)
from repro.speech.metrics import (
    collapse_frames,
    frame_accuracy,
    levenshtein,
    per_from_frames,
    phone_error_rate,
)
from repro.speech.phones import SILENCE_ID


class TestLevenshtein:
    def test_identity_zero(self):
        assert levenshtein([1, 2, 3], [1, 2, 3]) == 0

    def test_empty_cases(self):
        assert levenshtein([], [1, 2]) == 2
        assert levenshtein([1, 2], []) == 2
        assert levenshtein([], []) == 0

    def test_substitution(self):
        assert levenshtein([1, 2, 3], [1, 9, 3]) == 1

    def test_insertion(self):
        assert levenshtein([1, 3], [1, 2, 3]) == 1

    def test_deletion(self):
        assert levenshtein([1, 2, 3], [1, 3]) == 1

    def test_classic_example(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_completely_different(self):
        assert levenshtein([1, 2], [3, 4]) == 2


@settings(max_examples=50, deadline=None)
@given(
    a=st.lists(st.integers(0, 5), max_size=10),
    b=st.lists(st.integers(0, 5), max_size=10),
)
def test_property_levenshtein_symmetry(a, b):
    assert levenshtein(a, b) == levenshtein(b, a)


@settings(max_examples=50, deadline=None)
@given(
    a=st.lists(st.integers(0, 5), max_size=8),
    b=st.lists(st.integers(0, 5), max_size=8),
)
def test_property_levenshtein_bounds(a, b):
    d = levenshtein(a, b)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


@settings(max_examples=30, deadline=None)
@given(
    a=st.lists(st.integers(0, 3), max_size=6),
    b=st.lists(st.integers(0, 3), max_size=6),
    c=st.lists(st.integers(0, 3), max_size=6),
)
def test_property_levenshtein_triangle(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestCollapse:
    def test_merges_runs(self):
        assert collapse_frames([1, 1, 2, 2, 2, 3]) == [1, 2, 3]

    def test_drops_silence(self):
        assert collapse_frames([0, 0, 1, 1, 0, 2, 0]) == [1, 2]

    def test_repeated_phone_after_silence_counts_twice(self):
        assert collapse_frames([1, 1, 0, 1, 1]) == [1, 1]

    def test_empty(self):
        assert collapse_frames([]) == []

    def test_all_silence(self):
        assert collapse_frames([0, 0, 0]) == []

    def test_custom_drop_symbol(self):
        assert collapse_frames([1, 2, 2, 1], drop=1) == [2]


class TestPER:
    def test_perfect_match_zero(self):
        assert phone_error_rate([[1, 2, 3]], [[1, 2, 3]]) == 0.0

    def test_percentage_scale(self):
        assert phone_error_rate([[1, 2, 3, 4]], [[1, 2, 3, 9]]) == pytest.approx(25.0)

    def test_corpus_level_pooling(self):
        # 1 error over 4 reference phones total = 25%.
        per = phone_error_rate([[1, 2], [3, 4]], [[1, 2], [3, 9]])
        assert per == pytest.approx(25.0)

    def test_empty_reference(self):
        assert phone_error_rate([[]], [[]]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            phone_error_rate([[1]], [[1], [2]])

    def test_per_can_exceed_100(self):
        assert phone_error_rate([[1]], [[2, 3, 4]]) == pytest.approx(300.0)

    def test_per_from_frames(self):
        per, refs, hyps = per_from_frames([[0, 1, 1, 0]], [[0, 1, 1, 0]])
        assert per == 0.0
        assert refs == [[1]]


class TestFrameAccuracy:
    def test_all_correct(self):
        labels = np.array([[1, 2]])
        assert frame_accuracy(labels, labels, np.ones((1, 2))) == 1.0

    def test_mask_excludes_padding(self):
        labels = np.array([[1, 2, 3]])
        preds = np.array([[1, 2, 9]])  # error only in masked frame
        mask = np.array([[1, 1, 0]])
        assert frame_accuracy(labels, preds, mask) == 1.0

    def test_empty_mask(self):
        assert frame_accuracy(np.array([[1]]), np.array([[1]]), np.array([[0]])) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            frame_accuracy(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((2, 2)))


class TestDecoder:
    def test_greedy_argmax(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        np.testing.assert_array_equal(greedy_frame_labels(logits), [1, 0])

    def test_greedy_rejects_1d(self):
        with pytest.raises(ShapeError):
            greedy_frame_labels(np.zeros(4))

    def test_smooth_removes_blips(self):
        labels = np.array([1, 1, 1, 2, 1, 1])
        np.testing.assert_array_equal(
            smooth_labels(labels, min_duration=2), [1, 1, 1, 1, 1, 1]
        )

    def test_smooth_keeps_long_runs(self):
        labels = np.array([1, 1, 2, 2, 3, 3])
        np.testing.assert_array_equal(smooth_labels(labels, 2), labels)

    def test_smooth_min_duration_one_is_identity(self):
        labels = np.array([1, 2, 3])
        np.testing.assert_array_equal(smooth_labels(labels, 1), labels)

    def test_smooth_leading_blip_kept(self):
        # The first run has no predecessor, so it stays.
        labels = np.array([2, 1, 1, 1])
        np.testing.assert_array_equal(smooth_labels(labels, 2), [2, 1, 1, 1])

    def test_decode_utterance(self):
        c = 4
        logits = np.zeros((6, c))
        for t, phone in enumerate([0, 1, 1, 2, 2, 0]):
            logits[t, phone] = 5.0
        assert decode_utterance(logits) == [1, 2]

    def test_decode_batch_uses_lengths(self):
        logits = np.zeros((5, 2, 3))
        logits[:, 0, 1] = 5.0  # utterance 0: all phone 1
        logits[:, 1, 2] = 5.0  # utterance 1: all phone 2
        out = decode_batch(logits, np.array([5, 2]))
        assert out == [[1], [2]]

    def test_decode_batch_rejects_bad_lengths(self):
        with pytest.raises(ShapeError):
            decode_batch(np.zeros((5, 2, 3)), np.array([5]))

    def test_decode_batch_rejects_2d(self):
        with pytest.raises(ShapeError):
            decode_batch(np.zeros((5, 3)), np.array([5]))
