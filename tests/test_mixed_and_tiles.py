"""Per-slot scheme mixing and the BSPC panel row-blocking tile knob.

The tentpole contracts of the joint autotuning loop:

* ``scheme`` is a per-slot IR attribute — ``"mixed"`` quantizes the
  input/output projections to int8 and keeps the recurrences in float,
  decided slot-by-slot by the pass pipeline and carried through
  ``graph_to_arrays`` → ``graph_from_arrays`` bit-exactly;
* ``TileConfig.row_block`` is a *real* host knob — ``pack_bspc_plan``
  re-packs BSPC strips into row panels and the blocked plan is
  **bitwise identical** for int8 (tolerance-equal for float) under
  every kernel backend;
* ``tune_plan`` searches scheme × format × tile jointly and is never
  slower than the default configuration.
"""

import dataclasses

import numpy as np
import pytest

from repro import engine, kernels
from repro.compiler.autotune import (
    compare_tile_rankings,
    default_tile_candidates,
    tune_execution_config,
    tune_plan,
)
from repro.compiler.codegen import CompileOptions
from repro.compiler.ir import (
    OP_LINEAR,
    TileConfig,
    graph_from_arrays,
    graph_to_arrays,
    resolve_slot_scheme,
)
from repro.compiler.passes import run_passes
from repro.compiler.pipeline import build_layer_graph
from repro.errors import CompilationError, ConfigError
from repro.hw.profiles import ADRENO_640
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.sparse.blocks import grid_for
from repro.sparse.bspc import BSPCMatrix
from repro.speech.model import AcousticModelConfig, GRUAcousticModel

BACKENDS = list(kernels.backends())


def small_model(seed=0, pruned=True):
    model = GRUAcousticModel(
        AcousticModelConfig(input_dim=8, hidden_size=16, num_layers=2),
        rng=seed,
    ).eval()
    if pruned:
        masks = bsp_project_masks(
            model.prunable_weights(),
            BSPConfig(col_rate=4, row_rate=2, num_row_strips=4, num_col_blocks=4),
        )
        for name, param in model.prunable_parameters().items():
            param.data[...] = masks[name].apply_to_array(param.data)
    return model


def bsp_matrix(rng, shape=(32, 48)):
    w = rng.standard_normal(shape)
    masks = bsp_project_masks(
        {"w": w},
        BSPConfig(col_rate=4, row_rate=2, num_row_strips=4, num_col_blocks=3),
    )
    pruned = masks["w"].apply_to_array(w)
    return BSPCMatrix.from_dense(pruned, grid_for(pruned, 4, 3))


class TestResolveSlotScheme:
    def test_none_means_explicit_float(self):
        assert resolve_slot_scheme(None, OP_LINEAR) == "float"
        assert resolve_slot_scheme(None, "recurrent_matvec") == "float"

    def test_mixed_quantizes_projections_only(self):
        assert resolve_slot_scheme("mixed", OP_LINEAR) == "int8"
        assert resolve_slot_scheme("mixed", "recurrent_matvec") == "float"

    def test_uniform_schemes_broadcast(self):
        for scheme in ("fp16", "int8"):
            assert resolve_slot_scheme(scheme, OP_LINEAR) == scheme
            assert resolve_slot_scheme(scheme, "recurrent_matvec") == scheme

    def test_unknown_scheme_rejected(self):
        with pytest.raises(CompilationError):
            resolve_slot_scheme("int4", OP_LINEAR)


class TestPerSlotScheme:
    def test_passes_fill_slot_schemes_for_mixed(self):
        graph = build_layer_graph(small_model(), scheme="mixed")
        run_passes(graph)
        schemes = {slot.name: slot.scheme for _, _, slot in graph.slots()}
        assert schemes  # the graph has tunable slots
        for _, _, slot in graph.slots():
            expected = "int8" if slot.op == OP_LINEAR else "float"
            assert slot.scheme == expected, slot.name

    def test_mixed_is_a_distinct_operating_point(self, rng):
        model = small_model()
        x = rng.standard_normal((9, 2, 8))
        logits = {
            scheme: engine.compile_model(model, scheme=scheme).forward_batch(x)
            for scheme in (None, "int8", "mixed")
        }
        assert not np.array_equal(logits["mixed"], logits[None])
        assert not np.array_equal(logits["mixed"], logits["int8"])

    def test_signatures_distinguish_slot_schemes(self):
        model = small_model()
        signatures = {
            scheme: engine.compile_model(model, scheme=scheme).signature()
            for scheme in (None, "int8", "mixed")
        }
        assert len(set(signatures.values())) == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_chunked_equals_offline_bitwise(self, backend, rng_factory):
        graph = build_layer_graph(small_model(), scheme="mixed", backend=backend)
        plan = engine.lower_graph(graph)
        x = rng_factory(5).standard_normal((12, 2, 8))
        offline = plan.forward_batch(x)
        state, chunks = None, []
        for chunk in (x[:5], x[5:6], x[6:]):
            logits, state = plan.run_chunk(chunk, state)
            chunks.append(logits)
        np.testing.assert_array_equal(np.concatenate(chunks, axis=0), offline)

    def test_slot_scheme_and_tile_survive_serialization(self, rng):
        graph = build_layer_graph(
            small_model(),
            scheme="mixed",
            options=engine.EngineConfig(sparse_format="bspc").graph_options(),
        )
        tile = TileConfig(rows_per_thread=4, row_block=4)
        for _, _, slot in graph.slots():
            slot.tile = tile
        run_passes(graph)
        arrays, meta = graph_to_arrays(graph)
        restored = graph_from_arrays(arrays, meta)
        for (_, _, a), (_, _, b) in zip(graph.slots(), restored.slots()):
            assert b.scheme == a.scheme
            assert b.tile.row_block == a.tile.row_block
        x = rng.standard_normal((7, 2, 8))
        np.testing.assert_array_equal(
            engine.lower_graph(restored).forward_batch(x),
            engine.lower_graph(graph).forward_batch(x),
        )

    def test_legacy_graph_without_slot_schemes_falls_back(self, rng):
        # Artifacts written before the per-slot attribute carry
        # slot.scheme=None; lowering must resolve them from the graph
        # scheme to the identical computation.
        model = small_model()
        graph = build_layer_graph(model, scheme="mixed")
        run_passes(graph)
        reference = engine.lower_graph(graph)
        for _, _, slot in graph.slots():
            slot.scheme = None
        legacy = engine.lower_graph(graph)
        x = rng.standard_normal((6, 2, 8))
        np.testing.assert_array_equal(
            legacy.forward_batch(x), reference.forward_batch(x)
        )


class TestPackBspcPlan:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("row_block", [1, 2, 4, 16])
    def test_blocked_float_spmm_matches_unblocked(self, backend, row_block,
                                                  rng_factory):
        matrix = bsp_matrix(rng_factory(row_block))
        x = rng_factory(100 + row_block).standard_normal((48, 3))
        expected = kernels.spmm(matrix, x, backend=backend)
        kernels.pack_bspc_plan(matrix, row_block)
        np.testing.assert_allclose(
            kernels.spmm(matrix, x, backend=backend), expected,
            rtol=1e-12, atol=1e-12,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("row_block", [1, 2, 4, 16])
    def test_blocked_int8_spmm_is_bitwise_exact(self, backend, row_block,
                                                rng_factory):
        matrix = bsp_matrix(rng_factory(row_block))
        x = rng_factory(200 + row_block).standard_normal((48, 3))
        expected = kernels.spmm_int8(matrix, x, backend=backend)
        kernels.pack_bspc_plan(matrix, row_block)
        np.testing.assert_array_equal(
            kernels.spmm_int8(matrix, x, backend=backend), expected
        )

    def test_zero_restores_whole_strip_packing(self, rng):
        matrix = bsp_matrix(rng)
        base = kernels.bspc_plan(matrix)
        blocked = kernels.pack_bspc_plan(matrix, 1)
        assert blocked.panels.shape[0] > base.panels.shape[0]
        restored = kernels.pack_bspc_plan(matrix, 0)
        assert restored.panels.shape == base.panels.shape

    def test_negative_row_block_rejected(self, rng):
        with pytest.raises(ValueError):
            kernels.pack_bspc_plan(bsp_matrix(rng), -1)


class TestTileKnobEndToEnd:
    @pytest.mark.parametrize("scheme", [None, "int8", "mixed"])
    def test_row_blocked_plan_matches_unblocked(self, scheme, rng):
        model = small_model()
        config = engine.EngineConfig(sparse_format="bspc")
        expected = engine.compile_model(model, scheme=scheme, config=config)
        graph = build_layer_graph(
            model, scheme=scheme, options=config.graph_options()
        )
        for _, _, slot in graph.slots():
            slot.tile = TileConfig(rows_per_thread=4, row_block=4)
        run_passes(graph)
        blocked = engine.lower_graph(graph, config)
        x = rng.standard_normal((8, 2, 8))
        if scheme in ("int8", "mixed"):
            # Quantized paths see the exact same integer dot products.
            np.testing.assert_array_equal(
                blocked.forward_batch(x), expected.forward_batch(x)
            )
        else:
            np.testing.assert_allclose(
                blocked.forward_batch(x), expected.forward_batch(x),
                rtol=1e-10, atol=1e-12,
            )


class TestJointTuneWithTiles:
    def sample(self, seed=1):
        return np.random.default_rng(seed).standard_normal((10, 2, 8))

    def test_tile_stage_explores_row_blocks(self):
        result = tune_plan(
            small_model(), self.sample(), formats=("bspc",),
            tiles=default_tile_candidates((2, 4)), repeats=1,
        )
        assert result.speedup >= 1.0
        tile_rows = [c for c in result.trace if c.label.startswith("tile-rb")]
        assert {c.row_block for c in tile_rows} == {2, 4}
        # Non-tile candidates stay on whole-strip packing.
        assert all(
            c.row_block == 0 for c in result.trace
            if not c.label.startswith("tile-rb")
        )

    def test_tile_stage_skipped_without_bspc(self):
        result = tune_plan(
            small_model(pruned=False), self.sample(), formats=("dense",),
            tiles=default_tile_candidates((2, 4)), repeats=1,
        )
        assert all(not c.label.startswith("tile-rb") for c in result.trace)

    def test_joint_scheme_format_tile_search_never_slower(self):
        result = tune_plan(
            small_model(), self.sample(), schemes=(None, "mixed"),
            tiles=default_tile_candidates((4,)), repeats=1,
        )
        assert result.speedup >= 1.0
        assert any(c.scheme == "mixed" for c in result.trace)
        # A configuration is never measured twice, tiles included.
        seen = set()
        for c in result.trace:
            key = (c.scheme, c.backend, tuple(sorted(c.formats.items())),
                   c.row_block)
            assert key not in seen, f"duplicate measurement: {c.label}"
            seen.add(key)

    def test_tile_winner_round_trips(self, tmp_path, monkeypatch):
        # Force the tile candidate to win so the serialized artifact
        # carries a row-blocked plan, then prove bit-exact redeployment.
        import repro.compiler.autotune as autotune

        times = iter([10.0, 5.0, 1.0, 0.5, 0.25, 0.125, 0.0625])
        monkeypatch.setattr(
            autotune, "_median_seconds", lambda fn, repeats: next(times, 1.0)
        )
        sample = self.sample()
        result = tune_plan(
            small_model(), sample, formats=("bspc",),
            tiles=default_tile_candidates((4,)), repeats=1, prefilter_top=1,
        )
        assert result.best.row_block == 4
        engine.save_plan(tmp_path / "tuned.npz", result.plan)
        reloaded = engine.load_plan(tmp_path / "tuned.npz")
        np.testing.assert_array_equal(
            reloaded.forward_batch(sample), result.plan.forward_batch(sample)
        )


class TestTuneExecutionConfigReplace:
    """Regression for the tuner dropping CompileOptions fields: candidate
    options must be built with ``dataclasses.replace`` so any field —
    including ones added after the tuner was written — survives."""

    def test_new_option_field_survives(self, monkeypatch, rng):
        Extended = dataclasses.make_dataclass(
            "ExtendedOptions",
            [("new_knob", int, dataclasses.field(default=7))],
            bases=(CompileOptions,),
            frozen=True,
        )
        base = Extended(
            format_name="csr",
            enable_reorder=False,
            enable_load_elimination=False,
            num_row_strips=2,
            num_col_blocks=3,
            new_knob=13,
        )
        captured = []

        class FakeCompiled:
            def simulate(self, device):
                return dataclasses.make_dataclass("S", [("latency_us", float)])(1.0)

        def fake_compile(named_weights, options, **kwargs):
            captured.append(options)
            return FakeCompiled()

        import repro.compiler.autotune as autotune

        monkeypatch.setattr(autotune, "compile_for_simulation", fake_compile)
        tile = TileConfig(rows_per_thread=8, row_block=8)
        tune_execution_config(
            {"w": rng.standard_normal((8, 8))}, ADRENO_640,
            base_options=base, tile_space=[tile],
        )
        assert captured == [dataclasses.replace(base, tile=tile)]
        assert captured[0].new_knob == 13
        assert captured[0].format_name == "csr"
        assert captured[0].enable_reorder is False
        assert captured[0].num_col_blocks == 3


class TestCompareTileRankings:
    def test_comparison_is_well_formed(self):
        model = small_model()
        sample = np.random.default_rng(2).standard_normal((6, 1, 8))
        comparison = compare_tile_rankings(
            model, sample, row_blocks=(2, 8), repeats=1
        )
        assert comparison.row_blocks == (2, 8)
        assert set(comparison.simulated_us) == {2, 8}
        assert set(comparison.measured_s) == {2, 8}
        assert comparison.sim_pick in (2, 8)
        assert comparison.measured_pick in (2, 8)
        assert 0.0 <= comparison.pairwise_agreement <= 1.0
        assert 0.0 < comparison.sim_pick_efficiency <= 1.0
        assert all(v > 0 for v in comparison.simulated_us.values())
        assert all(v > 0 for v in comparison.measured_s.values())

    def test_validation(self):
        model = small_model()
        sample = np.random.default_rng(2).standard_normal((6, 1, 8))
        with pytest.raises(ConfigError):
            compare_tile_rankings(model, sample, row_blocks=(4,))
        with pytest.raises(ConfigError):
            compare_tile_rankings(model, sample, row_blocks=(0, 4))
        with pytest.raises(ConfigError):
            compare_tile_rankings(model, sample[0], row_blocks=(2, 4))
