"""Host calibration of the analytic tile/format cost model.

Covers the three pieces ISSUE 10's second prong added: the measured
trace collector (:func:`collect_cost_samples`), the coefficient fit
(:func:`calibrate_cost_model`, including the per-tile dispatch term that
lets the simulator express host behaviour), and the persistence /
host-device store in :mod:`repro.hw.profiles` that ``tune_plan`` and
``compare_tile_rankings`` consume by default.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.compiler.autotune import (
    CostSample,
    calibrate_cost_model,
    collect_cost_samples,
    compare_tile_rankings,
)
from repro.errors import ConfigError
from repro.hw import profiles
from repro.hw.device import DeviceSpec
from repro.hw.profiles import ADRENO_640, KRYO_485
from repro.speech.model import AcousticModelConfig, GRUAcousticModel


@pytest.fixture(autouse=True)
def isolated_host_store(monkeypatch):
    """Every test starts with no host calibration and no env override."""
    monkeypatch.delenv("REPRO_HOST_CALIBRATION", raising=False)
    profiles.clear_host_device()
    yield
    profiles.clear_host_device()


def small_model():
    return GRUAcousticModel(
        AcousticModelConfig(input_dim=16, hidden_size=64, num_layers=1), rng=0
    ).eval()


def synthetic_samples(sf=40.0, sm=8.0, so=25.0, st=0.3):
    """Samples whose measurements follow the model exactly at known
    coefficients — the fit should reproduce their latencies."""
    rng = np.random.default_rng(7)
    samples = []
    for rb, chunks in ((2, 2880.0), (8, 720.0), (32, 180.0), (64, 90.0)):
        terms = []
        for _ in range(3):
            c = float(rng.uniform(5.0, 30.0))
            m = float(rng.uniform(1.0, 10.0))
            o = float(rng.uniform(0.2, 1.0))
            terms.append((c, m, o, chunks / 3.0))
        sample = CostSample(label=f"rb{rb}", layer_terms=tuple(terms),
                            measured_us=1.0)
        measured = sample.predicted_us(sf, sm, so, st)
        samples.append(dataclasses.replace(sample, measured_us=measured))
    return samples


# ---------------------------------------------------------------------------
# DeviceSpec: the tile-dispatch term
# ---------------------------------------------------------------------------
class TestTileDispatchTerm:
    def test_mobile_profiles_charge_nothing_per_tile(self):
        assert ADRENO_640.tile_dispatch_us == 0.0
        assert KRYO_485.tile_dispatch_us == 0.0

    def test_negative_tile_dispatch_rejected(self):
        with pytest.raises(ConfigError, match="tile_dispatch_us"):
            dataclasses.replace(ADRENO_640, tile_dispatch_us=-1.0)

    def test_tile_chunks_counts_row_tiles(self):
        from repro.compiler.ir import TileConfig
        from repro.compiler.pipeline import compile_for_simulation
        from repro.hw.executor import tile_chunks

        weights = {"w": np.random.default_rng(0).standard_normal((64, 64))}
        from repro.compiler.codegen import CompileOptions

        plans = {}
        for rb in (2, 8, 32):
            opts = CompileOptions(tile=TileConfig(rows_per_thread=rb, row_block=rb))
            plan = compile_for_simulation(weights, opts).plan
            plans[rb] = sum(tile_chunks(layer) for layer in plan.layers)
        # finer tiles dispatch proportionally more chunks
        assert plans[2] == 4 * plans[8] == 16 * plans[32]

    def test_tile_dispatch_charge_shifts_simulated_ranking(self):
        # A device that pays heavily per tile must prefer coarse tiles in
        # the analytic ranking — the behaviour host calibration encodes.
        expensive = dataclasses.replace(ADRENO_640, tile_dispatch_us=1000.0)
        profiles.set_host_device(expensive)
        rng = np.random.default_rng(0)
        comp = compare_tile_rankings(
            small_model(), rng.standard_normal((4, 2, 16)), repeats=1
        )
        assert comp.sim_pick == max(comp.row_blocks)


# ---------------------------------------------------------------------------
# Persistence + host store
# ---------------------------------------------------------------------------
class TestHostStore:
    def test_spec_json_round_trip(self, tmp_path):
        spec = dataclasses.replace(
            KRYO_485, name="host", tile_dispatch_us=0.25
        )
        path = profiles.save_calibration(spec, tmp_path / "cal.json")
        assert profiles.load_calibration(path) == spec

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            profiles.load_calibration(tmp_path / "nope.json")

    def test_load_rejects_bad_json_and_bad_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigError, match="JSON"):
            profiles.load_calibration(bad)
        versioned = tmp_path / "v99.json"
        versioned.write_text(
            json.dumps({"version": 99, "device": profiles.spec_to_dict(ADRENO_640)})
        )
        with pytest.raises(ConfigError, match="version"):
            profiles.load_calibration(versioned)

    def test_spec_from_dict_rejects_unknown_and_missing_fields(self):
        payload = profiles.spec_to_dict(ADRENO_640)
        payload["warp_size"] = 32
        with pytest.raises(ConfigError, match="warp_size"):
            profiles.spec_from_dict(payload)
        del payload["warp_size"], payload["flops_per_us"]
        with pytest.raises(ConfigError, match="flops_per_us"):
            profiles.spec_from_dict(payload)

    def test_set_and_clear_host_device(self):
        assert profiles.host_device() is None
        profiles.set_host_device(KRYO_485)
        assert profiles.host_device() is KRYO_485
        profiles.set_host_device(None)
        assert profiles.host_device() is None

    def test_env_calibration_loaded_lazily(self, tmp_path, monkeypatch):
        spec = dataclasses.replace(ADRENO_640, name="from-env")
        path = profiles.save_calibration(spec, tmp_path / "cal.json")
        monkeypatch.setenv("REPRO_HOST_CALIBRATION", str(path))
        profiles.clear_host_device()  # re-arm the probe
        assert profiles.host_device() == spec
        # probed once: changing the env later is not re-read
        monkeypatch.setenv("REPRO_HOST_CALIBRATION", str(tmp_path / "gone.json"))
        assert profiles.host_device() == spec

    def test_env_calibration_errors_are_typed_and_name_the_var(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_HOST_CALIBRATION", str(tmp_path / "missing.json")
        )
        profiles.clear_host_device()
        with pytest.raises(ConfigError, match="REPRO_HOST_CALIBRATION"):
            profiles.host_device()


# ---------------------------------------------------------------------------
# The fit
# ---------------------------------------------------------------------------
class TestCalibrateCostModel:
    def test_requires_two_samples(self):
        with pytest.raises(ConfigError, match="at least two"):
            calibrate_cost_model(synthetic_samples()[:1])

    def test_rejects_non_positive_measurements(self):
        bad = dataclasses.replace(synthetic_samples()[0], measured_us=0.0)
        with pytest.raises(ConfigError, match="measured_us"):
            calibrate_cost_model([bad, synthetic_samples()[1]])

    def test_fit_reproduces_synthetic_ground_truth(self):
        samples = synthetic_samples()
        cal = calibrate_cost_model(samples)
        assert cal.log_rmse_after <= cal.log_rmse_before
        assert cal.error_reduction > 0.8
        # the calibrated model predicts every sample within 15%
        for s in samples:
            pred = s.predicted_us(
                cal.scale_compute,
                cal.scale_memory,
                cal.scale_overhead,
                cal.tile_dispatch_us,
            )
            assert pred == pytest.approx(s.measured_us, rel=0.15)

    def test_coefficients_fold_into_device_spec(self):
        cal = calibrate_cost_model(synthetic_samples(), base=KRYO_485)
        assert cal.device.flops_per_us == pytest.approx(
            KRYO_485.flops_per_us / cal.scale_compute
        )
        assert cal.device.mem_bandwidth_bytes_per_us == pytest.approx(
            KRYO_485.mem_bandwidth_bytes_per_us / cal.scale_memory
        )
        assert cal.device.kernel_overhead_us == pytest.approx(
            KRYO_485.kernel_overhead_us * cal.scale_overhead
        )
        assert cal.device.tile_dispatch_us == cal.tile_dispatch_us
        # untouched fields carry over
        assert cal.device.num_threads == KRYO_485.num_threads
        assert cal.device.power_watts == KRYO_485.power_watts
        assert "host-calibrated" in cal.device.name

    def test_persist_and_activate(self, tmp_path):
        path = tmp_path / "host.json"
        cal = calibrate_cost_model(
            synthetic_samples(), path=path, activate=True
        )
        assert profiles.load_calibration(path) == cal.device
        assert profiles.host_device() == cal.device

    def test_flat_host_keeps_tile_term_negligible(self):
        # Measurements with no chunk dependence: the fitted per-tile
        # charge must stay tiny instead of inventing one.
        samples = [
            dataclasses.replace(s, measured_us=500.0 + i)
            for i, s in enumerate(synthetic_samples())
        ]
        cal = calibrate_cost_model(samples)
        worst_chunks = max(s.tile_chunk_steps for s in samples)
        assert cal.tile_dispatch_us * worst_chunks < 0.05 * 500.0


# ---------------------------------------------------------------------------
# End-to-end on the real engine
# ---------------------------------------------------------------------------
class TestCollectAndCalibrate:
    def test_collect_validates_inputs(self, rng):
        with pytest.raises(ConfigError, match="at least two"):
            collect_cost_samples(
                small_model(), rng.standard_normal((4, 2, 16)), row_blocks=(8,)
            )
        with pytest.raises(ConfigError, match="features"):
            collect_cost_samples(
                small_model(), rng.standard_normal((4, 16)), repeats=1
            )

    def test_collected_samples_shape(self, rng):
        samples = collect_cost_samples(
            small_model(),
            rng.standard_normal((4, 2, 16)),
            row_blocks=(2, 32),
            repeats=1,
        )
        assert [s.label for s in samples] == ["rb2", "rb32"]
        for s in samples:
            assert s.measured_us > 0
            assert s.simulated_us > 0
        # finer row blocking issues more tile dispatches
        assert samples[0].tile_chunk_steps > samples[1].tile_chunk_steps

    def test_calibrated_device_prices_the_host(self, rng):
        batch = rng.standard_normal((6, 2, 16))
        samples = collect_cost_samples(small_model(), batch, repeats=2)
        cal = calibrate_cost_model(samples)
        assert cal.log_rmse_after <= cal.log_rmse_before
        # re-simulating the sampled configs with the calibrated device
        # reproduces each measurement to within the fit's log-RMSE
        for s in samples:
            pred = s.predicted_us(
                cal.scale_compute,
                cal.scale_memory,
                cal.scale_overhead,
                cal.tile_dispatch_us,
            )
            ratio = np.log(pred / s.measured_us)
            assert abs(ratio) <= 3.0 * max(cal.log_rmse_after, 0.05)
