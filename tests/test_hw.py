"""Tests for the hardware simulator (repro.hw)."""

import numpy as np
import pytest

from repro.compiler.codegen import CompileOptions, lower_matrix
from repro.compiler.ir import KernelPlan, TileConfig
from repro.compiler.pipeline import compile_weights
from repro.errors import ConfigError, SimulationError
from repro.hw.device import DeviceSpec, ReferenceAccelerator
from repro.hw.energy import energy_report
from repro.hw.executor import simulate, simulate_layer, thread_balance
from repro.hw.memory import layer_traffic, total_bytes
from repro.hw.profiles import ADRENO_640, ESE_FPGA, KRYO_485
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.pruning.projections import project_unstructured


def make_weights(rng, compression=None, shape=(48, 64)):
    w = rng.standard_normal(shape)
    if compression is None:
        return {"w": w}
    col = min(compression, 8.0)
    row = compression / col
    masks = bsp_project_masks(
        {"w": w},
        BSPConfig(col_rate=col, row_rate=row, num_row_strips=4, num_col_blocks=4),
    )
    return {"w": masks["w"].apply_to_array(w)}


class TestDeviceSpec:
    def test_rejects_zero_threads(self):
        with pytest.raises(ConfigError):
            DeviceSpec("x", 0, 1.0, 1.0, 0.0, 1.0)

    def test_rejects_zero_throughput(self):
        with pytest.raises(ConfigError):
            DeviceSpec("x", 1, 0.0, 1.0, 0.0, 1.0)

    def test_parallel_efficiency_monotone(self):
        device = ADRENO_640
        effs = [device.parallel_efficiency(r) for r in (8, 64, 512, 4096)]
        assert all(b > a for a, b in zip(effs, effs[1:]))
        assert all(0 < e <= 1 for e in effs)

    def test_reference_frames_per_joule(self):
        ref = ReferenceAccelerator("r", latency_us_per_frame=100.0, power_watts=10.0)
        assert ref.frames_per_joule() == pytest.approx(1000.0)

    def test_ese_reference_values(self):
        assert ESE_FPGA.latency_us_per_frame == 82.7
        assert ESE_FPGA.power_watts == 41.0


class TestThreadBalance:
    def test_dense_layer_balanced(self, rng):
        plan = lower_matrix("l", rng.standard_normal((64, 64)))
        assert thread_balance(plan, 8) == pytest.approx(1.0, abs=0.05)

    def test_balance_in_unit_interval(self, rng):
        for compression in (None, 4, 16):
            weights = make_weights(rng, compression)
            plan = lower_matrix("l", weights["w"])
            balance = thread_balance(plan, 8)
            assert 0.0 < balance <= 1.0

    def test_reorder_no_worse_than_identity(self, rng):
        w = make_weights(rng, 16)["w"]
        with_reorder = lower_matrix("l", w, CompileOptions(enable_reorder=True))
        without = lower_matrix("l", w, CompileOptions(enable_reorder=False))
        assert thread_balance(with_reorder, 8) >= thread_balance(without, 8) - 1e-9

    def test_unstructured_imbalance_detected(self, rng):
        # A pathological pattern: a few very heavy rows among empty ones.
        w = np.zeros((32, 64))
        w[:3, :] = rng.standard_normal((3, 64))
        w[3:, 0] = rng.standard_normal(29)
        plan = lower_matrix("l", w, CompileOptions(enable_reorder=False))
        assert thread_balance(plan, 16) < 0.7

    def test_empty_groups_balance_one(self, rng):
        plan = lower_matrix("l", np.zeros((8, 8)), CompileOptions())
        assert thread_balance(plan, 4) == 1.0


class TestSimulate:
    def test_latency_positive_and_finite(self, rng):
        plan = compile_weights(make_weights(rng), timesteps=10)
        result = simulate(plan, ADRENO_640)
        assert np.isfinite(result.latency_us)
        assert result.latency_us > 0

    def test_latency_sums_layers(self, rng):
        plan = compile_weights(make_weights(rng), timesteps=10)
        result = simulate(plan, ADRENO_640)
        assert result.latency_us == pytest.approx(
            sum(t.busy_us for t in result.layers)
        )

    def test_pruning_reduces_latency(self, rng):
        dense = compile_weights(make_weights(rng), timesteps=10)
        pruned = compile_weights(make_weights(rng, 16), timesteps=10)
        assert (
            simulate(pruned, ADRENO_640).latency_us
            < simulate(dense, ADRENO_640).latency_us
        )

    def test_gops_definition(self, rng):
        plan = compile_weights(make_weights(rng), timesteps=10)
        result = simulate(plan, ADRENO_640)
        assert result.gops == pytest.approx(
            plan.flops_per_inference / result.latency_us / 1e3
        )

    def test_more_timesteps_cost_more(self, rng):
        weights = make_weights(rng)
        short = simulate(compile_weights(weights, timesteps=5), ADRENO_640)
        long = simulate(compile_weights(weights, timesteps=50), ADRENO_640)
        assert long.latency_us > short.latency_us

    def test_rejects_zero_timesteps(self, rng):
        plan = lower_matrix("l", make_weights(rng)["w"])
        with pytest.raises(SimulationError):
            simulate_layer(plan, ADRENO_640, 0)

    def test_gpu_faster_than_cpu_for_large_dense_kernels(self, rng):
        # Needs a kernel large enough to fill the GPU; tiny matrices are
        # legitimately faster on the CPU in this model (and in reality).
        weights = {"w": rng.standard_normal((1024, 1024))}
        gpu_plan = compile_weights(
            weights, CompileOptions(tile=TileConfig(use_fp16=True)), timesteps=10
        )
        cpu_plan = compile_weights(
            weights, CompileOptions(tile=TileConfig(use_fp16=False)), timesteps=10
        )
        assert (
            simulate(gpu_plan, ADRENO_640).latency_us
            < simulate(cpu_plan, KRYO_485).latency_us
        )

    def test_overhead_floor_at_extreme_compression(self, rng):
        """At very high compression, latency approaches the launch-overhead
        floor — the plateau the paper observes in Figure 4."""
        w = np.zeros((64, 64))
        w[0, 0] = 1.0  # one weight left
        plan = compile_weights({"w": w}, timesteps=30)
        result = simulate(plan, ADRENO_640)
        floor = ADRENO_640.kernel_overhead_us * 30
        assert floor <= result.latency_us < 1.5 * floor


class TestMemoryModel:
    def test_traffic_components(self, rng):
        layer = lower_matrix("l", make_weights(rng, 8)["w"])
        traffic = layer_traffic(layer, timesteps=10)
        assert traffic.weight_bytes == layer.weight_bytes
        assert traffic.activation_bytes == layer.unique_cols * 2 * 10
        assert traffic.output_bytes == layer.kept_rows * 2 * 10
        assert traffic.total_bytes == (
            traffic.weight_bytes
            + traffic.metadata_bytes
            + traffic.activation_bytes
            + traffic.output_bytes
        )

    def test_total_bytes_sums_layers(self, rng):
        plan = compile_weights(
            {"a": make_weights(rng)["w"], "b": make_weights(rng, 4)["w"]},
            timesteps=10,
        )
        assert total_bytes(plan) == sum(
            layer_traffic(layer, 10).total_bytes for layer in plan.layers
        )

    def test_pruning_reduces_traffic(self, rng):
        dense = compile_weights(make_weights(rng), timesteps=10)
        pruned = compile_weights(make_weights(rng, 16), timesteps=10)
        assert total_bytes(pruned) < total_bytes(dense)


class TestEnergy:
    def test_energy_is_power_times_time(self, rng):
        plan = compile_weights(make_weights(rng), timesteps=10)
        result = simulate(plan, ADRENO_640)
        report = energy_report(result, ADRENO_640)
        assert report.energy_uj == pytest.approx(
            ADRENO_640.power_watts * result.latency_us
        )

    def test_normalization_against_ese(self, rng):
        plan = compile_weights(make_weights(rng), timesteps=10)
        result = simulate(plan, ADRENO_640)
        report = energy_report(result, ADRENO_640)
        ese_fpj = 1e6 / (41.0 * 82.7)
        assert report.normalized_efficiency == pytest.approx(
            report.frames_per_joule / ese_fpj
        )

    def test_faster_means_more_efficient(self, rng):
        dense = compile_weights(make_weights(rng), timesteps=10)
        pruned = compile_weights(make_weights(rng, 16), timesteps=10)
        dense_eff = energy_report(simulate(dense, ADRENO_640), ADRENO_640)
        pruned_eff = energy_report(simulate(pruned, ADRENO_640), ADRENO_640)
        assert pruned_eff.normalized_efficiency > dense_eff.normalized_efficiency


class TestCalibration:
    """The headline calibration contract: dense paper-scale GRU matches
    Table II row 1 within 5%."""

    def paper_scale_plan(self, rng, fp16):
        h, d = 1024, 240
        weights = {
            "g0.ih": rng.standard_normal((3 * h, d)),
            "g0.hh": rng.standard_normal((3 * h, h)),
            "g1.ih": rng.standard_normal((3 * h, h)),
            "g1.hh": rng.standard_normal((3 * h, h)),
        }
        return compile_weights(
            weights, CompileOptions(tile=TileConfig(use_fp16=fp16)), timesteps=30
        )

    def test_dense_gpu_latency_matches_paper(self, rng):
        result = simulate(self.paper_scale_plan(rng, fp16=True), ADRENO_640)
        assert result.latency_us == pytest.approx(3590.0, rel=0.05)

    def test_dense_cpu_latency_matches_paper(self, rng):
        result = simulate(self.paper_scale_plan(rng, fp16=False), KRYO_485)
        assert result.latency_us == pytest.approx(7130.0, rel=0.05)

    def test_dense_gpu_efficiency_near_ese(self, rng):
        result = simulate(self.paper_scale_plan(rng, fp16=True), ADRENO_640)
        report = energy_report(result, ADRENO_640)
        assert report.normalized_efficiency == pytest.approx(0.88, rel=0.1)
