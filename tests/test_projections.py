"""Tests for projection operators (repro.pruning.projections)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.pruning.projections import (
    project_bank_balanced,
    project_block_columns,
    project_columns,
    project_rows,
    project_unstructured,
)
from repro.sparse.blocks import BlockGrid


class TestUnstructured:
    def test_keeps_largest_magnitudes(self):
        w = np.array([[1.0, -5.0], [0.1, 3.0]])
        mask = project_unstructured(w, rate=2.0)
        np.testing.assert_array_equal(mask.keep, [[False, True], [False, True]])

    def test_keep_count_ceil(self):
        w = np.arange(10.0).reshape(2, 5)
        assert project_unstructured(w, rate=3.0).nnz == 4  # ceil(10/3)

    def test_rate_one_keeps_all(self, rng):
        w = rng.standard_normal((4, 4))
        assert project_unstructured(w, rate=1.0).nnz == 16

    def test_rejects_rate_below_one(self):
        with pytest.raises(ConfigError):
            project_unstructured(np.ones((2, 2)), rate=0.5)

    def test_deterministic_tie_break(self):
        w = np.ones((1, 4))
        a = project_unstructured(w, rate=2.0)
        b = project_unstructured(w, rate=2.0)
        np.testing.assert_array_equal(a.keep, b.keep)
        np.testing.assert_array_equal(a.keep, [[True, True, False, False]])

    def test_never_empties(self):
        assert project_unstructured(np.ones((2, 2)), rate=1e9).nnz == 1


class TestRowsCols:
    def test_rows_keeps_largest_norm_rows(self):
        w = np.array([[1.0, 1.0], [5.0, 5.0], [0.1, 0.1], [3.0, 3.0]])
        mask = project_rows(w, rate=2.0)
        np.testing.assert_array_equal(mask.keep.any(axis=1), [False, True, False, True])

    def test_rows_kept_rows_are_full(self):
        w = np.random.default_rng(0).standard_normal((6, 4))
        mask = project_rows(w, rate=3.0)
        kept = mask.keep.any(axis=1)
        assert np.all(mask.keep[kept])  # surviving rows keep every column

    def test_cols_keeps_largest_norm_cols(self):
        w = np.array([[1.0, 5.0, 0.1], [1.0, 5.0, 0.1]])
        mask = project_columns(w, rate=3.0)
        np.testing.assert_array_equal(mask.keep.any(axis=0), [False, True, False])

    def test_rows_requires_2d(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            project_rows(np.ones(4), rate=2.0)


class TestBlockColumns:
    def test_per_block_keep_counts(self, rng):
        w = rng.standard_normal((8, 12))
        grid = BlockGrid(8, 12, 2, 3)  # blocks are 4 rows x 4 cols
        mask = project_block_columns(w, grid, rate=4.0)
        for region in grid.regions():
            rs, cs = region.slice()
            cols_kept = mask.keep[rs, cs].any(axis=0).sum()
            assert cols_kept == 1  # ceil(4/4)

    def test_kept_columns_full_within_block(self, rng):
        w = rng.standard_normal((8, 12))
        grid = BlockGrid(8, 12, 2, 3)
        mask = project_block_columns(w, grid, rate=2.0)
        for region in grid.regions():
            rs, cs = region.slice()
            block = mask.keep[rs, cs]
            kept_cols = block.any(axis=0)
            # A kept column is kept for *all* rows of the strip.
            assert np.all(block[:, kept_cols])

    def test_different_strips_may_keep_different_columns(self):
        w = np.zeros((4, 4))
        w[0:2, 0] = 10.0  # strip 0 favors column 0
        w[2:4, 3] = 10.0  # strip 1 favors column 3
        grid = BlockGrid(4, 4, 2, 1)
        mask = project_block_columns(w, grid, rate=4.0)
        assert mask.keep[0, 0] and not mask.keep[0, 3]
        assert mask.keep[2, 3] and not mask.keep[2, 0]

    def test_selects_by_block_local_norm(self):
        w = np.array([[3.0, 1.0, 0.5, 2.0]])
        grid = BlockGrid(1, 4, 1, 2)
        mask = project_block_columns(w, grid, rate=2.0)
        np.testing.assert_array_equal(mask.keep, [[True, False, False, True]])

    def test_shape_mismatch_rejected(self, rng):
        grid = BlockGrid(4, 4, 2, 2)
        with pytest.raises(ConfigError):
            project_block_columns(rng.standard_normal((4, 5)), grid, rate=2.0)

    def test_compression_close_to_rate(self, rng):
        w = rng.standard_normal((32, 64))
        grid = BlockGrid(32, 64, 4, 4)
        mask = project_block_columns(w, grid, rate=4.0)
        assert mask.compression_rate() == pytest.approx(4.0)


class TestBankBalanced:
    def test_equal_nnz_per_row(self, rng):
        w = rng.standard_normal((6, 16))
        mask = project_bank_balanced(w, bank_size=4, rate=2.0)
        row_counts = mask.keep.sum(axis=1)
        assert len(set(row_counts.tolist())) == 1

    def test_equal_nnz_per_bank(self, rng):
        w = rng.standard_normal((4, 16))
        mask = project_bank_balanced(w, bank_size=4, rate=4.0)
        for start in range(0, 16, 4):
            counts = mask.keep[:, start : start + 4].sum(axis=1)
            assert np.all(counts == 1)

    def test_keeps_largest_in_each_bank(self):
        w = np.array([[0.1, 9.0, 0.2, 0.3, 5.0, 0.1, 0.1, 0.1]])
        mask = project_bank_balanced(w, bank_size=4, rate=4.0)
        np.testing.assert_array_equal(
            mask.keep, [[False, True, False, False, True, False, False, False]]
        )

    def test_partial_trailing_bank(self, rng):
        w = rng.standard_normal((3, 10))
        mask = project_bank_balanced(w, bank_size=4, rate=2.0)
        # Banks: 4, 4, 2 → keeps 2 + 2 + 1 per row.
        assert np.all(mask.keep.sum(axis=1) == 5)

    def test_rejects_bad_bank_size(self, rng):
        with pytest.raises(ConfigError):
            project_bank_balanced(rng.standard_normal((2, 4)), bank_size=0, rate=2.0)
        with pytest.raises(ConfigError):
            project_bank_balanced(rng.standard_normal((2, 4)), bank_size=5, rate=2.0)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(2, 16),
    cols=st.integers(2, 16),
    rate=st.floats(1.0, 8.0),
    seed=st.integers(0, 1000),
)
def test_property_projection_idempotent(rows, cols, rate, seed):
    """Projecting an already-projected matrix changes nothing.

    This is the defining property of a Euclidean projection onto a
    coordinate subspace, and what the ADMM Z-update relies on.
    """
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((rows, cols))
    mask1 = project_unstructured(w, rate)
    projected = mask1.apply_to_array(w)
    mask2 = project_unstructured(projected, rate)
    np.testing.assert_array_equal(
        mask2.apply_to_array(projected), projected
    )


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(2, 12),
    cols=st.integers(2, 12),
    rate=st.floats(1.0, 6.0),
    seed=st.integers(0, 1000),
)
def test_property_block_projection_never_over_prunes(rows, cols, rate, seed):
    """Block-column projection keeps >= ceil(block_cols/rate) per block."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((rows, cols))
    strips = min(2, rows)
    blocks = min(2, cols)
    grid = BlockGrid(rows, cols, strips, blocks)
    mask = project_block_columns(w, grid, rate)
    for region in grid.regions():
        rs, cs = region.slice()
        kept = mask.keep[rs, cs].any(axis=0).sum()
        expected = max(1, int(np.ceil(region.shape[1] / rate)))
        assert kept == expected
