"""Versioned artifact registry tests (repro.engine.registry).

The deployment contract: a publish is atomic (a reader never sees a
partial version, a crashed publish leaves no version), version ids are
dense and immutable, resolution pins or follows ``latest``, every load
is integrity-verified against the SHA-256 recorded at publish, lineage
is walkable, and deployment decisions append to version history with an
atomic metadata rewrite.  Every failure is a typed
:class:`~repro.errors.RegistryError` (an :class:`ArtifactError`
subclass), never a bare ``OSError``/``KeyError``/json traceback.
"""

import json

import numpy as np
import pytest

from repro import engine
from repro.engine.registry import (
    ARTIFACT_FILE,
    METADATA_FILE,
    PlanRegistry,
    summarize_tuning,
)
from repro.errors import ArtifactError, RegistryError
from repro.speech.model import AcousticModelConfig, GRUAcousticModel


def small_plan(scheme=None, seed=0, hidden=16):
    config = AcousticModelConfig(
        input_dim=8, hidden_size=hidden, num_layers=2, cell_type="gru"
    )
    model = GRUAcousticModel(config, rng=seed).eval()
    return engine.compile_model(model, scheme=scheme)


@pytest.fixture
def registry(tmp_path):
    return PlanRegistry(tmp_path / "registry")


class TestPublishResolve:
    def test_publish_assigns_dense_versions(self, registry):
        first = registry.publish("am", small_plan())
        second = registry.publish("am", small_plan(seed=1))
        assert (first.version, second.version) == ("v1", "v2")
        assert registry.versions("am") == ["v1", "v2"]
        assert registry.names() == ["am"]

    def test_resolve_latest_and_pin(self, registry):
        registry.publish("am", small_plan())
        registry.publish("am", small_plan(seed=1))
        assert registry.resolve("am").version == "v2"
        assert registry.resolve("am", "latest").version == "v2"
        # Pins accept "v1", "1", and 1 spellings.
        assert registry.resolve("am", "v1").version == "v1"
        assert registry.resolve("am", "1").version == "v1"
        assert registry.resolve("am", 1).version == "v1"

    def test_version_directory_layout(self, registry):
        entry = registry.publish("am", small_plan())
        assert entry.path == registry.root / "am" / "v1"
        assert (entry.path / ARTIFACT_FILE).is_file()
        assert (entry.path / METADATA_FILE).is_file()

    def test_load_round_trips_bit_identical(self, registry, rng):
        plan = small_plan(scheme="int8")
        registry.publish("am", plan)
        reloaded = registry.load("am")
        utterance = rng.standard_normal((30, 8))
        np.testing.assert_array_equal(
            plan.forward_utterance(utterance),
            reloaded.forward_utterance(utterance),
        )

    def test_metadata_records_plan_facts(self, registry):
        entry = registry.publish("am", small_plan(scheme="fp16"))
        meta = registry.resolve("am").meta
        assert meta["scheme"] == "fp16"
        assert meta["cell_type"] == "gru"
        assert meta["hidden_size"] == 16
        assert meta["num_layers"] == 2
        assert meta["nbytes"] > 0
        assert meta["signature"][0] == "gru"
        assert meta["status"] == "published"
        assert meta["history"] == []
        assert entry.status == "published"

    def test_tune_summary_rides_in_metadata(self, registry):
        from repro.compiler.autotune import tune_plan

        config = AcousticModelConfig(
            input_dim=8, hidden_size=16, num_layers=2, cell_type="gru"
        )
        model = GRUAcousticModel(config, rng=0).eval()
        result = tune_plan(
            model, np.zeros((20, 2, 8)), repeats=1, schemes=(None,)
        )
        registry.publish(
            "am", small_plan(), tune=summarize_tuning(result)
        )
        tune = registry.resolve("am").meta["tune"]
        assert set(tune) >= {"baseline_s", "tuned_s", "speedup", "best_label"}
        assert tune["num_evaluated"] >= 1


class TestTypedErrors:
    def test_unknown_name(self, registry):
        with pytest.raises(RegistryError, match="unknown model"):
            registry.resolve("ghost")

    def test_unknown_version(self, registry):
        registry.publish("am", small_plan())
        with pytest.raises(RegistryError, match="unknown version"):
            registry.resolve("am", "v9")

    def test_malformed_version_id(self, registry):
        registry.publish("am", small_plan())
        with pytest.raises(RegistryError, match="malformed version"):
            registry.resolve("am", "v0")
        with pytest.raises(RegistryError, match="malformed version"):
            registry.publish("am", small_plan(), version="canary!")

    def test_duplicate_version_is_immutable(self, registry):
        registry.publish("am", small_plan(), version="v1")
        with pytest.raises(RegistryError, match="immutable"):
            registry.publish("am", small_plan(seed=1), version="v1")
        # The original artifact was not clobbered.
        assert registry.versions("am") == ["v1"]
        registry.load("am", "v1")

    def test_invalid_model_name(self, registry):
        with pytest.raises(RegistryError, match="invalid model name"):
            registry.publish("../escape", small_plan())

    def test_missing_parent(self, registry):
        with pytest.raises(RegistryError, match="parent .* does not exist"):
            registry.publish("am", small_plan(), parent="v1")

    def test_registry_error_is_artifact_error(self, registry):
        # Callers guarding artifact loads catch registry failures with
        # the same except clause.
        with pytest.raises(ArtifactError):
            registry.resolve("ghost")


class TestIntegrity:
    def test_corrupted_artifact_fails_verification(self, registry):
        entry = registry.publish("am", small_plan())
        blob = bytearray(entry.artifact_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        entry.artifact_path.write_bytes(bytes(blob))
        with pytest.raises(RegistryError, match="integrity"):
            registry.load("am")

    def test_deleted_artifact_surfaces_typed(self, registry):
        entry = registry.publish("am", small_plan())
        entry.artifact_path.unlink()
        # The version directory no longer qualifies as published.
        with pytest.raises(RegistryError):
            registry.load("am", "v1")

    def test_unreadable_metadata_surfaces_typed(self, registry):
        entry = registry.publish("am", small_plan())
        (entry.path / METADATA_FILE).write_text("{not json")
        with pytest.raises(RegistryError, match="unreadable"):
            registry.resolve("am")

    def test_publish_leaves_no_staging_droppings(self, registry):
        registry.publish("am", small_plan())
        registry.publish("am", small_plan(seed=1))
        leftovers = [
            entry
            for entry in registry.root.iterdir()
            if entry.name.startswith(".staging-")
        ]
        assert leftovers == []

    def test_failed_publish_is_invisible(self, registry, monkeypatch):
        # Crash the publish mid-stage: no version appears, no staging
        # directory survives, and the next publish still gets v1.
        import repro.engine.registry as registry_module

        def boom(path, plan):
            raise OSError("disk full")

        monkeypatch.setattr(registry_module, "save_plan", boom)
        with pytest.raises(OSError):
            registry.publish("am", small_plan())
        monkeypatch.undo()
        assert registry.versions("am") == []
        assert not any(
            entry.name.startswith(".staging-")
            for entry in registry.root.iterdir()
        )
        assert registry.publish("am", small_plan()).version == "v1"


class TestLineageAndDecisions:
    def test_lineage_walks_oldest_first(self, registry):
        registry.publish("am", small_plan())
        registry.publish("am", small_plan(seed=1), parent="v1")
        registry.publish("am", small_plan(seed=2), parent="v2")
        chain = registry.lineage("am", "v3")
        assert [entry.version for entry in chain] == ["v1", "v2", "v3"]

    def test_lineage_cycle_is_detected(self, registry):
        registry.publish("am", small_plan())
        entry = registry.publish("am", small_plan(seed=1), parent="v1")
        # Corrupt the metadata into a cycle; lineage must not spin.
        meta = json.loads((entry.path / METADATA_FILE).read_text())
        meta["parent"] = "v2"
        (entry.path / METADATA_FILE).write_text(json.dumps(meta))
        with pytest.raises(RegistryError, match="cycle"):
            registry.lineage("am", "v2")

    def test_record_decision_appends_history(self, registry):
        registry.publish("am", small_plan())
        registry.record_decision(
            "am", "v1", {"event": "canary", "decision": "promote"},
            status="serving",
        )
        registry.record_decision(
            "am", "v1", {"event": "hot_swap"},
        )
        entry = registry.resolve("am", "v1")
        events = [record["event"] for record in entry.meta["history"]]
        assert events == ["canary", "hot_swap"]
        assert entry.status == "serving"  # second record kept the status
        assert all("recorded_unix" in r for r in entry.meta["history"])

    def test_record_decision_rewrite_is_atomic(self, registry):
        entry = registry.publish("am", small_plan())
        before = (entry.path / METADATA_FILE).read_bytes()
        with pytest.raises(RegistryError):
            registry.record_decision(
                "am", "v1", {"bad": object()},  # unserializable payload
            )
        assert (entry.path / METADATA_FILE).read_bytes() == before


class TestUnwritableRoot:
    def test_root_creation_failure_is_typed(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")  # a *file* where the root dir must go
        with pytest.raises(RegistryError, match="registry root"):
            PlanRegistry(blocker / "registry")
