"""Tests for lowering (repro.compiler.codegen) and the IR invariants."""

import numpy as np
import pytest

from repro.compiler.codegen import CompileOptions, lower_matrix
from repro.compiler.ir import KernelPlan, LayerPlan, RowGroup, TileConfig
from repro.errors import CompilationError
from repro.pruning.bsp import BSPConfig, bsp_project_masks


def pruned_weight(rng, shape=(24, 32), col_rate=4.0, row_rate=2.0):
    w = rng.standard_normal(shape)
    masks = bsp_project_masks(
        {"w": w},
        BSPConfig(col_rate=col_rate, row_rate=row_rate, num_row_strips=4,
                  num_col_blocks=4),
    )
    return masks["w"].apply_to_array(w)


class TestTileConfig:
    def test_value_bytes(self):
        assert TileConfig(use_fp16=True).value_bytes == 2
        assert TileConfig(use_fp16=False).value_bytes == 4

    def test_rejects_bad_rows(self):
        with pytest.raises(CompilationError):
            TileConfig(rows_per_thread=0)

    def test_rejects_bad_unroll(self):
        with pytest.raises(CompilationError):
            TileConfig(unroll=0)


class TestLowerMatrix:
    def test_basic_fields(self, rng):
        w = pruned_weight(rng)
        plan = lower_matrix("layer", w)
        assert plan.shape == (24, 32)
        assert plan.nnz == np.count_nonzero(w)
        assert plan.flops_per_step == 2 * plan.nnz
        assert plan.format_name == "bspc"

    def test_kept_rows_and_cols(self, rng):
        w = pruned_weight(rng)
        plan = lower_matrix("layer", w)
        assert plan.kept_rows == int(np.any(w != 0, axis=1).sum())
        assert plan.unique_cols == int(np.any(w != 0, axis=0).sum())

    def test_dense_weight_uses_dense_format(self, rng):
        w = rng.standard_normal((8, 8))
        plan = lower_matrix("layer", w)
        assert plan.format_name == "dense"
        assert plan.stored_values == 64
        assert plan.metadata_bytes == 0
        assert plan.act_loads_per_step == 8

    def test_csr_format_option(self, rng):
        w = pruned_weight(rng)
        plan = lower_matrix("layer", w, CompileOptions(format_name="csr"))
        assert plan.format_name == "csr"
        assert plan.metadata_bytes > 0
        assert plan.stored_values == plan.nnz

    def test_bspc_metadata_smaller_than_csr_for_bsp_patterns(self, rng):
        w = pruned_weight(rng, shape=(48, 64))
        bspc = lower_matrix("layer", w, CompileOptions(format_name="bspc"))
        csr = lower_matrix("layer", w, CompileOptions(format_name="csr"))
        assert bspc.metadata_bytes < csr.metadata_bytes

    def test_load_elimination_reduces_loads(self, rng):
        w = pruned_weight(rng)
        with_elim = lower_matrix(
            "layer", w, CompileOptions(enable_load_elimination=True)
        )
        without = lower_matrix(
            "layer", w, CompileOptions(enable_load_elimination=False)
        )
        assert with_elim.act_loads_per_step < without.act_loads_per_step
        assert without.act_loads_per_step == without.act_loads_naive
        assert with_elim.load_elimination_ratio > 0.0

    def test_reorder_toggle_changes_groups(self, rng):
        w = pruned_weight(rng)
        with_reorder = lower_matrix("layer", w, CompileOptions(enable_reorder=True))
        without = lower_matrix("layer", w, CompileOptions(enable_reorder=False))
        assert with_reorder.reordered
        assert not without.reordered
        assert len(without.groups) == 1
        assert len(with_reorder.groups) >= 1

    def test_permutation_always_full(self, rng):
        w = pruned_weight(rng)
        plan = lower_matrix("layer", w)
        assert sorted(plan.row_permutation.tolist()) == list(range(24))

    def test_fp16_halves_weight_bytes(self, rng):
        w = pruned_weight(rng)
        fp16 = lower_matrix("l", w, CompileOptions(tile=TileConfig(use_fp16=True)))
        fp32 = lower_matrix("l", w, CompileOptions(tile=TileConfig(use_fp16=False)))
        assert fp32.weight_bytes == 2 * fp16.weight_bytes

    def test_output_writes_equal_kept_rows(self, rng):
        w = pruned_weight(rng)
        plan = lower_matrix("layer", w)
        assert plan.output_writes_per_step == plan.kept_rows

    def test_rejects_unknown_format(self, rng):
        with pytest.raises(CompilationError):
            CompileOptions(format_name="coo")

    def test_rejects_1d_weight(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            lower_matrix("layer", np.ones(4))


class TestIRValidation:
    def test_layer_plan_rejects_unknown_format(self):
        with pytest.raises(CompilationError):
            LayerPlan(
                name="x", shape=(2, 2), format_name="weird", nnz=1,
                stored_values=1, kept_rows=1, unique_cols=1, flops_per_step=2,
                weight_bytes=2, metadata_bytes=0, act_loads_naive=1,
                act_loads_per_step=1, output_writes_per_step=1,
            )

    def test_layer_plan_rejects_stored_below_nnz(self):
        with pytest.raises(CompilationError):
            LayerPlan(
                name="x", shape=(2, 2), format_name="csr", nnz=3,
                stored_values=2, kept_rows=1, unique_cols=1, flops_per_step=6,
                weight_bytes=6, metadata_bytes=0, act_loads_naive=3,
                act_loads_per_step=3, output_writes_per_step=1,
            )

    def test_layer_plan_rejects_load_increase(self):
        with pytest.raises(CompilationError):
            LayerPlan(
                name="x", shape=(2, 2), format_name="csr", nnz=2,
                stored_values=2, kept_rows=1, unique_cols=1, flops_per_step=4,
                weight_bytes=4, metadata_bytes=0, act_loads_naive=2,
                act_loads_per_step=3, output_writes_per_step=1,
            )

    def test_row_group_rejects_misaligned_arrays(self):
        with pytest.raises(CompilationError):
            RowGroup(
                rows=np.array([0, 1]),
                nnz_per_row=np.array([1]),
                pattern_key=(0,),
                unique_cols=1,
            )

    def test_kernel_plan_rejects_empty(self):
        with pytest.raises(CompilationError):
            KernelPlan(layers=[], timesteps=1)

    def test_kernel_plan_rejects_zero_timesteps(self, rng):
        plan = lower_matrix("l", pruned_weight(rng))
        with pytest.raises(CompilationError):
            KernelPlan(layers=[plan], timesteps=0)

    def test_kernel_plan_aggregates(self, rng):
        layer = lower_matrix("l", pruned_weight(rng))
        plan = KernelPlan(layers=[layer, layer], timesteps=10)
        assert plan.total_nnz == 2 * layer.nnz
        assert plan.total_params == 2 * 24 * 32
        assert plan.flops_per_inference == 2 * layer.flops_per_step * 10
        assert plan.compression_rate == pytest.approx(
            (2 * 24 * 32) / (2 * layer.nnz)
        )
        assert plan.gop_per_inference == pytest.approx(
            plan.flops_per_inference / 1e9
        )
