"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Seeded generator factory for tests that sweep many cases.

    Each case derives its own generator from an explicit seed, so a
    failure report names the exact stream that broke and the sweep stays
    reproducible case by case.
    """

    def make(seed: int = 12345) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make


def numeric_gradient(func, array: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``func`` w.r.t. ``array``."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = func(array)
        flat[i] = original - epsilon
        minus = func(array)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


def check_gradient(build, array: np.ndarray, atol: float = 1e-6) -> None:
    """Assert autograd gradient of ``build(Tensor)`` matches numeric.

    ``build`` maps a Tensor to a scalar Tensor.
    """
    tensor = Tensor(array.copy(), requires_grad=True)
    out = build(tensor)
    out.backward()

    def scalar(arr: np.ndarray) -> float:
        return float(build(Tensor(arr.copy())).data)

    numeric = numeric_gradient(scalar, array.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)
