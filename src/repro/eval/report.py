"""Plain-text table rendering for the experiment harnesses."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned monospace table.

    Cells are stringified; floats the caller wants formatted should be
    pre-formatted strings.
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        cells.append([str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: object, precision: int = 2) -> str:
    """Format a number for a table cell ('–' for None)."""
    if value is None:
        return "–"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)
