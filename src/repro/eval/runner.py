"""Command-line experiment runner.

Regenerates the paper's tables/figures from the shell and archives the
results::

    python -m repro table1 --fast --json out/table1.json
    python -m repro table2 --csv out/table2.csv --engine
    python -m repro figure4
    python -m repro serve-bench --utterances 64
    python -m repro stream-bench --sessions 8 --chunk-frames 25
    python -m repro sweep --workers 2 --chaos --resume --expect-exact
    python -m repro all --out results/

Each subcommand prints the rendered measured-vs-paper table and optionally
writes JSON/CSV via :mod:`repro.eval.export`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import kernels
from repro.eval.export import to_csv, to_json
from repro.eval.figure4 import figure4_from_table2, render_figure4
from repro.eval.table1 import Table1Config, render_table1, run_table1
from repro.eval.table2 import Table2Config, render_table2, run_table2


def _add_output_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", type=Path, help="write rows as JSON")
    parser.add_argument("--csv", type=Path, help="write rows as CSV")


def _export(result, args) -> None:
    if getattr(args, "json", None):
        args.json.parent.mkdir(parents=True, exist_ok=True)
        to_json(result, args.json)
        print(f"wrote {args.json}")
    if getattr(args, "csv", None):
        args.csv.parent.mkdir(parents=True, exist_ok=True)
        to_csv(result, args.csv)
        print(f"wrote {args.csv}")


def _run_table1(args) -> None:
    config = Table1Config.fast() if args.fast else Table1Config()
    result = run_table1(config)
    print(render_table1(result))
    _export(result, args)


def _run_table2(args) -> None:
    result = run_table2(Table2Config(), engine=args.engine)
    print(render_table2(result))
    _export(result, args)


def _run_figure4(args) -> None:
    figure = figure4_from_table2(run_table2(Table2Config(), engine=args.engine))
    print(render_figure4(figure))
    _export(figure, args)


def _run_serve_bench(args) -> None:
    from repro.eval.serve_bench import (
        ServeBenchConfig,
        render_serve_bench,
        run_serve_bench,
    )

    schemes = (
        (None, "fp16", "int8")
        if args.scheme == "all"
        else (None if args.scheme == "none" else args.scheme,)
    )
    config = ServeBenchConfig(
        num_utterances=args.utterances,
        hidden_size=args.hidden_size,
        max_batch_size=args.max_batch,
        bucket_width=args.bucket_width,
        repeats=args.repeats,
        seed=args.seed,
        schemes=schemes,
    )
    result = run_serve_bench(config)
    print(render_serve_bench(result))
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(result.to_rows(), indent=2))
        print(f"wrote {args.json}")


def _run_stream_bench(args) -> None:
    from repro.eval.stream_bench import (
        StreamBenchConfig,
        render_stream_bench,
        run_stream_bench,
    )

    config = StreamBenchConfig(
        num_sessions=args.sessions,
        chunk_frames=args.chunk_frames,
        hidden_size=args.hidden_size,
        max_batch_size=args.max_batch,
        max_wait_frames=args.max_wait_frames,
        min_duration=args.min_duration,
        repeats=args.repeats,
        seed=args.seed,
        scheme=None if args.scheme == "none" else args.scheme,
        workers=args.workers,
        chaos=args.chaos,
        canary=args.canary,
    )
    result = run_stream_bench(config)
    print(render_stream_bench(result))
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(result.to_rows(), indent=2))
        print(f"wrote {args.json}")
    if args.expect_recovery:
        fabric_rows = [row for row in result.rows if row.path.startswith("fabric")]
        if not fabric_rows:
            raise SystemExit("--expect-recovery needs --workers >= 1")
        row = fabric_rows[-1]
        if row.decode_match < 1.0:
            raise SystemExit(
                f"fabric decode match {row.decode_match:.2%} < 100% — "
                "recovery was not byte-exact"
            )
        if not row.restarts:
            raise SystemExit(
                "no worker restarts observed — the chaos fault did not "
                "exercise recovery"
            )
        print(
            f"recovery OK: {row.restarts} restart(s), "
            f"{row.sessions_rehomed} session(s) re-homed, decode match 100%"
        )
        for row in (r for r in result.rows if r.path.startswith("canary")):
            expected = "rollback" if "divergent" in row.path else "promote"
            if row.canary_decision != expected:
                raise SystemExit(
                    f"{row.path}: decided {row.canary_decision!r}, "
                    f"expected {expected!r}"
                )
            if row.decode_match < 1.0:
                scope = (
                    "incumbent sessions"
                    if expected == "rollback"
                    else "all sessions"
                )
                raise SystemExit(
                    f"{row.path}: decode match {row.decode_match:.2%} < "
                    f"100% over {scope} — the rollout corrupted serving"
                )
            if args.chaos and not row.restarts:
                raise SystemExit(
                    f"{row.path}: no worker restarts observed — the chaos "
                    "fault did not exercise crash-during-rollout recovery"
                )
            print(
                f"{row.path}: {row.canary_decision} OK "
                f"(agreement {row.canary_agreement:.2f}, "
                f"{row.restarts or 0} restart(s), decode match 100%)"
            )


def _run_sweep_cmd(args) -> None:
    import tempfile

    from repro.eval.sweep_bench import (
        SweepBenchConfig,
        render_sweep_bench,
        run_sweep_bench,
    )

    state_dir = args.state_dir or Path(
        tempfile.mkdtemp(prefix="repro-sweep-")
    )
    config = SweepBenchConfig(
        state_dir=state_dir,
        workers=args.workers,
        chaos=args.chaos,
        resume=args.resume,
        seed=args.seed,
        hidden_size=args.hidden_size,
        num_train=args.utterances,
        num_test=max(2, args.utterances // 2),
        train_workers=args.train_workers,
        cell_timeout_s=args.cell_timeout,
    )
    result = run_sweep_bench(config)
    print(render_sweep_bench(result))
    print()
    print(result.resumed.summary_table())
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(result.to_rows(), indent=2))
        print(f"wrote {args.json}")
    if args.expect_exact:
        incomplete = [
            c.name
            for ref, c in zip(result.reference.outcomes, result.comparisons)
            if not ref.completed
        ] + [
            o.cell.name
            for o in result.resumed.outcomes
            if not o.completed
        ]
        if incomplete:
            raise SystemExit(
                f"--expect-exact: cells did not complete: {sorted(set(incomplete))}"
            )
        if args.chaos and result.chaos_failures == 0:
            raise SystemExit(
                "--expect-exact: no injected crashes observed — the chaos "
                "fault did not exercise resume"
            )
        drifted = [c.name for c in result.comparisons if not c.exact]
        if drifted:
            raise SystemExit(
                f"--expect-exact: chaos-resumed cells drifted from the "
                f"uninterrupted reference: {drifted}"
            )
        print(
            f"exactness OK: {len(result.comparisons)} cell(s) resumed "
            f"bit-identical after {result.chaos_failures} injected "
            "crash(es) (weights, loss curve, PER, probe logits)"
        )


def _run_tune(args) -> None:
    from repro.eval.tune import TuneConfig, render_tune, run_tune, save_and_verify

    schemes = tuple(
        None if name in ("none", "") else name
        for name in args.schemes.split(",")
    )
    if args.mixed and "mixed" not in schemes:
        schemes = schemes + ("mixed",)
    tiles = (
        ()
        if not args.tiles
        else tuple(int(rb) for rb in args.tiles.split(","))
    )
    config = TuneConfig(
        hidden_size=args.hidden_size,
        num_layers=args.layers,
        seq_len=args.frames,
        batch=args.batch,
        prune=not args.no_prune,
        col_rate=args.col_rate,
        row_rate=args.row_rate,
        schemes=schemes,
        backends=(None,) if args.backends is None
        else tuple(args.backends.split(",")),
        tiles=tiles,
        repeats=args.repeats,
        seed=args.seed,
    )
    outcome = run_tune(config)
    print(render_tune(outcome))
    if args.save:
        args.save.parent.mkdir(parents=True, exist_ok=True)
        if not save_and_verify(outcome, args.save):
            raise SystemExit(
                f"artifact round-trip mismatch for {args.save}"
            )
        print(
            f"saved tuned plan to {args.save} "
            "(reload verified bit-identical)"
        )
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(outcome.to_rows(), indent=2))
        print(f"wrote {args.json}")


def _run_all(args) -> None:
    out: Path = args.out
    out.mkdir(parents=True, exist_ok=True)
    start = time.time()
    table2 = run_table2(Table2Config())
    print(render_table2(table2))
    to_json(table2, out / "table2.json")
    figure4 = figure4_from_table2(table2)
    print(render_figure4(figure4))
    to_json(figure4, out / "figure4.json")
    config = Table1Config.fast() if args.fast else Table1Config()
    table1 = run_table1(config)
    print(render_table1(table1))
    to_json(table1, out / "table1.json")
    print(f"\nall artifacts in {out}/ ({time.time() - start:.0f}s)")


def _add_kernel_backend_arg(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """Register --kernel-backend on a parser.

    The flag lives on the top-level parser *and* every subparser so both
    argument orders work.  The subparser copies default to SUPPRESS so an
    absent post-subcommand flag does not clobber a pre-subcommand value
    in the shared namespace.
    """
    # No argparse choices= here: validation goes through
    # kernels.resolve_backend so an unknown name raises the same typed
    # ConfigError (listing what is registered) as REPRO_KERNEL_BACKEND
    # and tune_plan, instead of argparse's exit-2 with a stale list.
    parser.add_argument(
        "--kernel-backend",
        default=None if top_level else argparse.SUPPRESS,
        help="execution backend for all kernel dispatches, one of: "
        f"{', '.join(kernels.registry.backends())} "
        f"(default: {kernels.get_default_backend()})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the RTMobile paper's tables and figures.",
    )
    _add_kernel_backend_arg(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="compression vs. PER (trains models)")
    p1.add_argument("--fast", action="store_true",
                    help="endpoint sweep only (~1 min instead of ~5)")
    _add_output_args(p1)
    p1.set_defaults(func=_run_table1)

    p2 = sub.add_parser("table2", help="mobile latency / GOP/s / energy")
    p2.add_argument("--engine", action="store_true",
                    help="also compile each point through repro.engine and "
                    "measure host latency")
    _add_output_args(p2)
    p2.set_defaults(func=_run_table2)

    p4 = sub.add_parser("figure4", help="speedup vs. compression curves")
    p4.add_argument("--engine", action="store_true",
                    help="add the measured host-engine speedup curve")
    _add_output_args(p4)
    p4.set_defaults(func=_run_figure4)

    ps = sub.add_parser(
        "serve-bench",
        help="eager per-utterance vs compiled batched engine serving",
    )
    ps.add_argument("--utterances", type=int, default=64)
    ps.add_argument("--hidden-size", type=int, default=64)
    ps.add_argument("--max-batch", type=int, default=16)
    ps.add_argument("--bucket-width", type=int, default=25)
    ps.add_argument("--repeats", type=int, default=3)
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--scheme", choices=["all", "none", "fp16", "int8"],
                    default="all", help="engine quantization scheme(s) to run")
    ps.add_argument("--json", type=Path, help="write rows as JSON")
    ps.set_defaults(func=_run_serve_bench)

    pst = sub.add_parser(
        "stream-bench",
        help="chunked stateful streaming sessions vs offline batched serving",
    )
    pst.add_argument("--sessions", type=int, default=8,
                     help="concurrent streaming sessions")
    pst.add_argument("--chunk-frames", type=int, default=25,
                     help="frames per fed chunk")
    pst.add_argument("--hidden-size", type=int, default=64)
    pst.add_argument("--max-batch", type=int, default=8,
                     help="sessions fused per run_chunk call")
    pst.add_argument("--max-wait-frames", type=int, default=175,
                     help="deadline: frames of other traffic a chunk may wait")
    pst.add_argument("--min-duration", type=int, default=2)
    pst.add_argument("--repeats", type=int, default=3)
    pst.add_argument("--seed", type=int, default=0)
    pst.add_argument("--scheme", choices=["none", "fp16", "int8"],
                     default="none", help="engine quantization scheme")
    pst.add_argument("--workers", type=int, default=0,
                     help="also serve through a multi-process fabric with "
                     "this many supervised workers (0 = skip)")
    pst.add_argument("--chaos", action="store_true",
                     help="arm a deterministic crash fault on worker 0 so "
                     "the fabric pass exercises restart + journal replay")
    pst.add_argument("--canary", action="store_true",
                     help="add registry-backed canary rollout passes: a "
                     "divergent candidate must auto-rollback and a clean "
                     "one must auto-promote (requires --workers >= 1)")
    pst.add_argument("--expect-recovery", action="store_true",
                     help="exit nonzero unless the fabric row recovered "
                     "(restarts >= 1) with decode match 100%% — the CI "
                     "chaos gate; with --canary also asserts the "
                     "rollback/promote decisions")
    pst.add_argument("--json", type=Path, help="write rows as JSON")
    pst.set_defaults(func=_run_stream_bench)

    psw = sub.add_parser(
        "sweep",
        help="fault-tolerant prune→retrain sweep over the reduced "
        "sparsity × scheme grid, with chaos/resume exactness gating",
    )
    psw.add_argument("--workers", type=int, default=2,
                     help="concurrent forked cell processes")
    psw.add_argument("--train-workers", type=int, default=1,
                     help="data-parallel gradient workers inside each cell")
    psw.add_argument("--chaos", action="store_true",
                     help="crash every cell's first attempt at a seeded "
                     "mid-training step")
    psw.add_argument("--resume", action="store_true",
                     help="with --chaos: leave crashed cells incomplete "
                     "(zero retries), then resume them from checkpoints "
                     "in a second pass")
    psw.add_argument("--expect-exact", action="store_true",
                     help="exit nonzero unless every chaos-resumed cell "
                     "matches the uninterrupted reference bit-for-bit "
                     "(weights SHA-256, loss curve, PER, published-plan "
                     "probe logits) — the CI gate")
    psw.add_argument("--utterances", type=int, default=8,
                     help="synthetic training utterances per cell")
    psw.add_argument("--hidden-size", type=int, default=16)
    psw.add_argument("--seed", type=int, default=0)
    psw.add_argument("--cell-timeout", type=float, default=600.0,
                     help="straggler kill deadline per cell attempt (s)")
    psw.add_argument("--state-dir", type=Path,
                     help="sweep state root (default: fresh temp dir)")
    psw.add_argument("--json", type=Path, help="write rows as JSON")
    psw.set_defaults(func=_run_sweep_cmd)

    pt = sub.add_parser(
        "tune",
        help="measured autotune: search engine configs by timing the "
        "real compiled plan, optionally save the tuned artifact",
    )
    pt.add_argument("--hidden-size", type=int, default=64)
    pt.add_argument("--layers", type=int, default=2)
    pt.add_argument("--frames", type=int, default=100,
                    help="calibration-batch sequence length")
    pt.add_argument("--batch", type=int, default=16,
                    help="calibration-batch size")
    pt.add_argument("--no-prune", action="store_true",
                    help="tune the dense model instead of a BSP-pruned one")
    pt.add_argument("--col-rate", type=float, default=4.0)
    pt.add_argument("--row-rate", type=float, default=2.0)
    pt.add_argument("--schemes", default="none",
                    help="comma list of quantization schemes to search "
                    "(none,fp16,int8,mixed); schemes change numerics")
    pt.add_argument("--mixed", action="store_true",
                    help="add the per-slot 'mixed' scheme (int8 "
                    "projections, float recurrences) to the search")
    pt.add_argument("--tiles", default=None,
                    help="comma list of BSPC panel row-block sizes to "
                    "search (e.g. 4,8,16); off by default")
    pt.add_argument("--backends", default=None,
                    help="comma list of kernel backends to search "
                    "(default: registry default only)")
    pt.add_argument("--repeats", type=int, default=3)
    pt.add_argument("--seed", type=int, default=0)
    pt.add_argument("--save", type=Path,
                    help="write the tuned plan artifact (.npz) and verify "
                    "the reload is bit-identical")
    pt.add_argument("--json", type=Path, help="write the measured trace")
    pt.set_defaults(func=_run_tune)

    pa = sub.add_parser("all", help="everything, archived to a directory")
    pa.add_argument("--out", type=Path, default=Path("results"))
    pa.add_argument("--fast", action="store_true")
    pa.set_defaults(func=_run_all)
    for sub_parser in (p1, p2, p4, ps, pst, psw, pt, pa):
        _add_kernel_backend_arg(sub_parser, top_level=False)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.kernel_backend:
        kernels.set_default_backend(
            kernels.resolve_backend(args.kernel_backend, "--kernel-backend")
        )
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
