"""Exporting experiment results to JSON and CSV.

Every harness result (:class:`Table1Result`, :class:`Table2Result`,
:class:`Figure4Result`) converts to plain rows for archival and plotting
in external tools.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.eval.figure4 import Figure4Result
from repro.eval.table1 import Table1Result
from repro.eval.table2 import Table2Result

AnyResult = Union[Table1Result, Table2Result, Figure4Result]


def result_rows(result: AnyResult) -> List[Dict[str, Any]]:
    """Flatten a harness result into a list of plain dict rows."""
    if isinstance(result, Table1Result):
        return [
            {
                "method": e.method,
                "label_rate": e.label_rate,
                "measured_rate": e.measured_rate,
                "per_baseline": e.per_baseline,
                "per_pruned": e.per_pruned,
                "degradation": e.degradation,
                "params_kept": e.params_kept,
            }
            for e in result.entries
        ]
    if isinstance(result, Table2Result):
        return [
            {
                "label_rate": e.label_rate,
                "measured_rate": e.measured_rate,
                "gop": e.gop,
                "gpu_time_us": e.gpu_time_us,
                "gpu_gops": e.gpu_gops,
                "gpu_efficiency": e.gpu_efficiency,
                "cpu_time_us": e.cpu_time_us,
                "cpu_gops": e.cpu_gops,
                "cpu_efficiency": e.cpu_efficiency,
                "engine_us": e.engine_us,
            }
            for e in result.entries
        ]
    if isinstance(result, Figure4Result):
        return [
            {
                "label_rate": p.label_rate,
                "measured_rate": p.measured_rate,
                "gpu_speedup": p.gpu_speedup,
                "cpu_speedup": p.cpu_speedup,
                "engine_speedup": p.engine_speedup,
            }
            for p in result.points
        ]
    raise TypeError(f"unsupported result type {type(result).__name__}")


def to_json(result: AnyResult, path) -> None:
    """Write a harness result to ``path`` as a JSON row list."""
    Path(path).write_text(json.dumps(result_rows(result), indent=2))


def to_csv(result: AnyResult, path) -> None:
    """Write a harness result to ``path`` as CSV."""
    rows = result_rows(result)
    if not rows:
        Path(path).write_text("")
        return
    with open(Path(path), "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)


def load_json(path) -> List[Dict[str, Any]]:
    """Read back a JSON row list written by :func:`to_json`."""
    return json.loads(Path(path).read_text())
