"""Sweep robustness benchmark: chaos + resume must change *nothing*.

Runs the reduced prune→retrain grid twice:

* a **reference** sweep, never interrupted;
* a **chaos** sweep whose every cell is crashed mid-training by a
  seeded fault plan (first pass, zero retries), then — when ``resume``
  is set — a second pass over the same state dir that resumes each cell
  from its atomic checkpoint.

``--expect-exact`` is the CI gate: for every cell the chaos-resumed run
must match the reference **bit-for-bit** on final weights (SHA-256),
the full loss curve, and the PER — and the plan published into the
registry must produce byte-identical probe logits.  Any drift exits
nonzero.

The timing side reports wall-clock per pass, so the recorded
chaos-resume overhead (crash + respawn + checkpoint reload) is visible
next to the clean sweep cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.artifact import load_plan
from repro.engine.registry import PlanRegistry
from repro.eval.report import fmt, format_table
from repro.sweep import SweepConfig, SweepResult, run_sweep
from repro.utils.rng import new_rng
from repro.utils.stats import summarize

#: The reduced 2×2 grid (rates × schemes) the CI smoke job runs.
REDUCED_RATES = ((2.0, 1.25), (4.0, 1.25))
REDUCED_SCHEMES = (None, "int8")

_PROBE_FRAMES = 16


@dataclass(frozen=True)
class SweepBenchConfig:
    """Knobs for the sweep robustness benchmark."""

    state_dir: Path
    workers: int = 2
    chaos: bool = True
    resume: bool = True
    rates: Sequence[Tuple[float, float]] = REDUCED_RATES
    schemes: Sequence[Optional[str]] = REDUCED_SCHEMES
    seed: int = 0
    hidden_size: int = 16
    num_train: int = 8
    num_test: int = 4
    dense_epochs: int = 1
    train_workers: int = 1
    cell_timeout_s: float = 600.0


@dataclass
class CellComparison:
    """Reference vs chaos-resumed outcome for one grid cell."""

    name: str
    attempts: int
    per: float
    weights_match: bool
    losses_match: bool
    per_match: bool
    probe_match: bool
    crashed: bool

    @property
    def exact(self) -> bool:
        return (
            self.weights_match
            and self.losses_match
            and self.per_match
            and self.probe_match
        )


@dataclass
class SweepBenchResult:
    config: SweepBenchConfig
    reference: SweepResult
    resumed: SweepResult
    comparisons: List[CellComparison]
    reference_s: float
    chaos_s: float
    resume_s: float
    chaos_failures: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def all_exact(self) -> bool:
        return all(c.exact for c in self.comparisons)

    @property
    def all_crashed(self) -> bool:
        return all(c.crashed for c in self.comparisons)

    def to_rows(self) -> List[Dict]:
        rows = [
            {
                "cell": c.name,
                "attempts": c.attempts,
                "per": c.per,
                "crashed": c.crashed,
                "weights_match": c.weights_match,
                "losses_match": c.losses_match,
                "per_match": c.per_match,
                "probe_match": c.probe_match,
                "exact": c.exact,
            }
            for c in self.comparisons
        ]
        rows.append(
            {
                "cell": "__timing__",
                "reference_s": self.reference_s,
                "chaos_s": self.chaos_s,
                "resume_s": self.resume_s,
                "chaos_resume_overhead": (
                    (self.chaos_s + self.resume_s) / self.reference_s
                    if self.reference_s > 0
                    else float("nan")
                ),
            }
        )
        return rows


def _probe_logits(registry: PlanRegistry, name: str, seed: int) -> np.ndarray:
    """Deterministic probe through the *published* cell plan (v2)."""
    entry = registry.resolve(name, "v2")
    plan = load_plan(entry.artifact_path)
    features = new_rng(seed).standard_normal(
        (_PROBE_FRAMES, plan.input_dim)
    )
    return plan.forward_utterance(features)


def run_sweep_bench(config: SweepBenchConfig) -> SweepBenchResult:
    state_dir = Path(config.state_dir)
    shared = dict(
        rates=tuple(config.rates),
        schemes=tuple(config.schemes),
        workers=config.workers,
        seed=config.seed,
        hidden_size=config.hidden_size,
        num_train=config.num_train,
        num_test=config.num_test,
        dense_epochs=config.dense_epochs,
        train_workers=config.train_workers,
        cell_timeout_s=config.cell_timeout_s,
    )

    start = time.perf_counter()
    reference = run_sweep(
        SweepConfig(state_dir=state_dir / "reference", **shared)
    )
    reference_s = time.perf_counter() - start

    chaos_s = resume_s = 0.0
    chaos_failures = 0
    notes: List[str] = []
    run_dir = state_dir / "run"
    if config.chaos and config.resume:
        # Pass 1: crash every cell mid-training, no retries — cells are
        # left incomplete on purpose.  Pass 2: resume from checkpoints.
        start = time.perf_counter()
        pass1 = run_sweep(
            SweepConfig(state_dir=run_dir, retry_budget=0, **shared),
            chaos=True,
            strict=False,
        )
        chaos_s = time.perf_counter() - start
        chaos_failures = len(pass1.failed)
        start = time.perf_counter()
        resumed = run_sweep(SweepConfig(state_dir=run_dir, **shared))
        resume_s = time.perf_counter() - start
    elif config.chaos:
        # Single pass: in-pass recovery via the retry budget.
        start = time.perf_counter()
        resumed = run_sweep(
            SweepConfig(state_dir=run_dir, retry_budget=1, **shared),
            chaos=True,
        )
        chaos_s = time.perf_counter() - start
        chaos_failures = sum(len(o.failures) for o in resumed.outcomes)
    else:
        start = time.perf_counter()
        resumed = run_sweep(SweepConfig(state_dir=run_dir, **shared))
        resume_s = time.perf_counter() - start
        notes.append("chaos disabled: comparing two clean runs")

    ref_registry = PlanRegistry(
        SweepConfig(state_dir=state_dir / "reference", **shared).registry_root()
    )
    run_registry = PlanRegistry(
        SweepConfig(state_dir=run_dir, **shared).registry_root()
    )
    comparisons = []
    for ref, res in zip(reference.outcomes, resumed.outcomes):
        a, b = ref.result or {}, res.result or {}
        probe_match = False
        if ref.completed and res.completed:
            probe_match = bool(
                np.array_equal(
                    _probe_logits(ref_registry, ref.cell.name, config.seed),
                    _probe_logits(run_registry, res.cell.name, config.seed),
                )
            )
        comparisons.append(
            CellComparison(
                name=ref.cell.name,
                attempts=res.attempts,
                per=b.get("per", float("nan")),
                weights_match=bool(a) and bool(b)
                and a["weights_sha256"] == b["weights_sha256"],
                losses_match=bool(a) and bool(b)
                and a["loss_curve"] == b["loss_curve"],
                per_match=bool(a) and bool(b) and a["per"] == b["per"],
                probe_match=probe_match,
                crashed=any("crash" in f for f in res.failures)
                or chaos_failures > 0,
            )
        )
    return SweepBenchResult(
        config=config,
        reference=reference,
        resumed=resumed,
        comparisons=comparisons,
        reference_s=reference_s,
        chaos_s=chaos_s,
        resume_s=resume_s,
        chaos_failures=chaos_failures,
        notes=notes,
    )


def render_sweep_bench(result: SweepBenchResult) -> str:
    rows = []
    for c in result.comparisons:
        rows.append(
            (
                c.name,
                str(c.attempts),
                fmt(c.per, 2),
                "yes" if c.crashed else "no",
                "OK" if c.weights_match else "DRIFT",
                "OK" if c.losses_match else "DRIFT",
                "OK" if c.probe_match else "DRIFT",
                "exact" if c.exact else "MISMATCH",
            )
        )
    table = format_table(
        ("cell", "tries", "PER%", "crashed", "weights", "losses", "probe", "verdict"),
        rows,
    )
    pers = summarize([c.per for c in result.comparisons])
    lines = [
        "sweep robustness bench (reference vs chaos-resumed)",
        "",
        table,
        "",
        f"PER over {pers.count} cells: mean {pers.mean:.2f}  "
        f"p50 {pers.p50:.2f}  p95 {pers.p95:.2f}",
        f"timing: reference {result.reference_s:.1f}s  "
        f"chaos {result.chaos_s:.1f}s  resume {result.resume_s:.1f}s  "
        f"({result.chaos_failures} injected failure(s))",
    ]
    lines.extend(result.notes)
    return "\n".join(lines)


__all__ = [
    "REDUCED_RATES",
    "REDUCED_SCHEMES",
    "CellComparison",
    "SweepBenchConfig",
    "SweepBenchResult",
    "render_sweep_bench",
    "run_sweep_bench",
]
