"""Streaming-serving benchmark: chunked stateful sessions vs offline.

The offline serving path (:func:`repro.engine.serve_stream`) decodes
complete utterances through length-bucketed micro-batches — maximum
throughput, but a client hears nothing until its whole utterance has
been captured *and* decoded.  The streaming path trades some throughput
for bounded latency: concurrent sessions feed fixed-size chunks into a
:class:`~repro.engine.streaming.StreamScheduler`, which fuses equal-length
chunks across sessions under a ``max_wait_frames`` deadline.

This harness runs the same synthetic utterance stream down both paths
and reports what chunking costs and buys: wall clock and sessions/sec,
the per-chunk p50/p95 submit→decode latency, the scheduler's mean fused
batch size, and the fraction of sessions whose streamed hypothesis
matches the offline decode exactly (the chunk-exactness guarantee says
all of them).

With ``workers >= 1`` the harness adds a third path: the same stream
served through a multi-process :class:`~repro.engine.fabric.ServingFabric`
(each worker loads the compiled artifact and runs its own scheduler).
``chaos=True`` arms a deterministic crash fault on worker 0 mid-run, so
the fabric row measures serving *through* a kill + restart + journal
replay — and its ``decode_match`` asserts recovery was byte-exact.

``canary=True`` adds two deployment-correctness rows on top: the
incumbent and a candidate plan are published into a throwaway
:class:`~repro.engine.registry.PlanRegistry` and the candidate is
canaried mid-run.  The *divergent* pass (candidate compiled from
different weights) must end in an automatic **rollback** with every
incumbent-routed session still decoding byte-exactly; the *clean* pass
(candidate recompiled from identical weights) must end in an automatic
**promote** that hot-swaps every live session mid-utterance with no
decode change.  Under ``chaos`` the divergent pass crashes a worker
mid-canary and the clean pass crashes a worker *on receipt of the
promote swap* — recovery has to replay sessions onto their correct
pre-/post-swap versions either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.engine import (
    ServingConfig,
    StreamConfig,
    StreamScheduler,
    compile_model,
    serve_stream,
)
from repro.errors import ConfigError
from repro.eval.report import fmt, format_table
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_dataset
from repro.utils.timing import timed_median

#: Synthetic utterances long enough to span several chunks (the default
#: SynthConfig's are mostly shorter than one 25-frame chunk).
STREAM_SYNTH = SynthConfig(min_phones=6, max_phones=18, min_duration=4, max_duration=10)


@dataclass(frozen=True)
class StreamBenchConfig:
    """Workload and measurement settings (defaults: laptop-scale GRU)."""

    num_sessions: int = 8
    chunk_frames: int = 25
    hidden_size: int = 64
    num_layers: int = 2
    max_batch_size: int = 8
    #: Lets a full batch of 8 co-arriving 25-frame chunks accumulate
    #: (7 × 25 frames of other traffic) before the deadline fires.
    max_wait_frames: int = 175
    min_duration: int = 2
    repeats: int = 3
    seed: int = 0
    scheme: Optional[str] = None
    #: 0 disables the multi-process fabric pass; >= 1 adds a fabric row
    #: served by that many supervised worker processes.
    workers: int = 0
    #: Arm a deterministic crash fault on worker 0 mid-run, so the
    #: fabric row measures recovery (restart + journal replay) too.
    chaos: bool = False
    #: Add the registry-backed canary rollout passes (divergent →
    #: rollback, clean → promote); requires ``workers >= 1``.
    canary: bool = False

    def __post_init__(self) -> None:
        if self.num_sessions < 1:
            raise ConfigError(
                f"num_sessions must be >= 1, got {self.num_sessions}"
            )
        if self.chunk_frames < 1:
            raise ConfigError(f"chunk_frames must be >= 1, got {self.chunk_frames}")
        if self.repeats < 1:
            raise ConfigError(f"repeats must be >= 1, got {self.repeats}")
        if self.workers < 0:
            raise ConfigError(f"workers must be >= 0, got {self.workers}")
        if self.chaos and self.workers < 1:
            raise ConfigError("chaos requires workers >= 1")
        if self.canary and self.workers < 1:
            raise ConfigError("canary requires workers >= 1")


@dataclass
class StreamBenchRow:
    """One measured serving path."""

    path: str
    wall_s: float
    sessions_per_s: float
    speedup: float  # vs the offline batched baseline (< 1 = chunking cost)
    decode_match: float  # fraction of sessions matching the offline decode
    p50_latency_ms: Optional[float] = None
    p95_latency_ms: Optional[float] = None
    mean_batch_size: Optional[float] = None
    # Fabric rows only: fleet supervision counters for the pass.
    restarts: Optional[int] = None
    sessions_rehomed: Optional[int] = None
    chunks_shed: Optional[int] = None
    sessions_shed: Optional[int] = None
    crashes_detected: Optional[int] = None
    stalls_detected: Optional[int] = None
    plan_swaps: Optional[int] = None
    # Canary rows only: the automatic rollout decision for the pass.
    canary_decision: Optional[str] = None
    canary_agreement: Optional[float] = None


@dataclass
class StreamBenchResult:
    """All measured rows plus the workload description."""

    rows: List[StreamBenchRow]
    num_sessions: int
    total_frames: int
    total_chunks: int

    def to_rows(self) -> List[Dict[str, Any]]:
        """Plain dict rows for JSON archival."""
        return [
            {
                "path": row.path,
                "wall_s": row.wall_s,
                "sessions_per_s": row.sessions_per_s,
                "speedup": row.speedup,
                "decode_match": row.decode_match,
                "p50_latency_ms": row.p50_latency_ms,
                "p95_latency_ms": row.p95_latency_ms,
                "mean_batch_size": row.mean_batch_size,
                "restarts": row.restarts,
                "sessions_rehomed": row.sessions_rehomed,
                "chunks_shed": row.chunks_shed,
                "sessions_shed": row.sessions_shed,
                "crashes_detected": row.crashes_detected,
                "stalls_detected": row.stalls_detected,
                "plan_swaps": row.plan_swaps,
                "canary_decision": row.canary_decision,
                "canary_agreement": row.canary_agreement,
            }
            for row in self.rows
        ]


def build_stream_workload(config: StreamBenchConfig):
    """The benchmark workload: ``(plan, features, serving_config)``.

    Shared by :func:`run_stream_bench` and the ``benchmarks/run_bench.py``
    serving suite, so the recorded ``BENCH_serving.json`` rows measure
    exactly the workload the ``stream-bench`` CLI reports on.
    """
    dataset = make_dataset(config.num_sessions, STREAM_SYNTH, seed=config.seed)
    features = [example.features for example in dataset.examples]
    plan = _build_plan(config, config.seed)
    serving = ServingConfig(min_duration=config.min_duration)
    return plan, features, serving


def _build_plan(config: StreamBenchConfig, seed: int):
    """Compile the benchmark model from ``seed`` — the canary passes use
    ``config.seed`` for a weight-identical candidate and a different seed
    for a numerically divergent one."""
    model = GRUAcousticModel(
        AcousticModelConfig(
            hidden_size=config.hidden_size, num_layers=config.num_layers
        ),
        rng=seed,
    ).eval()
    return compile_model(model, scheme=config.scheme)


def _stream_pass(plan, features, config: StreamBenchConfig):
    """One full streamed workload: round-robin chunks, then finish."""
    scheduler = StreamScheduler(
        plan,
        StreamConfig(
            max_batch_size=config.max_batch_size,
            max_wait_frames=config.max_wait_frames,
            min_duration=config.min_duration,
        ),
    )
    sids = [scheduler.open() for _ in features]
    hypotheses = {sid: [] for sid in sids}
    longest = max(len(utterance) for utterance in features)
    for start in range(0, longest, config.chunk_frames):
        for sid, utterance in zip(sids, features):
            chunk = utterance[start : start + config.chunk_frames]
            if len(chunk):
                scheduler.feed(sid, chunk)
    for sid in sids:
        hypotheses[sid].extend(scheduler.finish(sid))
    return [hypotheses[sid] for sid in sids], scheduler.stats


def _fabric_pass(artifact_path, features, config: StreamBenchConfig):
    """One full workload through the multi-process serving fabric."""
    from repro.engine.fabric import FabricConfig, FaultConfig, ServingFabric

    faults = None
    if config.chaos:
        # Deterministic kill of worker 0 mid-stream; recovery replays
        # its journaled sessions on the restarted worker.
        faults = FaultConfig(crash_after_chunks=3, target_worker=0)
    fabric_config = FabricConfig(
        num_workers=config.workers,
        stream=StreamConfig(
            max_batch_size=config.max_batch_size,
            max_wait_frames=config.max_wait_frames,
            min_duration=config.min_duration,
        ),
        backoff_base_s=0.01,
        rpc_timeout_s=60.0,
        faults=faults,
    )
    with ServingFabric(artifact_path, fabric_config) as fabric:
        sids = [fabric.open() for _ in features]
        hypotheses = {sid: [] for sid in sids}
        longest = max(len(utterance) for utterance in features)
        for start in range(0, longest, config.chunk_frames):
            for sid, utterance in zip(sids, features):
                chunk = utterance[start : start + config.chunk_frames]
                if len(chunk):
                    fabric.feed(sid, chunk, block=True)
        for sid in sids:
            hypotheses[sid].extend(fabric.finish(sid))
        fleet = fabric.stats()
    return [hypotheses[sid] for sid in sids], fleet


def _canary_pass(features, config: StreamBenchConfig, divergent: bool):
    """One registry-backed canary rollout over the benchmark workload.

    Publishes the incumbent as ``v1`` and a candidate as ``v2`` into a
    throwaway registry, serves ``v1`` through the fabric, canaries
    ``v2`` at 50% of new sessions, and lets the fabric decide.  Returns
    ``(hypotheses, incumbent_sids, fleet, report, wall_s)`` — the caller
    scores ``decode_match`` over incumbent sessions (a rolled-back
    divergent candidate's sessions legitimately decode differently).
    """
    import tempfile
    import time
    from pathlib import Path

    from repro.engine.fabric import (
        CanaryConfig,
        FabricConfig,
        FaultConfig,
        ServingFabric,
    )
    from repro.engine.registry import PlanRegistry

    incumbent = _build_plan(config, config.seed)
    candidate = _build_plan(
        config, config.seed + 1 if divergent else config.seed
    )
    faults = None
    if config.chaos:
        # Divergent pass: kill a worker mid-canary (recovery must replay
        # sessions onto their correct versions).  Clean pass: kill it on
        # receipt of the promote swap (the deployment-time crash).
        faults = (
            FaultConfig(crash_after_chunks=3, target_worker=0)
            if divergent
            else FaultConfig(crash_on_swap=True, target_worker=0)
        )
    fabric_config = FabricConfig(
        num_workers=config.workers,
        stream=StreamConfig(
            max_batch_size=config.max_batch_size,
            max_wait_frames=config.max_wait_frames,
            min_duration=config.min_duration,
        ),
        backoff_base_s=0.01,
        rpc_timeout_s=60.0,
        faults=faults,
    )
    with tempfile.TemporaryDirectory(prefix="repro-canary-bench-") as tmp:
        registry = PlanRegistry(Path(tmp) / "registry")
        v1 = registry.publish("stream-bench", incumbent)
        registry.publish("stream-bench", candidate, parent=v1.version)
        incumbent_path = str(registry.resolve("stream-bench", "v1").artifact_path)
        start = time.perf_counter()
        with ServingFabric.from_registry(
            registry, "stream-bench", "v1", fabric_config
        ) as fabric:
            fabric.start_canary(
                "v2",
                CanaryConfig(
                    fraction=0.5,
                    decide_after=max(1, config.num_sessions // 4),
                    # The candidate's first chunk pays a lazy
                    # artifact-load cold-start which dominates p95 at
                    # smoke scale; the smoke gates on decode agreement.
                    max_p95_ratio=50.0,
                ),
            )
            sids = [fabric.open() for _ in features]
            opened_on = {sid: fabric.session_version(sid) for sid in sids}
            hypotheses = {sid: [] for sid in sids}
            longest = max(len(utterance) for utterance in features)
            for chunk_start in range(0, longest, config.chunk_frames):
                for sid, utterance in zip(sids, features):
                    chunk = utterance[
                        chunk_start : chunk_start + config.chunk_frames
                    ]
                    if len(chunk):
                        fabric.feed(sid, chunk, block=True)
            for sid in sids:
                hypotheses[sid].extend(fabric.finish(sid))
            if fabric.canary_report().decision is None:
                fabric.decide_canary(force=True)
            report = fabric.canary_report()
            fleet = fabric.stats()
        wall = time.perf_counter() - start
    incumbent_sids = [
        index
        for index, sid in enumerate(sids)
        if opened_on[sid] == incumbent_path
    ]
    return [hypotheses[sid] for sid in sids], incumbent_sids, fleet, report, wall


def run_stream_bench(
    config: StreamBenchConfig = StreamBenchConfig(),
) -> StreamBenchResult:
    """Measure offline-batched vs streamed serving on one workload."""
    plan, features, serving = build_stream_workload(config)
    offline_time, (offline_hyps, _) = timed_median(
        lambda: serve_stream(plan, features, serving), config.repeats
    )
    rows = [
        StreamBenchRow(
            path="offline batched",
            wall_s=offline_time,
            sessions_per_s=config.num_sessions / offline_time,
            speedup=1.0,
            decode_match=1.0,
        )
    ]
    stream_time, (stream_hyps, stats) = timed_median(
        lambda: _stream_pass(plan, features, config), config.repeats
    )
    match = sum(
        streamed == offline
        for streamed, offline in zip(stream_hyps, offline_hyps)
    ) / len(features)
    rows.append(
        StreamBenchRow(
            path=f"streaming chunk={config.chunk_frames}",
            wall_s=stream_time,
            sessions_per_s=config.num_sessions / stream_time,
            speedup=offline_time / stream_time,
            decode_match=float(match),
            p50_latency_ms=stats.p50_latency_s * 1e3,
            p95_latency_ms=stats.p95_latency_s * 1e3,
            mean_batch_size=stats.mean_batch_size,
        )
    )
    if config.workers >= 1:
        import tempfile
        from pathlib import Path

        from repro.engine.artifact import save_plan

        with tempfile.TemporaryDirectory(prefix="repro-stream-bench-") as tmp:
            artifact = Path(tmp) / "model.plan.npz"
            save_plan(artifact, plan)
            fabric_time, (fabric_hyps, fleet) = timed_median(
                lambda: _fabric_pass(artifact, features, config),
                config.repeats,
            )
        fabric_match = sum(
            fabric == offline
            for fabric, offline in zip(fabric_hyps, offline_hyps)
        ) / len(features)
        label = f"fabric workers={config.workers}"
        if config.chaos:
            label += " +chaos"
        rows.append(
            StreamBenchRow(
                path=label,
                wall_s=fabric_time,
                sessions_per_s=config.num_sessions / fabric_time,
                speedup=offline_time / fabric_time,
                decode_match=float(fabric_match),
                p50_latency_ms=fleet.p50_latency_s * 1e3,
                p95_latency_ms=fleet.p95_latency_s * 1e3,
                mean_batch_size=fleet.mean_batch_size,
                restarts=fleet.restarts,
                sessions_rehomed=fleet.sessions_rehomed,
                chunks_shed=fleet.chunks_shed,
                sessions_shed=fleet.sessions_shed,
                crashes_detected=fleet.crashes_detected,
                stalls_detected=fleet.stalls_detected,
                plan_swaps=fleet.plan_swaps,
            )
        )
    if config.canary:
        # Correctness-gate rows (single pass each, not timed medians):
        # the asserted quantity is the automatic decision + exact decode,
        # not throughput.
        for divergent in (True, False):
            hyps, incumbent_sids, fleet, report, wall = _canary_pass(
                features, config, divergent
            )
            if divergent:
                scored = [
                    (hyps[index], offline_hyps[index])
                    for index in incumbent_sids
                ]
            else:
                scored = list(zip(hyps, offline_hyps))
            match = (
                sum(h == o for h, o in scored) / len(scored)
                if scored
                else 0.0
            )
            label = (
                f"canary {'divergent' if divergent else 'clean'} "
                f"workers={config.workers}"
            )
            if config.chaos:
                label += " +chaos"
            rows.append(
                StreamBenchRow(
                    path=label,
                    wall_s=wall,
                    sessions_per_s=config.num_sessions / wall,
                    speedup=offline_time / wall,
                    decode_match=float(match),
                    p50_latency_ms=fleet.p50_latency_s * 1e3,
                    p95_latency_ms=fleet.p95_latency_s * 1e3,
                    mean_batch_size=fleet.mean_batch_size,
                    restarts=fleet.restarts,
                    sessions_rehomed=fleet.sessions_rehomed,
                    chunks_shed=fleet.chunks_shed,
                    sessions_shed=fleet.sessions_shed,
                    crashes_detected=fleet.crashes_detected,
                    stalls_detected=fleet.stalls_detected,
                    plan_swaps=fleet.plan_swaps,
                    canary_decision=report.decision,
                    canary_agreement=report.agreement,
                )
            )
    return StreamBenchResult(
        rows=rows,
        num_sessions=config.num_sessions,
        total_frames=sum(len(utterance) for utterance in features),
        total_chunks=stats.chunks,
    )


def render_stream_bench(result: StreamBenchResult) -> str:
    """Render the measured serving paths as a table."""
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.path,
                fmt(row.wall_s * 1e3, 1),
                fmt(row.sessions_per_s, 1),
                fmt(row.speedup, 2) + "x",
                fmt(100.0 * row.decode_match, 1) + "%",
                fmt(row.p50_latency_ms, 2),
                fmt(row.p95_latency_ms, 2),
                fmt(row.mean_batch_size, 1),
                fmt(row.restarts, 0),
                fmt(row.sessions_rehomed, 0),
                fmt(row.plan_swaps, 0),
                row.canary_decision or "-",
            ]
        )
    return format_table(
        [
            "path",
            "wall ms",
            "sessions/s",
            "speedup",
            "decode match",
            "p50 ms",
            "p95 ms",
            "mean batch",
            "restarts",
            "rehomed",
            "swaps",
            "canary",
        ],
        rows,
        title=(
            f"Streaming benchmark: {result.num_sessions} concurrent sessions, "
            f"{result.total_frames} frames, {result.total_chunks} chunks"
        ),
    )
