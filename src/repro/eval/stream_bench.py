"""Streaming-serving benchmark: chunked stateful sessions vs offline.

The offline serving path (:func:`repro.engine.serve_stream`) decodes
complete utterances through length-bucketed micro-batches — maximum
throughput, but a client hears nothing until its whole utterance has
been captured *and* decoded.  The streaming path trades some throughput
for bounded latency: concurrent sessions feed fixed-size chunks into a
:class:`~repro.engine.streaming.StreamScheduler`, which fuses equal-length
chunks across sessions under a ``max_wait_frames`` deadline.

This harness runs the same synthetic utterance stream down both paths
and reports what chunking costs and buys: wall clock and sessions/sec,
the per-chunk p50/p95 submit→decode latency, the scheduler's mean fused
batch size, and the fraction of sessions whose streamed hypothesis
matches the offline decode exactly (the chunk-exactness guarantee says
all of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.engine import (
    ServingConfig,
    StreamConfig,
    StreamScheduler,
    compile_model,
    serve_stream,
)
from repro.errors import ConfigError
from repro.eval.report import fmt, format_table
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_dataset
from repro.utils.timing import timed_median

#: Synthetic utterances long enough to span several chunks (the default
#: SynthConfig's are mostly shorter than one 25-frame chunk).
STREAM_SYNTH = SynthConfig(min_phones=6, max_phones=18, min_duration=4, max_duration=10)


@dataclass(frozen=True)
class StreamBenchConfig:
    """Workload and measurement settings (defaults: laptop-scale GRU)."""

    num_sessions: int = 8
    chunk_frames: int = 25
    hidden_size: int = 64
    num_layers: int = 2
    max_batch_size: int = 8
    #: Lets a full batch of 8 co-arriving 25-frame chunks accumulate
    #: (7 × 25 frames of other traffic) before the deadline fires.
    max_wait_frames: int = 175
    min_duration: int = 2
    repeats: int = 3
    seed: int = 0
    scheme: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_sessions < 1:
            raise ConfigError(
                f"num_sessions must be >= 1, got {self.num_sessions}"
            )
        if self.chunk_frames < 1:
            raise ConfigError(f"chunk_frames must be >= 1, got {self.chunk_frames}")
        if self.repeats < 1:
            raise ConfigError(f"repeats must be >= 1, got {self.repeats}")


@dataclass
class StreamBenchRow:
    """One measured serving path."""

    path: str
    wall_s: float
    sessions_per_s: float
    speedup: float  # vs the offline batched baseline (< 1 = chunking cost)
    decode_match: float  # fraction of sessions matching the offline decode
    p50_latency_ms: Optional[float] = None
    p95_latency_ms: Optional[float] = None
    mean_batch_size: Optional[float] = None


@dataclass
class StreamBenchResult:
    """All measured rows plus the workload description."""

    rows: List[StreamBenchRow]
    num_sessions: int
    total_frames: int
    total_chunks: int

    def to_rows(self) -> List[Dict[str, Any]]:
        """Plain dict rows for JSON archival."""
        return [
            {
                "path": row.path,
                "wall_s": row.wall_s,
                "sessions_per_s": row.sessions_per_s,
                "speedup": row.speedup,
                "decode_match": row.decode_match,
                "p50_latency_ms": row.p50_latency_ms,
                "p95_latency_ms": row.p95_latency_ms,
                "mean_batch_size": row.mean_batch_size,
            }
            for row in self.rows
        ]


def build_stream_workload(config: StreamBenchConfig):
    """The benchmark workload: ``(plan, features, serving_config)``.

    Shared by :func:`run_stream_bench` and the ``benchmarks/run_bench.py``
    serving suite, so the recorded ``BENCH_serving.json`` rows measure
    exactly the workload the ``stream-bench`` CLI reports on.
    """
    dataset = make_dataset(config.num_sessions, STREAM_SYNTH, seed=config.seed)
    features = [example.features for example in dataset.examples]
    model = GRUAcousticModel(
        AcousticModelConfig(
            hidden_size=config.hidden_size, num_layers=config.num_layers
        ),
        rng=config.seed,
    ).eval()
    plan = compile_model(model, scheme=config.scheme)
    serving = ServingConfig(min_duration=config.min_duration)
    return plan, features, serving


def _stream_pass(plan, features, config: StreamBenchConfig):
    """One full streamed workload: round-robin chunks, then finish."""
    scheduler = StreamScheduler(
        plan,
        StreamConfig(
            max_batch_size=config.max_batch_size,
            max_wait_frames=config.max_wait_frames,
            min_duration=config.min_duration,
        ),
    )
    sids = [scheduler.open() for _ in features]
    hypotheses = {sid: [] for sid in sids}
    longest = max(len(utterance) for utterance in features)
    for start in range(0, longest, config.chunk_frames):
        for sid, utterance in zip(sids, features):
            chunk = utterance[start : start + config.chunk_frames]
            if len(chunk):
                scheduler.feed(sid, chunk)
    for sid in sids:
        hypotheses[sid].extend(scheduler.finish(sid))
    return [hypotheses[sid] for sid in sids], scheduler.stats


def run_stream_bench(
    config: StreamBenchConfig = StreamBenchConfig(),
) -> StreamBenchResult:
    """Measure offline-batched vs streamed serving on one workload."""
    plan, features, serving = build_stream_workload(config)
    offline_time, (offline_hyps, _) = timed_median(
        lambda: serve_stream(plan, features, serving), config.repeats
    )
    rows = [
        StreamBenchRow(
            path="offline batched",
            wall_s=offline_time,
            sessions_per_s=config.num_sessions / offline_time,
            speedup=1.0,
            decode_match=1.0,
        )
    ]
    stream_time, (stream_hyps, stats) = timed_median(
        lambda: _stream_pass(plan, features, config), config.repeats
    )
    match = sum(
        streamed == offline
        for streamed, offline in zip(stream_hyps, offline_hyps)
    ) / len(features)
    rows.append(
        StreamBenchRow(
            path=f"streaming chunk={config.chunk_frames}",
            wall_s=stream_time,
            sessions_per_s=config.num_sessions / stream_time,
            speedup=offline_time / stream_time,
            decode_match=float(match),
            p50_latency_ms=stats.p50_latency_s * 1e3,
            p95_latency_ms=stats.p95_latency_s * 1e3,
            mean_batch_size=stats.mean_batch_size,
        )
    )
    return StreamBenchResult(
        rows=rows,
        num_sessions=config.num_sessions,
        total_frames=sum(len(utterance) for utterance in features),
        total_chunks=stats.chunks,
    )


def render_stream_bench(result: StreamBenchResult) -> str:
    """Render the measured serving paths as a table."""
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.path,
                fmt(row.wall_s * 1e3, 1),
                fmt(row.sessions_per_s, 1),
                fmt(row.speedup, 2) + "x",
                fmt(100.0 * row.decode_match, 1) + "%",
                fmt(row.p50_latency_ms, 2),
                fmt(row.p95_latency_ms, 2),
                fmt(row.mean_batch_size, 1),
            ]
        )
    return format_table(
        [
            "path",
            "wall ms",
            "sessions/s",
            "speedup",
            "decode match",
            "p50 ms",
            "p95 ms",
            "mean batch",
        ],
        rows,
        title=(
            f"Streaming benchmark: {result.num_sessions} concurrent sessions, "
            f"{result.total_frames} frames, {result.total_chunks} chunks"
        ),
    )
