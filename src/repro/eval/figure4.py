"""Figure 4 reproduction: speedup over dense baselines vs. compression rate.

The paper's Figure 4 plots GPU and CPU inference speedup (relative to the
*dense* model on the same device) as compression grows, showing rising
curves that plateau once overhead dominates (around ~250×).  The series is
derived from the Table II sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.eval.paper_data import figure4_paper_speedups
from repro.eval.report import fmt, format_table
from repro.eval.table2 import Table2Config, Table2Result, run_table2


@dataclass
class Figure4Point:
    """One point of the speedup curves.

    ``engine_speedup`` is the *measured host* speedup of the compiled
    engine plan over its dense baseline, present when the underlying
    Table II sweep ran with ``engine=True``.
    """

    label_rate: float
    measured_rate: float
    gpu_speedup: float
    cpu_speedup: float
    engine_speedup: Optional[float] = None


@dataclass
class Figure4Result:
    """The two speedup series."""

    points: List[Figure4Point] = field(default_factory=list)

    def gpu_series(self) -> List[float]:
        return [p.gpu_speedup for p in self.points]

    def cpu_series(self) -> List[float]:
        return [p.cpu_speedup for p in self.points]

    def plateau_ratio(self) -> float:
        """Last-point GPU speedup over the mid-sweep speedup.

        A value near 1 confirms the paper's observation that speedup
        saturates once compression passes ~250×.
        """
        gpu = self.gpu_series()
        if len(gpu) < 3:
            return 1.0
        mid = gpu[len(gpu) // 2]
        return gpu[-1] / mid if mid else 1.0


def figure4_from_table2(result: Table2Result) -> Figure4Result:
    """Convert a Table II sweep into Figure 4 speedup series."""
    dense = result.dense
    figure = Figure4Result()
    for entry in result.entries:
        engine_speedup = (
            dense.engine_us / entry.engine_us
            if dense.engine_us and entry.engine_us
            else None
        )
        figure.points.append(
            Figure4Point(
                label_rate=entry.label_rate,
                measured_rate=entry.measured_rate,
                gpu_speedup=dense.gpu_time_us / entry.gpu_time_us,
                cpu_speedup=dense.cpu_time_us / entry.cpu_time_us,
                engine_speedup=engine_speedup,
            )
        )
    return figure


def run_figure4(
    config: Table2Config = Table2Config(), engine: bool = False
) -> Figure4Result:
    """Run the sweep and derive the speedup curves (``engine=True`` adds
    the measured host-engine curve)."""
    return figure4_from_table2(run_table2(config, engine=engine))


def render_figure4(figure: Figure4Result) -> str:
    """Render measured vs. paper speedups, plus an ASCII curve."""
    paper = {rate: (g, c) for rate, g, c in figure4_paper_speedups()}
    with_engine = any(p.engine_speedup is not None for p in figure.points)
    rows = []
    max_speedup = max(p.gpu_speedup for p in figure.points) or 1.0
    for point in figure.points:
        paper_gpu, paper_cpu = paper.get(point.label_rate, (None, None))
        bar = "#" * max(1, int(round(30 * point.gpu_speedup / max_speedup)))
        row = [
            fmt(point.label_rate, 0) + "x",
            fmt(point.gpu_speedup, 1),
            fmt(paper_gpu, 1),
            fmt(point.cpu_speedup, 1),
            fmt(paper_cpu, 1),
        ]
        if with_engine:
            row.append(fmt(point.engine_speedup, 1))
        row.append(bar)
        rows.append(row)
    headers = ["rate", "GPU speedup", "paper", "CPU speedup", "paper"]
    if with_engine:
        headers.append("host speedup")
    headers.append("GPU curve")
    return format_table(
        headers,
        rows,
        title="Figure 4 reproduction: speedup vs. compression rate",
    )
