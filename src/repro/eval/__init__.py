"""Experiment harnesses regenerating the paper's tables and figures."""

from repro.eval.export import load_json, result_rows, to_csv, to_json
from repro.eval.figure4 import (
    Figure4Point,
    Figure4Result,
    figure4_from_table2,
    render_figure4,
    run_figure4,
)
from repro.eval.paper_data import (
    BSP_SWEEP,
    ESE_LATENCY_US,
    TABLE1,
    TABLE2,
    Table1Row,
    Table2Row,
    figure4_paper_speedups,
)
from repro.eval.report import fmt, format_table
from repro.utils.stats import Summary, percentile, summarize
from repro.eval.table1 import (
    Table1Config,
    Table1Entry,
    Table1Result,
    render_table1,
    run_table1,
    run_table1_dense,
)
from repro.eval.table2 import (
    Table2Config,
    Table2Entry,
    Table2Result,
    paper_scale_weights,
    render_table2,
    run_table2,
    sweep_point,
)

__all__ = [
    "TABLE1",
    "TABLE2",
    "BSP_SWEEP",
    "ESE_LATENCY_US",
    "Table1Row",
    "Table2Row",
    "figure4_paper_speedups",
    "Table1Config",
    "Table1Entry",
    "Table1Result",
    "run_table1",
    "run_table1_dense",
    "render_table1",
    "Table2Config",
    "Table2Entry",
    "Table2Result",
    "run_table2",
    "render_table2",
    "sweep_point",
    "paper_scale_weights",
    "Figure4Point",
    "Figure4Result",
    "run_figure4",
    "figure4_from_table2",
    "render_figure4",
    "format_table",
    "fmt",
    "Summary",
    "percentile",
    "summarize",
    "to_json",
    "to_csv",
    "result_rows",
    "load_json",
]
