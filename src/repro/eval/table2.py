"""Table II reproduction: latency, GOP/s, and energy on mobile GPU/CPU.

For each BSP configuration of the paper's sweep, paper-scale GRU weight
matrices are BSP-projected, compiled through the full pass pipeline
(reorder + load elimination + BSPC), and simulated on the calibrated
Adreno 640 and Kryo 485 profiles; energy efficiency is normalized against
the ESE FPGA reference exactly as the paper does.

Latency depends only on the sparsity *pattern*, not the trained values, so
the sweep projects random-initialized paper-scale weights instead of
retraining 9.6M-weight models — the masks have the same structure BSP
training would produce (see ``bsp_project_masks``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.codegen import CompileOptions
from repro.compiler.ir import TileConfig
from repro.compiler.pipeline import compile_for_simulation
from repro.eval.paper_data import BSP_SWEEP, TABLE2, Table2Row
from repro.eval.report import fmt, format_table
from repro.hw.device import DeviceSpec
from repro.hw.profiles import ADRENO_640, KRYO_485
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.pruning.metrics import FRAMES_PER_INFERENCE
from repro.utils.rng import new_rng
from repro.utils.timing import timed_median


@dataclass(frozen=True)
class Table2Config:
    """Model geometry and sweep settings.

    Defaults are the paper-scale GRU: 2 layers × hidden 1024, ~10M GRU
    weights (the paper reports 9.6M overall).
    """

    hidden_size: int = 1024
    input_dim: int = 240
    num_layers: int = 2
    num_row_strips: int = 8
    num_col_blocks: int = 8
    timesteps: int = FRAMES_PER_INFERENCE
    seed: int = 0
    sweep: Sequence[Tuple[float, float, float]] = tuple(BSP_SWEEP)


@dataclass
class Table2Entry:
    """One measured row (mirrors :class:`~repro.eval.paper_data.Table2Row`).

    ``engine_us`` is the optional *measured host* latency of the point —
    the pruned weights compiled through :func:`repro.engine.compile_rnn`
    and actually executed — alongside the simulated mobile numbers.
    """

    label_rate: float
    measured_rate: float
    gop: float
    gpu_time_us: float
    gpu_gops: float
    gpu_efficiency: float
    cpu_time_us: float
    cpu_gops: float
    cpu_efficiency: float
    engine_us: Optional[float] = None


@dataclass
class Table2Result:
    """Full sweep outcome."""

    entries: List[Table2Entry] = field(default_factory=list)

    @property
    def dense(self) -> Table2Entry:
        return self.entries[0]


def paper_scale_weights(config: Table2Config = Table2Config()) -> Dict[str, np.ndarray]:
    """Random paper-scale GRU weight matrices (pattern source for the sweep)."""
    rng = new_rng(config.seed)
    h, d = config.hidden_size, config.input_dim
    weights: Dict[str, np.ndarray] = {}
    for layer in range(config.num_layers):
        in_size = d if layer == 0 else h
        weights[f"gru.cell{layer}.weight_ih"] = rng.standard_normal((3 * h, in_size))
        weights[f"gru.cell{layer}.weight_hh"] = rng.standard_normal((3 * h, h))
    return weights


def prune_sweep_point(
    weights: Dict[str, np.ndarray],
    col_rate: float,
    row_rate: float,
    config: Table2Config,
) -> Dict[str, np.ndarray]:
    """BSP-project the weights for one compression configuration."""
    if col_rate <= 1.0 and row_rate <= 1.0:
        return weights
    masks = bsp_project_masks(
        weights,
        BSPConfig(
            col_rate=col_rate,
            row_rate=row_rate,
            num_row_strips=config.num_row_strips,
            num_col_blocks=config.num_col_blocks,
        ),
    )
    return {
        name: masks[name].apply_to_array(array) for name, array in weights.items()
    }


def measure_engine_latency(
    pruned: Dict[str, np.ndarray], config: Table2Config, repeats: int = 3
) -> float:
    """Host wall-clock (µs) of one ``timesteps``-frame inference over the
    pruned weights, compiled through :func:`repro.engine.compile_rnn`.

    Sparse points pack as BSPC/CSR (``sparse_format="auto"``), so the
    measurement reflects how much of the simulated speedup the compiled
    plan realizes on the host CPU.
    """
    from repro.engine import EngineConfig, compile_rnn

    plan = compile_rnn(
        pruned,
        config=EngineConfig(
            sparse_format="auto",
            num_row_strips=config.num_row_strips,
            num_col_blocks=config.num_col_blocks,
        ),
    )
    rng = new_rng(config.seed + 1)
    features = rng.standard_normal((config.timesteps, 1, config.input_dim))
    median_s, _ = timed_median(lambda: plan.forward_batch(features), repeats)
    return median_s * 1e6


def sweep_point(
    weights: Dict[str, np.ndarray],
    col_rate: float,
    row_rate: float,
    config: Table2Config,
    gpu: DeviceSpec = ADRENO_640,
    cpu: DeviceSpec = KRYO_485,
    pruned: Optional[Dict[str, np.ndarray]] = None,
) -> Tuple[float, float, float, float, float, float, float, float]:
    """Project, compile, and simulate one compression configuration.

    Returns ``(measured_rate, gop, gpu_us, gpu_gops, gpu_eff, cpu_us,
    cpu_gops, cpu_eff)``.  Pass ``pruned`` to reuse an already projected
    weight dict (:func:`prune_sweep_point`).
    """
    if pruned is None:
        pruned = prune_sweep_point(weights, col_rate, row_rate, config)
    base = dict(
        enable_reorder=True,
        enable_load_elimination=True,
        num_row_strips=config.num_row_strips,
        num_col_blocks=config.num_col_blocks,
    )
    gpu_model = compile_for_simulation(
        pruned,
        CompileOptions(tile=TileConfig(use_fp16=True), **base),
        timesteps=config.timesteps,
    )
    cpu_model = compile_for_simulation(
        pruned,
        CompileOptions(tile=TileConfig(use_fp16=False), **base),
        timesteps=config.timesteps,
    )
    gpu_sim = gpu_model.simulate(gpu)
    cpu_sim = cpu_model.simulate(cpu)
    gpu_energy = gpu_model.energy(gpu)
    cpu_energy = cpu_model.energy(cpu)
    return (
        gpu_model.compression_rate,
        gpu_model.gop_per_frame,
        gpu_sim.latency_us,
        gpu_sim.gops,
        gpu_energy.normalized_efficiency,
        cpu_sim.latency_us,
        cpu_sim.gops,
        cpu_energy.normalized_efficiency,
    )


def run_table2(config: Table2Config = Table2Config(), engine: bool = False) -> Table2Result:
    """Execute the full Table II sweep.

    With ``engine=True`` each point is additionally compiled through the
    numeric engine and timed on the host (``engine_us`` on every entry).
    """
    weights = paper_scale_weights(config)
    result = Table2Result()
    for col_rate, row_rate, label in config.sweep:
        pruned = prune_sweep_point(weights, col_rate, row_rate, config)
        (
            measured,
            gop,
            gpu_us,
            gpu_gops,
            gpu_eff,
            cpu_us,
            cpu_gops,
            cpu_eff,
        ) = sweep_point(weights, col_rate, row_rate, config, pruned=pruned)
        result.entries.append(
            Table2Entry(
                label_rate=label,
                measured_rate=measured,
                gop=gop,
                gpu_time_us=gpu_us,
                gpu_gops=gpu_gops,
                gpu_efficiency=gpu_eff,
                cpu_time_us=cpu_us,
                cpu_gops=cpu_gops,
                cpu_efficiency=cpu_eff,
                engine_us=measure_engine_latency(pruned, config) if engine else None,
            )
        )
    return result


def paper_row_for(label_rate: float) -> Table2Row:
    """The paper's Table II row with the given compression label."""
    for row in TABLE2:
        if row.compression == label_rate:
            return row
    raise KeyError(f"no paper row labelled {label_rate}x")


def render_table2(result: Table2Result) -> str:
    """Render measured vs. paper values side by side.

    When the sweep ran with ``engine=True``, two extra columns report the
    measured host latency of the compiled plan and its speedup over the
    dense host baseline.
    """
    with_engine = any(entry.engine_us is not None for entry in result.entries)
    dense_engine = result.dense.engine_us if with_engine else None
    rows = []
    for entry in result.entries:
        try:
            paper = paper_row_for(entry.label_rate)
            paper_gpu, paper_cpu = paper.gpu_time_us, paper.cpu_time_us
            paper_eff = paper.gpu_efficiency
        except KeyError:
            paper_gpu = paper_cpu = paper_eff = None
        row = [
            fmt(entry.label_rate, 0) + "x",
            fmt(entry.measured_rate, 1) + "x",
            fmt(entry.gop, 4),
            fmt(entry.gpu_time_us, 1),
            fmt(paper_gpu, 1),
            fmt(entry.gpu_gops, 1),
            fmt(entry.gpu_efficiency, 2),
            fmt(paper_eff, 2),
            fmt(entry.cpu_time_us, 1),
            fmt(paper_cpu, 1),
            fmt(entry.cpu_efficiency, 2),
        ]
        if with_engine:
            speedup = (
                dense_engine / entry.engine_us
                if dense_engine and entry.engine_us
                else None
            )
            row.append(fmt(entry.engine_us, 0))
            row.append(fmt(speedup, 1) + ("x" if speedup is not None else ""))
        rows.append(row)
    headers = [
        "rate",
        "measured",
        "GOP",
        "GPU us",
        "paper",
        "GPU GOP/s",
        "GPU eff",
        "paper",
        "CPU us",
        "paper",
        "CPU eff",
    ]
    if with_engine:
        headers += ["host us", "host spdup"]
    return format_table(
        headers,
        rows,
        title="Table II reproduction: mobile latency / throughput / energy",
    )
