"""Serving benchmark: eager per-utterance decoding vs the compiled engine.

Measures what the engine subsystem buys end to end on the synthetic
corpus: the baseline decodes each utterance alone through the eval-mode
``Module`` tree (the strongest pre-engine path — fused kernels, batch 1),
and the engine rows run the same stream through a compiled
:class:`~repro.engine.plan.ModelPlan` behind the length-bucketed
micro-batcher, one row per quantization scheme.  Besides wall clock the
rows record decode agreement with the eager path (1.0 for the
packing-only plan — bit-exact logits decode identically), the packed
weight footprint, and the batcher's padding overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.engine import ServingConfig, compile_model, serve_stream
from repro.errors import ConfigError
from repro.eval.report import fmt, format_table
from repro.nn.tensor import Tensor
from repro.speech.decoder import decode_utterance
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_dataset
from repro.utils.timing import timed_median


@dataclass(frozen=True)
class ServeBenchConfig:
    """Workload and measurement settings (defaults: laptop-scale GRU)."""

    num_utterances: int = 64
    hidden_size: int = 64
    num_layers: int = 2
    max_batch_size: int = 16
    bucket_width: int = 25
    min_duration: int = 2
    repeats: int = 3
    seed: int = 0
    schemes: Sequence[Optional[str]] = (None, "fp16", "int8")

    def __post_init__(self) -> None:
        if self.num_utterances < 1:
            raise ConfigError(
                f"num_utterances must be >= 1, got {self.num_utterances}"
            )
        if self.repeats < 1:
            raise ConfigError(f"repeats must be >= 1, got {self.repeats}")


@dataclass
class ServeBenchRow:
    """One measured serving path."""

    path: str
    wall_s: float
    utterances_per_s: float
    speedup: float  # vs the eager per-utterance baseline
    decode_match: float  # fraction of utterances decoding identically to eager
    weight_bytes: Optional[int] = None
    mean_batch_size: Optional[float] = None
    padding_overhead: Optional[float] = None


@dataclass
class ServeBenchResult:
    """All measured rows plus the workload description."""

    rows: List[ServeBenchRow]
    num_utterances: int
    total_frames: int

    def to_rows(self) -> List[Dict[str, Any]]:
        """Plain dict rows for JSON archival."""
        return [
            {
                "path": row.path,
                "wall_s": row.wall_s,
                "utterances_per_s": row.utterances_per_s,
                "speedup": row.speedup,
                "decode_match": row.decode_match,
                "weight_bytes": row.weight_bytes,
                "mean_batch_size": row.mean_batch_size,
                "padding_overhead": row.padding_overhead,
            }
            for row in self.rows
        ]


def run_serve_bench(config: ServeBenchConfig = ServeBenchConfig()) -> ServeBenchResult:
    """Measure every serving path on one synthetic utterance stream."""
    dataset = make_dataset(config.num_utterances, SynthConfig(), seed=config.seed)
    features = [example.features for example in dataset.examples]
    model = GRUAcousticModel(
        AcousticModelConfig(
            hidden_size=config.hidden_size, num_layers=config.num_layers
        ),
        rng=config.seed,
    ).eval()

    def eager_pass() -> List[List[int]]:
        return [
            decode_utterance(
                model(Tensor(utterance[:, None, :])).data[:, 0],
                config.min_duration,
            )
            for utterance in features
        ]

    eager_time, eager_hyps = timed_median(eager_pass, config.repeats)
    eager_bytes = sum(p.data.nbytes for p in model.parameters())
    rows = [
        ServeBenchRow(
            path="eager per-utterance",
            wall_s=eager_time,
            utterances_per_s=config.num_utterances / eager_time,
            speedup=1.0,
            decode_match=1.0,
            weight_bytes=eager_bytes,
        )
    ]
    serving = ServingConfig(
        max_batch_size=config.max_batch_size,
        bucket_width=config.bucket_width,
        min_duration=config.min_duration,
    )
    for scheme in config.schemes:
        plan = compile_model(model, scheme=scheme)
        run = lambda: serve_stream(plan, features, serving)  # noqa: E731
        wall, (hypotheses, stats) = timed_median(run, config.repeats)
        match = float(
            np.mean([hyp == ref for hyp, ref in zip(hypotheses, eager_hyps)])
        )
        rows.append(
            ServeBenchRow(
                path=f"engine[{scheme or 'packed'}]",
                wall_s=wall,
                utterances_per_s=config.num_utterances / wall,
                speedup=eager_time / wall,
                decode_match=match,
                weight_bytes=plan.nbytes(),
                mean_batch_size=stats.mean_batch_size,
                padding_overhead=stats.padding_overhead,
            )
        )
    return ServeBenchResult(
        rows=rows,
        num_utterances=config.num_utterances,
        total_frames=sum(len(utterance) for utterance in features),
    )


def render_serve_bench(result: ServeBenchResult) -> str:
    """Render the measured serving paths as a table."""
    rows = []
    for row in result.rows:
        rows.append(
            [
                row.path,
                fmt(row.wall_s * 1e3, 1),
                fmt(row.utterances_per_s, 1),
                fmt(row.speedup, 2) + "x",
                fmt(100.0 * row.decode_match, 1) + "%",
                fmt(None if row.weight_bytes is None else row.weight_bytes / 1024, 1),
                fmt(row.mean_batch_size, 1),
                fmt(
                    None
                    if row.padding_overhead is None
                    else 100.0 * row.padding_overhead,
                    1,
                ),
            ]
        )
    return format_table(
        [
            "path",
            "wall ms",
            "utt/s",
            "speedup",
            "decode match",
            "weights KiB",
            "mean batch",
            "padding %",
        ],
        rows,
        title=(
            f"Serving benchmark: {result.num_utterances} utterances, "
            f"{result.total_frames} frames"
        ),
    )
