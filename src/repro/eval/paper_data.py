"""The paper's published numbers (Tables I, II; Figure 4 is derived).

Stored verbatim so every benchmark can print paper-vs-measured rows and
EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I (compression vs. accuracy on TIMIT GRU)."""

    method: str
    per_baseline: Optional[float]  # % PER of the dense model
    per_pruned: Optional[float]  # % PER after compression
    per_degradation: float  # per_pruned - per_baseline
    col_rate: Optional[float]  # BSP column target ('–' for other methods)
    row_rate: Optional[float]  # BSP row target
    params_millions: float  # surviving parameters
    overall_rate: float  # reported overall compression


#: Table I of the paper, in row order.
TABLE1: List[Table1Row] = [
    Table1Row("ESE", 20.40, 20.70, 0.30, None, None, 0.37, 8.0),
    Table1Row("C-LSTM", 24.15, 24.57, 0.42, None, None, 0.41, 8.0),
    Table1Row("C-LSTM", 24.15, 25.48, 1.33, None, None, 0.20, 16.0),
    Table1Row("BBS", 23.50, 23.75, 0.25, None, None, 0.41, 8.0),
    Table1Row("Wang", None, 0.91, 0.91, None, None, 0.81, 4.0),
    Table1Row("E-RNN", 20.02, 20.20, 0.18, None, None, 1.20, 8.0),
    Table1Row("BSP", 18.80, 18.80, 0.00, 1.0, 1.0, 9.60, 1.0),
    Table1Row("BSP", 18.80, 18.80, 0.00, 10.0, 1.0, 0.96, 10.0),
    Table1Row("BSP", 18.80, 19.40, 0.60, 16.0, 1.25, 0.48, 19.0),
    Table1Row("BSP", 18.80, 19.60, 0.80, 16.0, 2.0, 0.33, 29.0),
    Table1Row("BSP", 18.80, 20.60, 1.80, 16.0, 5.0, 0.22, 43.0),
    Table1Row("BSP", 18.80, 21.50, 2.70, 20.0, 8.0, 0.12, 80.0),
    Table1Row("BSP", 18.80, 23.20, 4.40, 16.0, 16.0, 0.09, 103.0),
    Table1Row("BSP", 18.80, 24.20, 5.40, 20.0, 10.0, 0.06, 153.0),
    Table1Row("BSP", 18.80, 24.20, 5.40, 20.0, 16.0, 0.04, 245.0),
    Table1Row("BSP", 18.80, 25.50, 6.70, 20.0, 20.0, 0.03, 301.0),
]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II (latency / throughput / energy on mobile)."""

    compression: float
    gop: float
    gpu_time_us: float
    gpu_gops: float
    gpu_efficiency: float  # normalized vs ESE
    cpu_time_us: float
    cpu_gops: float
    cpu_efficiency: float


#: Table II of the paper, in row order.
TABLE2: List[Table2Row] = [
    Table2Row(1.0, 0.5800, 3590.12, 161.55, 0.88, 7130.00, 81.35, 0.25),
    Table2Row(10.0, 0.0580, 495.26, 117.11, 6.35, 1210.20, 47.93, 1.48),
    Table2Row(19.0, 0.0330, 304.11, 108.51, 10.35, 709.33, 46.52, 2.52),
    Table2Row(29.0, 0.0207, 233.89, 88.29, 13.45, 464.73, 44.43, 3.85),
    Table2Row(43.0, 0.0143, 186.05, 76.86, 16.91, 344.77, 41.48, 5.19),
    Table2Row(80.0, 0.0080, 130.00, 61.54, 24.20, 218.01, 36.70, 8.20),
    Table2Row(103.0, 0.0060, 109.76, 54.66, 28.67, 202.72, 29.59, 8.82),
    Table2Row(153.0, 0.0039, 97.11, 40.16, 32.40, 170.74, 22.84, 10.47),
    Table2Row(245.0, 0.0028, 81.64, 34.30, 38.54, 151.28, 18.51, 11.82),
    Table2Row(301.0, 0.0020, 79.13, 25.27, 39.76, 145.93, 13.71, 12.25),
]

#: The BSP (column, row) compression targets of Tables I/II, with the
#: overall rate label the paper assigns to each configuration.
BSP_SWEEP: List[Tuple[float, float, float]] = [
    (1.0, 1.0, 1.0),
    (10.0, 1.0, 10.0),
    (16.0, 1.25, 19.0),
    (16.0, 2.0, 29.0),
    (16.0, 5.0, 43.0),
    (20.0, 8.0, 80.0),
    (16.0, 16.0, 103.0),
    (20.0, 10.0, 153.0),
    (20.0, 16.0, 245.0),
    (20.0, 20.0, 301.0),
]

#: ESE reference latency the paper quotes when claiming latency parity.
ESE_LATENCY_US: float = 82.7


def figure4_paper_speedups() -> List[Tuple[float, float, float]]:
    """Figure 4's series derived from Table II: (rate, gpu_speedup, cpu_speedup)."""
    dense = TABLE2[0]
    return [
        (row.compression, dense.gpu_time_us / row.gpu_time_us, dense.cpu_time_us / row.cpu_time_us)
        for row in TABLE2
    ]
