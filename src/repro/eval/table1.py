"""Table I reproduction: compression rate vs. phone error rate.

Protocol (mirroring Section V-B):

1. train one dense GRU acoustic model on the synthetic corpus,
2. for each BSP ``(column, row)`` target of the paper's sweep, restart from
   the dense weights and run the full BSP schedule (ADMM → harden →
   retrain, twice),
3. for each comparison method (magnitude/ESE-style, BBS, block-circulant/
   C-LSTM-style, whole-row structured), do the same at its Table I rate,
4. report PER degradation and surviving parameters per entry.

Scale note: the paper's model is a 9.6M-weight GRU trained for hours on
TIMIT; the default :class:`Table1Config` is laptop-scale (documented in
EXPERIMENTS.md) and the *shape* of the PER-vs-rate curve is the
reproduction target, not absolute PER.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.paper_data import BSP_SWEEP, TABLE1
from repro.eval.report import fmt, format_table
from repro.pruning.bank_balanced import BBSConfig, BBSPruner
from repro.pruning.block_circulant import BlockCirculantCompressor, BlockCirculantConfig
from repro.pruning.bsp import BSPConfig, BSPPruner
from repro.pruning.magnitude import MagnitudeConfig, MagnitudePruner
from repro.pruning.structured import StructuredConfig, StructuredPruner
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.speech.synth import SynthConfig, make_corpus
from repro.speech.trainer import Trainer, TrainerConfig


@dataclass(frozen=True)
class Table1Config:
    """Scale and schedule of the accuracy sweep."""

    hidden_size: int = 96
    num_layers: int = 2
    num_train: int = 96
    num_test: int = 24
    noise_level: float = 0.55
    dense_epochs: int = 8
    admm_epochs: int = 4
    retrain_epochs: int = 3
    num_row_strips: int = 4
    num_col_blocks: int = 4
    learning_rate: float = 3e-3
    batch_size: int = 4
    seed: int = 0
    bsp_sweep: Sequence[Tuple[float, float, float]] = tuple(BSP_SWEEP)
    baseline_rate: float = 8.0  # rate at which comparison methods run
    include_baselines: bool = True

    @staticmethod
    def fast() -> "Table1Config":
        """A ~1-minute configuration: default scale, endpoint sweep only.

        Uses the same model/corpus scale as the full sweep (whose accuracy
        behaviour is calibrated — see EXPERIMENTS.md) but only three sweep
        points and no baseline methods.
        """
        return Table1Config(
            bsp_sweep=((1.0, 1.0, 1.0), (10.0, 1.0, 10.0), (16.0, 16.0, 103.0)),
            include_baselines=False,
        )


@dataclass
class Table1Entry:
    """One measured row."""

    method: str
    label_rate: float  # the paper's headline rate for this configuration
    measured_rate: float
    per_baseline: float
    per_pruned: float
    params_kept: int

    @property
    def degradation(self) -> float:
        return self.per_pruned - self.per_baseline


@dataclass
class Table1Result:
    """Full sweep outcome."""

    dense_per: float
    entries: List[Table1Entry] = field(default_factory=list)

    def bsp_entries(self) -> List[Table1Entry]:
        return [e for e in self.entries if e.method == "BSP"]


def _fresh_trainer(
    config: Table1Config, state: Optional[Dict] = None
) -> Trainer:
    """Build a model/trainer; optionally restore dense-trained weights."""
    train_set, test_set = make_corpus(
        config.num_train,
        config.num_test,
        SynthConfig(noise_level=config.noise_level),
        seed=config.seed,
    )
    model = GRUAcousticModel(
        AcousticModelConfig(
            hidden_size=config.hidden_size, num_layers=config.num_layers
        ),
        rng=config.seed,
    )
    if state is not None:
        model.load_state_dict(state)
    return Trainer(
        model,
        train_set,
        test_set,
        TrainerConfig(
            learning_rate=config.learning_rate,
            batch_size=config.batch_size,
            seed=config.seed,
        ),
    )


def run_table1(config: Table1Config = Table1Config()) -> Table1Result:
    """Execute the sweep and return measured entries."""
    trainer = run_table1_dense(config)
    dense_state = copy.deepcopy(trainer.model.state_dict())
    dense_per = trainer.evaluate().per
    result = Table1Result(dense_per=dense_per)

    for col_rate, row_rate, label in config.bsp_sweep:
        entry = _run_bsp_point(config, dense_state, dense_per, col_rate, row_rate, label)
        result.entries.append(entry)

    if config.include_baselines:
        for method_name in (
            "magnitude", "bbs", "circulant", "ernn", "row-structured",
        ):
            result.entries.append(
                _run_baseline_point(config, dense_state, dense_per, method_name)
            )
    return result


def run_table1_dense(config: Table1Config = Table1Config()) -> Trainer:
    """Train the shared dense baseline and return its trainer."""
    trainer = _fresh_trainer(config)
    trainer.train_dense(config.dense_epochs)
    return trainer


def _run_bsp_point(
    config: Table1Config,
    dense_state: Dict,
    dense_per: float,
    col_rate: float,
    row_rate: float,
    label: float,
) -> Table1Entry:
    trainer = _fresh_trainer(config, dense_state)
    prunable = trainer.model.prunable_parameters()
    if col_rate <= 1.0 and row_rate <= 1.0:
        # The 1x row: the dense model itself.
        return Table1Entry(
            method="BSP",
            label_rate=1.0,
            measured_rate=1.0,
            per_baseline=dense_per,
            per_pruned=dense_per,
            params_kept=sum(p.size for p in prunable.values()),
        )
    pruner = BSPPruner(
        prunable,
        BSPConfig(
            col_rate=col_rate,
            row_rate=row_rate,
            num_row_strips=config.num_row_strips,
            num_col_blocks=config.num_col_blocks,
            step1_admm_epochs=config.admm_epochs,
            step1_retrain_epochs=config.retrain_epochs,
            step2_admm_epochs=config.admm_epochs if row_rate > 1.0 else 0,
            step2_retrain_epochs=config.retrain_epochs if row_rate > 1.0 else 0,
        ),
    )
    trainer.run_pruning(pruner)
    per = trainer.evaluate().per
    masks = pruner.masks
    return Table1Entry(
        method="BSP",
        label_rate=label,
        measured_rate=masks.compression_rate(),
        per_baseline=dense_per,
        per_pruned=per,
        params_kept=masks.total_nnz(),
    )


def _run_baseline_point(
    config: Table1Config, dense_state: Dict, dense_per: float, method_name: str
) -> Table1Entry:
    trainer = _fresh_trainer(config, dense_state)
    prunable = trainer.model.prunable_parameters()
    rate = config.baseline_rate
    if method_name == "magnitude":
        method = MagnitudePruner(
            prunable,
            MagnitudeConfig(rate=rate, num_stages=config.admm_epochs,
                            retrain_epochs=config.retrain_epochs),
        )
        display = "ESE-style magnitude"
    elif method_name == "bbs":
        method = BBSPruner(
            prunable,
            BBSConfig(rate=rate, bank_size=16, num_stages=config.admm_epochs,
                      retrain_epochs=config.retrain_epochs),
        )
        display = "BBS"
    elif method_name == "circulant":
        block = max(2, int(round(rate)))
        method = BlockCirculantCompressor(
            prunable,
            BlockCirculantConfig(
                block_size=block,
                train_epochs=config.admm_epochs + config.retrain_epochs,
            ),
        )
        display = "C-LSTM-style circulant"
    elif method_name == "ernn":
        from repro.pruning.ernn import ERNNCompressor, ERNNConfig

        block = max(2, int(round(rate)))
        method = ERNNCompressor(
            prunable,
            ERNNConfig(block_size=block, admm_epochs=config.admm_epochs,
                       retrain_epochs=config.retrain_epochs),
        )
        display = "E-RNN-style ADMM circulant"
    elif method_name == "row-structured":
        method = StructuredPruner(
            prunable,
            StructuredConfig(rate=rate, axis="row", admm_epochs=config.admm_epochs,
                             retrain_epochs=config.retrain_epochs),
        )
        display = "Row-structured"
    else:
        raise ValueError(f"unknown baseline {method_name!r}")
    trainer.run_pruning(method)
    per = trainer.evaluate().per
    measured = method.compression_rate()
    masks = method.masks
    kept = masks.total_nnz() if masks is not None else 0
    return Table1Entry(
        method=display,
        label_rate=rate,
        measured_rate=measured,
        per_baseline=dense_per,
        per_pruned=per,
        params_kept=kept,
    )


def render_table1(result: Table1Result) -> str:
    """Render measured entries next to the paper's BSP rows."""
    paper_by_rate = {
        row.overall_rate: row for row in TABLE1 if row.method == "BSP"
    }
    rows = []
    for entry in result.entries:
        paper = paper_by_rate.get(entry.label_rate) if entry.method == "BSP" else None
        rows.append(
            [
                entry.method,
                fmt(entry.label_rate, 0) + "x",
                fmt(entry.measured_rate, 1) + "x",
                fmt(entry.per_baseline, 2),
                fmt(entry.per_pruned, 2),
                fmt(entry.degradation, 2),
                entry.params_kept,
                fmt(paper.per_degradation, 2) if paper else "–",
            ]
        )
    return format_table(
        [
            "method",
            "rate(label)",
            "rate(measured)",
            "PER dense",
            "PER pruned",
            "degrad",
            "params kept",
            "paper degrad",
        ],
        rows,
        title="Table I reproduction: compression vs. accuracy (synthetic TIMIT)",
    )
