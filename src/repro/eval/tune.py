"""Measured auto-tuning harness behind ``python -m repro tune``.

Builds a (optionally BSP-pruned) GRU acoustic model, calls
:func:`repro.compiler.autotune.tune_plan` with a synthetic calibration
batch, renders the measured trace, and optionally saves the winning
plan as a compiled artifact — verifying the save → load → run round
trip reproduces bit-identical logits before reporting success.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compiler.autotune import (
    PlanTuningResult,
    default_tile_candidates,
    tune_plan,
)
from repro.eval.report import format_table
from repro.pruning.bsp import BSPConfig, bsp_project_masks
from repro.speech.model import AcousticModelConfig, GRUAcousticModel
from repro.utils.rng import new_rng


@dataclass(frozen=True)
class TuneConfig:
    """Model/workload scale and search space for the tuning run."""

    hidden_size: int = 64
    num_layers: int = 2
    input_dim: int = 40
    seq_len: int = 100
    batch: int = 16
    prune: bool = True
    col_rate: float = 4.0
    row_rate: float = 2.0
    schemes: Tuple[Optional[str], ...] = (None,)
    backends: Tuple[Optional[str], ...] = (None,)
    tiles: Tuple[int, ...] = ()  # BSPC row_block candidates; () skips stage 4
    repeats: int = 3
    seed: int = 0


def build_tune_workload(config: TuneConfig):
    """The model (pruned when asked) and calibration batch to tune on."""
    model = GRUAcousticModel(
        AcousticModelConfig(
            input_dim=config.input_dim,
            hidden_size=config.hidden_size,
            num_layers=config.num_layers,
        ),
        rng=config.seed,
    ).eval()
    if config.prune:
        masks = bsp_project_masks(
            model.prunable_weights(),
            BSPConfig(
                col_rate=config.col_rate,
                row_rate=config.row_rate,
                num_row_strips=4,
                num_col_blocks=4,
            ),
        )
        for name, param in model.prunable_parameters().items():
            param.data[...] = masks[name].apply_to_array(param.data)
    sample = new_rng(config.seed + 1).standard_normal(
        (config.seq_len, config.batch, config.input_dim)
    )
    return model, sample


@dataclass
class TuneOutcome:
    """One tuning run: the result plus the workload it ran on."""

    config: TuneConfig
    result: PlanTuningResult

    def to_rows(self) -> List[Dict]:
        rows = []
        for cand in self.result.trace:
            rows.append(
                {
                    "label": cand.label,
                    "scheme": cand.scheme or "none",
                    "backend": cand.backend or "default",
                    "formats": cand.describe_formats(),
                    "row_block": cand.row_block,
                    "measured_ms": cand.measured_s * 1e3,
                    "vs_default": self.result.baseline_s / cand.measured_s,
                    "best": cand is self.result.best,
                }
            )
        return rows


def run_tune(config: TuneConfig) -> TuneOutcome:
    model, sample = build_tune_workload(config)
    result = tune_plan(
        model,
        sample,
        schemes=config.schemes,
        backends=config.backends,
        tiles=default_tile_candidates(config.tiles) if config.tiles else None,
        repeats=config.repeats,
    )
    return TuneOutcome(config=config, result=result)


def render_tune(outcome: TuneOutcome) -> str:
    config, result = outcome.config, outcome.result
    workload = (
        f"BSP {config.col_rate * config.row_rate:.0f}x pruned"
        if config.prune
        else "dense"
    )
    header = (
        f"measured autotune: H={config.hidden_size} L={config.num_layers} "
        f"calib T={config.seq_len} B={config.batch} ({workload}), "
        f"{result.num_evaluated} candidates measured"
    )
    rows = [
        (
            ("*" if row["best"] else " ") + row["label"],
            row["scheme"],
            row["backend"],
            row["formats"],
            str(row["row_block"]) if row["row_block"] else "-",
            f"{row['measured_ms']:.2f}",
            f"{row['vs_default']:.2f}x",
        )
        for row in outcome.to_rows()
    ]
    table = format_table(
        ["candidate", "scheme", "backend", "formats", "rb", "ms", "vs default"],
        rows,
    )
    footer = (
        f"tuned plan: {result.best.describe_formats()} — "
        f"{result.speedup:.2f}x the default-config engine on this batch"
    )
    return "\n".join([header, "", table, "", footer])


def save_and_verify(outcome: TuneOutcome, path: Path) -> bool:
    """Save the tuned plan, reload it, and check bit-identical logits."""
    from repro import engine

    engine.save_plan(path, outcome.result.plan)
    reloaded = engine.load_plan(path)
    _, sample = build_tune_workload(outcome.config)
    return bool(
        np.array_equal(
            outcome.result.plan.forward_batch(sample),
            reloaded.forward_batch(sample),
        )
    )
