"""Execution plans: do the indexing work once, execute dense ops after.

This mirrors the paper's compiler philosophy — BSPC exists so the mobile
kernels never chase per-nonzero indices at run time.  The same idea applied
to our own numpy execution: a plan walks the sparse structure *once*,
packs it into contiguous arrays with precomputed gather/scatter index
vectors, and every subsequent ``spmv``/``spmm`` is a handful of vectorized
numpy ops.

Plans are cached on the matrix object (``matrix._kernel_plan``) and
invalidated automatically when a structural field is reassigned (the
matrices' ``__setattr__`` drops the cache).  Mutating a stored array
*in place* cannot be observed; call ``matrix.invalidate_plan()`` after
doing so.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

PLAN_ATTR = "_kernel_plan"
INT8_PLAN_ATTR = "_int8_kernel_plan"
_PLAN_ATTRS = (PLAN_ATTR, INT8_PLAN_ATTR)


class PlanCacheMixin:
    """Plan caching for matrix classes: subclasses set ``_STRUCTURAL_FIELDS``.

    Reassigning any structural field drops the cached plans (float and
    int8); in-place mutation of a stored array is invisible — call
    :meth:`invalidate_plan` afterwards.
    """

    _STRUCTURAL_FIELDS: frozenset = frozenset()

    def __setattr__(self, name: str, value) -> None:
        if name in self._STRUCTURAL_FIELDS:
            for attr in _PLAN_ATTRS:
                self.__dict__.pop(attr, None)
        super().__setattr__(name, value)

    def invalidate_plan(self) -> None:
        """Drop the cached execution plans (call after in-place mutation)."""
        for attr in _PLAN_ATTRS:
            self.__dict__.pop(attr, None)


# ---------------------------------------------------------------------------
# CSR
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CSRPlan:
    """Segment layout for ``np.add.reduceat`` over ``row_ptr``.

    ``reduceat`` cannot express empty segments, so the plan records the
    nonempty rows and their segment starts; empty rows simply keep the
    zero the output buffer starts with.
    """

    shape: Tuple[int, int]
    nonempty_rows: np.ndarray  # rows with >= 1 stored value
    segment_starts: np.ndarray  # row_ptr[nonempty_rows], strictly increasing


def build_csr_plan(matrix) -> CSRPlan:
    """Precompute the reduceat segmentation of a :class:`CSRMatrix`."""
    nonempty = np.flatnonzero(np.diff(matrix.row_ptr))
    return CSRPlan(
        shape=matrix.shape,
        nonempty_rows=nonempty,
        segment_starts=matrix.row_ptr[nonempty],
    )


# ---------------------------------------------------------------------------
# BSPC
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BSPCPlan:
    """All block panels packed into one batched-GEMM operand.

    Per surviving strip the plan horizontally concatenates the block
    panels and their kept-column indices, then pads every strip to the
    common ``(max_rows, max_cols)`` so the whole matrix multiplies as a
    single ``(strips, max_rows, max_cols)`` batched matmul:

    * padded *columns* gather ``x[0]``, which the kernels zero out via
      ``pad_cols`` before the GEMM (zeroing, rather than relying on the
      zero panel entry, keeps a non-finite ``x[0]`` from turning
      ``0 * inf`` into NaN for whole strips);
    * padded *rows* scatter into a sink slot one past the real output
      (``scatter_rows == rows``) that is dropped before returning.

    ``scatter_unique`` records whether every real output row appears at
    most once in ``scatter_rows`` (always true for strips produced by
    ``BSPCMatrix.from_dense``); when true the scatter is a plain fancy
    ``+=``, otherwise the kernel falls back to ``np.add.at``.
    """

    shape: Tuple[int, int]
    panels: np.ndarray  # (strips, max_rows, max_cols) float64, zero padded
    gather_cols: np.ndarray  # (strips, max_cols) int64 indices into x
    pad_cols: Optional[np.ndarray]  # (strips, max_cols) bool; None if no padding
    scatter_rows: np.ndarray  # (strips, max_rows) int64; padding == shape[0]
    scatter_unique: bool

    @property
    def flat_rows(self) -> np.ndarray:
        return self.scatter_rows.reshape(-1)


def _collect_strips(matrix) -> list:
    """Gather ``(kept_rows, cols, panel)`` per surviving strip."""
    packed = []
    for strip in matrix.strips:
        if not strip.kept_rows.size:
            continue
        col_parts = [b.kept_cols for b in strip.blocks if b.kept_cols.size]
        if not col_parts:
            continue
        cols = np.concatenate(col_parts)
        panel = np.concatenate(
            [b.panel for b in strip.blocks if b.kept_cols.size], axis=1
        )
        packed.append((strip.kept_rows, cols, panel))
    return packed


def _finalize_bspc_plan(packed: list, shape: Tuple[int, int]) -> BSPCPlan:
    """Pad packed panels to a common shape and build the plan arrays."""
    rows = shape[0]
    if not packed:
        empty_i = np.zeros((0, 0), dtype=np.int64)
        return BSPCPlan(
            shape=shape,
            panels=np.zeros((0, 0, 0)),
            gather_cols=empty_i,
            pad_cols=None,
            scatter_rows=empty_i,
            scatter_unique=True,
        )

    num = len(packed)
    max_rows = max(kept.size for kept, _, _ in packed)
    max_cols = max(cols.size for _, cols, _ in packed)
    panels = np.zeros((num, max_rows, max_cols))
    gather_cols = np.zeros((num, max_cols), dtype=np.int64)
    pad_cols = np.ones((num, max_cols), dtype=bool)
    scatter_rows = np.full((num, max_rows), rows, dtype=np.int64)
    for i, (kept, cols, panel) in enumerate(packed):
        panels[i, : kept.size, : cols.size] = panel
        gather_cols[i, : cols.size] = cols
        pad_cols[i, : cols.size] = False
        scatter_rows[i, : kept.size] = kept

    real = scatter_rows[scatter_rows < rows]
    unique = bool(real.size == 0 or np.bincount(real, minlength=rows).max() <= 1)
    return BSPCPlan(
        shape=shape,
        panels=panels,
        gather_cols=gather_cols,
        pad_cols=pad_cols if pad_cols.any() else None,
        scatter_rows=scatter_rows,
        scatter_unique=unique,
    )


def build_bspc_plan(matrix) -> BSPCPlan:
    """Pack a :class:`BSPCMatrix`'s panels into a :class:`BSPCPlan`."""
    return _finalize_bspc_plan(_collect_strips(matrix), matrix.grid.shape)


def pack_bspc_plan(matrix, rows_per_block: int) -> BSPCPlan:
    """Pack ``matrix`` with strips split into row-blocked sub-panels.

    The real host knob behind :class:`~repro.compiler.ir.TileConfig`'s
    ``row_block``: each surviving strip's kept rows are split into
    sub-panels of at most ``rows_per_block`` rows (each keeping the full
    strip column set), trading batched-GEMM operand shape against padding
    waste — the measured counterpart of the simulator's
    ``rows_per_thread`` tile axis.

    Row splitting never changes *which* columns a row reduces over, so
    every real output row is the same dot product as in the unblocked
    plan: bitwise identical for the int8 kernels (integer accumulation
    over the same operand sequence, and the per-strip scale is a max over
    the same values plus zero padding), and within reduction-order
    tolerance for float.

    The plan is installed into the matrix's float-plan cache (dropping
    any cached int8 plan so it re-derives from the blocked base) and
    returned.  ``rows_per_block == 0`` restores whole-strip packing.
    """
    if rows_per_block < 0:
        raise ValueError(f"rows_per_block must be >= 0, got {rows_per_block}")
    packed = _collect_strips(matrix)
    if rows_per_block:
        blocked = []
        for kept, cols, panel in packed:
            for start in range(0, kept.size, rows_per_block):
                stop = start + rows_per_block
                blocked.append((kept[start:stop], cols, panel[start:stop]))
        packed = blocked
    plan = _finalize_bspc_plan(packed, matrix.grid.shape)
    matrix.__dict__.pop(INT8_PLAN_ATTR, None)
    setattr(matrix, PLAN_ATTR, plan)
    return plan


# ---------------------------------------------------------------------------
# Cache access
# ---------------------------------------------------------------------------
def csr_plan(matrix) -> CSRPlan:
    """Cached :class:`CSRPlan` for ``matrix`` (built on first use)."""
    plan = getattr(matrix, PLAN_ATTR, None)
    if plan is None:
        plan = build_csr_plan(matrix)
        setattr(matrix, PLAN_ATTR, plan)
    return plan


def bspc_plan(matrix) -> BSPCPlan:
    """Cached :class:`BSPCPlan` for ``matrix`` (built on first use)."""
    plan = getattr(matrix, PLAN_ATTR, None)
    if plan is None:
        plan = build_bspc_plan(matrix)
        setattr(matrix, PLAN_ATTR, plan)
    return plan
