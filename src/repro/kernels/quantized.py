"""Int8 kernels: quantized operands, integer accumulation, one dequant.

The paper's deployment story is that compressed weights are cheap to
*move*; this module makes them cheap to *compute with* as well.  Weights
are stored as symmetric int8 codes plus one per-tensor scale, activations
are quantized on the fly — per call for the ``spmv`` paths, per column /
per row (one scale per frame) for the batched ``spmm`` /
``linear_int8_rowwise`` paths, which makes each frame's result
independent of the rest of the batch (the streaming engine's
chunk-exactness rests on this) — and every kernel accumulates products
in integer arithmetic, dequantizing exactly once, at the very end.  That
turns the float64 gather/multiply/reduce pipelines of the numpy backend
into 1-byte gathers and 4-byte accumulations, so int8 is measurably
faster than float on the memory-bound sparse ops, not just smaller.

Accumulation is exact: the ``reduceat`` paths use int32 (a row of 1024
products of magnitude ``127 * 127`` stays far below ``2**31``), and the
GEMM paths run float32 BLAS over integer-valued operands, which is
lossless while partial sums stay below ``2**24`` — guaranteed by chunking
the inner dimension at :data:`F32_EXACT_INNER`.  The ``reference``
implementations accumulate in int64 and must agree *exactly* with the
``numpy`` ones (see ``tests/test_kernels_equivalence.py``).

Like the float plans, int8 plans are cached on the matrix object (under
``matrix._int8_kernel_plan``) and dropped by the same invalidation rules
(:class:`~repro.kernels.plans.PlanCacheMixin`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.kernels.plans import BSPCPlan, INT8_PLAN_ATTR, bspc_plan, csr_plan
from repro.kernels.registry import registry

#: Largest inner dimension for which int8 products accumulate exactly in a
#: single float32 GEMM (``127 * 127 * k < 2**24``); wider reductions are
#: chunked and the partial sums combined in float64 (exact below ``2**53``).
F32_EXACT_INNER = 1024


def int8_codes_axis(array: np.ndarray, axis: int) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric int8 quantization with one scale per slice along ``axis``.

    Returns ``(codes, scales)`` where ``scales`` keeps the reduced axis as
    a broadcastable length-1 dimension and all-zero slices get scale 1.0
    (their codes are all zero either way).  Because each slice is
    quantized independently of its neighbours, results are invariant to
    how the orthogonal dimension is chunked — the property the streaming
    engine's chunk-exactness guarantee rests on: quantizing activations
    per *frame* makes the int8 projection of frame ``t`` independent of
    which other frames share the call.
    """
    array = np.asarray(array, dtype=np.float64)
    if array.size == 0:
        shape = list(array.shape)
        shape[axis] = 1
        return np.zeros(array.shape, dtype=np.int8), np.ones(shape)
    peak = np.max(np.abs(array), axis=axis, keepdims=True)
    scales = np.where(peak > 0.0, peak / 127.0, 1.0)
    codes = np.clip(np.round(array / scales), -127, 127).astype(np.int8)
    return codes, scales


def int8_codes(array: np.ndarray) -> Tuple[np.ndarray, float]:
    """Symmetric per-tensor int8 quantization.

    Returns ``(codes, scale)`` with ``codes`` in ``[-127, 127]`` (int8;
    -128 unused for symmetry) and ``value ≈ codes * scale``.  This is the
    single quantization primitive of the library —
    :func:`repro.nn.quantize.quantize_int8` delegates here, so weights
    quantized for simulation and weights packed for the int8 kernels
    always share the same codes.
    """
    array = np.asarray(array, dtype=np.float64)
    peak = float(np.max(np.abs(array))) if array.size else 0.0
    if peak == 0.0:
        return np.zeros(array.shape, dtype=np.int8), 1.0
    scale = peak / 127.0
    codes = np.clip(np.round(array / scale), -127, 127).astype(np.int8)
    return codes, scale


# ---------------------------------------------------------------------------
# Int8 plans (cached alongside the float plans)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Int8CSRPlan:
    """CSR values as int8 codes plus the float plan's segment layout.

    ``gather_scratch``/``product_scratch`` are preallocated per-nnz work
    buffers the numpy kernel reuses across calls (their *contents* are
    scratch; the plan itself stays immutable).  Products are exact in
    int16 (``127 * 127 < 2**15``) and row sums accumulate in int32.
    """

    shape: Tuple[int, int]
    codes: np.ndarray  # (nnz,) int8
    scale: float
    nonempty_rows: np.ndarray
    segment_starts: np.ndarray
    gather_scratch: np.ndarray  # (nnz,) int8
    product_scratch: np.ndarray  # (nnz,) int16


@dataclass(frozen=True)
class Int8BSPCPlan:
    """BSPC panels as int8 codes plus a GEMM-ready float copy.

    ``codes_f`` holds the same integer values in the float dtype the
    batched GEMM runs in: float32 when a strip's inner extent fits
    :data:`F32_EXACT_INNER` (the common case), float64 otherwise — either
    way the accumulation is exact integer arithmetic.
    """

    base: BSPCPlan
    codes: np.ndarray  # (strips, max_rows, max_cols) int8, zero padded
    codes_f: np.ndarray  # same values, float32/float64 for the GEMM
    scale: float


def build_int8_csr_plan(matrix) -> Int8CSRPlan:
    """Quantize a :class:`CSRMatrix`'s values onto its cached float plan."""
    base = csr_plan(matrix)
    codes, scale = int8_codes(matrix.values)
    return Int8CSRPlan(
        shape=base.shape,
        codes=codes,
        scale=scale,
        nonempty_rows=base.nonempty_rows,
        segment_starts=base.segment_starts,
        gather_scratch=np.empty(codes.shape, dtype=np.int8),
        product_scratch=np.empty(codes.shape, dtype=np.int16),
    )


def build_int8_bspc_plan(matrix) -> Int8BSPCPlan:
    """Quantize a :class:`BSPCMatrix`'s packed panels (padding stays 0)."""
    base = bspc_plan(matrix)
    codes, scale = int8_codes(base.panels)
    gemm_dtype = (
        np.float32 if base.panels.shape[-1] <= F32_EXACT_INNER else np.float64
    )
    return Int8BSPCPlan(
        base=base, codes=codes, codes_f=codes.astype(gemm_dtype), scale=scale
    )


def int8_csr_plan(matrix) -> Int8CSRPlan:
    """Cached :class:`Int8CSRPlan` for ``matrix`` (built on first use)."""
    plan = getattr(matrix, INT8_PLAN_ATTR, None)
    if plan is None:
        plan = build_int8_csr_plan(matrix)
        setattr(matrix, INT8_PLAN_ATTR, plan)
    return plan


def int8_bspc_plan(matrix) -> Int8BSPCPlan:
    """Cached :class:`Int8BSPCPlan` for ``matrix`` (built on first use)."""
    plan = getattr(matrix, INT8_PLAN_ATTR, None)
    if plan is None:
        plan = build_int8_bspc_plan(matrix)
        setattr(matrix, INT8_PLAN_ATTR, plan)
    return plan


# ---------------------------------------------------------------------------
# CSR — numpy backend
# ---------------------------------------------------------------------------
@registry.register("csr_spmv_int8", "numpy")
def csr_spmv_int8(matrix, x: np.ndarray) -> np.ndarray:
    """Int8 row-segment sums: 1-byte gather, int16 products, int32 sums.

    Every array the hot loop touches is 1-8x smaller than the float64
    path's, which is where the speedup comes from — the gather reads a
    1-byte table, the product vector is int16 into a reused scratch
    buffer, and ``reduceat`` accumulates in int32.  One dequant at the
    end maps the exact integer result back to float.
    """
    plan = int8_csr_plan(matrix)
    out = np.zeros(matrix.shape[0])
    if plan.nonempty_rows.size:
        xq, xs = int8_codes(x)
        np.take(xq, matrix.col_indices, out=plan.gather_scratch)
        np.multiply(
            plan.codes, plan.gather_scratch,
            out=plan.product_scratch, dtype=np.int16,
        )
        out[plan.nonempty_rows] = np.add.reduceat(
            plan.product_scratch, plan.segment_starts, dtype=np.int32
        )
        out *= plan.scale * xs
    return out


@registry.register("csr_spmm_int8", "numpy")
def csr_spmm_int8(matrix, x: np.ndarray) -> np.ndarray:
    """Batched :func:`csr_spmv_int8` with **per-column** activation scales:
    each input column is quantized independently (one scale per column),
    then runs the 1-D int16/int32 reduceat fast path.  Per-column scaling
    makes every output column independent of which other columns share
    the call — the chunk-invariance the streaming engine relies on — and
    is at least as accurate as one scale across the whole batch."""
    plan = int8_csr_plan(matrix)
    out = np.zeros((matrix.shape[0], x.shape[1]))
    if plan.nonempty_rows.size:
        xq, xs = int8_codes_axis(x, axis=0)
        for j in range(x.shape[1]):
            np.take(xq[:, j], matrix.col_indices, out=plan.gather_scratch)
            np.multiply(
                plan.codes, plan.gather_scratch,
                out=plan.product_scratch, dtype=np.int16,
            )
            out[plan.nonempty_rows, j] = np.add.reduceat(
                plan.product_scratch, plan.segment_starts, dtype=np.int32
            )
        out *= plan.scale
        out *= xs
    return out


# ---------------------------------------------------------------------------
# BSPC — numpy backend
# ---------------------------------------------------------------------------
@registry.register("bspc_spmv_int8", "numpy")
def bspc_spmv_int8(matrix, x: np.ndarray) -> np.ndarray:
    """Int8 gather → exact-integer batched GEMM → scatter → one dequant.

    Padded panel entries quantize to code 0, so the padding gather of
    ``x[0]`` contributes nothing — no masking needed (and integer codes
    cannot be non-finite).
    """
    plan = int8_bspc_plan(matrix)
    base = plan.base
    rows = base.shape[0]
    out = np.zeros(rows + 1)
    if base.panels.size:
        xq, xs = int8_codes(x)
        gathered = xq[base.gather_cols].astype(plan.codes_f.dtype)
        partial = np.matmul(plan.codes_f, gathered[:, :, None])[:, :, 0]
        if base.scatter_unique:
            out[base.flat_rows] += partial.reshape(-1)
        else:
            np.add.at(out, base.flat_rows, partial.reshape(-1))
        out *= plan.scale * xs
    return out[:rows]


@registry.register("bspc_spmm_int8", "numpy")
def bspc_spmm_int8(matrix, x: np.ndarray) -> np.ndarray:
    """Batched :func:`bspc_spmv_int8` over the columns of ``x``, with
    **per-column** activation scales (column results are independent of
    the rest of the batch; see :func:`csr_spmm_int8`)."""
    plan = int8_bspc_plan(matrix)
    base = plan.base
    rows = base.shape[0]
    batch = x.shape[1]
    out = np.zeros((rows + 1, batch))
    if base.panels.size:
        xq, xs = int8_codes_axis(x, axis=0)
        gathered = xq[base.gather_cols].astype(plan.codes_f.dtype)
        partial = np.matmul(plan.codes_f, gathered)
        if base.scatter_unique:
            out[base.flat_rows] += partial.reshape(-1, batch)
        else:
            np.add.at(out, base.flat_rows, partial.reshape(-1, batch))
        out *= plan.scale
        out *= xs
    return out[:rows]


# ---------------------------------------------------------------------------
# Dense input projection — numpy backend
# ---------------------------------------------------------------------------
@registry.register("linear_int8", "numpy")
def linear_int8(codes: np.ndarray, scale: float, x: np.ndarray) -> np.ndarray:
    """Dense ``x @ codes.T * scales`` with integer accumulation.

    ``x`` is ``(N, K)`` float, ``codes`` the ``(M, K)`` int8 weight codes
    — or a float32 copy holding the same integer values (compiled plans
    pre-cast once so repeated calls skip the conversion).  Activations
    are quantized per call; the GEMM runs in float32 (exact for inner
    chunks of :data:`F32_EXACT_INNER`, partial sums combined in float64)
    and the single dequant maps the integer result back to float.
    """
    codes = np.asarray(codes)
    weights = codes if codes.dtype == np.float32 else codes.astype(np.float32)
    xq, xs = int8_codes(x)
    xqf = xq.astype(np.float32)
    k = weights.shape[1]
    if k <= F32_EXACT_INNER:
        acc = (xqf @ weights.T).astype(np.float64)
    else:
        acc = np.zeros((xqf.shape[0], weights.shape[0]))
        for start in range(0, k, F32_EXACT_INNER):
            chunk = slice(start, start + F32_EXACT_INNER)
            acc += xqf[:, chunk] @ weights[:, chunk].T
    return acc * (scale * xs)


def _int_gemm(xqf: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Exact integer-valued ``xqf @ weights.T`` in float32 BLAS.

    Because every operand is an integer of magnitude ≤ 127 and partial
    sums stay below 2²⁴ per :data:`F32_EXACT_INNER` chunk, the result is
    exact integer arithmetic — and therefore independent of BLAS
    reduction order, tile shape, or how many rows share the call.
    """
    k = weights.shape[1]
    if k <= F32_EXACT_INNER:
        return (xqf @ weights.T).astype(np.float64)
    acc = np.zeros((xqf.shape[0], weights.shape[0]))
    for start in range(0, k, F32_EXACT_INNER):
        chunk = slice(start, start + F32_EXACT_INNER)
        acc += xqf[:, chunk] @ weights[:, chunk].T
    return acc


@registry.register("linear_int8_rowwise", "numpy")
def linear_int8_rowwise(codes: np.ndarray, scale: float, x: np.ndarray) -> np.ndarray:
    """Dense int8 projection with **per-row** activation scales.

    Same integer pipeline as :func:`linear_int8`, but each row of ``x``
    (one frame) is quantized with its own scale, so row ``i`` of the
    result depends only on ``x[i]`` — bit-identical whether the frame is
    projected alone, inside a chunk, or inside the whole utterance.  This
    is the op the compiled engine uses for quantized projections, making
    int8 plans bitwise chunk-exact under streaming execution.
    """
    codes = np.asarray(codes)
    weights = codes if codes.dtype == np.float32 else codes.astype(np.float32)
    xq, xs = int8_codes_axis(x, axis=1)
    acc = _int_gemm(xq.astype(np.float32), weights)
    acc *= scale
    acc *= xs
    return acc


# ---------------------------------------------------------------------------
# Reference backend — plan-free int64 accumulation, exact ground truth
# ---------------------------------------------------------------------------
@registry.register("csr_spmv_int8", "reference")
def csr_spmv_int8_ref(matrix, x: np.ndarray) -> np.ndarray:
    """Row-by-row int64 dot products over freshly quantized operands."""
    codes, scale = int8_codes(matrix.values)
    xq, xs = int8_codes(x)
    acc = np.zeros(matrix.shape[0], dtype=np.int64)
    for r in range(matrix.shape[0]):
        start, stop = matrix.row_ptr[r], matrix.row_ptr[r + 1]
        acc[r] = codes[start:stop].astype(np.int64) @ xq[
            matrix.col_indices[start:stop]
        ].astype(np.int64)
    return acc.astype(np.float64) * (scale * xs)


@registry.register("csr_spmm_int8", "reference")
def csr_spmm_int8_ref(matrix, x: np.ndarray) -> np.ndarray:
    """Row-by-row int64 accumulation with per-column activation scales."""
    codes, scale = int8_codes(matrix.values)
    xq, xs = int8_codes_axis(x, axis=0)
    acc = np.zeros((matrix.shape[0], x.shape[1]), dtype=np.int64)
    for r in range(matrix.shape[0]):
        start, stop = matrix.row_ptr[r], matrix.row_ptr[r + 1]
        acc[r] = codes[start:stop].astype(np.int64) @ xq[
            matrix.col_indices[start:stop], :
        ].astype(np.int64)
    # Same two-step dequant as the numpy backend (float rounding must
    # agree bit-for-bit between backends).
    out = acc.astype(np.float64)
    out *= scale
    out *= xs
    return out


def _bspc_panel_scale(matrix) -> float:
    """The per-tensor scale over all stored panel values (0-padding free)."""
    peak = 0.0
    for strip in matrix.strips:
        for block in strip.blocks:
            if block.panel.size:
                peak = max(peak, float(np.max(np.abs(block.panel))))
    return peak / 127.0 if peak else 1.0


@registry.register("bspc_spmv_int8", "reference")
def bspc_spmv_int8_ref(matrix, x: np.ndarray) -> np.ndarray:
    """Strip/block loops with int64 accumulation and a single dequant."""
    scale = _bspc_panel_scale(matrix)
    xq, xs = int8_codes(x)
    acc = np.zeros(matrix.grid.rows, dtype=np.int64)
    for strip in matrix.strips:
        if not strip.kept_rows.size:
            continue
        strip_acc = np.zeros(len(strip.kept_rows), dtype=np.int64)
        for block in strip.blocks:
            if block.kept_cols.size:
                codes = np.clip(np.round(block.panel / scale), -127, 127)
                strip_acc += codes.astype(np.int64) @ xq[block.kept_cols].astype(
                    np.int64
                )
        acc[strip.kept_rows] += strip_acc
    return acc.astype(np.float64) * (scale * xs)


@registry.register("bspc_spmm_int8", "reference")
def bspc_spmm_int8_ref(matrix, x: np.ndarray) -> np.ndarray:
    """Batched variant of :func:`bspc_spmv_int8_ref` with per-column
    activation scales (matching the numpy backend exactly)."""
    scale = _bspc_panel_scale(matrix)
    xq, xs = int8_codes_axis(x, axis=0)
    acc = np.zeros((matrix.grid.rows, x.shape[1]), dtype=np.int64)
    for strip in matrix.strips:
        if not strip.kept_rows.size:
            continue
        strip_acc = np.zeros((len(strip.kept_rows), x.shape[1]), dtype=np.int64)
        for block in strip.blocks:
            if block.kept_cols.size:
                codes = np.clip(np.round(block.panel / scale), -127, 127)
                strip_acc += codes.astype(np.int64) @ xq[
                    block.kept_cols, :
                ].astype(np.int64)
        acc[strip.kept_rows] += strip_acc
    out = acc.astype(np.float64)
    out *= scale
    out *= xs
    return out


@registry.register("linear_int8", "reference")
def linear_int8_ref(codes: np.ndarray, scale: float, x: np.ndarray) -> np.ndarray:
    """One int64 matmul over the full codes — slow, exact ground truth."""
    codes64 = np.asarray(codes).astype(np.int64)
    xq, xs = int8_codes(x)
    acc = xq.astype(np.int64) @ codes64.T
    return acc.astype(np.float64) * (scale * xs)


@registry.register("linear_int8_rowwise", "reference")
def linear_int8_rowwise_ref(
    codes: np.ndarray, scale: float, x: np.ndarray
) -> np.ndarray:
    """Int64 matmul with per-row activation scales — exact ground truth."""
    codes64 = np.asarray(codes).astype(np.int64)
    xq, xs = int8_codes_axis(x, axis=1)
    acc = (xq.astype(np.int64) @ codes64.T).astype(np.float64)
    acc *= scale
    acc *= xs
    return acc
