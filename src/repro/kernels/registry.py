"""Pluggable kernel registry: op name × backend name → implementation.

The registry is the single dispatch seam between *what* the library wants
to compute (``spmv``, ``spmm``, ``gru_sequence``, …) and *how* it is
computed.  Two backends ship today:

* ``"reference"`` — the original straight-line Python loops.  Slow, but
  obviously correct; the equivalence suite treats them as ground truth.
* ``"numpy"`` — vectorized plan-then-execute implementations (the
  default).

Future backends (multiprocessing, numba, quantized int8, …) register the
same op names and become selectable globally (:func:`set_default_backend`),
lexically (:func:`use_backend`), or per call (the ``backend=`` argument
accepted by every dispatching entry point in :mod:`repro.kernels`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import KernelError


class KernelRegistry:
    """Maps ``(op, backend)`` pairs to callables."""

    def __init__(self, default_backend: str = "numpy") -> None:
        self._impls: Dict[str, Dict[str, Callable]] = {}
        self._default = default_backend

    # -- registration -----------------------------------------------------
    def register(
        self, op: str, backend: str, fn: Optional[Callable] = None, override: bool = False
    ) -> Callable:
        """Register ``fn`` as the ``backend`` implementation of ``op``.

        Usable directly or as a decorator::

            @registry.register("spmv", "numpy")
            def spmv(matrix, x): ...
        """

        def _register(implementation: Callable) -> Callable:
            table = self._impls.setdefault(op, {})
            if backend in table and not override:
                raise KernelError(
                    f"kernel {op!r} already has a {backend!r} backend; "
                    "pass override=True to replace it"
                )
            table[backend] = implementation
            return implementation

        return _register(fn) if fn is not None else _register

    # -- lookup -----------------------------------------------------------
    def get(self, op: str, backend: Optional[str] = None) -> Callable:
        """Resolve ``op`` for ``backend`` (default: the global backend)."""
        backend = backend or self._default
        table = self._impls.get(op)
        if table is None:
            raise KernelError(f"unknown kernel op {op!r}; known: {self.ops()}")
        fn = table.get(backend)
        if fn is None:
            raise KernelError(
                f"kernel {op!r} has no {backend!r} backend; "
                f"available: {sorted(table)}"
            )
        return fn

    def ops(self) -> List[str]:
        """Sorted names of all registered ops."""
        return sorted(self._impls)

    def backends(self, op: Optional[str] = None) -> List[str]:
        """Backends available for ``op`` (or across all ops)."""
        if op is not None:
            if op not in self._impls:
                raise KernelError(f"unknown kernel op {op!r}; known: {self.ops()}")
            return sorted(self._impls[op])
        names = {b for table in self._impls.values() for b in table}
        return sorted(names)

    # -- backend selection ------------------------------------------------
    @property
    def default_backend(self) -> str:
        return self._default

    def set_default_backend(self, backend: str) -> None:
        """Make ``backend`` the global default for all dispatches."""
        if backend not in self.backends():
            raise KernelError(
                f"unknown backend {backend!r}; available: {self.backends()}"
            )
        self._default = backend

    @contextmanager
    def use_backend(self, backend: str) -> Iterator[None]:
        """Temporarily switch the default backend (context manager)."""
        previous = self._default
        self.set_default_backend(backend)
        try:
            yield
        finally:
            self._default = previous


#: The process-wide registry every ``repro.kernels`` entry point consults.
registry = KernelRegistry()


def set_default_backend(backend: str) -> None:
    """Select the process-wide default backend (module-level convenience)."""
    registry.set_default_backend(backend)


def get_default_backend() -> str:
    """Name of the current process-wide default backend."""
    return registry.default_backend


def use_backend(backend: str):
    """Context manager temporarily switching the default backend."""
    return registry.use_backend(backend)
