"""Numpy backend: vectorized plan-then-execute kernels (the default).

Sparse ops run on the execution plans of :mod:`repro.kernels.plans` —
all per-block/per-row Python iteration happens once at plan-build time,
after which ``spmv``/``spmm`` are a gather, one batched GEMM (BSPC) or a
``reduceat`` (CSR), and a scatter.  The recurrent kernels hoist the
input-side projection out of the time loop and run the recurrence on raw
ndarrays with a preallocated output buffer.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels._math import sigmoid as _sigmoid
from repro.kernels._math import sigmoid_ as _sigmoid_
from repro.kernels.plans import bspc_plan, csr_plan
from repro.kernels.registry import registry


# ---------------------------------------------------------------------------
# CSR
# ---------------------------------------------------------------------------
@registry.register("csr_spmv", "numpy")
def csr_spmv(matrix, x: np.ndarray) -> np.ndarray:
    """Row-segment sums via ``np.add.reduceat`` over ``row_ptr``."""
    plan = csr_plan(matrix)
    out = np.zeros(matrix.shape[0])
    if plan.nonempty_rows.size:
        products = matrix.values * x[matrix.col_indices]
        out[plan.nonempty_rows] = np.add.reduceat(products, plan.segment_starts)
    return out


@registry.register("csr_spmm", "numpy")
def csr_spmm(matrix, x: np.ndarray) -> np.ndarray:
    """Batched :func:`csr_spmv`, one input column at a time.

    A 1-D ``reduceat`` per column beats a single 2-D ``reduceat`` over the
    ``(nnz, batch)`` product block by ~5x: multi-axis reduceat falls off
    numpy's fast path, while the per-column segment sums stay contiguous.
    """
    plan = csr_plan(matrix)
    out = np.zeros((matrix.shape[0], x.shape[1]))
    if plan.nonempty_rows.size:
        for j in range(x.shape[1]):
            products = matrix.values * x[:, j][matrix.col_indices]
            out[plan.nonempty_rows, j] = np.add.reduceat(
                products, plan.segment_starts
            )
    return out


# ---------------------------------------------------------------------------
# BSPC
# ---------------------------------------------------------------------------
@registry.register("bspc_spmv", "numpy")
def bspc_spmv(matrix, x: np.ndarray) -> np.ndarray:
    """Gather → one batched panel GEMM → scatter (plus a dropped sink row)."""
    plan = bspc_plan(matrix)
    rows = plan.shape[0]
    out = np.zeros(rows + 1)
    if plan.panels.size:
        gathered = x[plan.gather_cols]
        if plan.pad_cols is not None:
            gathered[plan.pad_cols] = 0.0  # keep non-finite x[0] out of pads
        partial = np.matmul(plan.panels, gathered[:, :, None])[:, :, 0]
        if plan.scatter_unique:
            out[plan.flat_rows] += partial.reshape(-1)
        else:
            np.add.at(out, plan.flat_rows, partial.reshape(-1))
    return out[:rows]


@registry.register("bspc_spmm", "numpy")
def bspc_spmm(matrix, x: np.ndarray) -> np.ndarray:
    """Batched :func:`bspc_spmv` over the columns of ``x``."""
    plan = bspc_plan(matrix)
    rows = plan.shape[0]
    batch = x.shape[1]
    out = np.zeros((rows + 1, batch))
    if plan.panels.size:
        gathered = x[plan.gather_cols]
        if plan.pad_cols is not None:
            gathered[plan.pad_cols] = 0.0  # keep non-finite x[0] out of pads
        partial = np.matmul(plan.panels, gathered)
        if plan.scatter_unique:
            out[plan.flat_rows] += partial.reshape(-1, batch)
        else:
            np.add.at(out, plan.flat_rows, partial.reshape(-1, batch))
    return out[:rows]


# ---------------------------------------------------------------------------
# Recurrent sequence kernels
# ---------------------------------------------------------------------------
@registry.register("gru_sequence", "numpy")
def gru_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
    h0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused GRU layer: the whole sequence's input projection is one
    ``(T·B, D) @ (D, 3H)`` GEMM; the time loop carries only the recurrence
    and writes each step into a preallocated output buffer.

    Both constant biases of the update/reset gates are folded into the
    hoisted projection (``z``/``r`` see ``gx + gh + b_ih + b_hh`` either
    way), and the two gates share one sigmoid over the ``2H`` block — the
    per-step cost at small ``H`` is dominated by numpy call overhead, so
    fewer, wider ops matter more than saved FLOPs."""
    seq_len, batch, _ = x.shape
    hidden = h0.shape[1]
    gates_x = (x.reshape(seq_len * batch, -1) @ w_ih.T + b_ih).reshape(
        seq_len, batch, 3 * hidden
    )
    gates_x[:, :, : 2 * hidden] += b_hh[: 2 * hidden]
    gx_zr = gates_x[:, :, : 2 * hidden]
    gx_h = gates_x[:, :, 2 * hidden :]
    b_hh_h = b_hh[2 * hidden :]
    w_hh_t = np.ascontiguousarray(w_hh.T)
    out = np.empty((seq_len, batch, hidden))
    h = h0
    for t in range(seq_len):
        gh = h @ w_hh_t
        zr = _sigmoid(gx_zr[t] + gh[:, : 2 * hidden])
        z = zr[:, :hidden]
        r = zr[:, hidden:]
        h_tilde = np.tanh(gx_h[t] + r * (gh[:, 2 * hidden :] + b_hh_h))
        h = (1.0 - z) * h + z * h_tilde
        out[t] = h
    return out, h


@registry.register("gru_sequence_grad", "numpy")
def gru_sequence_grad(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
    h0: np.ndarray,
):
    """Fused trainable GRU layer: forward with stashed activations plus a
    single vectorized BPTT backward.

    The forward hoists the whole sequence's input projection into one
    ``(T·B, D) @ (D, 3H)`` GEMM and stashes the gate activations the
    backward needs (``z``, ``r``, ``h̃``, the recurrent candidate
    pre-product ``U_h h_{t-1} + b_h`` and every hidden state).

    The backward exploits that every gate gradient at step ``t`` is the
    incoming hidden gradient ``dh_t`` times a coefficient built purely
    from stashed activations: those coefficients batch over *all*
    timesteps before the loop, so the sequential part is only the
    recurrent accumulation — per step, one broadcast multiply per gate
    block and one ``(B, 3H) @ (3H, H)`` GEMM.  The weight/bias/input
    gradients batch at the end: ``dW_ih``/``dW_hh`` are single
    ``(3H, T·B) @ (T·B, ·)`` GEMMs and ``dx`` is one
    ``(T·B, 3H) @ (3H, D)`` GEMM.

    Returns ``(outputs, h_T, backward)``; ``backward(grad_out, grad_h_T=None)``
    yields ``(dx, dw_ih, dw_hh, db_ih, db_hh, dh0)``.
    """
    x = np.asarray(x, dtype=np.float64)
    seq_len, batch, _ = x.shape
    hidden = h0.shape[1]
    gates_x = (x.reshape(seq_len * batch, -1) @ w_ih.T + b_ih).reshape(
        seq_len, batch, 3 * hidden
    )
    # Fold the constant z/r recurrent biases into the hoisted projection
    # (the candidate's recurrent bias must stay inside the r-product),
    # then pre-negate the z/r part so the loop's sigmoid starts directly
    # from exp((-gx) - gh) — IEEE negation distributes exactly.
    gates_x[:, :, : 2 * hidden] += b_hh[: 2 * hidden]
    neg_gx_zr = -gates_x[:, :, : 2 * hidden]
    b_hh_h = b_hh[2 * hidden :]
    w_hh_t = np.ascontiguousarray(w_hh.T)
    hs = np.empty((seq_len + 1, batch, hidden))
    hs[0] = h0
    # Stash buffers; the time loop writes every activation in place so a
    # step costs one GEMM plus a fixed handful of allocation-free ufuncs.
    # Per-timestep views and the ufuncs themselves are hoisted out of the
    # loop — at small (B, H) the step cost is call dispatch, not FLOPs.
    zr_all = np.empty((seq_len, batch, 2 * hidden))  # update|reset gates
    cand_all = np.empty((seq_len, batch, hidden))  # h̃
    ghh_all = np.empty((seq_len, batch, hidden))  # U_h h_{t-1} + b_hh[2H:]
    gh = np.empty((batch, 3 * hidden))
    gh_zr = gh[:, : 2 * hidden]
    gh_h = gh[:, 2 * hidden :]
    neg_gx_zr_t = list(neg_gx_zr)
    gx_h_t = list(gates_x[:, :, 2 * hidden :])
    zr_t = list(zr_all)
    z_t = [v[:, :hidden] for v in zr_t]
    r_t = [v[:, hidden:] for v in zr_t]
    cand_t = list(cand_all)
    ghh_t = list(ghh_all)
    hs_t = list(hs)
    dot, add, sub, mul = np.dot, np.add, np.subtract, np.multiply
    exp, rec, tanh = np.exp, np.reciprocal, np.tanh
    for t in range(seq_len):
        h = hs_t[t]
        dot(h, w_hh_t, out=gh)
        zr = zr_t[t]
        # zr = sigmoid(gx + gh) computed in place from -(gx + gh)
        sub(neg_gx_zr_t[t], gh_zr, out=zr)
        exp(zr, out=zr)
        zr += 1.0
        rec(zr, out=zr)
        ghh = ghh_t[t]
        add(gh_h, b_hh_h, out=ghh)
        cand = cand_t[t]
        mul(r_t[t], ghh, out=cand)
        cand += gx_h_t[t]
        tanh(cand, out=cand)
        # h = (1-z) h_prev + z h̃ = h_prev + z (h̃ - h_prev)
        h_next = hs_t[t + 1]
        sub(cand, h, out=h_next)
        h_next *= z_t[t]
        h_next += h
    out = hs[1:]

    # Augmented weights let the backward handle the *four* distinct gate
    # gradients (da_z, da_r, da_h on the input side; da_h·r on the
    # recurrent side) as one contiguous (…, 4H) block per step: slot
    # order [z | r | h_input | h_recurrent], with a zero block where a
    # slot does not feed the given matrix.
    w_hh_aug = np.zeros((4 * hidden, hidden))
    w_hh_aug[: 2 * hidden] = w_hh[: 2 * hidden]
    w_hh_aug[3 * hidden :] = w_hh[2 * hidden :]
    w_ih_aug = np.zeros((4 * hidden, x.shape[2]))
    w_ih_aug[: 3 * hidden] = w_ih

    def backward(grad_out: np.ndarray, grad_h_T=None, need_dx: bool = True):
        """Single-use BPTT closure (it consumes the stashed activations).

        ``need_dx=False`` skips the input-gradient GEMM — the layer-0
        input of an acoustic model is a plain feature tensor, so its
        (T·B, 4H) @ (4H, D) gradient would be computed only to be
        discarded."""
        grad_out = np.asarray(grad_out, dtype=np.float64)
        z = zr_all[:, :, :hidden]
        r = zr_all[:, :, hidden:]
        # Per-gate coefficients: gate grad at step t = dh_t * coeff[t].
        # All depend only on stashed activations, so they batch over the
        # whole sequence before the sequential loop.  A fifth (1-z) slot
        # lets the loop's single in-place broadcast multiply also produce
        # the direct dh→dh_prev term; each coeff[t] is consumed exactly
        # once (the loop walks t backwards), so the multiply overwrites
        # the coefficients with the actual gate gradients — no second
        # (T, B, 4H) array and half the loop's memory traffic.
        coeff = np.empty((seq_len, batch, 5, hidden))
        c_z = coeff[:, :, 0]
        c_r = coeff[:, :, 1]
        c_h = coeff[:, :, 2]
        omz = coeff[:, :, 4]
        np.multiply(cand_all, cand_all, out=c_h)  # h̃²
        np.subtract(1.0, c_h, out=c_h)
        c_h *= z  # c_h = z (1 - h̃²)
        np.subtract(1.0, r, out=c_r)
        c_r *= r
        c_r *= ghh_all
        c_r *= c_h  # c_r = c_h · gh_h · r (1-r)
        np.subtract(1.0, z, out=omz)
        np.subtract(cand_all, hs[:-1], out=c_z)
        c_z *= z
        c_z *= omz  # c_z = (h̃ - h_prev) z (1-z)
        np.multiply(c_h, r, out=coeff[:, :, 3])  # recurrent candidate slot
        # Views of the first four slots; the (T·B, 4H) flattening stays a
        # view (row stride 5H), which BLAS consumes directly as lda.
        gates4 = coeff[:, :, :4].reshape(seq_len, batch, 4 * hidden)
        carry = np.zeros((batch, hidden))
        if grad_h_T is not None:
            carry = carry + grad_h_T
        dh = np.empty((batch, hidden))
        dh3 = dh.reshape(batch, 1, hidden)
        gemm = np.empty((batch, hidden))
        go_t = list(grad_out)
        co_t = list(coeff)
        omz_t = [v[:, 4] for v in co_t]
        g4_t = list(gates4)
        dot, add, mul = np.dot, np.add, np.multiply
        for t in range(seq_len - 1, -1, -1):
            add(go_t[t], carry, out=dh)
            mul(co_t[t], dh3, out=co_t[t])  # four gate grads + dh·(1-z)
            dot(g4_t[t], w_hh_aug, out=gemm)
            add(omz_t[t], gemm, out=carry)
        flat = gates4.reshape(seq_len * batch, 4 * hidden)
        # dW_ih rows [0:3H] of flat.T @ x are exactly [da_z; da_r; da_h];
        # dW_hh takes the z/r rows plus the recurrent-candidate slot.
        full_ih = flat.T @ x.reshape(seq_len * batch, -1)
        dw_ih = full_ih[: 3 * hidden]
        full_hh = flat.T @ hs[:-1].reshape(seq_len * batch, hidden)
        dw_hh = np.concatenate((full_hh[: 2 * hidden], full_hh[3 * hidden :]))
        sums = flat.sum(axis=0)
        db_ih = sums[: 3 * hidden]
        db_hh = np.concatenate((sums[: 2 * hidden], sums[3 * hidden :]))
        dx = (flat @ w_ih_aug).reshape(x.shape) if need_dx else None
        return dx, dw_ih, dw_hh, db_ih, db_hh, carry

    return out, hs[seq_len], backward


@registry.register("lstm_sequence_grad", "numpy")
def lstm_sequence_grad(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
):
    """Fused trainable LSTM layer; same strategy as
    :func:`gru_sequence_grad` (input projection and weight gradients as
    whole-sequence GEMMs, gate activations stashed, only the recurrent
    accumulation sequential).

    Returns ``(outputs, h_T, c_T, backward)``; ``backward(grad_out)``
    yields ``(dx, dw_ih, dw_hh, dbias, dh0, dc0)``.
    """
    x = np.asarray(x, dtype=np.float64)
    seq_len, batch, _ = x.shape
    hidden = h0.shape[1]
    gates_x = (x.reshape(seq_len * batch, -1) @ w_ih.T + bias).reshape(
        seq_len, batch, 4 * hidden
    )
    w_hh_t = np.ascontiguousarray(w_hh.T)
    hs = np.empty((seq_len + 1, batch, hidden))
    cs = np.empty((seq_len + 1, batch, hidden))
    hs[0] = h0
    cs[0] = c0
    gate_all = np.empty((seq_len, batch, 4 * hidden))  # post-activation i,f,g,o
    tanh_c_all = np.empty((seq_len, batch, hidden))
    gemm = np.empty((batch, 4 * hidden))
    for t in range(seq_len):
        gates = gate_all[t]
        np.dot(hs[t], w_hh_t, out=gemm)
        np.add(gates_x[t], gemm, out=gates)
        _sigmoid_(gates[:, : 2 * hidden])
        np.tanh(gates[:, 2 * hidden : 3 * hidden], out=gates[:, 2 * hidden : 3 * hidden])
        _sigmoid_(gates[:, 3 * hidden :])
        i = gates[:, :hidden]
        f = gates[:, hidden : 2 * hidden]
        g = gates[:, 2 * hidden : 3 * hidden]
        o = gates[:, 3 * hidden :]
        c_next = cs[t + 1]
        np.multiply(f, cs[t], out=c_next)
        tanh_c = tanh_c_all[t]
        np.multiply(i, g, out=tanh_c)  # scratch use before the tanh fills it
        c_next += tanh_c
        np.tanh(c_next, out=tanh_c)
        np.multiply(o, tanh_c, out=hs[t + 1])

    def backward(grad_out: np.ndarray, need_dx: bool = True):
        """Single-use BPTT closure (it consumes the stashed activations);
        ``need_dx=False`` skips the input-gradient GEMM."""
        grad_out = np.asarray(grad_out, dtype=np.float64)
        gates4 = gate_all.reshape(seq_len, batch, 4, hidden)
        i = gates4[:, :, 0]
        f = gates4[:, :, 1]
        g = gates4[:, :, 2]
        o = gates4[:, :, 3]
        # Factored coefficients, batched over the sequence:
        #   dc_t = carry_c + dh_t · c_dc[t]
        #   da_{i,f,g}[t] = dc_t · coeff[t, :, :3],  da_o[t] = dh_t · coeff[t, :, 3]
        # As in the GRU kernel, each coeff[t] is consumed exactly once,
        # so the loop's broadcast multiplies run in place and coeff ends
        # up holding the gate gradients themselves.
        c_dc = np.empty((seq_len, batch, hidden))
        np.multiply(tanh_c_all, tanh_c_all, out=c_dc)
        np.subtract(1.0, c_dc, out=c_dc)
        c_dc *= o  # o (1 - tanh(c)²)
        coeff = np.empty((seq_len, batch, 4, hidden))
        c_i = coeff[:, :, 0]
        c_f = coeff[:, :, 1]
        c_g = coeff[:, :, 2]
        c_o = coeff[:, :, 3]
        np.subtract(1.0, i, out=c_i)
        c_i *= i
        c_i *= g  # g · i(1-i)
        np.subtract(1.0, f, out=c_f)
        c_f *= f
        c_f *= cs[:-1]  # c_prev · f(1-f)
        np.multiply(g, g, out=c_g)
        np.subtract(1.0, c_g, out=c_g)
        c_g *= i  # i (1-g²)
        np.subtract(1.0, o, out=c_o)
        c_o *= o
        c_o *= tanh_c_all  # tanh(c) · o(1-o)
        coeff_2d = coeff.reshape(seq_len, batch, 4 * hidden)
        carry_h = np.zeros((batch, hidden))
        carry_c = np.zeros((batch, hidden))
        dh = np.empty((batch, hidden))
        dc = np.empty((batch, hidden))
        dc3 = dc.reshape(batch, 1, hidden)
        gemm_b = np.empty((batch, hidden))
        for t in range(seq_len - 1, -1, -1):
            np.add(grad_out[t], carry_h, out=dh)
            coeff_t = coeff[t]
            np.multiply(dh, c_dc[t], out=dc)
            dc += carry_c
            np.multiply(dc, f[t], out=carry_c)
            coeff_t[:, :3] *= dc3
            coeff_t[:, 3] *= dh
            np.dot(coeff_2d[t], w_hh, out=gemm_b)
            carry_h, gemm_b = gemm_b, carry_h
        dg_flat = coeff.reshape(seq_len * batch, 4 * hidden)
        dw_ih = dg_flat.T @ x.reshape(seq_len * batch, -1)
        dw_hh = dg_flat.T @ hs[:-1].reshape(seq_len * batch, hidden)
        dbias = dg_flat.sum(axis=0)
        dx = (dg_flat @ w_ih).reshape(x.shape) if need_dx else None
        return dx, dw_ih, dw_hh, dbias, carry_h, carry_c

    return hs[1:], hs[seq_len], cs[seq_len], backward


@registry.register("lstm_sequence", "numpy")
def lstm_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused LSTM layer: input projection + bias hoisted out of the loop."""
    seq_len, batch, _ = x.shape
    hidden = h0.shape[1]
    gates_x = (x.reshape(seq_len * batch, -1) @ w_ih.T + bias).reshape(
        seq_len, batch, 4 * hidden
    )
    w_hh_t = np.ascontiguousarray(w_hh.T)
    out = np.empty((seq_len, batch, hidden))
    h, c = h0, c0
    for t in range(seq_len):
        gates = gates_x[t] + h @ w_hh_t
        # input/forget gates are adjacent in the layout: one shared sigmoid.
        input_forget = _sigmoid(gates[:, : 2 * hidden])
        i = input_forget[:, :hidden]
        f = input_forget[:, hidden:]
        g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o = _sigmoid(gates[:, 3 * hidden :])
        c = f * c + i * g
        h = o * np.tanh(c)
        out[t] = h
    return out, h, c
