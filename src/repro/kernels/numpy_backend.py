"""Numpy backend: vectorized plan-then-execute kernels (the default).

Sparse ops run on the execution plans of :mod:`repro.kernels.plans` —
all per-block/per-row Python iteration happens once at plan-build time,
after which ``spmv``/``spmm`` are a gather, one batched GEMM (BSPC) or a
``reduceat`` (CSR), and a scatter.  The recurrent kernels hoist the
input-side projection out of the time loop and run the recurrence on raw
ndarrays with a preallocated output buffer.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels._math import sigmoid as _sigmoid
from repro.kernels.plans import bspc_plan, csr_plan
from repro.kernels.registry import registry


# ---------------------------------------------------------------------------
# CSR
# ---------------------------------------------------------------------------
@registry.register("csr_spmv", "numpy")
def csr_spmv(matrix, x: np.ndarray) -> np.ndarray:
    """Row-segment sums via ``np.add.reduceat`` over ``row_ptr``."""
    plan = csr_plan(matrix)
    out = np.zeros(matrix.shape[0])
    if plan.nonempty_rows.size:
        products = matrix.values * x[matrix.col_indices]
        out[plan.nonempty_rows] = np.add.reduceat(products, plan.segment_starts)
    return out


@registry.register("csr_spmm", "numpy")
def csr_spmm(matrix, x: np.ndarray) -> np.ndarray:
    """Batched :func:`csr_spmv`, one input column at a time.

    A 1-D ``reduceat`` per column beats a single 2-D ``reduceat`` over the
    ``(nnz, batch)`` product block by ~5x: multi-axis reduceat falls off
    numpy's fast path, while the per-column segment sums stay contiguous.
    """
    plan = csr_plan(matrix)
    out = np.zeros((matrix.shape[0], x.shape[1]))
    if plan.nonempty_rows.size:
        for j in range(x.shape[1]):
            products = matrix.values * x[:, j][matrix.col_indices]
            out[plan.nonempty_rows, j] = np.add.reduceat(
                products, plan.segment_starts
            )
    return out


# ---------------------------------------------------------------------------
# BSPC
# ---------------------------------------------------------------------------
@registry.register("bspc_spmv", "numpy")
def bspc_spmv(matrix, x: np.ndarray) -> np.ndarray:
    """Gather → one batched panel GEMM → scatter (plus a dropped sink row)."""
    plan = bspc_plan(matrix)
    rows = plan.shape[0]
    out = np.zeros(rows + 1)
    if plan.panels.size:
        gathered = x[plan.gather_cols]
        if plan.pad_cols is not None:
            gathered[plan.pad_cols] = 0.0  # keep non-finite x[0] out of pads
        partial = np.matmul(plan.panels, gathered[:, :, None])[:, :, 0]
        if plan.scatter_unique:
            out[plan.flat_rows] += partial.reshape(-1)
        else:
            np.add.at(out, plan.flat_rows, partial.reshape(-1))
    return out[:rows]


@registry.register("bspc_spmm", "numpy")
def bspc_spmm(matrix, x: np.ndarray) -> np.ndarray:
    """Batched :func:`bspc_spmv` over the columns of ``x``."""
    plan = bspc_plan(matrix)
    rows = plan.shape[0]
    batch = x.shape[1]
    out = np.zeros((rows + 1, batch))
    if plan.panels.size:
        gathered = x[plan.gather_cols]
        if plan.pad_cols is not None:
            gathered[plan.pad_cols] = 0.0  # keep non-finite x[0] out of pads
        partial = np.matmul(plan.panels, gathered)
        if plan.scatter_unique:
            out[plan.flat_rows] += partial.reshape(-1, batch)
        else:
            np.add.at(out, plan.flat_rows, partial.reshape(-1, batch))
    return out[:rows]


# ---------------------------------------------------------------------------
# Recurrent sequence kernels
# ---------------------------------------------------------------------------
@registry.register("gru_sequence", "numpy")
def gru_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
    h0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fused GRU layer: the whole sequence's input projection is one
    ``(T·B, D) @ (D, 3H)`` GEMM; the time loop carries only the recurrence
    and writes each step into a preallocated output buffer.

    Both constant biases of the update/reset gates are folded into the
    hoisted projection (``z``/``r`` see ``gx + gh + b_ih + b_hh`` either
    way), and the two gates share one sigmoid over the ``2H`` block — the
    per-step cost at small ``H`` is dominated by numpy call overhead, so
    fewer, wider ops matter more than saved FLOPs."""
    seq_len, batch, _ = x.shape
    hidden = h0.shape[1]
    gates_x = (x.reshape(seq_len * batch, -1) @ w_ih.T + b_ih).reshape(
        seq_len, batch, 3 * hidden
    )
    gates_x[:, :, : 2 * hidden] += b_hh[: 2 * hidden]
    gx_zr = gates_x[:, :, : 2 * hidden]
    gx_h = gates_x[:, :, 2 * hidden :]
    b_hh_h = b_hh[2 * hidden :]
    w_hh_t = np.ascontiguousarray(w_hh.T)
    out = np.empty((seq_len, batch, hidden))
    h = h0
    for t in range(seq_len):
        gh = h @ w_hh_t
        zr = _sigmoid(gx_zr[t] + gh[:, : 2 * hidden])
        z = zr[:, :hidden]
        r = zr[:, hidden:]
        h_tilde = np.tanh(gx_h[t] + r * (gh[:, 2 * hidden :] + b_hh_h))
        h = (1.0 - z) * h + z * h_tilde
        out[t] = h
    return out, h


@registry.register("lstm_sequence", "numpy")
def lstm_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused LSTM layer: input projection + bias hoisted out of the loop."""
    seq_len, batch, _ = x.shape
    hidden = h0.shape[1]
    gates_x = (x.reshape(seq_len * batch, -1) @ w_ih.T + bias).reshape(
        seq_len, batch, 4 * hidden
    )
    w_hh_t = np.ascontiguousarray(w_hh.T)
    out = np.empty((seq_len, batch, hidden))
    h, c = h0, c0
    for t in range(seq_len):
        gates = gates_x[t] + h @ w_hh_t
        # input/forget gates are adjacent in the layout: one shared sigmoid.
        input_forget = _sigmoid(gates[:, : 2 * hidden])
        i = input_forget[:, :hidden]
        f = input_forget[:, hidden:]
        g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o = _sigmoid(gates[:, 3 * hidden :])
        c = f * c + i * g
        h = o * np.tanh(c)
        out[t] = h
    return out, h, c
