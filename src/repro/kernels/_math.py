"""Tiny numeric helpers shared by the kernel backends and the engine.

One definition keeps numerically sensitive primitives identical across
every execution path — the packed engine's bit-exactness contract with
the fused kernels depends on them computing gate values the same way.
"""

from __future__ import annotations

import numpy as np


def sigmoid(v: np.ndarray) -> np.ndarray:
    """Logistic function, the gate nonlinearity of every RNN kernel."""
    return 1.0 / (1.0 + np.exp(-v))


def sigmoid_(v: np.ndarray) -> np.ndarray:
    """In-place :func:`sigmoid` on ``v`` (same op sequence, no temporaries).

    The training kernels' per-timestep loops call this on preallocated
    stash slices; it produces bit-identical values to :func:`sigmoid`
    (negate, exp, add 1, reciprocal — reciprocal is the same IEEE divide).
    """
    np.negative(v, out=v)
    np.exp(v, out=v)
    v += 1.0
    np.reciprocal(v, out=v)
    return v
