"""Tiny numeric helpers shared by the kernel backends and the engine.

One definition keeps numerically sensitive primitives identical across
every execution path — the packed engine's bit-exactness contract with
the fused kernels depends on them computing gate values the same way.
"""

from __future__ import annotations

import numpy as np


def sigmoid(v: np.ndarray) -> np.ndarray:
    """Logistic function, the gate nonlinearity of every RNN kernel."""
    return 1.0 / (1.0 + np.exp(-v))
