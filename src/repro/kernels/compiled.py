"""Compiled C backend: generated kernels built with the system compiler.

This is the paper's deployment story applied to the host: the hot loops
(CSR/BSPC spmv/spmm in float and int8, the dense int8 projections, and
the fused GRU/LSTM sequence forward) are emitted as specialized C,
compiled once with ``cc -O3 -march=native -shared -fPIC``, and bound via
``ctypes`` with zero-copy views of the very same packed plan arrays the
numpy backend executes (:mod:`repro.kernels.plans` /
:mod:`repro.kernels.quantized`).  No third-party toolchain is needed —
just a C compiler — so the backend registers itself only when one is
actually present.

Build artifacts are cached twice: an in-process handle (one ``CDLL`` per
process) and an on-disk ``.so`` keyed by a SHA-256 content hash of the C
source, the compiler, and the flags, so rebuilding only happens when the
generated code changes.  Environment hooks:

* ``REPRO_CC`` — compiler executable (default: ``cc``, then ``gcc``);
* ``REPRO_COMPILED_CACHE`` — cache directory for the built ``.so``
  (default: ``~/.cache/repro/compiled``, falling back to a per-user
  directory under the system temp dir).

Failure is graceful and typed: any problem (no compiler, a failed build,
a library that fails the load-time sanity probe) raises
:class:`~repro.errors.CompileBackendError`, which is recorded once —
the backend is then absent from ``kernels.backends()`` and every caller
keeps running on the numpy backend.

Exactness contract (asserted by ``tests/test_kernels_equivalence.py``):

* int8 kernels are **bitwise identical** to the reference/numpy
  backends.  CSR/linear activations quantize through the *same*
  :func:`~repro.kernels.quantized.int8_codes` /
  :func:`~repro.kernels.quantized.int8_codes_axis` helpers; the BSPC
  kernels quantize in C with an operation-for-operation replica of those
  helpers (comparison max, one divide, round-half-even ``rint``, clip),
  so codes and scales match numpy bit for bit for finite activations.
  Products accumulate exactly — integer arithmetic on the CSR paths,
  float FMA over integer values bounded the same way the numpy backend
  bounds its ``codes_f`` GEMM dtype on the BSPC paths — and the final
  dequant replicates each numpy kernel's float multiply *order*
  operation for operation (one fused ``scale * xs`` multiply for the
  per-call-scale ops, two sequential multiplies for the
  per-column/per-row ops).
* float kernels match to reduction-order tolerance (blocked C FMA sums
  vs. numpy's pairwise/BLAS reductions).

The fused BPTT ops (``gru_sequence_grad`` / ``lstm_sequence_grad``)
stay on the numpy implementations — training wants whole-sequence BLAS
GEMMs, not scalar loops — but they are registered under ``"compiled"``
too so the full suite (and any plan pinned to this backend) dispatches
every op without falling through the registry.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.errors import CompileBackendError
from repro.kernels import numpy_backend as _np_backend
from repro.kernels.plans import bspc_plan, csr_plan
from repro.kernels.quantized import (
    F32_EXACT_INNER,
    int8_bspc_plan,
    int8_codes,
    int8_codes_axis,
    int8_csr_plan,
)
from repro.kernels.registry import KernelRegistry, registry

#: Name this backend registers under.
BACKEND = "compiled"

#: Bump to invalidate cached ``.so`` files when the ABI (not just the C
#: text) changes in a way the source hash cannot see.
_ABI_VERSION = 1

# ---------------------------------------------------------------------------
# Generated C source
# ---------------------------------------------------------------------------
# Conventions shared by every kernel:
#   * all sizes/indices are int64 (matching the plans' int64 arrays);
#   * matrices are C-contiguous row-major, exactly as numpy stores them;
#   * CSR int8 kernels take pre-quantized activations (the Python wrapper
#     quantizes with the shared int8_codes helpers so codes and scales
#     are bitwise identical across backends) and accumulate in exact
#     integer arithmetic: int32 inner chunks of at most ACC_CHUNK
#     products (|sum| <= 127*127*8192 < 2^31) flushed into int64;
#   * BSPC kernels are stamped per accumulator type (see the templates
#     below) from the same strip-panel structure the numpy backend
#     executes: pack one strip's gathered activation columns into an
#     L1-resident 16-lane tile, then run a 4-row register-blocked FMA
#     microkernel over contiguous memory;
#   * per-sample results never depend on which other rows/columns share
#     the call — the property the streaming engine's chunk-exactness
#     rests on.
_C_COMMON = r"""
#include <math.h>
#include <stdint.h>
#include <string.h>

#define API __attribute__((visibility("default")))
#define ACC_CHUNK 8192

typedef int64_t i64;
typedef int32_t i32;
typedef int8_t  i8;
typedef uint8_t u8;

static double sigmoid(double v) { return 1.0 / (1.0 + exp(-v)); }

/* ------------------------------------------------------------------ CSR */

API void repro_csr_spmv(
    i64 rows, const double *values, const i64 *cols, const i64 *row_ptr,
    const double *x, double *out)
{
    for (i64 r = 0; r < rows; r++) {
        double acc = 0.0;
        for (i64 p = row_ptr[r]; p < row_ptr[r + 1]; p++)
            acc += values[p] * x[cols[p]];
        out[r] = acc;
    }
}

API void repro_csr_spmm(
    i64 rows, i64 batch, const double *values, const i64 *cols,
    const i64 *row_ptr, const double *x, double *out)
{
    for (i64 r = 0; r < rows; r++) {
        double *orow = out + r * batch;
        for (i64 p = row_ptr[r]; p < row_ptr[r + 1]; p++) {
            const double v = values[p];
            const double *xr = x + cols[p] * batch;
            for (i64 j = 0; j < batch; j++)
                orow[j] += v * xr[j];
        }
    }
}

API void repro_csr_spmv_i8(
    i64 rows, const i8 *codes, const i64 *cols, const i64 *row_ptr,
    const i8 *xq, double scale_times_xs, double *out)
{
    for (i64 r = 0; r < rows; r++) {
        i64 acc = 0;
        i64 p = row_ptr[r];
        const i64 stop = row_ptr[r + 1];
        while (p < stop) {
            i64 chunk = stop - p;
            if (chunk > ACC_CHUNK) chunk = ACC_CHUNK;
            i32 acc32 = 0;
            for (i64 q = 0; q < chunk; q++)
                acc32 += (i32)codes[p + q] * (i32)xq[cols[p + q]];
            acc += acc32;
            p += chunk;
        }
        out[r] = (double)acc * scale_times_xs;
    }
}

API void repro_csr_spmm_i8(
    i64 rows, i64 batch, const i8 *codes, const i64 *cols,
    const i64 *row_ptr, const i8 *xq, const double *xs, double scale,
    double *out, i64 *acc, i32 *acc32)
{
    for (i64 r = 0; r < rows; r++) {
        memset(acc, 0, (size_t)batch * sizeof(i64));
        i64 p = row_ptr[r];
        const i64 stop = row_ptr[r + 1];
        while (p < stop) {
            i64 chunk = stop - p;
            if (chunk > ACC_CHUNK) chunk = ACC_CHUNK;
            memset(acc32, 0, (size_t)batch * sizeof(i32));
            for (i64 q = 0; q < chunk; q++) {
                const i32 c = (i32)codes[p + q];
                const i8 *xr = xq + cols[p + q] * batch;
                for (i64 j = 0; j < batch; j++)
                    acc32[j] += c * (i32)xr[j];
            }
            for (i64 j = 0; j < batch; j++)
                acc[j] += acc32[j];
            p += chunk;
        }
        double *orow = out + r * batch;
        for (i64 j = 0; j < batch; j++)
            orow[j] = ((double)acc[j] * scale) * xs[j];
    }
}

/* -------------------------------------------- dense int8 projections */

API void repro_linear_i8(
    i64 n, i64 m, i64 k, const i8 *xq, const i8 *w,
    double scale_times_xs, double *out)
{
    for (i64 i = 0; i < n; i++) {
        const i8 *xrow = xq + i * k;
        for (i64 j = 0; j < m; j++) {
            const i8 *wrow = w + j * k;
            i64 a = 0;
            i64 p = 0;
            while (p < k) {
                i64 chunk = k - p;
                if (chunk > ACC_CHUNK) chunk = ACC_CHUNK;
                i32 a32 = 0;
                for (i64 q = 0; q < chunk; q++)
                    a32 += (i32)xrow[p + q] * (i32)wrow[p + q];
                a += a32;
                p += chunk;
            }
            out[i * m + j] = (double)a * scale_times_xs;
        }
    }
}

API void repro_linear_i8_rowwise(
    i64 n, i64 m, i64 k, const i8 *xq, const i8 *w, double scale,
    const double *xs, double *out)
{
    for (i64 i = 0; i < n; i++) {
        const i8 *xrow = xq + i * k;
        const double si = xs[i];
        for (i64 j = 0; j < m; j++) {
            const i8 *wrow = w + j * k;
            i64 a = 0;
            i64 p = 0;
            while (p < k) {
                i64 chunk = k - p;
                if (chunk > ACC_CHUNK) chunk = ACC_CHUNK;
                i32 a32 = 0;
                for (i64 q = 0; q < chunk; q++)
                    a32 += (i32)xrow[p + q] * (i32)wrow[p + q];
                a += a32;
                p += chunk;
            }
            out[i * m + j] = ((double)a * scale) * si;
        }
    }
}

/* ------------------------------------------- fused recurrent forward */
/* The input-side projection (one whole-sequence GEMM) is hoisted in the
 * Python wrapper — identically to the numpy backend, so chunk splits
 * see the same values — and only the sequential recurrence runs here.
 * Every sample's step is computed independently of the rest of the
 * batch (fixed reduction order over the hidden dim), which keeps the
 * streaming scheduler's cross-session batch fusion chunk-exact. */

API void repro_gru_sequence(
    i64 T, i64 B, i64 H, const double *gates_x, const double *w_hh_t,
    const double *b_hh_h, double *h, double *out, double *gh)
{
    const i64 G = 3 * H;
    for (i64 t = 0; t < T; t++) {
        memset(gh, 0, (size_t)(B * G) * sizeof(double));
        for (i64 b = 0; b < B; b++) {
            double *ghb = gh + b * G;
            const double *hb = h + b * H;
            for (i64 i = 0; i < H; i++) {
                const double a = hb[i];
                const double *wr = w_hh_t + i * G;
                for (i64 g = 0; g < G; g++)
                    ghb[g] += a * wr[g];
            }
        }
        const double *gx = gates_x + t * B * G;
        double *ot = out + t * B * H;
        for (i64 b = 0; b < B; b++) {
            const double *gxb = gx + b * G;
            const double *ghb = gh + b * G;
            double *hb = h + b * H;
            for (i64 j = 0; j < H; j++) {
                const double z = sigmoid(gxb[j] + ghb[j]);
                const double r = sigmoid(gxb[H + j] + ghb[H + j]);
                const double ht =
                    tanh(gxb[2 * H + j] + r * (ghb[2 * H + j] + b_hh_h[j]));
                const double hn = (1.0 - z) * hb[j] + z * ht;
                hb[j] = hn;
                ot[b * H + j] = hn;
            }
        }
    }
}

API void repro_lstm_sequence(
    i64 T, i64 B, i64 H, const double *gates_x, const double *w_hh_t,
    double *h, double *c, double *out, double *gh)
{
    const i64 G = 4 * H;
    for (i64 t = 0; t < T; t++) {
        memset(gh, 0, (size_t)(B * G) * sizeof(double));
        for (i64 b = 0; b < B; b++) {
            double *ghb = gh + b * G;
            const double *hb = h + b * H;
            for (i64 i = 0; i < H; i++) {
                const double a = hb[i];
                const double *wr = w_hh_t + i * G;
                for (i64 g = 0; g < G; g++)
                    ghb[g] += a * wr[g];
            }
        }
        const double *gx = gates_x + t * B * G;
        double *ot = out + t * B * H;
        for (i64 b = 0; b < B; b++) {
            const double *gxb = gx + b * G;
            const double *ghb = gh + b * G;
            double *hb = h + b * H;
            double *cb = c + b * H;
            for (i64 j = 0; j < H; j++) {
                const double ig = sigmoid(gxb[j] + ghb[j]);
                const double fg = sigmoid(gxb[H + j] + ghb[H + j]);
                const double gg = tanh(gxb[2 * H + j] + ghb[2 * H + j]);
                const double og = sigmoid(gxb[3 * H + j] + ghb[3 * H + j]);
                const double cn = fg * cb[j] + ig * gg;
                const double hn = og * tanh(cn);
                cb[j] = cn;
                hb[j] = hn;
                ot[b * H + j] = hn;
            }
        }
    }
}
"""

# Per-type BSPC template, stamped once with ($S, $T) = ("f32", "float")
# and once with ("f64", "double") — mirroring how the numpy backend picks
# the GEMM dtype for `codes_f` (float32 while a strip's inner extent keeps
# int8 partial sums below 2^24, float64 beyond).  Because every operand is
# an integer of magnitude <= 127 and per-lane partials respect the same
# bound, the float FMA arithmetic below *is* exact integer arithmetic —
# identical bits to the reference backend's int64 path, regardless of
# reduction order.
#
# Quantization replicates int8_codes / int8_codes_axis operation for
# operation (comparison max for the peak over the *full* activation
# matrix, one divide, round-half-even rint, clip to ±127) so codes and
# scales match numpy bit for bit for the finite activations the engine
# produces — but it happens *inside* the pack: only the gathered rows
# are ever quantized, straight into the L1 tile, skipping the
# intermediate quantized copy of the whole activation matrix.
#
# Kernel structure: for each strip, gather-quantize the strip's
# activation columns into a 16-lane L1-resident tile (zeroing padded
# columns and unused lanes), then run a 4-row register-blocked FMA
# microkernel over the contiguous tile; partial sums land in a float
# accumulator (float32 when the whole-row reduction fits the 2^24
# integer-exactness bound, float64 otherwise — both produce the same
# exact integers) with a sink row one past the real output for padded
# rows, and the final dequant pass replays numpy's multiply order.  The scatter target pointers are
# deliberately *not* restrict-qualified: several padded panel rows may
# scatter into the same sink slot.
_C_BSPC_TEMPLATE = r"""
/* GNU vector types for the tile microkernel: v16/a16 are the
 * full-width code and accumulator vectors the FMA loop keeps in
 * registers; u16/w16 are their element-aligned flavours for memory
 * access (numpy buffers guarantee only element alignment). */
typedef $T v16_$S __attribute__((vector_size($W * sizeof($T))));
typedef $T u16_$S __attribute__((vector_size($W * sizeof($T)),
                                 aligned(sizeof($T))));
typedef $A a16_$S __attribute__((vector_size($W * sizeof($A))));
typedef $A w16_$S __attribute__((vector_size($W * sizeof($A)),
                                 aligned(sizeof($A))));

/* Fused quantize-and-pack: gather one strip's activation rows (lanes
 * jb..jb+nb of the (n, ldx) float64 activation matrix) straight into the
 * contiguous (mc, 16) code tile, quantizing on the fly with the
 * per-column scales.  Skipping the intermediate quantized copy of the
 * whole activation matrix is worth ~25% end to end: the gathered rows
 * are the only ones the GEMM ever reads. */
static void bspc_packq_$S(
    i64 mc, i64 nb, i64 ldx, i64 jb, const i64 *gc, const u8 *pc,
    const double *x, const double *xs, $T *restrict xp)
{
    if (!pc && nb == $W) {  /* full-width fast path */
        const double *sr = xs + jb;
        double rc[$W];
        for (int j = 0; j < $W; j++) rc[j] = 1.0 / sr[j];
        for (i64 k = 0; k < mc; k++) {
            const double *xr = x + gc[k] * ldx + jb;
            $T *restrict pr = xp + k * $W;
            for (int j = 0; j < $W; j++) {
                /* Correctly rounded x/s via Markstein's reciprocal
                 * sequence (one mul, two fmas): bitwise-identical to a
                 * hardware divide away from over/underflow, at several
                 * times the throughput.  The quantized codes must match
                 * the numpy path's rint(x / s) bit for bit. */
                double q0 = xr[j] * rc[j];
                double e = __builtin_fma(-sr[j], q0, xr[j]);
                double v = rint(__builtin_fma(e, rc[j], q0));
                if (v > 127.0) v = 127.0;
                if (v < -127.0) v = -127.0;
                pr[j] = ($T)v;
            }
        }
        return;
    }
    for (i64 k = 0; k < mc; k++) {
        $T *restrict pr = xp + k * $W;
        if (pc && pc[k]) {
            for (int j = 0; j < $W; j++) pr[j] = 0;
            continue;
        }
        const double *xr = x + gc[k] * ldx + jb;
        i64 j = 0;
        for (; j < nb; j++) {
            double v = rint(xr[j] / xs[jb + j]);
            if (v > 127.0) v = 127.0;
            if (v < -127.0) v = -127.0;
            pr[j] = ($T)v;
        }
        for (; j < $W; j++) pr[j] = 0;
    }
}

/* Vector variant for spmv: one lane, one shared activation scale. */
static void bspc_packqv_$S(
    i64 mc, const i64 *gc, const u8 *pc, const double *x, double xscale,
    $T *restrict xp)
{
    double rc = 1.0 / xscale;  /* Markstein sequence, as in bspc_packq */
    for (i64 k = 0; k < mc; k++) {
        if (pc && pc[k]) { xp[k] = 0; continue; }
        double xv = x[gc[k]];
        double q0 = xv * rc;
        double e = __builtin_fma(-xscale, q0, xv);
        double v = rint(__builtin_fma(e, rc, q0));
        if (v > 127.0) v = 127.0;
        if (v < -127.0) v = -127.0;
        xp[k] = ($T)v;
    }
}

/* Pack one strip's gathered activation columns (lanes jb..jb+nb of the
 * (n, ldx) activation matrix) into the contiguous (mc, 16) tile. */
static void bspc_pack_$S(
    i64 mc, i64 nb, i64 ldx, i64 jb, const i64 *gc, const u8 *pc,
    const $T *xq, $T *restrict xp)
{
    if (!pc && nb == $W) {  /* full-width fast path: straight copies */
        for (i64 k = 0; k < mc; k++) {
            const $T *xr = xq + gc[k] * ldx + jb;
            $T *restrict pr = xp + k * $W;
            for (int j = 0; j < $W; j++)
                pr[j] = xr[j];
        }
        return;
    }
    for (i64 k = 0; k < mc; k++) {
        $T *restrict pr = xp + k * $W;
        if (pc && pc[k]) {
            for (int j = 0; j < $W; j++) pr[j] = 0;
            continue;
        }
        const $T *xr = xq + gc[k] * ldx + jb;
        int j = 0;
        for (; j < nb; j++) pr[j] = xr[j];
        for (; j < $W; j++) pr[j] = 0;
    }
}

/* Vector variant of the pack for spmv (one lane). */
static void bspc_packv_$S(
    i64 mc, const i64 *gc, const u8 *pc, const $T *xq, $T *restrict xp)
{
    for (i64 k = 0; k < mc; k++)
        xp[k] = (pc && pc[k]) ? 0 : xq[gc[k]];
}

/* 4-row x 16-lane FMA microkernel over one strip's packed tile; the
 * accumulators live in registers for the whole inner-product loop.
 *
 * The accumulators are GNU vector-extension types rather than plain
 * arrays: letting the auto-vectorizer carve the 16-lane arrays up on
 * its own leaves >2x on the table here (it splits each accumulator
 * across half-width registers and schedules the broadcast loads
 * poorly), while the explicit vector ops pin one full-width register
 * per row.  `u16` is the element-aligned flavour for loads/stores —
 * the packed tile and accumulator come from numpy allocations with no
 * vector-width alignment guarantee.  All int8 stamps stay exact
 * integer arithmetic (products <= 127^2, sums < 2^24), so the
 * contracted FMAs are bit-identical to separate multiply/add. */
static void bspc_tile_$S(
    i64 mr, i64 mc, i64 nb, i64 lda, i64 jb, const $T *codes,
    const i64 *srows, const $T *restrict xp, $A *acc)
{
    i64 i = 0;
    for (; i + 3 < mr; i += 4) {
        const $T *c0 = codes + i * mc;
        const $T *c1 = c0 + mc;
        const $T *c2 = c1 + mc;
        const $T *c3 = c2 + mc;
        v16_$S a0 = {0}, a1 = {0}, a2 = {0}, a3 = {0};
        for (i64 k = 0; k < mc; k++) {
            const v16_$S v = *(const u16_$S *)(xp + k * $W);
            a0 += c0[k] * v;
            a1 += c1[k] * v;
            a2 += c2[k] * v;
            a3 += c3[k] * v;
        }
        $A *r0 = acc + srows[i] * lda + jb;
        $A *r1 = acc + srows[i + 1] * lda + jb;
        $A *r2 = acc + srows[i + 2] * lda + jb;
        $A *r3 = acc + srows[i + 3] * lda + jb;
        if (nb == $W) {  /* full-width fast path: vector read-modify-write */
            *(w16_$S *)r0 += __builtin_convertvector(a0, a16_$S);
            *(w16_$S *)r1 += __builtin_convertvector(a1, a16_$S);
            *(w16_$S *)r2 += __builtin_convertvector(a2, a16_$S);
            *(w16_$S *)r3 += __builtin_convertvector(a3, a16_$S);
        } else {
            for (i64 j = 0; j < nb; j++) r0[j] += ($A)a0[j];
            for (i64 j = 0; j < nb; j++) r1[j] += ($A)a1[j];
            for (i64 j = 0; j < nb; j++) r2[j] += ($A)a2[j];
            for (i64 j = 0; j < nb; j++) r3[j] += ($A)a3[j];
        }
    }
    for (; i < mr; i++) {
        const $T *cr = codes + i * mc;
        v16_$S a = {0};
        for (i64 k = 0; k < mc; k++)
            a += cr[k] * *(const u16_$S *)(xp + k * $W);
        $A *r = acc + srows[i] * lda + jb;
        if (nb == $W) {
            *(w16_$S *)r += __builtin_convertvector(a, a16_$S);
        } else {
            for (i64 j = 0; j < nb; j++) r[j] += ($A)a[j];
        }
    }
}

/* Per-row dot products over the packed strip vector: eight independent
 * lanes so the reduction vectorizes without reassociating float math
 * (per-lane int8 partials stay below 2^24 for the f32 stamp). */
static void bspc_dotcol_$S(
    i64 mr, i64 mc, const $T *codes, const i64 *srows,
    const $T *restrict xp, $A *acc)
{
    for (i64 i = 0; i < mr; i++) {
        const $T *cr = codes + i * mc;
        $T a[8] = {0};
        i64 k = 0;
        for (; k + 8 <= mc; k += 8)
            for (int j = 0; j < 8; j++)
                a[j] += cr[k + j] * xp[k + j];
        for (; k < mc; k++)
            a[0] += cr[k] * xp[k];
        double s = 0.0;
        for (int j = 0; j < 8; j++) s += (double)a[j];
        acc[srows[i]] += ($A)s;
    }
}

API void repro_bspc_spmv_i8_$S(
    i64 strips, i64 mr, i64 mc, i64 rows, i64 n, const $T *codes,
    const i64 *gcols, const u8 *padc, const i64 *srows, const double *x,
    double scale, $T *xp, $A *acc, double *out)
{
    /* Whole-vector activation scale: bitwise replica of int8_codes
     * (comparison max for the peak, one divide). */
    double peak = 0.0;
    for (i64 i = 0; i < n; i++) {
        const double a = fabs(x[i]);
        peak = peak > a ? peak : a;
    }
    const double xscale = peak > 0.0 ? peak / 127.0 : 1.0;
    memset(acc, 0, (size_t)(rows + 1) * sizeof($A));
    for (i64 s = 0; s < strips; s++) {
        bspc_packqv_$S(mc, gcols + s * mc, padc ? padc + s * mc : 0,
                       x, xscale, xp);
        bspc_dotcol_$S(mr, mc, codes + s * mr * mc, srows + s * mr, xp, acc);
    }
    const double dq = scale * xscale;
    for (i64 r = 0; r < rows; r++)
        out[r] = (double)acc[r] * dq;
}

API void repro_bspc_spmm_i8_$S(
    i64 strips, i64 mr, i64 mc, i64 rows, i64 n, i64 batch,
    const $T *codes, const i64 *gcols, const u8 *padc, const i64 *srows,
    const double *x, double scale, double *xs, $T *xp, $A *acc,
    double *out)
{
    /* Per-column activation scales over the full (n, batch) matrix:
     * bitwise replica of int8_codes_axis. */
    for (i64 j = 0; j < batch; j++) xs[j] = 0.0;
    for (i64 i = 0; i < n; i++) {
        const double *xr = x + i * batch;
        for (i64 j = 0; j < batch; j++) {
            const double a = fabs(xr[j]);
            xs[j] = xs[j] > a ? xs[j] : a;
        }
    }
    for (i64 j = 0; j < batch; j++)
        xs[j] = xs[j] > 0.0 ? xs[j] / 127.0 : 1.0;
    memset(acc, 0, (size_t)((rows + 1) * batch) * sizeof($A));
    for (i64 jb = 0; jb < batch; jb += $W) {
        const i64 nb = batch - jb < $W ? batch - jb : $W;
        for (i64 s = 0; s < strips; s++) {
            bspc_packq_$S(mc, nb, batch, jb, gcols + s * mc,
                          padc ? padc + s * mc : 0, x, xs, xp);
            bspc_tile_$S(mr, mc, nb, batch, jb, codes + s * mr * mc,
                         srows + s * mr, xp, acc);
        }
    }
    for (i64 r = 0; r < rows; r++) {
        double *orow = out + r * batch;
        const $A *arow = acc + r * batch;
        for (i64 j = 0; j < batch; j++)
            orow[j] = ((double)arow[j] * scale) * xs[j];
    }
}
"""

# Float BSPC kernels: the f64 pack/tile cores above over the raw panel
# weights (no quantization, no dequant) — padded columns zero in the pack
# exactly like the numpy backend zeroes the gathered activations, and the
# sink row (index `rows`) absorbs padded-row scatter for the caller to
# drop.  The output buffer doubles as the accumulator.
_C_BSPC_FLOAT = r"""
API void repro_bspc_spmv(
    i64 strips, i64 mr, i64 mc, i64 rows, const double *panels,
    const i64 *gcols, const u8 *padc, const i64 *srows, const double *x,
    double *xp, double *out)
{
    memset(out, 0, (size_t)(rows + 1) * sizeof(double));
    for (i64 s = 0; s < strips; s++) {
        bspc_packv_f64(mc, gcols + s * mc, padc ? padc + s * mc : 0, x, xp);
        bspc_dotcol_f64(mr, mc, panels + s * mr * mc, srows + s * mr, xp, out);
    }
}

API void repro_bspc_spmm(
    i64 strips, i64 mr, i64 mc, i64 rows, i64 batch, const double *panels,
    const i64 *gcols, const u8 *padc, const i64 *srows, const double *x,
    double *xp, double *out)
{
    memset(out, 0, (size_t)((rows + 1) * batch) * sizeof(double));
    for (i64 jb = 0; jb < batch; jb += 16) {
        const i64 nb = batch - jb < 16 ? batch - jb : 16;
        for (i64 s = 0; s < strips; s++) {
            bspc_pack_f64(mc, nb, batch, jb, gcols + s * mc,
                          padc ? padc + s * mc : 0, x, xp);
            bspc_tile_f64(mr, mc, nb, batch, jb, panels + s * mr * mc,
                          srows + s * mr, xp, out);
        }
    }
}
"""


def _stamp(
    template: str, suffix: str, ctype: str, width: int, acc: str = "double"
) -> str:
    return (
        template.replace("$T", ctype)
        .replace("$A", acc)
        .replace("$S", suffix)
        .replace("$W", str(width))
    )


# Three stamps of the BSPC int8 template, keyed by (code dtype, acc
# dtype).  The narrow-accumulator f32 stamp halves the accumulator's
# memset/writeback traffic; it is exact (and therefore bit-identical to
# the f64-acc stamps) only while the *whole-row* reduction stays under
# 2^24, which the wrapper checks via strips * mc <= F32_EXACT_INNER.
# The f32w stamp keeps float codes but a double accumulator for plans
# whose per-strip extent fits the bound while the row total does not.
_C_SOURCE = (
    _C_COMMON
    + _stamp(_C_BSPC_TEMPLATE, "f32", "float", 16, acc="float")
    + _stamp(_C_BSPC_TEMPLATE, "f32w", "float", 16, acc="double")
    + _stamp(_C_BSPC_TEMPLATE, "f64", "double", 16, acc="double")
    + _C_BSPC_FLOAT
)


# ---------------------------------------------------------------------------
# Build + cache machinery
# ---------------------------------------------------------------------------
_LIB: Optional[ctypes.CDLL] = None
_LOAD_ERROR: Optional[CompileBackendError] = None


def compiler_command() -> str:
    """The C compiler to use: ``$REPRO_CC``, else ``cc``, else ``gcc``."""
    explicit = os.environ.get("REPRO_CC")
    if explicit:
        return explicit
    for candidate in ("cc", "gcc"):
        found = shutil.which(candidate)
        if found:
            return found
    raise CompileBackendError(
        "no C compiler found (set REPRO_CC, or install cc/gcc); "
        "the 'compiled' kernel backend is unavailable"
    )


def cache_dir() -> Path:
    """On-disk ``.so`` cache: ``$REPRO_COMPILED_CACHE`` or a default."""
    explicit = os.environ.get("REPRO_COMPILED_CACHE")
    if explicit:
        return Path(explicit)
    try:
        return Path.home() / ".cache" / "repro" / "compiled"
    except RuntimeError:  # no resolvable home directory
        return Path(tempfile.gettempdir()) / f"repro-compiled-{os.getuid()}"


def _source_key(cc: str, flags: Tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    digest.update(f"abi={_ABI_VERSION};cc={cc};flags={' '.join(flags)};".encode())
    digest.update(_C_SOURCE.encode())
    return digest.hexdigest()[:16]


def _compile(cc: str, src_path: Path, out_path: Path, flags: Tuple[str, ...]) -> None:
    cmd = [cc, *flags, "-o", str(out_path), str(src_path), "-lm"]
    try:
        proc = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise CompileBackendError(
            f"could not run C compiler {cc!r}: {exc}"
        ) from exc
    if proc.returncode != 0:
        stderr = proc.stderr.decode(errors="replace").strip()
        raise CompileBackendError(
            f"C kernel build failed ({cc} exited {proc.returncode}):\n"
            + stderr[-2000:]
        )


def build_library(
    cc: Optional[str] = None, cache: Optional[Path] = None
) -> ctypes.CDLL:
    """Build (or reuse) the kernel ``.so`` and return the loaded library.

    The output lives in the cache directory under a content-hash name, so
    an unchanged source + compiler + flags combination never recompiles —
    across processes as well as within one.  Raises
    :class:`CompileBackendError` on any failure.
    """
    cc = cc or compiler_command()
    cache = Path(cache) if cache is not None else cache_dir()
    base_flags = ("-O3", "-shared", "-fPIC", "-fvisibility=hidden")
    for flags in (("-march=native",) + base_flags, base_flags):
        key = _source_key(cc, flags)
        so_path = cache / f"repro_kernels_{key}.so"
        if so_path.exists():
            return _load_and_probe(so_path)
        try:
            cache.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CompileBackendError(
                f"cannot create compiled-kernel cache dir {cache}: {exc}"
            ) from exc
        src_path = cache / f"repro_kernels_{key}.c"
        tmp_so = cache / f".repro_kernels_{key}.{os.getpid()}.so.tmp"
        try:
            src_path.write_text(_C_SOURCE)
            _compile(cc, src_path, tmp_so, flags)
        except CompileBackendError:
            tmp_so.unlink(missing_ok=True)
            if flags != base_flags:
                continue  # retry without -march=native
            raise
        os.replace(tmp_so, so_path)  # atomic under concurrent builders
        return _load_and_probe(so_path)
    raise CompileBackendError("C kernel build failed")  # pragma: no cover


def _load_and_probe(so_path: Path) -> ctypes.CDLL:
    try:
        lib = ctypes.CDLL(str(so_path))
        _declare(lib)
    except OSError as exc:
        raise CompileBackendError(
            f"could not load compiled kernels from {so_path}: {exc}"
        ) from exc
    _sanity_probe(lib)
    return lib


def _declare(lib: ctypes.CDLL) -> None:
    """Declare restype/argtypes (sizes int64, everything else raw pointers)."""
    i64 = ctypes.c_longlong
    ptr = ctypes.c_void_p
    dbl = ctypes.c_double
    signatures = {
        "repro_csr_spmv": (i64, ptr, ptr, ptr, ptr, ptr),
        "repro_csr_spmm": (i64, i64, ptr, ptr, ptr, ptr, ptr),
        "repro_csr_spmv_i8": (i64, ptr, ptr, ptr, ptr, dbl, ptr),
        "repro_csr_spmm_i8": (i64, i64, ptr, ptr, ptr, ptr, ptr, dbl, ptr, ptr, ptr),
        "repro_bspc_spmv": (
            i64, i64, i64, i64, ptr, ptr, ptr, ptr, ptr, ptr, ptr,
        ),
        "repro_bspc_spmm": (
            i64, i64, i64, i64, i64, ptr, ptr, ptr, ptr, ptr, ptr, ptr,
        ),
        "repro_linear_i8": (i64, i64, i64, ptr, ptr, dbl, ptr),
        "repro_linear_i8_rowwise": (i64, i64, i64, ptr, ptr, dbl, ptr, ptr),
        "repro_gru_sequence": (i64, i64, i64, ptr, ptr, ptr, ptr, ptr, ptr),
        "repro_lstm_sequence": (i64, i64, i64, ptr, ptr, ptr, ptr, ptr, ptr),
    }
    for suffix in ("f32", "f32w", "f64"):
        signatures[f"repro_bspc_spmv_i8_{suffix}"] = (
            i64, i64, i64, i64, i64, ptr, ptr, ptr, ptr, ptr, dbl,
            ptr, ptr, ptr,
        )
        signatures[f"repro_bspc_spmm_i8_{suffix}"] = (
            i64, i64, i64, i64, i64, i64, ptr, ptr, ptr, ptr, ptr, dbl,
            ptr, ptr, ptr, ptr,
        )
    try:
        for name, argtypes in signatures.items():
            fn = getattr(lib, name)
            fn.restype = None
            fn.argtypes = argtypes
    except AttributeError as exc:
        raise CompileBackendError(
            f"compiled kernel library is missing symbol: {exc}"
        ) from exc


def _sanity_probe(lib: ctypes.CDLL) -> None:
    """One tiny csr_spmv through the library; a stale or miscompiled
    ``.so`` fails here instead of corrupting results downstream."""
    values = np.array([2.0, 3.0, 4.0])
    cols = np.array([0, 2, 1], dtype=np.int64)
    row_ptr = np.array([0, 2, 3], dtype=np.int64)
    x = np.array([1.0, 10.0, 100.0])
    out = np.zeros(2)
    lib.repro_csr_spmv(
        2, _p(values), _p(cols), _p(row_ptr), _p(x), _p(out)
    )
    if not np.array_equal(out, [302.0, 40.0]):
        raise CompileBackendError(
            f"compiled kernel sanity probe produced {out.tolist()}, "
            "expected [302.0, 40.0]; refusing to register the backend"
        )


def _library() -> ctypes.CDLL:
    """The per-process library handle; builds on first use, errors once."""
    global _LIB, _LOAD_ERROR
    if _LIB is not None:
        return _LIB
    if _LOAD_ERROR is not None:
        raise _LOAD_ERROR
    try:
        _LIB = build_library()
    except CompileBackendError as exc:
        _LOAD_ERROR = exc
        raise
    return _LIB


def available() -> bool:
    """Whether the compiled backend can be (or has been) built and loaded."""
    try:
        _library()
    except CompileBackendError:
        return False
    return True


def load_error() -> Optional[CompileBackendError]:
    """The recorded build/load failure, if the backend is unavailable."""
    return _LOAD_ERROR


def _reset_for_tests() -> None:
    """Forget the cached handle/error so tests can re-probe the build."""
    global _LIB, _LOAD_ERROR
    _LIB = None
    _LOAD_ERROR = None


# ---------------------------------------------------------------------------
# ctypes helpers
# ---------------------------------------------------------------------------
def _p(array: np.ndarray) -> int:
    return array.ctypes.data


def _f64(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.float64)


def _i8(array: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(array, dtype=np.int8)


#: Reused per-process scratch buffers, grown on demand.  Fresh `np.empty`
#: calls above numpy's mmap threshold page-fault on every touch, which
#: costs more than the kernels themselves at bench sizes.  Same
#: single-thread discipline as the numpy backend's per-plan scratch
#: arrays (`Int8CSRPlan.gather_scratch` etc.).
_SCRATCH: dict = {}


def _scratch(key: str, size: int, dtype=np.float64) -> np.ndarray:
    arr = _SCRATCH.get(key)
    if arr is None or arr.size < size or arr.dtype != dtype:
        arr = np.empty(size, dtype=dtype)
        _SCRATCH[key] = arr
    return arr


#: j-block width of the packed activation tile — must match the `$W`
#: the C templates were stamped with.  16 lanes keeps the 4-row
#: microkernel's accumulators in registers for both dtypes (gcc fully
#: unrolls narrower inner loops into scalar code instead of
#: SLP-vectorizing them).
_TILE_LANES = {np.dtype(np.float32): 16, np.dtype(np.float64): 16}


# ---------------------------------------------------------------------------
# Kernel wrappers (registered under the "compiled" backend)
# ---------------------------------------------------------------------------
def csr_spmv(matrix, x: np.ndarray) -> np.ndarray:
    out = np.zeros(matrix.shape[0])
    if matrix.values.size:
        x = _f64(x)
        _library().repro_csr_spmv(
            matrix.shape[0],
            _p(matrix.values), _p(matrix.col_indices), _p(matrix.row_ptr),
            _p(x), _p(out),
        )
    return out


def csr_spmm(matrix, x: np.ndarray) -> np.ndarray:
    batch = x.shape[1]
    out = np.zeros((matrix.shape[0], batch))
    if matrix.values.size and batch:
        x = _f64(x)
        _library().repro_csr_spmm(
            matrix.shape[0], batch,
            _p(matrix.values), _p(matrix.col_indices), _p(matrix.row_ptr),
            _p(x), _p(out),
        )
    return out


def csr_spmv_int8(matrix, x: np.ndarray) -> np.ndarray:
    plan = int8_csr_plan(matrix)
    out = np.zeros(matrix.shape[0])
    if plan.nonempty_rows.size:
        xq, xs = int8_codes(x)
        xq = _i8(xq)
        _library().repro_csr_spmv_i8(
            matrix.shape[0],
            _p(plan.codes), _p(matrix.col_indices), _p(matrix.row_ptr),
            _p(xq), plan.scale * xs, _p(out),
        )
    return out


def csr_spmm_int8(matrix, x: np.ndarray) -> np.ndarray:
    plan = int8_csr_plan(matrix)
    batch = x.shape[1]
    out = np.zeros((matrix.shape[0], batch))
    if plan.nonempty_rows.size and batch:
        xq, xs = int8_codes_axis(x, axis=0)
        xq = _i8(xq)
        xs = np.ascontiguousarray(xs.reshape(-1), dtype=np.float64)
        acc = np.empty(batch, dtype=np.int64)
        acc32 = np.empty(batch, dtype=np.int32)
        _library().repro_csr_spmm_i8(
            matrix.shape[0], batch,
            _p(plan.codes), _p(matrix.col_indices), _p(matrix.row_ptr),
            _p(xq), _p(xs), plan.scale, _p(out), _p(acc), _p(acc32),
        )
    return out


def _pad_ptr(plan) -> Optional[int]:
    return plan.pad_cols.ctypes.data if plan.pad_cols is not None else None


def bspc_spmv(matrix, x: np.ndarray) -> np.ndarray:
    plan = bspc_plan(matrix)
    rows = plan.shape[0]
    out = np.zeros(rows + 1)
    if plan.panels.size:
        x = _f64(x)
        strips, mr, mc = plan.panels.shape
        xp = _scratch("bspc_xp_f64", mc)
        _library().repro_bspc_spmv(
            strips, mr, mc, rows,
            _p(plan.panels), _p(plan.gather_cols), _pad_ptr(plan),
            _p(plan.scatter_rows), _p(x), _p(xp), _p(out),
        )
    return out[:rows]


def bspc_spmm(matrix, x: np.ndarray) -> np.ndarray:
    plan = bspc_plan(matrix)
    rows = plan.shape[0]
    batch = x.shape[1]
    out = np.zeros((rows + 1, batch))
    if plan.panels.size and batch:
        x = _f64(x)
        strips, mr, mc = plan.panels.shape
        xp = _scratch("bspc_xp_f64", mc * 16)
        _library().repro_bspc_spmm(
            strips, mr, mc, rows, batch,
            _p(plan.panels), _p(plan.gather_cols), _pad_ptr(plan),
            _p(plan.scatter_rows), _p(x), _p(xp), _p(out),
        )
    return out[:rows]


def _int8_bspc_fn(lib, op: str, ft: np.dtype, strips: int, mc: int):
    """Pick the kernel stamp and accumulator dtype for an int8 BSPC plan.

    The narrow float32 accumulator is exact only while the whole-row
    reduction (bounded by ``strips * mc`` gathered columns) keeps integer
    partial sums below 2^24; past that, float codes pair with the wide
    f64-accumulator ``f32w`` stamp instead.
    """
    if ft != np.float32:
        return getattr(lib, f"repro_bspc_{op}_i8_f64"), np.float64
    if strips * mc <= F32_EXACT_INNER:
        return getattr(lib, f"repro_bspc_{op}_i8_f32"), np.float32
    return getattr(lib, f"repro_bspc_{op}_i8_f32w"), np.float64


def bspc_spmv_int8(matrix, x: np.ndarray) -> np.ndarray:
    plan = int8_bspc_plan(matrix)
    base = plan.base
    rows = base.shape[0]
    if not base.panels.size:
        return np.zeros(rows)
    lib = _library()
    ft = plan.codes_f.dtype
    x = _f64(x)
    strips, mr, mc = base.panels.shape
    fn, at = _int8_bspc_fn(lib, "spmv", ft, strips, mc)
    xp = _scratch("bspc_xp", mc * _TILE_LANES[ft], ft)
    acc = _scratch("bspc_acc", rows + 1, at)
    out = np.empty(rows)  # the dequant pass writes every row
    fn(
        strips, mr, mc, rows, x.size,
        _p(plan.codes_f), _p(base.gather_cols), None,
        _p(base.scatter_rows), _p(x), plan.scale,
        _p(xp), _p(acc), _p(out),
    )
    return out


def bspc_spmm_int8(matrix, x: np.ndarray) -> np.ndarray:
    plan = int8_bspc_plan(matrix)
    base = plan.base
    rows = base.shape[0]
    batch = x.shape[1]
    if not base.panels.size or not batch:
        return np.zeros((rows, batch))
    lib = _library()
    ft = plan.codes_f.dtype
    x = _f64(x)
    xs = _scratch("bspc_xs", batch)
    strips, mr, mc = base.panels.shape
    fn, at = _int8_bspc_fn(lib, "spmm", ft, strips, mc)
    xp = _scratch("bspc_xp", mc * _TILE_LANES[ft], ft)
    acc = _scratch("bspc_acc", (rows + 1) * batch, at)
    out = np.empty((rows, batch))  # the dequant pass writes every element
    fn(
        strips, mr, mc, rows, x.shape[0], batch,
        _p(plan.codes_f), _p(base.gather_cols), None,
        _p(base.scatter_rows), _p(x), plan.scale, _p(xs),
        _p(xp), _p(acc), _p(out),
    )
    return out


def linear_int8(codes: np.ndarray, scale: float, x: np.ndarray) -> np.ndarray:
    codes = _i8(codes)  # engine plans may hand over the float32 pre-cast copy
    xq, xs = int8_codes(x)
    xq = _i8(xq)
    n, k = xq.shape
    m = codes.shape[0]
    out = np.empty((n, m))
    if n and m:
        _library().repro_linear_i8(
            n, m, k, _p(xq), _p(codes), scale * xs, _p(out)
        )
    return out


def linear_int8_rowwise(
    codes: np.ndarray, scale: float, x: np.ndarray
) -> np.ndarray:
    codes = _i8(codes)
    xq, xs = int8_codes_axis(x, axis=1)
    xq = _i8(xq)
    xs = np.ascontiguousarray(xs.reshape(-1), dtype=np.float64)
    n, k = xq.shape
    m = codes.shape[0]
    out = np.empty((n, m))
    if n and m:
        _library().repro_linear_i8_rowwise(
            n, m, k, _p(xq), _p(codes), scale, _p(xs), _p(out)
        )
    return out


def gru_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
    h0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    seq_len, batch, _ = x.shape
    hidden = h0.shape[1]
    # Hoisted input projection + bias folding: identical numpy expressions
    # to the numpy backend, so both backends feed the recurrence the same
    # gate pre-activations bit for bit.
    gates_x = (x.reshape(seq_len * batch, -1) @ w_ih.T + b_ih).reshape(
        seq_len, batch, 3 * hidden
    )
    gates_x[:, :, : 2 * hidden] += b_hh[: 2 * hidden]
    gates_x = _f64(gates_x)
    b_hh_h = _f64(b_hh[2 * hidden :])
    w_hh_t = _f64(np.asarray(w_hh, dtype=np.float64).T)
    h = _f64(h0).copy()
    out = np.empty((seq_len, batch, hidden))
    if seq_len and batch:
        gh = np.empty((batch, 3 * hidden))
        _library().repro_gru_sequence(
            seq_len, batch, hidden,
            _p(gates_x), _p(w_hh_t), _p(b_hh_h), _p(h), _p(out), _p(gh),
        )
    return out, h


def lstm_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    seq_len, batch, _ = x.shape
    hidden = h0.shape[1]
    gates_x = (x.reshape(seq_len * batch, -1) @ w_ih.T + bias).reshape(
        seq_len, batch, 4 * hidden
    )
    gates_x = _f64(gates_x)
    w_hh_t = _f64(np.asarray(w_hh, dtype=np.float64).T)
    h = _f64(h0).copy()
    c = _f64(c0).copy()
    out = np.empty((seq_len, batch, hidden))
    if seq_len and batch:
        gh = np.empty((batch, 4 * hidden))
        _library().repro_lstm_sequence(
            seq_len, batch, hidden,
            _p(gates_x), _p(w_hh_t), _p(h), _p(c), _p(out), _p(gh),
        )
    return out, h, c


#: op name → compiled implementation.  The BPTT grad ops alias the numpy
#: implementations (see the module docstring) so every registered op
#: dispatches under this backend.
_KERNELS = {
    "csr_spmv": csr_spmv,
    "csr_spmm": csr_spmm,
    "csr_spmv_int8": csr_spmv_int8,
    "csr_spmm_int8": csr_spmm_int8,
    "bspc_spmv": bspc_spmv,
    "bspc_spmm": bspc_spmm,
    "bspc_spmv_int8": bspc_spmv_int8,
    "bspc_spmm_int8": bspc_spmm_int8,
    "linear_int8": linear_int8,
    "linear_int8_rowwise": linear_int8_rowwise,
    "gru_sequence": gru_sequence,
    "lstm_sequence": lstm_sequence,
    "gru_sequence_grad": _np_backend.gru_sequence_grad,
    "lstm_sequence_grad": _np_backend.lstm_sequence_grad,
}

def register_compiled_backend(
    target: Optional[KernelRegistry] = None,
) -> bool:
    """Probe the build and register every op under ``"compiled"``.

    Returns ``True`` when the backend registered, ``False`` (after
    recording the :class:`CompileBackendError` once — see
    :func:`load_error`) when no working compiler/library is available.
    Safe to call repeatedly; re-registration is idempotent.
    """
    target = target if target is not None else registry
    try:
        _library()
    except CompileBackendError:
        return False
    for op, fn in _KERNELS.items():
        target.register(op, BACKEND, fn, override=True)
    return True
