"""Vectorized execution backend with a pluggable kernel registry.

Hot numerical paths of the library dispatch through this package:

* :func:`spmv` / :func:`spmm` — sparse matrix × vector/matrix for any
  matrix exposing a ``kernel_prefix`` (``CSRMatrix``, ``BSPCMatrix``),
* :func:`gru_sequence` / :func:`lstm_sequence` — fused full-sequence
  recurrent layers used by ``GRU.forward``/``LSTM.forward`` in eval mode.

Backend selection::

    from repro import kernels

    kernels.set_default_backend("reference")     # global
    with kernels.use_backend("reference"): ...   # lexical
    kernels.spmv(matrix, x, backend="numpy")     # per call

See ``docs/kernels.md`` for the plan/registry design and how to add a
backend.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError, KernelError
from repro.kernels import numpy_backend, quantized, reference  # noqa: F401  (register backends)
from repro.kernels import compiled  # noqa: F401  (registers conditionally below)
from repro.kernels.plans import (
    BSPCPlan,
    CSRPlan,
    bspc_plan,
    csr_plan,
    pack_bspc_plan,
)
from repro.kernels.quantized import (
    Int8BSPCPlan,
    Int8CSRPlan,
    int8_bspc_plan,
    int8_codes,
    int8_codes_axis,
    int8_csr_plan,
)
from repro.kernels.registry import (
    KernelRegistry,
    get_default_backend,
    registry,
    set_default_backend,
    use_backend,
)

__all__ = [
    "KernelRegistry",
    "registry",
    "backends",
    "resolve_backend",
    "compiled",
    "set_default_backend",
    "get_default_backend",
    "use_backend",
    "CSRPlan",
    "BSPCPlan",
    "csr_plan",
    "bspc_plan",
    "pack_bspc_plan",
    "Int8CSRPlan",
    "Int8BSPCPlan",
    "int8_csr_plan",
    "int8_bspc_plan",
    "int8_codes",
    "int8_codes_axis",
    "spmv",
    "spmm",
    "spmv_int8",
    "spmm_int8",
    "linear_int8",
    "linear_int8_rowwise",
    "gru_sequence",
    "lstm_sequence",
    "gru_sequence_grad",
    "lstm_sequence_grad",
]


def backends() -> Tuple[str, ...]:
    """The registered backend names (what a tuned plan's ``backend``
    attribute or the CLI ``--kernel-backend`` flag may name)."""
    return tuple(registry.backends())


def _matrix_op(matrix, op: str) -> str:
    prefix = getattr(matrix, "kernel_prefix", None)
    if prefix is None:
        raise KernelError(
            f"{type(matrix).__name__} does not declare a kernel_prefix; "
            "cannot dispatch sparse kernels for it"
        )
    return f"{prefix}_{op}"


def spmv(matrix, x: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
    """Sparse matrix × dense vector through the registry."""
    return registry.get(_matrix_op(matrix, "spmv"), backend)(matrix, x)


def spmm(matrix, x: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
    """Sparse matrix × dense matrix through the registry."""
    return registry.get(_matrix_op(matrix, "spmm"), backend)(matrix, x)


def spmv_int8(matrix, x: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
    """Int8 sparse matrix × dense vector (weights and activations
    quantized, integer accumulation, one dequant at the end)."""
    return registry.get(_matrix_op(matrix, "spmv_int8"), backend)(matrix, x)


def spmm_int8(matrix, x: np.ndarray, backend: Optional[str] = None) -> np.ndarray:
    """Int8 sparse matrix × dense matrix through the registry."""
    return registry.get(_matrix_op(matrix, "spmm_int8"), backend)(matrix, x)


def linear_int8(
    codes: np.ndarray, scale: float, x: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Dense int8 projection ``x @ codes.T`` with integer accumulation
    and one activation scale per call."""
    return registry.get("linear_int8", backend)(codes, scale, x)


def linear_int8_rowwise(
    codes: np.ndarray, scale: float, x: np.ndarray, backend: Optional[str] = None
) -> np.ndarray:
    """Dense int8 projection with one activation scale per *row* of ``x``
    (per frame) — each row's result is independent of the rest of the
    batch, so compiled int8 plans stay bitwise chunk-exact under
    streaming execution.  This is the op the engine uses for quantized
    sequence/output projections."""
    return registry.get("linear_int8_rowwise", backend)(codes, scale, x)


def gru_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
    h0: np.ndarray,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One GRU layer over a ``(T, B, D)`` sequence → ``(outputs, h_T)``."""
    return registry.get("gru_sequence", backend)(x, w_ih, w_hh, b_ih, b_hh, h0)


def lstm_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One LSTM layer over a ``(T, B, D)`` sequence → ``(outputs, h_T, c_T)``."""
    return registry.get("lstm_sequence", backend)(x, w_ih, w_hh, bias, h0, c0)


def gru_sequence_grad(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
    h0: np.ndarray,
    backend: Optional[str] = None,
):
    """Trainable GRU layer: full-sequence forward plus a BPTT closure.

    Returns ``(outputs, h_T, backward)`` where
    ``backward(grad_out, grad_h_T=None)`` yields
    ``(dx, dw_ih, dw_hh, db_ih, db_hh, dh0)``.  The ``reference`` backend
    runs the autograd tape (ground truth); ``numpy`` is the fused
    stash-and-batch BPTT used by ``GRU.forward`` in training mode.
    """
    return registry.get("gru_sequence_grad", backend)(x, w_ih, w_hh, b_ih, b_hh, h0)


def lstm_sequence_grad(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
    backend: Optional[str] = None,
):
    """Trainable LSTM layer: full-sequence forward plus a BPTT closure.

    Returns ``(outputs, h_T, c_T, backward)`` where ``backward(grad_out)``
    yields ``(dx, dw_ih, dw_hh, dbias, dh0, dc0)``.
    """
    return registry.get("lstm_sequence_grad", backend)(x, w_ih, w_hh, bias, h0, c0)


def resolve_backend(name: str, source: str = "backend") -> str:
    """Validate a user-supplied backend name against the registry.

    Raises a typed :class:`~repro.errors.ConfigError` naming the
    available backends — the shared validation for
    ``REPRO_KERNEL_BACKEND``, ``--kernel-backend``, and ``tune_plan``'s
    backend axis, all of which take free-form strings from outside the
    library.
    """
    if name not in backends():
        raise ConfigError(
            f"{source} names unknown kernel backend {name!r}; "
            f"available: {', '.join(backends())}"
        )
    return name


# The compiled C backend registers only when a working compiler (and a
# loadable, probe-passing .so) is actually present; otherwise the typed
# CompileBackendError is recorded once (kernels.compiled.load_error())
# and everything stays on the numpy backend.
compiled.register_compiled_backend()

# The REPRO_KERNEL_BACKEND environment variable selects the process-wide
# default backend at import time — how CI runs the whole test suite under
# each backend without touching test code.  An unknown name fails fast
# with a typed ConfigError listing what is registered (on a host without
# a C compiler, asking for "compiled" lands here too).
_env_backend = os.environ.get("REPRO_KERNEL_BACKEND")
if _env_backend:
    set_default_backend(resolve_backend(_env_backend, "REPRO_KERNEL_BACKEND"))
del _env_backend
