"""Reference backend: the original straight-line Python-loop kernels.

These are the seed implementations of the library, moved verbatim behind
the registry.  They iterate row-by-row (CSR) or strip-by-strip/block-by-
block (BSPC) and re-project the RNN input at every timestep — slow, but
each line maps directly onto the math, which is why the equivalence suite
(``tests/test_kernels_equivalence.py``) treats them as ground truth for
every faster backend.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels._math import sigmoid as _sigmoid
from repro.kernels.registry import registry


# ---------------------------------------------------------------------------
# CSR
# ---------------------------------------------------------------------------
@registry.register("csr_spmv", "reference")
def csr_spmv(matrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix × dense vector, one dot product per row."""
    out = np.zeros(matrix.shape[0])
    for r in range(matrix.shape[0]):
        start, stop = matrix.row_ptr[r], matrix.row_ptr[r + 1]
        out[r] = matrix.values[start:stop] @ x[matrix.col_indices[start:stop]]
    return out


@registry.register("csr_spmm", "reference")
def csr_spmm(matrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix × dense matrix, one row at a time."""
    out = np.zeros((matrix.shape[0], x.shape[1]))
    for r in range(matrix.shape[0]):
        start, stop = matrix.row_ptr[r], matrix.row_ptr[r + 1]
        out[r] = matrix.values[start:stop] @ x[matrix.col_indices[start:stop], :]
    return out


# ---------------------------------------------------------------------------
# BSPC
# ---------------------------------------------------------------------------
@registry.register("bspc_spmv", "reference")
def bspc_spmv(matrix, x: np.ndarray) -> np.ndarray:
    """Gather → dense panel multiply → scatter, per strip and block."""
    out = np.zeros(matrix.grid.rows)
    for strip in matrix.strips:
        if not strip.kept_rows.size:
            continue
        acc = np.zeros(len(strip.kept_rows))
        for block in strip.blocks:
            if block.kept_cols.size:
                acc += block.panel @ x[block.kept_cols]
        out[strip.kept_rows] += acc
    return out


@registry.register("bspc_spmm", "reference")
def bspc_spmm(matrix, x: np.ndarray) -> np.ndarray:
    """Batched variant of :func:`bspc_spmv`; columns of ``x`` are
    independent input vectors."""
    out = np.zeros((matrix.grid.rows, x.shape[1]))
    for strip in matrix.strips:
        if not strip.kept_rows.size:
            continue
        acc = np.zeros((len(strip.kept_rows), x.shape[1]))
        for block in strip.blocks:
            if block.kept_cols.size:
                acc += block.panel @ x[block.kept_cols, :]
        out[strip.kept_rows] += acc
    return out


# ---------------------------------------------------------------------------
# Recurrent sequence kernels
# ---------------------------------------------------------------------------
@registry.register("gru_sequence", "reference")
def gru_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
    h0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One GRU layer over a ``(T, B, D)`` sequence, timestep by timestep.

    Exactly the per-step math of ``GRUCell.forward`` (Cho et al. 2014),
    including re-projecting the input at every step.  Returns the
    ``(T, B, H)`` hidden sequence and the final ``(B, H)`` state.
    """
    seq_len = x.shape[0]
    hidden = h0.shape[1]
    h = h0
    outputs = []
    for t in range(seq_len):
        gx = x[t] @ w_ih.T + b_ih
        gh = h @ w_hh.T + b_hh
        z = _sigmoid(gx[:, :hidden] + gh[:, :hidden])
        r = _sigmoid(gx[:, hidden : 2 * hidden] + gh[:, hidden : 2 * hidden])
        h_tilde = np.tanh(gx[:, 2 * hidden :] + r * gh[:, 2 * hidden :])
        h = (1.0 - z) * h + z * h_tilde
        outputs.append(h)
    return np.stack(outputs, axis=0), h


@registry.register("lstm_sequence", "reference")
def lstm_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One LSTM layer over a ``(T, B, D)`` sequence, timestep by timestep.

    Gate order ``[input, forget, cell, output]`` as in ``LSTMCell``.
    Returns the hidden sequence and the final ``(h, c)`` state.
    """
    seq_len = x.shape[0]
    hidden = h0.shape[1]
    h, c = h0, c0
    outputs = []
    for t in range(seq_len):
        gates = x[t] @ w_ih.T + h @ w_hh.T + bias
        i = _sigmoid(gates[:, :hidden])
        f = _sigmoid(gates[:, hidden : 2 * hidden])
        g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o = _sigmoid(gates[:, 3 * hidden :])
        c = f * c + i * g
        h = o * np.tanh(c)
        outputs.append(h)
    return np.stack(outputs, axis=0), h, c
