"""Reference backend: the original straight-line Python-loop kernels.

These are the seed implementations of the library, moved verbatim behind
the registry.  They iterate row-by-row (CSR) or strip-by-strip/block-by-
block (BSPC) and re-project the RNN input at every timestep — slow, but
each line maps directly onto the math, which is why the equivalence suite
(``tests/test_kernels_equivalence.py``) treats them as ground truth for
every faster backend.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels._math import sigmoid as _sigmoid
from repro.kernels.registry import registry


# ---------------------------------------------------------------------------
# CSR
# ---------------------------------------------------------------------------
@registry.register("csr_spmv", "reference")
def csr_spmv(matrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix × dense vector, one dot product per row."""
    out = np.zeros(matrix.shape[0])
    for r in range(matrix.shape[0]):
        start, stop = matrix.row_ptr[r], matrix.row_ptr[r + 1]
        out[r] = matrix.values[start:stop] @ x[matrix.col_indices[start:stop]]
    return out


@registry.register("csr_spmm", "reference")
def csr_spmm(matrix, x: np.ndarray) -> np.ndarray:
    """Sparse matrix × dense matrix, one row at a time."""
    out = np.zeros((matrix.shape[0], x.shape[1]))
    for r in range(matrix.shape[0]):
        start, stop = matrix.row_ptr[r], matrix.row_ptr[r + 1]
        out[r] = matrix.values[start:stop] @ x[matrix.col_indices[start:stop], :]
    return out


# ---------------------------------------------------------------------------
# BSPC
# ---------------------------------------------------------------------------
@registry.register("bspc_spmv", "reference")
def bspc_spmv(matrix, x: np.ndarray) -> np.ndarray:
    """Gather → dense panel multiply → scatter, per strip and block."""
    out = np.zeros(matrix.grid.rows)
    for strip in matrix.strips:
        if not strip.kept_rows.size:
            continue
        acc = np.zeros(len(strip.kept_rows))
        for block in strip.blocks:
            if block.kept_cols.size:
                acc += block.panel @ x[block.kept_cols]
        out[strip.kept_rows] += acc
    return out


@registry.register("bspc_spmm", "reference")
def bspc_spmm(matrix, x: np.ndarray) -> np.ndarray:
    """Batched variant of :func:`bspc_spmv`; columns of ``x`` are
    independent input vectors."""
    out = np.zeros((matrix.grid.rows, x.shape[1]))
    for strip in matrix.strips:
        if not strip.kept_rows.size:
            continue
        acc = np.zeros((len(strip.kept_rows), x.shape[1]))
        for block in strip.blocks:
            if block.kept_cols.size:
                acc += block.panel @ x[block.kept_cols, :]
        out[strip.kept_rows] += acc
    return out


# ---------------------------------------------------------------------------
# Recurrent sequence kernels
# ---------------------------------------------------------------------------
@registry.register("gru_sequence", "reference")
def gru_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
    h0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """One GRU layer over a ``(T, B, D)`` sequence, timestep by timestep.

    Exactly the per-step math of ``GRUCell.forward`` (Cho et al. 2014),
    including re-projecting the input at every step.  Returns the
    ``(T, B, H)`` hidden sequence and the final ``(B, H)`` state.
    """
    seq_len = x.shape[0]
    hidden = h0.shape[1]
    h = h0
    outputs = []
    for t in range(seq_len):
        gx = x[t] @ w_ih.T + b_ih
        gh = h @ w_hh.T + b_hh
        z = _sigmoid(gx[:, :hidden] + gh[:, :hidden])
        r = _sigmoid(gx[:, hidden : 2 * hidden] + gh[:, hidden : 2 * hidden])
        h_tilde = np.tanh(gx[:, 2 * hidden :] + r * gh[:, 2 * hidden :])
        h = (1.0 - z) * h + z * h_tilde
        outputs.append(h)
    return np.stack(outputs, axis=0), h


@registry.register("gru_sequence_grad", "reference")
def gru_sequence_grad(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    b_ih: np.ndarray,
    b_hh: np.ndarray,
    h0: np.ndarray,
):
    """Trainable GRU layer backed by the autograd tape (ground truth).

    Runs the exact per-timestep ``GRUCell`` math through
    :class:`repro.nn.tensor.Tensor`, so the returned backward closure is the
    tape's own BPTT.  Returns ``(outputs, h_T, backward)`` where
    ``backward(grad_out, grad_h_T=None)`` yields
    ``(dx, dw_ih, dw_hh, db_ih, db_hh, dh0)``.
    """
    from repro.nn.tensor import Tensor, stack

    hidden = h0.shape[1]
    xt = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    wih = Tensor(np.asarray(w_ih, dtype=np.float64), requires_grad=True)
    whh = Tensor(np.asarray(w_hh, dtype=np.float64), requires_grad=True)
    bih = Tensor(np.asarray(b_ih, dtype=np.float64), requires_grad=True)
    bhh = Tensor(np.asarray(b_hh, dtype=np.float64), requires_grad=True)
    h0t = Tensor(np.asarray(h0, dtype=np.float64), requires_grad=True)
    h = h0t
    outputs = []
    for t in range(x.shape[0]):
        gx = xt[t].matmul(wih.T) + bih
        gh = h.matmul(whh.T) + bhh
        z = (gx[:, :hidden] + gh[:, :hidden]).sigmoid()
        r = (gx[:, hidden : 2 * hidden] + gh[:, hidden : 2 * hidden]).sigmoid()
        h_tilde = (gx[:, 2 * hidden :] + r * gh[:, 2 * hidden :]).tanh()
        h = (1.0 - z) * h + z * h_tilde
        outputs.append(h)
    out = stack(outputs, axis=0)
    leaves = (xt, wih, whh, bih, bhh, h0t)

    def backward(grad_out: np.ndarray, grad_h_T=None, need_dx: bool = True):
        seed = np.array(grad_out, dtype=np.float64, copy=True)
        if grad_h_T is not None:
            seed[-1] += grad_h_T
        out.backward(seed)
        return tuple(
            leaf.grad if leaf.grad is not None else np.zeros_like(leaf.data)
            for leaf in leaves
        )

    return out.data, out.data[-1], backward


@registry.register("lstm_sequence_grad", "reference")
def lstm_sequence_grad(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
):
    """Trainable LSTM layer backed by the autograd tape (ground truth).

    Returns ``(outputs, h_T, c_T, backward)`` where
    ``backward(grad_out)`` yields ``(dx, dw_ih, dw_hh, dbias, dh0, dc0)``.
    """
    from repro.nn.tensor import Tensor, stack

    hidden = h0.shape[1]
    xt = Tensor(np.asarray(x, dtype=np.float64), requires_grad=True)
    wih = Tensor(np.asarray(w_ih, dtype=np.float64), requires_grad=True)
    whh = Tensor(np.asarray(w_hh, dtype=np.float64), requires_grad=True)
    bt = Tensor(np.asarray(bias, dtype=np.float64), requires_grad=True)
    h0t = Tensor(np.asarray(h0, dtype=np.float64), requires_grad=True)
    c0t = Tensor(np.asarray(c0, dtype=np.float64), requires_grad=True)
    h, c = h0t, c0t
    outputs = []
    for t in range(x.shape[0]):
        gates = xt[t].matmul(wih.T) + h.matmul(whh.T) + bt
        i = gates[:, :hidden].sigmoid()
        f = gates[:, hidden : 2 * hidden].sigmoid()
        g = gates[:, 2 * hidden : 3 * hidden].tanh()
        o = gates[:, 3 * hidden :].sigmoid()
        c = f * c + i * g
        h = o * c.tanh()
        outputs.append(h)
    out = stack(outputs, axis=0)
    leaves = (xt, wih, whh, bt, h0t, c0t)

    def backward(grad_out: np.ndarray, need_dx: bool = True):
        out.backward(np.asarray(grad_out, dtype=np.float64))
        return tuple(
            leaf.grad if leaf.grad is not None else np.zeros_like(leaf.data)
            for leaf in leaves
        )

    return out.data, out.data[-1], c.data, backward


@registry.register("lstm_sequence", "reference")
def lstm_sequence(
    x: np.ndarray,
    w_ih: np.ndarray,
    w_hh: np.ndarray,
    bias: np.ndarray,
    h0: np.ndarray,
    c0: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One LSTM layer over a ``(T, B, D)`` sequence, timestep by timestep.

    Gate order ``[input, forget, cell, output]`` as in ``LSTMCell``.
    Returns the hidden sequence and the final ``(h, c)`` state.
    """
    seq_len = x.shape[0]
    hidden = h0.shape[1]
    h, c = h0, c0
    outputs = []
    for t in range(seq_len):
        gates = x[t] @ w_ih.T + h @ w_hh.T + bias
        i = _sigmoid(gates[:, :hidden])
        f = _sigmoid(gates[:, hidden : 2 * hidden])
        g = np.tanh(gates[:, 2 * hidden : 3 * hidden])
        o = _sigmoid(gates[:, 3 * hidden :])
        c = f * c + i * g
        h = o * np.tanh(c)
        outputs.append(h)
    return np.stack(outputs, axis=0), h, c
