"""Offline auto-tuning (last paragraph of Section IV-B).

The tuner searches execution configurations — tile rows per thread, unroll
factor — and, optionally, the BSP block grid (``Numr × Numc``), scoring
each candidate with the analytic simulator.  ``find_best_block_size`` also
folds in an accuracy proxy so the chosen block size is "an optimal
combination of accuracy and performance", as the paper puts it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.codegen import CompileOptions
from repro.compiler.ir import TileConfig
from repro.compiler.pipeline import compile_model
from repro.errors import CompilationError
from repro.hw.device import DeviceSpec
from repro.pruning.bsp import BSPConfig, bsp_project_masks


@dataclass(frozen=True)
class TuningCandidate:
    """One evaluated configuration and its simulated latency."""

    tile: TileConfig
    num_row_strips: int
    num_col_blocks: int
    latency_us: float
    accuracy_proxy: float = 0.0

    def score(self, latency_weight: float = 1.0, accuracy_weight: float = 0.0) -> float:
        """Lower is better: weighted latency minus weighted accuracy proxy."""
        return latency_weight * self.latency_us - accuracy_weight * self.accuracy_proxy


@dataclass
class TuningResult:
    """Best configuration found plus the full exploration trace."""

    best: TuningCandidate
    trace: List[TuningCandidate] = field(default_factory=list)

    @property
    def num_evaluated(self) -> int:
        return len(self.trace)


def default_tile_space(max_rows_per_thread: int = 16) -> List[TileConfig]:
    """The tile/unroll grid the tuner explores by default."""
    space = []
    rows = 1
    while rows <= max_rows_per_thread:
        for unroll in (1, 2, 4):
            space.append(TileConfig(rows_per_thread=rows, unroll=unroll))
        rows *= 2
    return space


def tune_execution_config(
    named_weights: Dict[str, np.ndarray],
    device: DeviceSpec,
    base_options: Optional[CompileOptions] = None,
    tile_space: Optional[Sequence[TileConfig]] = None,
) -> TuningResult:
    """Search tile configurations for the lowest simulated latency."""
    base = base_options or CompileOptions()
    tile_space = list(default_tile_space() if tile_space is None else tile_space)
    if not tile_space:
        raise CompilationError("tile_space must not be empty")
    trace: List[TuningCandidate] = []
    for tile in tile_space:
        options = CompileOptions(
            format_name=base.format_name,
            enable_reorder=base.enable_reorder,
            enable_load_elimination=base.enable_load_elimination,
            num_row_strips=base.num_row_strips,
            num_col_blocks=base.num_col_blocks,
            tile=tile,
        )
        compiled = compile_model(named_weights, options)
        latency = compiled.simulate(device).latency_us
        trace.append(
            TuningCandidate(
                tile=tile,
                num_row_strips=base.num_row_strips,
                num_col_blocks=base.num_col_blocks,
                latency_us=latency,
            )
        )
    best = min(trace, key=lambda c: c.latency_us)
    return TuningResult(best=best, trace=trace)


def _retained_energy(weight: np.ndarray, mask_keep: np.ndarray) -> float:
    """Accuracy proxy: fraction of the weight tensor's squared norm kept.

    A cheap, training-free stand-in for post-pruning accuracy — block grids
    that let BSP keep the strongest weights retain more of the layer's
    energy and, empirically, more of its accuracy.
    """
    total = float(np.sum(weight**2))
    if total == 0.0:
        return 1.0
    kept = float(np.sum((weight * mask_keep) ** 2))
    return kept / total


def find_best_block_size(
    named_weights: Dict[str, np.ndarray],
    device: DeviceSpec,
    col_rate: float,
    row_rate: float,
    strip_choices: Iterable[int] = (1, 2, 4, 8),
    block_choices: Iterable[int] = (2, 4, 8, 16),
    accuracy_weight: float = 100.0,
    tile: Optional[TileConfig] = None,
) -> TuningResult:
    """Search the BSP block grid (``Numr × Numc``) for the best
    accuracy/latency combination at a fixed compression target.

    For each grid, the weights are BSP-projected, compiled, and simulated;
    the score combines simulated latency with the retained-energy accuracy
    proxy (scaled by ``accuracy_weight`` µs per unit of retained energy).
    """
    tile = tile or TileConfig()
    shapes = [np.asarray(w).shape for w in named_weights.values()]
    min_rows = min(s[0] for s in shapes)
    min_cols = min(s[1] for s in shapes)
    trace: List[TuningCandidate] = []
    for strips in strip_choices:
        if strips > min_rows:
            continue
        for blocks in block_choices:
            if blocks > min_cols:
                continue
            config = BSPConfig(
                col_rate=col_rate,
                row_rate=row_rate,
                num_row_strips=strips,
                num_col_blocks=blocks,
            )
            masks = bsp_project_masks(named_weights, config)
            pruned = {
                name: masks[name].apply_to_array(np.asarray(w))
                for name, w in named_weights.items()
            }
            proxy = float(
                np.mean(
                    [
                        _retained_energy(np.asarray(w), masks[name].keep)
                        for name, w in named_weights.items()
                    ]
                )
            )
            options = CompileOptions(
                num_row_strips=strips, num_col_blocks=blocks, tile=tile
            )
            latency = compile_model(pruned, options).simulate(device).latency_us
            trace.append(
                TuningCandidate(
                    tile=tile,
                    num_row_strips=strips,
                    num_col_blocks=blocks,
                    latency_us=latency,
                    accuracy_proxy=proxy,
                )
            )
    if not trace:
        raise CompilationError("no feasible block grid for the given weights")
    best = min(trace, key=lambda c: c.score(accuracy_weight=accuracy_weight))
    return TuningResult(best=best, trace=trace)
