"""Offline auto-tuning (last paragraph of Section IV-B) — simulated and
measured.

Two tiers:

* **Simulated** (the paper's tuner): :func:`tune_execution_config`
  searches execution configurations — tile rows per thread, unroll
  factor — and :func:`find_best_block_size` the BSP block grid
  (``Numr × Numc``), scoring each candidate with the analytic simulator;
  the block-size search folds in an accuracy proxy so the chosen grid is
  "an optimal combination of accuracy and performance", as the paper
  puts it.
* **Measured**: :func:`tune_plan` tunes the *executable* engine — it
  evaluates candidate per-layer configurations (dense vs CSR vs BSPC,
  quantization scheme, kernel backend) by timing the real
  :class:`~repro.engine.plan.ModelPlan` on a calibration batch, using
  the analytic simulator as a pre-filter that prunes each layer's format
  choices before anything is measured.  The default configuration is
  always in the candidate set, so the tuned plan is never slower than it
  on the calibration workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.codegen import CompileOptions, layer_plan_from_slot
from repro.compiler.ir import GraphOptions, LayerGraph, TileConfig, WeightSlot
from repro.compiler.passes import run_passes
from repro.compiler.pipeline import compile_for_simulation
from repro.errors import CompilationError, ConfigError
from repro.hw.device import DeviceSpec
from repro.pruning.bsp import BSPConfig, bsp_project_masks


@dataclass(frozen=True)
class TuningCandidate:
    """One evaluated configuration and its simulated latency."""

    tile: TileConfig
    num_row_strips: int
    num_col_blocks: int
    latency_us: float
    accuracy_proxy: float = 0.0

    def score(self, latency_weight: float = 1.0, accuracy_weight: float = 0.0) -> float:
        """Lower is better: weighted latency minus weighted accuracy proxy."""
        return latency_weight * self.latency_us - accuracy_weight * self.accuracy_proxy


@dataclass
class TuningResult:
    """Best configuration found plus the full exploration trace."""

    best: TuningCandidate
    trace: List[TuningCandidate] = field(default_factory=list)

    @property
    def num_evaluated(self) -> int:
        return len(self.trace)


def default_tile_space(max_rows_per_thread: int = 16) -> List[TileConfig]:
    """The tile/unroll grid the tuner explores by default."""
    space = []
    rows = 1
    while rows <= max_rows_per_thread:
        for unroll in (1, 2, 4):
            space.append(TileConfig(rows_per_thread=rows, unroll=unroll))
        rows *= 2
    return space


def tune_execution_config(
    named_weights: Dict[str, np.ndarray],
    device: DeviceSpec,
    base_options: Optional[CompileOptions] = None,
    tile_space: Optional[Sequence[TileConfig]] = None,
) -> TuningResult:
    """Search tile configurations for the lowest simulated latency."""
    base = base_options or CompileOptions()
    tile_space = list(default_tile_space() if tile_space is None else tile_space)
    if not tile_space:
        raise CompilationError("tile_space must not be empty")
    trace: List[TuningCandidate] = []
    for tile in tile_space:
        options = CompileOptions(
            format_name=base.format_name,
            enable_reorder=base.enable_reorder,
            enable_load_elimination=base.enable_load_elimination,
            num_row_strips=base.num_row_strips,
            num_col_blocks=base.num_col_blocks,
            tile=tile,
        )
        compiled = compile_for_simulation(named_weights, options)
        latency = compiled.simulate(device).latency_us
        trace.append(
            TuningCandidate(
                tile=tile,
                num_row_strips=base.num_row_strips,
                num_col_blocks=base.num_col_blocks,
                latency_us=latency,
            )
        )
    best = min(trace, key=lambda c: c.latency_us)
    return TuningResult(best=best, trace=trace)


def _retained_energy(weight: np.ndarray, mask_keep: np.ndarray) -> float:
    """Accuracy proxy: fraction of the weight tensor's squared norm kept.

    A cheap, training-free stand-in for post-pruning accuracy — block grids
    that let BSP keep the strongest weights retain more of the layer's
    energy and, empirically, more of its accuracy.
    """
    total = float(np.sum(weight**2))
    if total == 0.0:
        return 1.0
    kept = float(np.sum((weight * mask_keep) ** 2))
    return kept / total


def find_best_block_size(
    named_weights: Dict[str, np.ndarray],
    device: DeviceSpec,
    col_rate: float,
    row_rate: float,
    strip_choices: Iterable[int] = (1, 2, 4, 8),
    block_choices: Iterable[int] = (2, 4, 8, 16),
    accuracy_weight: float = 100.0,
    tile: Optional[TileConfig] = None,
) -> TuningResult:
    """Search the BSP block grid (``Numr × Numc``) for the best
    accuracy/latency combination at a fixed compression target.

    For each grid, the weights are BSP-projected, compiled, and simulated;
    the score combines simulated latency with the retained-energy accuracy
    proxy (scaled by ``accuracy_weight`` µs per unit of retained energy).
    """
    tile = tile or TileConfig()
    shapes = [np.asarray(w).shape for w in named_weights.values()]
    min_rows = min(s[0] for s in shapes)
    min_cols = min(s[1] for s in shapes)
    trace: List[TuningCandidate] = []
    for strips in strip_choices:
        if strips > min_rows:
            continue
        for blocks in block_choices:
            if blocks > min_cols:
                continue
            config = BSPConfig(
                col_rate=col_rate,
                row_rate=row_rate,
                num_row_strips=strips,
                num_col_blocks=blocks,
            )
            masks = bsp_project_masks(named_weights, config)
            pruned = {
                name: masks[name].apply_to_array(np.asarray(w))
                for name, w in named_weights.items()
            }
            proxy = float(
                np.mean(
                    [
                        _retained_energy(np.asarray(w), masks[name].keep)
                        for name, w in named_weights.items()
                    ]
                )
            )
            options = CompileOptions(
                num_row_strips=strips, num_col_blocks=blocks, tile=tile
            )
            latency = compile_for_simulation(pruned, options).simulate(device).latency_us
            trace.append(
                TuningCandidate(
                    tile=tile,
                    num_row_strips=strips,
                    num_col_blocks=blocks,
                    latency_us=latency,
                    accuracy_proxy=proxy,
                )
            )
    if not trace:
        raise CompilationError("no feasible block grid for the given weights")
    best = min(trace, key=lambda c: c.score(accuracy_weight=accuracy_weight))
    return TuningResult(best=best, trace=trace)


# ---------------------------------------------------------------------------
# Measured auto-tuning of the executable engine
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredCandidate:
    """One engine configuration and its measured forward latency."""

    label: str
    scheme: Optional[str]
    backend: Optional[str]
    formats: Dict[str, str]  # slot name → decided/pinned format
    measured_s: float

    def describe_formats(self) -> str:
        """Compact ``slot=fmt`` summary, dense slots elided."""
        sparse = {k: v for k, v in self.formats.items() if v != "dense"}
        if not sparse:
            return "all-dense"
        return " ".join(f"{k}={v}" for k, v in sorted(sparse.items()))


@dataclass
class PlanTuningResult:
    """Outcome of :func:`tune_plan`: the winning compiled plan plus the
    full measured trace and the default-configuration baseline."""

    best: MeasuredCandidate
    plan: object  # the compiled ModelPlan of the winner
    graph: LayerGraph  # its annotated layer graph (save_plan-ready)
    baseline_s: float
    trace: List[MeasuredCandidate] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Measured default-config latency over tuned latency (>= 1.0:
        the default configuration is always in the candidate set)."""
        return self.baseline_s / self.best.measured_s

    @property
    def num_evaluated(self) -> int:
        return len(self.trace)


def _median_seconds(fn: Callable[[], object], repeats: int) -> float:
    fn()  # warm up: builds kernel plans, grows work buffers
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _simulated_slot_us(slot: WeightSlot, fmt: str, device: DeviceSpec) -> float:
    """Analytic one-step cost of running ``slot`` in format ``fmt``."""
    from repro.hw.executor import simulate_layer

    probe = WeightSlot(
        name=slot.name,
        op=slot.op,
        array=slot.array,
        format=fmt,
        grid=slot.grid,
        tile=slot.tile,
    )
    graph = LayerGraph(
        nodes=[_probe_node(probe)],
        options=GraphOptions(sparse_format=fmt),
    )
    run_passes(graph, analytic=True)
    return simulate_layer(layer_plan_from_slot(probe), device, timesteps=1).busy_us


def _probe_node(slot: WeightSlot):
    from repro.compiler.ir import GraphNode

    return GraphNode(name=slot.name, kind="linear", weights={"w": slot})


def tune_plan(
    model,
    sample_batch: np.ndarray,
    schemes: Sequence[Optional[str]] = (None,),
    backends: Sequence[Optional[str]] = (None,),
    formats: Sequence[str] = ("dense", "csr", "bspc"),
    config=None,
    device: Optional[DeviceSpec] = None,
    repeats: int = 3,
    prefilter_top: int = 2,
) -> PlanTuningResult:
    """Measured auto-tuning: search per-layer engine configurations by
    timing the real compiled plan on ``sample_batch``.

    The search runs in three stages:

    1. **Baseline** — the default-configuration engine
       (``engine.compile_model(model, scheme=schemes[0], config=config)``)
       is compiled and timed; it anchors the trace, so the tuned result
       can never be slower than the default on the calibration batch.
    2. **Simulator pre-filter** — for every tunable weight slot, each
       candidate format in ``formats`` is priced with the analytic mobile
       cost model on ``device`` and only the best ``prefilter_top``
       formats survive into measurement (the simulator prunes the
       combinatorial per-layer space before any wall clock is spent).
    3. **Measured greedy refinement** — per ``scheme`` × ``backend``
       combination, a candidate graph pins every slot to its
       simulator-best surviving format and is timed; then each slot's
       runner-up formats are tried one at a time, keeping any change that
       measures faster.

    ``schemes`` beyond the first change numerics (fp16/int8 round
    weights and activations); include them only when the deployment
    tolerates quantization — the accuracy contracts are the engine's
    usual per-scheme guarantees.

    Returns a :class:`PlanTuningResult` whose ``plan`` is the winning
    compiled :class:`~repro.engine.plan.ModelPlan` and whose ``graph``
    can be serialized with :func:`repro.engine.save_plan` for bit-exact
    redeployment.
    """
    # Engine imports are deferred: repro.engine lowers *through* this
    # package, so a module-level import here would be circular.
    from repro.engine.plan import EngineConfig, lower_graph
    from repro.engine.plan import compile_model as engine_compile
    from repro.compiler.pipeline import build_layer_graph
    from repro.hw.profiles import ADRENO_640

    if not schemes:
        raise ConfigError("schemes must not be empty")
    if not formats:
        raise ConfigError("formats must not be empty")
    for fmt in formats:
        if fmt not in ("dense", "csr", "bspc"):
            raise ConfigError(f"unknown tuning format {fmt!r}")
    config = config or EngineConfig()
    device = device or ADRENO_640
    repeats = max(1, repeats)
    sample_batch = np.asarray(sample_batch, dtype=np.float64)
    if sample_batch.ndim != 3:
        raise ConfigError(
            f"sample_batch must be (T, B, D) features, got {sample_batch.shape}"
        )

    def measure(plan) -> float:
        return _median_seconds(lambda: plan.forward_batch(sample_batch), repeats)

    def compile_pinned(scheme, backend, pins: Dict[str, str]):
        graph = build_layer_graph(
            model, scheme=scheme, options=config.graph_options(), backend=backend
        )
        for _, _, slot in graph.slots():
            if slot.format is None and slot.name in pins:
                slot.format = pins[slot.name]
        run_passes(graph)
        return lower_graph(graph, config), graph

    # Stage 1: the default-configuration baseline.
    baseline_plan = engine_compile(model, scheme=schemes[0], config=config)
    baseline_s = measure(baseline_plan)
    baseline = MeasuredCandidate(
        label="default",
        scheme=schemes[0],
        backend=None,
        formats={
            name: fmt or "dense"
            for name, fmt in baseline_plan.graph.formats().items()
        },
        measured_s=baseline_s,
    )
    trace: List[MeasuredCandidate] = [baseline]
    best = baseline
    best_plan, best_graph = baseline_plan, baseline_plan.graph

    # Stage 2: simulator pre-filter of each slot's format choices.
    probe_graph = build_layer_graph(model, options=config.graph_options())
    slot_choices: Dict[str, List[str]] = {}
    for _, _, slot in probe_graph.slots():
        if slot.format is not None:
            continue  # pinned by the frontend (e.g. the output projection)
        ranked = sorted(formats, key=lambda f: _simulated_slot_us(slot, f, device))
        slot_choices[slot.name] = list(ranked[: max(1, prefilter_top)])

    # Stage 3: measured search per scheme × backend.  A configuration is
    # never measured twice: re-timing an identical plan only resamples
    # noise, and a noisy duplicate of the baseline must not be reported
    # as a tuning "speedup" (the measured dict also seeds the greedy
    # comparisons for skipped repeats).
    def config_key(scheme, backend, pins: Dict[str, str]):
        return (scheme, backend, tuple(sorted(pins.items())))

    measured: Dict[tuple, float] = {
        config_key(
            schemes[0],
            None,
            {name: baseline.formats[name] for name in slot_choices},
        ): baseline_s
    }

    def try_candidate(label, scheme, backend, pins):
        """Measure one pinned configuration (or return its known time)."""
        nonlocal best, best_plan, best_graph
        key = config_key(scheme, backend, pins)
        if key in measured:
            return measured[key]
        plan, graph = compile_pinned(scheme, backend, pins)
        elapsed = measure(plan)
        measured[key] = elapsed
        candidate = MeasuredCandidate(
            label=label,
            scheme=scheme,
            backend=backend,
            formats={n: f or "dense" for n, f in graph.formats().items()},
            measured_s=elapsed,
        )
        trace.append(candidate)
        if elapsed < best.measured_s:
            best, best_plan, best_graph = candidate, plan, graph
        return elapsed

    for scheme in schemes:
        for backend in backends:
            current = {name: choices[0] for name, choices in slot_choices.items()}
            tag = f"{scheme or 'none'}/{backend or 'default'}"
            incumbent_s = try_candidate(f"sim-best[{tag}]", scheme, backend, current)
            for name, choices in slot_choices.items():
                for fmt in choices[1:]:
                    variant = dict(current)
                    variant[name] = fmt
                    elapsed = try_candidate(
                        f"{name}->{fmt}[{tag}]", scheme, backend, variant
                    )
                    if elapsed < incumbent_s:
                        current, incumbent_s = variant, elapsed

    return PlanTuningResult(
        best=best,
        plan=best_plan,
        graph=best_graph,
        baseline_s=baseline_s,
        trace=trace,
    )
