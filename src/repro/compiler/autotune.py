"""Offline auto-tuning (last paragraph of Section IV-B) — simulated and
measured.

Two tiers:

* **Simulated** (the paper's tuner): :func:`tune_execution_config`
  searches execution configurations — tile rows per thread, unroll
  factor — and :func:`find_best_block_size` the BSP block grid
  (``Numr × Numc``), scoring each candidate with the analytic simulator;
  the block-size search folds in an accuracy proxy so the chosen grid is
  "an optimal combination of accuracy and performance", as the paper
  puts it.
* **Measured**: :func:`tune_plan` tunes the *executable* engine — it
  evaluates candidate per-layer configurations (dense vs CSR vs BSPC,
  quantization scheme, kernel backend) by timing the real
  :class:`~repro.engine.plan.ModelPlan` on a calibration batch, using
  the analytic simulator as a pre-filter that prunes each layer's format
  choices before anything is measured.  The default configuration is
  always in the candidate set, so the tuned plan is never slower than it
  on the calibration workload.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.codegen import CompileOptions, layer_plan_from_slot
from repro.compiler.ir import GraphOptions, LayerGraph, TileConfig, WeightSlot
from repro.compiler.passes import run_passes
from repro.compiler.pipeline import compile_for_simulation
from repro.errors import CompilationError, ConfigError
from repro.hw.device import DeviceSpec
from repro.pruning.bsp import BSPConfig, bsp_project_masks


@dataclass(frozen=True)
class TuningCandidate:
    """One evaluated configuration and its simulated latency."""

    tile: TileConfig
    num_row_strips: int
    num_col_blocks: int
    latency_us: float
    accuracy_proxy: float = 0.0

    def score(self, latency_weight: float = 1.0, accuracy_weight: float = 0.0) -> float:
        """Lower is better: weighted latency minus weighted accuracy proxy."""
        return latency_weight * self.latency_us - accuracy_weight * self.accuracy_proxy


@dataclass
class TuningResult:
    """Best configuration found plus the full exploration trace."""

    best: TuningCandidate
    trace: List[TuningCandidate] = field(default_factory=list)

    @property
    def num_evaluated(self) -> int:
        return len(self.trace)


def default_tile_space(max_rows_per_thread: int = 16) -> List[TileConfig]:
    """The tile/unroll grid the tuner explores by default."""
    space = []
    rows = 1
    while rows <= max_rows_per_thread:
        for unroll in (1, 2, 4):
            space.append(TileConfig(rows_per_thread=rows, unroll=unroll))
        rows *= 2
    return space


def tune_execution_config(
    named_weights: Dict[str, np.ndarray],
    device: DeviceSpec,
    base_options: Optional[CompileOptions] = None,
    tile_space: Optional[Sequence[TileConfig]] = None,
) -> TuningResult:
    """Search tile configurations for the lowest simulated latency."""
    base = base_options or CompileOptions()
    tile_space = list(default_tile_space() if tile_space is None else tile_space)
    if not tile_space:
        raise CompilationError("tile_space must not be empty")
    trace: List[TuningCandidate] = []
    for tile in tile_space:
        # replace() keeps every other option — including ones added to
        # CompileOptions after this tuner was written — instead of
        # silently dropping whatever a hand-written field list misses.
        options = dataclasses.replace(base, tile=tile)
        compiled = compile_for_simulation(named_weights, options)
        latency = compiled.simulate(device).latency_us
        trace.append(
            TuningCandidate(
                tile=tile,
                num_row_strips=base.num_row_strips,
                num_col_blocks=base.num_col_blocks,
                latency_us=latency,
            )
        )
    best = min(trace, key=lambda c: c.latency_us)
    return TuningResult(best=best, trace=trace)


def _retained_energy(weight: np.ndarray, mask_keep: np.ndarray) -> float:
    """Accuracy proxy: fraction of the weight tensor's squared norm kept.

    A cheap, training-free stand-in for post-pruning accuracy — block grids
    that let BSP keep the strongest weights retain more of the layer's
    energy and, empirically, more of its accuracy.
    """
    total = float(np.sum(weight**2))
    if total == 0.0:
        return 1.0
    kept = float(np.sum((weight * mask_keep) ** 2))
    return kept / total


def find_best_block_size(
    named_weights: Dict[str, np.ndarray],
    device: DeviceSpec,
    col_rate: float,
    row_rate: float,
    strip_choices: Iterable[int] = (1, 2, 4, 8),
    block_choices: Iterable[int] = (2, 4, 8, 16),
    accuracy_weight: float = 100.0,
    tile: Optional[TileConfig] = None,
) -> TuningResult:
    """Search the BSP block grid (``Numr × Numc``) for the best
    accuracy/latency combination at a fixed compression target.

    For each grid, the weights are BSP-projected, compiled, and simulated;
    the score combines simulated latency with the retained-energy accuracy
    proxy (scaled by ``accuracy_weight`` µs per unit of retained energy).
    """
    tile = tile or TileConfig()
    shapes = [np.asarray(w).shape for w in named_weights.values()]
    min_rows = min(s[0] for s in shapes)
    min_cols = min(s[1] for s in shapes)
    trace: List[TuningCandidate] = []
    for strips in strip_choices:
        if strips > min_rows:
            continue
        for blocks in block_choices:
            if blocks > min_cols:
                continue
            config = BSPConfig(
                col_rate=col_rate,
                row_rate=row_rate,
                num_row_strips=strips,
                num_col_blocks=blocks,
            )
            masks = bsp_project_masks(named_weights, config)
            pruned = {
                name: masks[name].apply_to_array(np.asarray(w))
                for name, w in named_weights.items()
            }
            proxy = float(
                np.mean(
                    [
                        _retained_energy(np.asarray(w), masks[name].keep)
                        for name, w in named_weights.items()
                    ]
                )
            )
            options = CompileOptions(
                num_row_strips=strips, num_col_blocks=blocks, tile=tile
            )
            latency = compile_for_simulation(pruned, options).simulate(device).latency_us
            trace.append(
                TuningCandidate(
                    tile=tile,
                    num_row_strips=strips,
                    num_col_blocks=blocks,
                    latency_us=latency,
                    accuracy_proxy=proxy,
                )
            )
    if not trace:
        raise CompilationError("no feasible block grid for the given weights")
    best = min(trace, key=lambda c: c.score(accuracy_weight=accuracy_weight))
    return TuningResult(best=best, trace=trace)


# ---------------------------------------------------------------------------
# Measured auto-tuning of the executable engine
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredCandidate:
    """One engine configuration and its measured forward latency."""

    label: str
    scheme: Optional[str]
    backend: Optional[str]
    formats: Dict[str, str]  # slot name → decided/pinned format
    measured_s: float
    row_block: int = 0  # BSPC panel row-blocking (0 = whole strips)

    def describe_formats(self) -> str:
        """Compact ``slot=fmt`` summary, dense slots elided."""
        sparse = {k: v for k, v in self.formats.items() if v != "dense"}
        if not sparse:
            return "all-dense"
        return " ".join(f"{k}={v}" for k, v in sorted(sparse.items()))


@dataclass
class PlanTuningResult:
    """Outcome of :func:`tune_plan`: the winning compiled plan plus the
    full measured trace and the default-configuration baseline."""

    best: MeasuredCandidate
    plan: object  # the compiled ModelPlan of the winner
    graph: LayerGraph  # its annotated layer graph (save_plan-ready)
    baseline_s: float
    trace: List[MeasuredCandidate] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Measured default-config latency over tuned latency (>= 1.0:
        the default configuration is always in the candidate set)."""
        return self.baseline_s / self.best.measured_s

    @property
    def num_evaluated(self) -> int:
        return len(self.trace)


def _median_seconds(fn: Callable[[], object], repeats: int) -> float:
    fn()  # warm up: builds kernel plans, grows work buffers
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _simulated_slot_us(slot: WeightSlot, fmt: str, device: DeviceSpec) -> float:
    """Analytic one-step cost of running ``slot`` in format ``fmt``."""
    from repro.hw.executor import simulate_layer

    probe = WeightSlot(
        name=slot.name,
        op=slot.op,
        array=slot.array,
        format=fmt,
        grid=slot.grid,
        tile=slot.tile,
    )
    graph = LayerGraph(
        nodes=[_probe_node(probe)],
        options=GraphOptions(sparse_format=fmt),
    )
    run_passes(graph, analytic=True)
    return simulate_layer(layer_plan_from_slot(probe), device, timesteps=1).busy_us


def _probe_node(slot: WeightSlot):
    from repro.compiler.ir import GraphNode

    return GraphNode(name=slot.name, kind="linear", weights={"w": slot})


def default_tile_candidates(
    row_blocks: Sequence[int] = (4, 8, 16),
) -> List[TileConfig]:
    """The host tile candidates a joint scheme×format×tile search tries:
    BSPC panel row-blocking factors (``row_block=0``, whole strips, is
    always the implicit incumbent)."""
    return [
        TileConfig(rows_per_thread=max(1, rb), row_block=rb) for rb in row_blocks
    ]


def tune_plan(
    model,
    sample_batch: np.ndarray,
    schemes: Sequence[Optional[str]] = (None,),
    backends: Sequence[Optional[str]] = (None,),
    formats: Sequence[str] = ("dense", "csr", "bspc"),
    tiles: Optional[Sequence[TileConfig]] = None,
    config=None,
    device: Optional[DeviceSpec] = None,
    repeats: int = 3,
    prefilter_top: int = 2,
) -> PlanTuningResult:
    """Measured auto-tuning: search per-layer engine configurations by
    timing the real compiled plan on ``sample_batch``.

    The search runs in three stages (plus an optional fourth):

    1. **Baseline** — the default-configuration engine
       (``engine.compile_model(model, scheme=schemes[0], config=config)``)
       is compiled and timed; it anchors the trace, so the tuned result
       can never be slower than the default on the calibration batch.
    2. **Simulator pre-filter** — for every tunable weight slot, each
       candidate format in ``formats`` is priced with the analytic mobile
       cost model on ``device`` and only the best ``prefilter_top``
       formats survive into measurement (the simulator prunes the
       combinatorial per-layer space before any wall clock is spent).
    3. **Measured greedy refinement** — per ``scheme`` × ``backend``
       combination, a candidate graph pins every slot to its
       simulator-best surviving format and is timed; then each slot's
       runner-up formats are tried one at a time, keeping any change that
       measures faster.
    4. **Tile refinement** (when ``tiles`` is given, e.g.
       :func:`default_tile_candidates`) — each tile's ``row_block`` is
       applied to the combo's winning format pins and measured, making
       the search jointly scheme × format × tile.  Row blocking only
       changes BSPC panel packing, so combos that won with no BSPC slot
       skip it.

    ``schemes`` beyond the first change numerics (``"fp16"``/``"int8"``
    round weights and activations; ``"mixed"`` quantizes the projections
    and keeps float recurrences); include them only when the deployment
    tolerates quantization — the accuracy contracts are the engine's
    usual per-scheme guarantees.

    Returns a :class:`PlanTuningResult` whose ``plan`` is the winning
    compiled :class:`~repro.engine.plan.ModelPlan` and whose ``graph``
    can be serialized with :func:`repro.engine.save_plan` for bit-exact
    redeployment.
    """
    # Engine imports are deferred: repro.engine lowers *through* this
    # package, so a module-level import here would be circular.
    from repro.engine.plan import EngineConfig, lower_graph
    from repro.engine.plan import compile_model as engine_compile
    from repro.compiler.pipeline import build_layer_graph
    from repro.hw.profiles import ADRENO_640, host_device
    from repro import kernels

    if not schemes:
        raise ConfigError("schemes must not be empty")
    if not formats:
        raise ConfigError("formats must not be empty")
    for fmt in formats:
        if fmt not in ("dense", "csr", "bspc"):
            raise ConfigError(f"unknown tuning format {fmt!r}")
    for backend in backends:
        if backend is not None:  # None = the session default, always valid
            kernels.resolve_backend(backend, "tune_plan backends")
    config = config or EngineConfig()
    device = device or host_device() or ADRENO_640
    repeats = max(1, repeats)
    sample_batch = np.asarray(sample_batch, dtype=np.float64)
    if sample_batch.ndim != 3:
        raise ConfigError(
            f"sample_batch must be (T, B, D) features, got {sample_batch.shape}"
        )

    def measure(plan) -> float:
        return _median_seconds(lambda: plan.forward_batch(sample_batch), repeats)

    def compile_pinned(scheme, backend, pins: Dict[str, str], tile=None):
        graph = build_layer_graph(
            model, scheme=scheme, options=config.graph_options(), backend=backend
        )
        for _, _, slot in graph.slots():
            if slot.format is None and slot.name in pins:
                slot.format = pins[slot.name]
            if tile is not None:
                slot.tile = tile
        run_passes(graph)
        return lower_graph(graph, config), graph

    # Stage 1: the default-configuration baseline.
    baseline_plan = engine_compile(model, scheme=schemes[0], config=config)
    baseline_s = measure(baseline_plan)
    baseline = MeasuredCandidate(
        label="default",
        scheme=schemes[0],
        backend=None,
        formats={
            name: fmt or "dense"
            for name, fmt in baseline_plan.graph.formats().items()
        },
        measured_s=baseline_s,
    )
    trace: List[MeasuredCandidate] = [baseline]
    best = baseline
    best_plan, best_graph = baseline_plan, baseline_plan.graph

    # Stage 2: simulator pre-filter of each slot's format choices.
    probe_graph = build_layer_graph(model, options=config.graph_options())
    slot_choices: Dict[str, List[str]] = {}
    for _, _, slot in probe_graph.slots():
        if slot.format is not None:
            continue  # pinned by the frontend (e.g. the output projection)
        ranked = sorted(formats, key=lambda f: _simulated_slot_us(slot, f, device))
        slot_choices[slot.name] = list(ranked[: max(1, prefilter_top)])

    # Stage 3: measured search per scheme × backend.  A configuration is
    # never measured twice: re-timing an identical plan only resamples
    # noise, and a noisy duplicate of the baseline must not be reported
    # as a tuning "speedup" (the measured dict also seeds the greedy
    # comparisons for skipped repeats).  Only ``row_block`` of a tile has
    # a host-side execution effect, so the key normalizes on it.
    def config_key(scheme, backend, pins: Dict[str, str], tile=None):
        row_block = tile.row_block if tile is not None else 0
        return (scheme, backend, tuple(sorted(pins.items())), row_block)

    measured: Dict[tuple, float] = {
        config_key(
            schemes[0],
            None,
            {name: baseline.formats[name] for name in slot_choices},
        ): baseline_s
    }

    def try_candidate(label, scheme, backend, pins, tile=None):
        """Measure one pinned configuration (or return its known time)."""
        nonlocal best, best_plan, best_graph
        key = config_key(scheme, backend, pins, tile)
        if key in measured:
            return measured[key]
        plan, graph = compile_pinned(scheme, backend, pins, tile)
        elapsed = measure(plan)
        measured[key] = elapsed
        candidate = MeasuredCandidate(
            label=label,
            scheme=scheme,
            backend=backend,
            formats={n: f or "dense" for n, f in graph.formats().items()},
            measured_s=elapsed,
            row_block=tile.row_block if tile is not None else 0,
        )
        trace.append(candidate)
        if elapsed < best.measured_s:
            best, best_plan, best_graph = candidate, plan, graph
        return elapsed

    for scheme in schemes:
        for backend in backends:
            current = {name: choices[0] for name, choices in slot_choices.items()}
            tag = f"{scheme or 'none'}/{backend or 'default'}"
            incumbent_s = try_candidate(f"sim-best[{tag}]", scheme, backend, current)
            for name, choices in slot_choices.items():
                for fmt in choices[1:]:
                    variant = dict(current)
                    variant[name] = fmt
                    elapsed = try_candidate(
                        f"{name}->{fmt}[{tag}]", scheme, backend, variant
                    )
                    if elapsed < incumbent_s:
                        current, incumbent_s = variant, elapsed
            # Stage 4: tile refinement on this combo's winning pins.
            if tiles and any(fmt == "bspc" for fmt in current.values()):
                for tile in tiles:
                    if not tile.row_block:
                        continue  # whole strips: the incumbent already
                    try_candidate(
                        f"tile-rb{tile.row_block}[{tag}]",
                        scheme,
                        backend,
                        current,
                        tile,
                    )

    return PlanTuningResult(
        best=best,
        plan=best_plan,
        graph=best_graph,
        baseline_s=baseline_s,
        trace=trace,
    )


@dataclass
class TileRankingComparison:
    """Simulated vs. measured ranking of the tile (row-blocking) knob.

    The paper's tuner picks tiles from the analytic mobile cost model; the
    host engine can now *execute* the same knob (BSPC panel row-blocking),
    so the cost model's ranking can be validated against wall clock.

    ``pairwise_agreement`` is the fraction of candidate pairs the
    simulator orders the same way the measurement does (1.0 = identical
    ranking).  ``sim_pick_efficiency`` is the sturdier headline number:
    measured-best latency over the measured latency of the *simulator's*
    pick — 1.0 means following the cost model costs nothing on this host,
    and it degrades smoothly rather than flipping on near-tie noise.
    """

    row_blocks: Tuple[int, ...]
    simulated_us: Dict[int, float]  # row_block → simulated latency (µs)
    measured_s: Dict[int, float]  # row_block → measured latency (s)
    sim_pick: int
    measured_pick: int
    pairwise_agreement: float
    sim_pick_efficiency: float


def compare_tile_rankings(
    model,
    sample_batch: np.ndarray,
    row_blocks: Sequence[int] = (2, 8, 32),
    config=None,
    device: Optional[DeviceSpec] = None,
    repeats: int = 3,
) -> TileRankingComparison:
    """Rank the tile knob with the simulator and with the host, and compare.

    Each ``row_blocks`` entry is priced twice: analytically, as
    ``rows_per_thread`` through :func:`tune_execution_config` on
    ``device``; and on the host, as BSPC panel ``row_block`` by timing
    the compiled plan's ``forward_batch`` on ``sample_batch``.  The
    returned comparison is what the autotune bench publishes as the
    simulated-vs-measured agreement row.
    """
    from repro.engine.plan import EngineConfig, lower_graph
    from repro.compiler.pipeline import build_layer_graph
    from repro.hw.profiles import ADRENO_640, host_device

    row_blocks = tuple(int(rb) for rb in row_blocks)
    if len(row_blocks) < 2:
        raise ConfigError("need at least two row_blocks to rank")
    if any(rb < 1 for rb in row_blocks):
        raise ConfigError(f"row_blocks must be >= 1, got {row_blocks}")
    config = config or EngineConfig(sparse_format="bspc")
    device = device or host_device() or ADRENO_640
    repeats = max(1, repeats)
    sample_batch = np.asarray(sample_batch, dtype=np.float64)
    if sample_batch.ndim != 3:
        raise ConfigError(
            f"sample_batch must be (T, B, D) features, got {sample_batch.shape}"
        )

    simulated_us: Dict[int, float] = {}
    for rb in row_blocks:
        result = tune_execution_config(
            model.prunable_weights(),
            device,
            tile_space=[TileConfig(rows_per_thread=rb, row_block=rb)],
        )
        simulated_us[rb] = result.best.latency_us

    measured_s: Dict[int, float] = {}
    for rb in row_blocks:
        graph = build_layer_graph(
            model, scheme=None, options=config.graph_options()
        )
        tile = TileConfig(rows_per_thread=rb, row_block=rb)
        for _, _, slot in graph.slots():
            slot.tile = tile
        run_passes(graph)
        plan = lower_graph(graph, config)
        measured_s[rb] = _median_seconds(
            lambda: plan.forward_batch(sample_batch), repeats
        )

    sim_pick = min(row_blocks, key=lambda rb: simulated_us[rb])
    measured_pick = min(row_blocks, key=lambda rb: measured_s[rb])
    pairs = [
        (a, b)
        for i, a in enumerate(row_blocks)
        for b in row_blocks[i + 1 :]
    ]
    concordant = sum(
        1
        for a, b in pairs
        if (simulated_us[a] < simulated_us[b]) == (measured_s[a] < measured_s[b])
    )
    return TileRankingComparison(
        row_blocks=row_blocks,
        simulated_us=simulated_us,
        measured_s=measured_s,
        sim_pick=sim_pick,
        measured_pick=measured_pick,
        pairwise_agreement=concordant / len(pairs),
        sim_pick_efficiency=measured_s[measured_pick] / measured_s[sim_pick],
    )


# ---------------------------------------------------------------------------
# Host calibration of the analytic cost model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CostSample:
    """One tuning-knob setting: analytic cost terms paired with wall clock.

    ``layer_terms`` holds the simulator's per-layer decomposition on the
    *base* (uncalibrated) device — ``(compute_us, memory_us,
    kernel_overhead_us, tile_chunk_steps)`` per layer, timesteps already
    folded in; ``tile_chunk_steps`` is a *count* (row-tile dispatches per
    inference), not a time, so the fit can price it in µs per dispatch.
    Keeping the decomposition lets :func:`calibrate_cost_model` rescale
    each term independently and re-derive the overlapped total without
    re-running the simulator.  ``measured_us`` is the wall time of the
    same configuration on this host; ``base_tile_us`` is the base
    device's own per-tile charge (zero for the mobile profiles).
    """

    label: str
    layer_terms: Tuple[Tuple[float, float, float, float], ...]
    measured_us: float
    base_tile_us: float = 0.0

    @property
    def simulated_us(self) -> float:
        """Uncalibrated analytic latency (µs) of this configuration."""
        return self.predicted_us(1.0, 1.0, 1.0, self.base_tile_us)

    def predicted_us(self, sf: float, sm: float, so: float, st: float) -> float:
        """Analytic latency with compute/memory/overhead rescaled and a
        per-tile dispatch charge of ``st`` µs."""
        return sum(
            max(c * sf, m * sm) + o * so + chunks * st
            for c, m, o, chunks in self.layer_terms
        )

    @property
    def tile_chunk_steps(self) -> float:
        """Total row-tile dispatches one inference of this config issues."""
        return sum(t[3] for t in self.layer_terms)


@dataclass(frozen=True)
class CostModelCalibration:
    """Outcome of :func:`calibrate_cost_model`.

    ``device`` is the fitted spec; the ``scale_*`` factors are the
    multipliers applied to the base device's compute/memory/overhead
    *times* (so ``scale_compute = 2`` means this host's compute is half
    the base device's throughput).  ``log_rmse_before/after`` measure
    prediction error against the samples in log space — ``after`` should
    not exceed ``before``.
    """

    device: DeviceSpec
    base: DeviceSpec
    scale_compute: float
    scale_memory: float
    scale_overhead: float
    tile_dispatch_us: float
    log_rmse_before: float
    log_rmse_after: float

    @property
    def error_reduction(self) -> float:
        """Fraction of log-space prediction error removed by the fit."""
        if self.log_rmse_before == 0.0:
            return 0.0
        return 1.0 - self.log_rmse_after / self.log_rmse_before


def collect_cost_samples(
    model,
    sample_batch: np.ndarray,
    row_blocks: Sequence[int] = (2, 8, 32),
    config=None,
    base: Optional[DeviceSpec] = None,
    repeats: int = 3,
) -> List[CostSample]:
    """Measure the tile knob on this host and pair each setting with the
    analytic model's cost decomposition on ``base``.

    The same sweep :func:`compare_tile_rankings` runs, but keeping the
    simulator's per-layer ``(compute, memory, overhead)`` terms instead
    of only the total, so :func:`calibrate_cost_model` can refit them.
    All samples share one workload (``sample_batch``); the fitted
    coefficients absorb its shape, so calibrate with a batch
    representative of what you will tune.
    """
    from repro.engine.plan import EngineConfig, lower_graph
    from repro.compiler.pipeline import build_layer_graph
    from repro.hw.profiles import ADRENO_640

    row_blocks = tuple(int(rb) for rb in row_blocks)
    if len(row_blocks) < 2:
        raise ConfigError("need at least two row_blocks to calibrate")
    if any(rb < 1 for rb in row_blocks):
        raise ConfigError(f"row_blocks must be >= 1, got {row_blocks}")
    config = config or EngineConfig(sparse_format="bspc")
    base = base or ADRENO_640
    repeats = max(1, repeats)
    sample_batch = np.asarray(sample_batch, dtype=np.float64)
    if sample_batch.ndim != 3:
        raise ConfigError(
            f"sample_batch must be (T, B, D) features, got {sample_batch.shape}"
        )

    from repro.hw.executor import tile_chunks

    samples: List[CostSample] = []
    for rb in row_blocks:
        tile = TileConfig(rows_per_thread=rb, row_block=rb)
        compiled = compile_for_simulation(
            model.prunable_weights(), CompileOptions(tile=tile)
        )
        sim = compiled.simulate(base)
        # Per-layer terms with the base device's tile charge split back
        # out of overhead, so the fit prices dispatches independently.
        terms = []
        for timing, layer_plan in zip(sim.layers, compiled.plan.layers):
            chunk_steps = tile_chunks(layer_plan) * compiled.plan.timesteps
            terms.append(
                (
                    timing.compute_us,
                    timing.memory_us,
                    timing.overhead_us - base.tile_dispatch_us * chunk_steps,
                    float(chunk_steps),
                )
            )
        terms = tuple(terms)
        graph = build_layer_graph(
            model, scheme=None, options=config.graph_options()
        )
        for _, _, slot in graph.slots():
            slot.tile = tile
        run_passes(graph)
        plan = lower_graph(graph, config)
        measured_s = _median_seconds(
            lambda: plan.forward_batch(sample_batch), repeats
        )
        samples.append(
            CostSample(
                label=f"rb{rb}",
                layer_terms=terms,
                measured_us=measured_s * 1e6,
                base_tile_us=base.tile_dispatch_us,
            )
        )
    return samples


def _log_rmse(
    samples: Sequence[CostSample], sf: float, sm: float, so: float, st: float
) -> float:
    errs = [
        np.log(max(s.predicted_us(sf, sm, so, st), 1e-12)) - np.log(s.measured_us)
        for s in samples
    ]
    return float(np.sqrt(np.mean(np.square(errs))))


def calibrate_cost_model(
    samples: Sequence[CostSample],
    base: Optional[DeviceSpec] = None,
    name: Optional[str] = None,
    path=None,
    activate: bool = False,
) -> CostModelCalibration:
    """Fit the analytic cost model's device coefficients to measured traces.

    Finds per-term multipliers (compute, memory, overhead) that minimize
    the log-space error between the analytic prediction and
    ``measured_us`` across ``samples``, and folds them back into a
    :class:`DeviceSpec`: throughputs are divided by their time
    multiplier, the overhead charge is multiplied by its own.  Every
    other field (threads, power, parallel fill, gather cost) is carried
    over from ``base`` unchanged.

    The search is a deterministic coordinate descent on log-scaled
    multipliers with a small pull toward the global measured/simulated
    ratio, which keeps under-constrained terms (e.g. overhead when every
    sample is compute-bound) pinned at a sensible value instead of
    drifting freely.

    ``path`` persists the fitted spec via
    :func:`repro.hw.profiles.save_calibration`; ``activate`` installs it
    with :func:`repro.hw.profiles.set_host_device` so :func:`tune_plan`
    and :func:`compare_tile_rankings` pick it up by default.
    """
    from repro.hw.profiles import ADRENO_640, save_calibration, set_host_device

    samples = list(samples)
    if len(samples) < 2:
        raise ConfigError(
            f"need at least two cost samples to calibrate, got {len(samples)}"
        )
    for s in samples:
        if s.measured_us <= 0:
            raise ConfigError(f"sample {s.label!r} has non-positive measured_us")
        if s.simulated_us <= 0:
            raise ConfigError(f"sample {s.label!r} has non-positive simulated_us")
    base = base or ADRENO_640

    # Seed the per-tile charge from the measured-vs-chunk-count slope:
    # tile dispatch is the one term that varies with how finely rows are
    # chunked, so the regression slope is its natural first estimate (a
    # host with no chunk-dependence seeds it at ~zero and it stays there).
    chunks = np.array([s.tile_chunk_steps for s in samples])
    meas = np.array([s.measured_us for s in samples])
    var = float(np.var(chunks))
    slope = float(np.cov(chunks, meas, bias=True)[0, 1] / var) if var > 0 else 0.0
    st_seed = max(slope, 1e-9)

    # Anchor the three rescale multipliers at the global ratio between
    # what the tile seed leaves unexplained and the base model's total;
    # the regularizer below pins under-constrained terms to the anchors.
    core = np.array([s.predicted_us(1.0, 1.0, 1.0, 0.0) for s in samples])
    residual = np.maximum(meas - st_seed * chunks, 0.05 * meas)
    anchor = float(np.exp(np.mean(np.log(residual / core))))
    anchors = (anchor, anchor, anchor, st_seed)
    reg = 1e-3

    def objective(coefs):
        fit = _log_rmse(samples, *coefs) ** 2
        pull = sum(
            (np.log(c) - np.log(a)) ** 2 for c, a in zip(coefs, anchors)
        )
        return fit + reg * pull

    coefs = list(anchors)
    best = objective(coefs)
    step = 2.0
    while step > 1.0005:
        improved = False
        for i in range(len(coefs)):
            for factor in (step, 1.0 / step):
                trial = list(coefs)
                trial[i] = coefs[i] * factor
                score = objective(trial)
                if score < best - 1e-15:
                    coefs, best, improved = trial, score, True
        if not improved:
            step = step**0.5

    sf, sm, so, st = coefs
    device = dataclasses.replace(
        base,
        name=name or f"{base.name} [host-calibrated]",
        flops_per_us=base.flops_per_us / sf,
        mem_bandwidth_bytes_per_us=base.mem_bandwidth_bytes_per_us / sm,
        kernel_overhead_us=base.kernel_overhead_us * so,
        tile_dispatch_us=st,
    )
    calibration = CostModelCalibration(
        device=device,
        base=base,
        scale_compute=sf,
        scale_memory=sm,
        scale_overhead=so,
        tile_dispatch_us=st,
        log_rmse_before=_log_rmse(
            samples, 1.0, 1.0, 1.0, samples[0].base_tile_us
        ),
        log_rmse_after=_log_rmse(samples, sf, sm, so, st),
    )
    if path is not None:
        save_calibration(device, path)
    if activate:
        set_host_device(device)
    return calibration
