"""Intermediate representation shared by compiler passes and the simulator.

A compiled RNN inference is a :class:`KernelPlan`: one :class:`LayerPlan`
per weight matrix (GEMV kernel), each carrying the statistics the mobile
cost model needs — nonzeros, surviving rows/columns, memory traffic, thread
row-groups from the reorder pass, and the tuned :class:`TileConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import CompilationError


@dataclass(frozen=True)
class TileConfig:
    """Execution configuration searched by the auto-tuner.

    ``rows_per_thread`` — contiguous (post-reorder) rows a thread owns per
    tile; larger tiles expose more redundant-load sharing but coarsen load
    balance.  ``unroll`` — inner-loop unroll factor (models instruction
    overhead amortization).  ``use_fp16`` — 16-bit values (the paper's GPU
    kernels) halve memory traffic.
    """

    rows_per_thread: int = 4
    unroll: int = 4
    use_fp16: bool = True

    def __post_init__(self) -> None:
        if self.rows_per_thread < 1:
            raise CompilationError(
                f"rows_per_thread must be >= 1, got {self.rows_per_thread}"
            )
        if self.unroll < 1:
            raise CompilationError(f"unroll must be >= 1, got {self.unroll}")

    @property
    def value_bytes(self) -> int:
        return 2 if self.use_fp16 else 4


@dataclass
class RowGroup:
    """Rows sharing a (similar) nonzero pattern, assigned together.

    Produced by the matrix-reorder pass; the executor distributes the rows
    of each group across threads in ``rows_per_thread`` tiles.
    """

    rows: np.ndarray  # original row indices, in execution order
    nnz_per_row: np.ndarray  # aligned with ``rows``
    pattern_key: Tuple[int, ...]  # block-column signature of the pattern
    unique_cols: int  # distinct input columns the whole group touches

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.nnz_per_row = np.asarray(self.nnz_per_row, dtype=np.int64)
        if self.rows.shape != self.nnz_per_row.shape:
            raise CompilationError(
                "rows and nnz_per_row must align: "
                f"{self.rows.shape} vs {self.nnz_per_row.shape}"
            )

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def total_nnz(self) -> int:
        return int(self.nnz_per_row.sum())


@dataclass
class LayerPlan:
    """One compiled GEMV kernel and everything the cost model needs."""

    name: str
    shape: Tuple[int, int]
    format_name: str  # "bspc", "csr", or "dense"
    nnz: int
    stored_values: int  # >= nnz for padded formats
    kept_rows: int
    unique_cols: int
    flops_per_step: int  # 2 * nnz (multiply + add)
    weight_bytes: int  # streamed once per inference
    metadata_bytes: int  # format indices / pointers
    act_loads_naive: int  # input loads per timestep without elimination
    act_loads_per_step: int  # input loads per timestep after elimination
    output_writes_per_step: int
    groups: List[RowGroup] = field(default_factory=list)
    tile: TileConfig = field(default_factory=TileConfig)
    reordered: bool = False
    row_permutation: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.format_name not in ("bspc", "csr", "dense"):
            raise CompilationError(f"unknown format {self.format_name!r}")
        if self.nnz < 0 or self.stored_values < self.nnz:
            raise CompilationError(
                f"invalid value counts: nnz={self.nnz}, stored={self.stored_values}"
            )
        if self.act_loads_per_step > self.act_loads_naive:
            raise CompilationError(
                "load elimination cannot increase loads: "
                f"{self.act_loads_per_step} > {self.act_loads_naive}"
            )

    @property
    def load_elimination_ratio(self) -> float:
        """Fraction of naive input loads removed (0 = none, →1 = most)."""
        if self.act_loads_naive == 0:
            return 0.0
        return 1.0 - self.act_loads_per_step / self.act_loads_naive

    def total_group_rows(self) -> int:
        return sum(g.num_rows for g in self.groups)


@dataclass
class KernelPlan:
    """A full compiled model: ordered layer kernels + inference geometry."""

    layers: List[LayerPlan]
    timesteps: int  # timesteps executed per reported inference frame

    def __post_init__(self) -> None:
        if not self.layers:
            raise CompilationError("a KernelPlan needs at least one layer")
        if self.timesteps < 1:
            raise CompilationError(f"timesteps must be >= 1, got {self.timesteps}")

    @property
    def total_nnz(self) -> int:
        return sum(layer.nnz for layer in self.layers)

    @property
    def total_params(self) -> int:
        return sum(layer.shape[0] * layer.shape[1] for layer in self.layers)

    @property
    def compression_rate(self) -> float:
        nnz = self.total_nnz
        return self.total_params / nnz if nnz else float("inf")

    @property
    def flops_per_inference(self) -> int:
        return sum(layer.flops_per_step for layer in self.layers) * self.timesteps

    @property
    def gop_per_inference(self) -> float:
        """Giga-operations per frame — Table II's GOP column."""
        return self.flops_per_inference / 1e9

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes + layer.metadata_bytes for layer in self.layers)
