"""Intermediate representation shared by compiler passes and both backends.

Two levels live here:

* The **layer graph** (:class:`LayerGraph` of :class:`GraphNode` /
  :class:`WeightSlot`) — the single IR every consumer lowers from.  Typed
  ops: ``linear`` input/output projections, ``gru_cell``/``lstm_cell``
  recurrent layers, ``recurrent_matvec`` hidden-state matrices, and
  ``quantize`` boundaries; per-weight attributes carry the sparse format,
  quantization scheme, tile/grid configuration, and the annotations the
  pass pipeline (:mod:`repro.compiler.passes`) fills in.  The analytic
  simulator lowers it to a :class:`KernelPlan`; the execution engine
  lowers it to a :class:`~repro.engine.plan.ModelPlan`.
* The **analytic plan** (:class:`KernelPlan`): one :class:`LayerPlan` per
  weight matrix (GEMV kernel), each carrying the statistics the mobile
  cost model needs — nonzeros, surviving rows/columns, memory traffic,
  thread row-groups from the reorder pass, and the tuned
  :class:`TileConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import CompilationError


@dataclass(frozen=True)
class TileConfig:
    """Execution configuration searched by the auto-tuner.

    ``rows_per_thread`` — contiguous (post-reorder) rows a thread owns per
    tile; larger tiles expose more redundant-load sharing but coarsen load
    balance.  ``unroll`` — inner-loop unroll factor (models instruction
    overhead amortization).  ``use_fp16`` — 16-bit values (the paper's GPU
    kernels) halve memory traffic.

    ``row_block`` is the one knob with a *host-side* execution effect: when
    positive, BSPC packing splits each row strip into sub-panels of at most
    ``row_block`` rows (:func:`repro.kernels.plans.pack_bspc_plan`), the
    measured counterpart of the simulator's ``rows_per_thread``.  ``0``
    keeps whole strips (the default, and the historical behaviour).
    """

    rows_per_thread: int = 4
    unroll: int = 4
    use_fp16: bool = True
    row_block: int = 0

    def __post_init__(self) -> None:
        if self.rows_per_thread < 1:
            raise CompilationError(
                f"rows_per_thread must be >= 1, got {self.rows_per_thread}"
            )
        if self.unroll < 1:
            raise CompilationError(f"unroll must be >= 1, got {self.unroll}")
        if self.row_block < 0:
            raise CompilationError(f"row_block must be >= 0, got {self.row_block}")

    @property
    def value_bytes(self) -> int:
        return 2 if self.use_fp16 else 4


@dataclass
class RowGroup:
    """Rows sharing a (similar) nonzero pattern, assigned together.

    Produced by the matrix-reorder pass; the executor distributes the rows
    of each group across threads in ``rows_per_thread`` tiles.
    """

    rows: np.ndarray  # original row indices, in execution order
    nnz_per_row: np.ndarray  # aligned with ``rows``
    pattern_key: Tuple[int, ...]  # block-column signature of the pattern
    unique_cols: int  # distinct input columns the whole group touches

    def __post_init__(self) -> None:
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.nnz_per_row = np.asarray(self.nnz_per_row, dtype=np.int64)
        if self.rows.shape != self.nnz_per_row.shape:
            raise CompilationError(
                "rows and nnz_per_row must align: "
                f"{self.rows.shape} vs {self.nnz_per_row.shape}"
            )

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def total_nnz(self) -> int:
        return int(self.nnz_per_row.sum())


@dataclass
class LayerPlan:
    """One compiled GEMV kernel and everything the cost model needs."""

    name: str
    shape: Tuple[int, int]
    format_name: str  # "bspc", "csr", or "dense"
    nnz: int
    stored_values: int  # >= nnz for padded formats
    kept_rows: int
    unique_cols: int
    flops_per_step: int  # 2 * nnz (multiply + add)
    weight_bytes: int  # streamed once per inference
    metadata_bytes: int  # format indices / pointers
    act_loads_naive: int  # input loads per timestep without elimination
    act_loads_per_step: int  # input loads per timestep after elimination
    output_writes_per_step: int
    groups: List[RowGroup] = field(default_factory=list)
    tile: TileConfig = field(default_factory=TileConfig)
    reordered: bool = False
    row_permutation: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.format_name not in ("bspc", "csr", "dense"):
            raise CompilationError(f"unknown format {self.format_name!r}")
        if self.nnz < 0 or self.stored_values < self.nnz:
            raise CompilationError(
                f"invalid value counts: nnz={self.nnz}, stored={self.stored_values}"
            )
        if self.act_loads_per_step > self.act_loads_naive:
            raise CompilationError(
                "load elimination cannot increase loads: "
                f"{self.act_loads_per_step} > {self.act_loads_naive}"
            )

    @property
    def load_elimination_ratio(self) -> float:
        """Fraction of naive input loads removed (0 = none, →1 = most)."""
        if self.act_loads_naive == 0:
            return 0.0
        return 1.0 - self.act_loads_per_step / self.act_loads_naive

    def total_group_rows(self) -> int:
        return sum(g.num_rows for g in self.groups)


@dataclass
class KernelPlan:
    """A full compiled model: ordered layer kernels + inference geometry."""

    layers: List[LayerPlan]
    timesteps: int  # timesteps executed per reported inference frame

    def __post_init__(self) -> None:
        if not self.layers:
            raise CompilationError("a KernelPlan needs at least one layer")
        if self.timesteps < 1:
            raise CompilationError(f"timesteps must be >= 1, got {self.timesteps}")

    @property
    def total_nnz(self) -> int:
        return sum(layer.nnz for layer in self.layers)

    @property
    def total_params(self) -> int:
        return sum(layer.shape[0] * layer.shape[1] for layer in self.layers)

    @property
    def compression_rate(self) -> float:
        nnz = self.total_nnz
        return self.total_params / nnz if nnz else float("inf")

    @property
    def flops_per_inference(self) -> int:
        return sum(layer.flops_per_step for layer in self.layers) * self.timesteps

    @property
    def gop_per_inference(self) -> float:
        """Giga-operations per frame — Table II's GOP column."""
        return self.flops_per_inference / 1e9

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes + layer.metadata_bytes for layer in self.layers)


# ---------------------------------------------------------------------------
# The shared layer graph
# ---------------------------------------------------------------------------

#: Weight-level ops: batched input/output projections and the per-step
#: hidden-state matrix-vector product inside a recurrent cell.
OP_LINEAR = "linear"
OP_RECURRENT_MATVEC = "recurrent_matvec"
WEIGHT_OPS = (OP_LINEAR, OP_RECURRENT_MATVEC)

#: Node-level ops.  ``linear`` is a bare projection (the analytic
#: frontend's generic GEMV layer); ``output`` is the phone-class
#: projection; quantize boundaries are :class:`QuantBoundary` entries.
NODE_KINDS = ("gru_cell", "lstm_cell", "linear", "output")

GRAPH_FORMATS = ("dense", "csr", "bspc")
#: Graph-level scheme *requests*.  ``"mixed"`` is the canonical per-layer
#: mix: int8 input/output projections (``linear`` ops, amortized over the
#: whole chunk) with full-precision recurrences (``recurrent_matvec``,
#: where per-step quantization error would compound).
GRAPH_SCHEMES = (None, "fp16", "int8", "mixed")
#: Per-slot scheme decisions.  ``None`` means undecided (the pass pipeline
#: resolves it from the graph scheme); ``"float"`` is an *explicit*
#: unquantized decision, kept distinct from ``None`` so serialized slots
#: are unambiguous.
SLOT_SCHEMES = (None, "float", "fp16", "int8")
FORMAT_REQUESTS = (None, "auto", "dense", "csr", "bspc")


def resolve_slot_scheme(graph_scheme: Optional[str], op: str) -> str:
    """Map a graph-level scheme request to one slot's decision.

    Uniform schemes broadcast; ``"mixed"`` quantizes the batched
    projections (``linear``) to int8 and keeps the per-step recurrent
    matvecs in float.
    """
    if graph_scheme is None:
        return "float"
    if graph_scheme == "mixed":
        return "int8" if op == OP_LINEAR else "float"
    if graph_scheme in ("fp16", "int8"):
        return graph_scheme
    raise CompilationError(
        f"scheme must be one of {GRAPH_SCHEMES}, got {graph_scheme!r}"
    )


@dataclass(frozen=True)
class GraphOptions:
    """Graph-level knobs read by every pass.

    ``sparse_format`` is the *request* the format-selection pass resolves
    per weight: ``None``/``"dense"`` keep everything dense, ``"csr"`` /
    ``"bspc"`` force a format, and ``"auto"`` packs any matrix whose
    density is at or below ``sparsity_threshold`` (as BSPC when the
    packed panels stay mostly full, CSR otherwise).
    ``demote_full_density`` is the analytic frontend's convention: a
    forced sparse format on a fully-dense matrix falls back to dense (the
    execution engine honours forced formats literally instead).
    """

    sparse_format: Optional[str] = None
    sparsity_threshold: float = 0.5
    num_row_strips: int = 8
    num_col_blocks: int = 8
    enable_reorder: bool = True
    enable_load_elimination: bool = True
    demote_full_density: bool = False
    tile: TileConfig = TileConfig()

    def __post_init__(self) -> None:
        if self.sparse_format not in FORMAT_REQUESTS:
            raise CompilationError(
                f"sparse_format must be one of {FORMAT_REQUESTS}, "
                f"got {self.sparse_format!r}"
            )
        if not 0.0 < self.sparsity_threshold <= 1.0:
            raise CompilationError(
                f"sparsity_threshold must be in (0, 1], got {self.sparsity_threshold}"
            )
        if self.num_row_strips < 1 or self.num_col_blocks < 1:
            raise CompilationError("num_row_strips and num_col_blocks must be >= 1")


@dataclass
class WeightSlot:
    """One weight matrix in the layer graph, plus its per-layer attributes.

    ``format`` and ``scheme`` start ``None`` (undecided); the
    format-selection pass fills both, and a tuner or a loaded artifact may
    *pin* either beforehand — pinned slots pass through the pipeline
    untouched.  ``scheme`` is the per-slot quantization decision (one of
    :data:`SLOT_SCHEMES`); a ``"mixed"`` graph resolves to int8
    projections over float recurrences.  The reorder and load-elimination
    passes attach the analytic annotations; the kernel selection pass
    names the registry kernel the op lowers to.

    The slot holds a *reference* to ``array``; frontends that promise
    snapshot semantics (the execution engine) pass in copies.
    """

    name: str
    op: str
    array: np.ndarray
    format: Optional[str] = None  # "dense" | "csr" | "bspc" once decided
    scheme: Optional[str] = None  # "float" | "fp16" | "int8" once decided
    grid: Tuple[int, int] = (8, 8)  # (num_row_strips, num_col_blocks)
    kernel: Optional[str] = None  # registry op chosen by kernel selection
    tile: TileConfig = field(default_factory=TileConfig)
    # Analytic annotations (reorder / load-elimination passes).
    row_permutation: Optional[np.ndarray] = None
    groups: List[RowGroup] = field(default_factory=list)
    reordered: bool = False
    act_loads_naive: Optional[int] = None
    act_loads_per_step: Optional[int] = None
    # Never serialized: an explicit BlockGrid override (analytic frontend)
    # and the BSPC probe built by the "auto" format decision, kept so the
    # executable lowering does not pack the winning matrix twice.
    block_grid: Optional[object] = None
    prebuilt: Optional[object] = None

    def __post_init__(self) -> None:
        if self.op not in WEIGHT_OPS:
            raise CompilationError(f"unknown weight op {self.op!r}")
        self.array = np.asarray(self.array)
        if self.array.ndim != 2:
            raise CompilationError(
                f"weight slot {self.name!r} needs a 2-D array, "
                f"got shape {self.array.shape}"
            )
        if self.format is not None and self.format not in GRAPH_FORMATS:
            raise CompilationError(f"unknown format {self.format!r}")
        if self.scheme not in SLOT_SCHEMES:
            raise CompilationError(
                f"slot scheme must be one of {SLOT_SCHEMES}, got {self.scheme!r}"
            )

    @property
    def shape(self) -> Tuple[int, int]:
        return self.array.shape  # type: ignore[return-value]

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.array))

    @property
    def density(self) -> float:
        return self.nnz / self.array.size if self.array.size else 1.0


@dataclass
class GraphNode:
    """One layer of the model: its weight slots plus auxiliary params."""

    name: str
    kind: str
    weights: Dict[str, WeightSlot]
    params: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise CompilationError(f"unknown node kind {self.kind!r}")
        if not self.weights:
            raise CompilationError(f"node {self.name!r} has no weight slots")


@dataclass(frozen=True)
class QuantBoundary:
    """A quantize/dequantize boundary the scheme introduces at a slot."""

    slot: str
    policy: str
    op: str = "quantize"


@dataclass
class LayerGraph:
    """The unified layer-graph IR both compiler backends lower from."""

    nodes: List[GraphNode]
    scheme: Optional[str] = None
    backend: Optional[str] = None  # kernel-registry backend, None = default
    cell_type: Optional[str] = None  # "gru" | "lstm" | None (generic)
    options: GraphOptions = field(default_factory=GraphOptions)
    boundaries: List[QuantBoundary] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise CompilationError("a LayerGraph needs at least one node")
        if self.scheme not in GRAPH_SCHEMES:
            raise CompilationError(
                f"scheme must be one of {GRAPH_SCHEMES}, got {self.scheme!r}"
            )

    def slots(self) -> Iterator[Tuple[GraphNode, str, WeightSlot]]:
        """Iterate ``(node, slot_key, slot)`` in execution order."""
        for node in self.nodes:
            for key, slot in node.weights.items():
                yield node, key, slot

    def slot(self, name: str) -> WeightSlot:
        """Look a weight slot up by its fully qualified name."""
        for _, _, slot in self.slots():
            if slot.name == name:
                return slot
        raise CompilationError(f"no weight slot named {name!r}")

    def formats(self) -> Dict[str, Optional[str]]:
        """Slot name → decided format (``None`` while undecided)."""
        return {slot.name: slot.format for _, _, slot in self.slots()}

    def undecided(self) -> bool:
        """True while any slot still awaits format selection."""
        return any(slot.format is None for _, _, slot in self.slots())


# ---------------------------------------------------------------------------
# Graph serialization (the compiled-artifact payload)
# ---------------------------------------------------------------------------
def _tile_to_dict(tile: TileConfig) -> Dict:
    return {
        "rows_per_thread": tile.rows_per_thread,
        "unroll": tile.unroll,
        "use_fp16": tile.use_fp16,
        "row_block": tile.row_block,
    }


def _tile_from_dict(data: Dict) -> TileConfig:
    # row_block postdates the first artifacts; absent means unblocked.
    return TileConfig(
        rows_per_thread=int(data["rows_per_thread"]),
        unroll=int(data["unroll"]),
        use_fp16=bool(data["use_fp16"]),
        row_block=int(data.get("row_block", 0)),
    )


def graph_to_arrays(graph: LayerGraph) -> Tuple[Dict, Dict[str, np.ndarray]]:
    """Split a graph into a JSON-able header and a dict of ndarrays.

    Analytic annotations (row groups, load counts) and probe matrices are
    *not* serialized — they are recomputable and irrelevant to execution;
    what round-trips exactly is everything the executable lowering reads:
    weight/param arrays, decided formats, scheme, backend, grids, tiles.
    """
    nodes_meta: List[Dict] = []
    arrays: Dict[str, np.ndarray] = {}
    for i, node in enumerate(graph.nodes):
        weights_meta: Dict[str, Dict] = {}
        for key, slot in node.weights.items():
            arrays[f"n{i}.w.{key}"] = np.ascontiguousarray(slot.array)
            weights_meta[key] = {
                "name": slot.name,
                "op": slot.op,
                "format": slot.format,
                "scheme": slot.scheme,
                "grid": list(slot.grid),
                "kernel": slot.kernel,
                "tile": _tile_to_dict(slot.tile),
            }
        for key, param in node.params.items():
            arrays[f"n{i}.p.{key}"] = np.ascontiguousarray(param)
        nodes_meta.append(
            {
                "name": node.name,
                "kind": node.kind,
                "weights": weights_meta,
                "params": list(node.params),
            }
        )
    meta = {
        "version": 1,
        "scheme": graph.scheme,
        "backend": graph.backend,
        "cell_type": graph.cell_type,
        "options": {
            "sparse_format": graph.options.sparse_format,
            "sparsity_threshold": graph.options.sparsity_threshold,
            "num_row_strips": graph.options.num_row_strips,
            "num_col_blocks": graph.options.num_col_blocks,
            "enable_reorder": graph.options.enable_reorder,
            "enable_load_elimination": graph.options.enable_load_elimination,
            "demote_full_density": graph.options.demote_full_density,
            "tile": _tile_to_dict(graph.options.tile),
        },
        "boundaries": [
            {"slot": b.slot, "policy": b.policy} for b in graph.boundaries
        ],
        "nodes": nodes_meta,
    }
    return meta, arrays


def graph_from_arrays(meta: Dict, arrays) -> LayerGraph:
    """Rebuild a :class:`LayerGraph` from :func:`graph_to_arrays` output.

    Formats recorded in ``meta`` come back *pinned*, so re-running the
    pass pipeline (or lowering directly) reproduces the recorded
    decisions instead of re-deciding them.
    """
    version = meta.get("version")
    if version != 1:
        raise CompilationError(f"unsupported layer-graph version {version!r}")
    nodes: List[GraphNode] = []
    for i, node_meta in enumerate(meta["nodes"]):
        weights: Dict[str, WeightSlot] = {}
        for key, slot_meta in node_meta["weights"].items():
            weights[key] = WeightSlot(
                name=slot_meta["name"],
                op=slot_meta["op"],
                array=np.asarray(arrays[f"n{i}.w.{key}"]),
                format=slot_meta["format"],
                # Older artifacts predate per-slot schemes; ``None`` lets
                # the lowering fall back to the graph-level scheme.
                scheme=slot_meta.get("scheme"),
                grid=tuple(slot_meta["grid"]),  # type: ignore[arg-type]
                kernel=slot_meta.get("kernel"),
                tile=_tile_from_dict(slot_meta["tile"]),
            )
        params = {
            key: np.asarray(arrays[f"n{i}.p.{key}"]) for key in node_meta["params"]
        }
        nodes.append(
            GraphNode(
                name=node_meta["name"],
                kind=node_meta["kind"],
                weights=weights,
                params=params,
            )
        )
    options_meta = dict(meta["options"])
    options_meta["tile"] = _tile_from_dict(options_meta["tile"])
    return LayerGraph(
        nodes=nodes,
        scheme=meta["scheme"],
        backend=meta["backend"],
        cell_type=meta["cell_type"],
        options=GraphOptions(**options_meta),
        boundaries=[
            QuantBoundary(slot=b["slot"], policy=b["policy"])
            for b in meta["boundaries"]
        ],
    )
