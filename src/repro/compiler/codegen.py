"""Lowering: pruned weight matrices → executable :class:`LayerPlan` kernels.

``lower_matrix`` runs the per-layer pipeline the paper's Figure 3 draws:

1. choose the storage format (BSPC for block-structured weights, CSR for
   irregular ones, dense when unpruned),
2. matrix reorder (optional, on by default),
3. redundant-load-elimination analysis (optional, on by default),
4. emit the layer statistics the mobile cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.compiler.ir import LayerPlan, TileConfig
from repro.compiler.load_elim import naive_loads, tiled_loads
from repro.compiler.reorder import identity_groups, reorder_rows
from repro.errors import CompilationError
from repro.sparse.blocks import BlockGrid, grid_for
from repro.sparse.bspc import BSPCMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_2d


@dataclass(frozen=True)
class CompileOptions:
    """Per-compilation switches (the ablation knobs of the framework)."""

    format_name: str = "bspc"  # "bspc", "csr", or "dense"
    enable_reorder: bool = True
    enable_load_elimination: bool = True
    num_row_strips: int = 4
    num_col_blocks: int = 8
    tile: TileConfig = TileConfig()

    def __post_init__(self) -> None:
        if self.format_name not in ("bspc", "csr", "dense"):
            raise CompilationError(f"unknown format {self.format_name!r}")


def lower_matrix(
    name: str,
    weight: np.ndarray,
    options: Optional[CompileOptions] = None,
    grid: Optional[BlockGrid] = None,
) -> LayerPlan:
    """Compile one pruned weight matrix into a :class:`LayerPlan`.

    ``weight`` carries its sparsity as exact zeros (the convention used by
    every pruner in :mod:`repro.pruning`).
    """
    options = options or CompileOptions()
    weight = check_2d(np.asarray(weight), "weight")
    if grid is None:
        grid = grid_for(weight, options.num_row_strips, options.num_col_blocks)
    else:
        grid.validate_matrix(weight)
    mask = weight != 0.0
    nnz = int(mask.sum())
    rows, cols = weight.shape
    value_bytes = options.tile.value_bytes
    index_bytes = 2

    # Pass 1: matrix reorder.
    if options.enable_reorder:
        permutation, groups = reorder_rows(mask, grid)
    else:
        permutation, groups = identity_groups(mask)

    # Format selection and storage accounting.
    if options.format_name == "dense" or nnz == rows * cols:
        format_name = "dense"
        stored_values = rows * cols
        weight_bytes = stored_values * value_bytes
        metadata_bytes = 0
        kept_rows = rows
        unique_cols = cols
    elif options.format_name == "csr":
        format_name = "csr"
        csr = CSRMatrix.from_dense(weight)
        stored_values = csr.nnz
        weight_bytes = stored_values * value_bytes
        metadata_bytes = csr.nbytes(value_bytes, index_bytes) - weight_bytes
        kept_rows = int(np.any(mask, axis=1).sum())
        unique_cols = int(np.any(mask, axis=0).sum())
    else:
        format_name = "bspc"
        bspc = BSPCMatrix.from_dense(
            weight,
            grid,
            row_permutation=permutation if options.enable_reorder else None,
        )
        stored_values = bspc.stored_values
        weight_bytes = stored_values * value_bytes
        metadata_bytes = bspc.nbytes(value_bytes, index_bytes) - weight_bytes
        kept_rows = len(bspc.kept_row_indices())
        unique_cols = len(bspc.unique_col_indices())

    # Pass 2: redundant load elimination.
    loads_naive = cols if format_name == "dense" else naive_loads(mask)
    if format_name == "dense":
        loads_after = cols  # dense GEMV reads each input element once
    elif options.enable_load_elimination:
        loads_after = tiled_loads(mask, groups, options.tile)
    else:
        loads_after = loads_naive

    return LayerPlan(
        name=name,
        shape=(rows, cols),
        format_name=format_name,
        nnz=nnz,
        stored_values=stored_values,
        kept_rows=kept_rows,
        unique_cols=unique_cols,
        flops_per_step=2 * nnz,
        weight_bytes=weight_bytes,
        metadata_bytes=metadata_bytes,
        act_loads_naive=loads_naive,
        act_loads_per_step=loads_after,
        output_writes_per_step=kept_rows,
        groups=groups,
        tile=options.tile,
        reordered=options.enable_reorder,
        row_permutation=permutation,
    )
