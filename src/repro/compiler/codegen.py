"""Analytic lowering: annotated weight slots → :class:`LayerPlan` kernels.

``lower_matrix`` runs the per-layer pipeline the paper's Figure 3 draws —
now as the shared pass pipeline over a single-slot layer graph:

1. matrix reorder (optional, on by default),
2. redundant-load-elimination analysis (optional, on by default),
3. storage-format selection (BSPC for block-structured weights, CSR for
   irregular ones, dense when unpruned),
4. kernel selection,

then :func:`layer_plan_from_slot` emits the layer statistics the mobile
cost model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.compiler.ir import (
    OP_LINEAR,
    GraphNode,
    GraphOptions,
    LayerGraph,
    LayerPlan,
    TileConfig,
    WeightSlot,
)
from repro.compiler.load_elim import naive_loads
from repro.compiler.passes import run_passes, slot_grid
from repro.errors import CompilationError
from repro.sparse.blocks import BlockGrid, grid_for
from repro.sparse.bspc import BSPCMatrix
from repro.sparse.csr import CSRMatrix
from repro.utils.validation import check_2d


@dataclass(frozen=True)
class CompileOptions:
    """Per-compilation switches (the ablation knobs of the framework)."""

    format_name: str = "bspc"  # "bspc", "csr", or "dense"
    enable_reorder: bool = True
    enable_load_elimination: bool = True
    num_row_strips: int = 4
    num_col_blocks: int = 8
    tile: TileConfig = TileConfig()

    def __post_init__(self) -> None:
        if self.format_name not in ("bspc", "csr", "dense"):
            raise CompilationError(f"unknown format {self.format_name!r}")

    def graph_options(self) -> GraphOptions:
        """The equivalent graph-level options for the pass pipeline."""
        return GraphOptions(
            sparse_format=self.format_name,
            num_row_strips=self.num_row_strips,
            num_col_blocks=self.num_col_blocks,
            enable_reorder=self.enable_reorder,
            enable_load_elimination=self.enable_load_elimination,
            demote_full_density=True,
            tile=self.tile,
        )


def layer_plan_from_slot(slot: WeightSlot) -> LayerPlan:
    """Emit the analytic :class:`LayerPlan` for a fully annotated slot.

    The slot must have been through the pass pipeline with
    ``analytic=True`` (reorder groups and load counts present, format
    decided); this function only does storage accounting.
    """
    weight = slot.array
    mask = weight != 0.0
    nnz = int(mask.sum())
    rows, cols = weight.shape
    value_bytes = slot.tile.value_bytes
    index_bytes = 2
    format_name = slot.format
    if format_name is None:
        raise CompilationError(
            f"slot {slot.name!r} has no decided format; run the pass pipeline"
        )

    if format_name == "dense":
        stored_values = rows * cols
        weight_bytes = stored_values * value_bytes
        metadata_bytes = 0
        kept_rows = rows
        unique_cols = cols
    elif format_name == "csr":
        csr = CSRMatrix.from_dense(weight)
        stored_values = csr.nnz
        weight_bytes = stored_values * value_bytes
        metadata_bytes = csr.nbytes(value_bytes, index_bytes) - weight_bytes
        kept_rows = int(np.any(mask, axis=1).sum())
        unique_cols = int(np.any(mask, axis=0).sum())
    else:
        bspc = BSPCMatrix.from_dense(
            weight,
            slot_grid(slot),
            row_permutation=slot.row_permutation if slot.reordered else None,
        )
        stored_values = bspc.stored_values
        weight_bytes = stored_values * value_bytes
        metadata_bytes = bspc.nbytes(value_bytes, index_bytes) - weight_bytes
        kept_rows = len(bspc.kept_row_indices())
        unique_cols = len(bspc.unique_col_indices())

    # Dense GEMV reads each input element exactly once; sparse formats
    # carry the load-elimination pass's annotations.
    if format_name == "dense":
        loads_naive = cols
        loads_after = cols
    else:
        loads_naive = (
            slot.act_loads_naive
            if slot.act_loads_naive is not None
            else naive_loads(mask)
        )
        loads_after = (
            slot.act_loads_per_step
            if slot.act_loads_per_step is not None
            else loads_naive
        )

    return LayerPlan(
        name=slot.name,
        shape=(rows, cols),
        format_name=format_name,
        nnz=nnz,
        stored_values=stored_values,
        kept_rows=kept_rows,
        unique_cols=unique_cols,
        flops_per_step=2 * nnz,
        weight_bytes=weight_bytes,
        metadata_bytes=metadata_bytes,
        act_loads_naive=loads_naive,
        act_loads_per_step=loads_after,
        output_writes_per_step=kept_rows,
        groups=slot.groups,
        tile=slot.tile,
        reordered=slot.reordered,
        row_permutation=slot.row_permutation,
    )


def lower_matrix(
    name: str,
    weight: np.ndarray,
    options: Optional[CompileOptions] = None,
    grid: Optional[BlockGrid] = None,
) -> LayerPlan:
    """Compile one pruned weight matrix into a :class:`LayerPlan`.

    ``weight`` carries its sparsity as exact zeros (the convention used by
    every pruner in :mod:`repro.pruning`).  Internally this wraps the
    matrix in a single-slot layer graph and runs the shared pass
    pipeline — the same passes the execution engine's lowering uses.
    """
    options = options or CompileOptions()
    weight = check_2d(np.asarray(weight), "weight")
    if grid is None:
        grid = grid_for(weight, options.num_row_strips, options.num_col_blocks)
    else:
        grid.validate_matrix(weight)
    slot = WeightSlot(
        name=name,
        op=OP_LINEAR,
        array=weight,
        grid=(options.num_row_strips, options.num_col_blocks),
        tile=options.tile,
        block_grid=grid,
    )
    graph = LayerGraph(
        nodes=[GraphNode(name=name, kind="linear", weights={"w": slot})],
        options=options.graph_options(),
    )
    run_passes(graph, analytic=True)
    return layer_plan_from_slot(slot)
