"""The shared pass pipeline over the layer graph (Figure 3, unified).

Both compiler backends — the analytic mobile cost model
(:func:`repro.compiler.pipeline.compile_for_simulation`) and the
execution engine (:func:`repro.engine.compile_model`) — run the same
four passes over a :class:`~repro.compiler.ir.LayerGraph` before
lowering it:

1. :func:`reorder_pass` — group rows by nonzero pattern (Section
   IV-B(a)); annotates the permutation and thread row-groups.
2. :func:`load_elim_pass` — redundant-load-elimination analysis
   (Section IV-B(b)); annotates per-step input-load counts.
3. :func:`select_formats_pass` — resolve each weight's storage format
   (dense / CSR / BSPC) *and* its per-slot quantization scheme from the
   graph's requests, and mark the quantize boundaries those decisions
   introduce.  Slots whose format or scheme was *pinned* beforehand (by
   the measured auto-tuner or a loaded artifact) pass through untouched.
   A ``"mixed"`` graph scheme resolves to int8 projections over float
   recurrences.
4. :func:`select_kernels_pass` — name the registry kernel each op lowers
   to under the decided format and the slot's own scheme.

``analytic=True`` annotates every slot (the simulator prices dense
layers too); the default annotates only sparse candidates, so compiling
a dense model for execution stays cheap.
"""

from __future__ import annotations

from typing import List

from repro.compiler.ir import (
    OP_LINEAR,
    GraphOptions,
    LayerGraph,
    QuantBoundary,
    WeightSlot,
    resolve_slot_scheme,
)
from repro.compiler.load_elim import naive_loads, tiled_loads
from repro.compiler.reorder import identity_groups, reorder_rows
from repro.sparse.blocks import BlockGrid, grid_for
from repro.sparse.bspc import BSPCMatrix


def slot_grid(slot: WeightSlot) -> BlockGrid:
    """The block grid for a slot: its explicit override, or its
    ``(strips, blocks)`` attribute clamped so small matrices stay legal."""
    if slot.block_grid is not None:
        return slot.block_grid  # type: ignore[return-value]
    rows, cols = slot.shape
    return grid_for(slot.array, min(slot.grid[0], rows), min(slot.grid[1], cols))


def _sparse_candidate(slot: WeightSlot, options: GraphOptions) -> bool:
    """Whether this slot can end up sparse under the graph's request."""
    if slot.format in ("csr", "bspc"):
        return True
    if slot.format == "dense":
        return False
    request = options.sparse_format
    if request in ("csr", "bspc"):
        return True
    if request == "auto":
        return slot.density <= options.sparsity_threshold
    return False


def reorder_pass(graph: LayerGraph, analytic: bool = False) -> LayerGraph:
    """Annotate row permutation + pattern groups (matrix reorder)."""
    for _, _, slot in graph.slots():
        if not (analytic or _sparse_candidate(slot, graph.options)):
            continue
        mask = slot.array != 0.0
        if graph.options.enable_reorder:
            permutation, groups = reorder_rows(mask, slot_grid(slot))
            slot.reordered = True
        else:
            permutation, groups = identity_groups(mask)
            slot.reordered = False
        slot.row_permutation = permutation
        slot.groups = groups
    return graph


def load_elim_pass(graph: LayerGraph, analytic: bool = False) -> LayerGraph:
    """Annotate input loads per step, naive vs. after tile-level reuse."""
    for _, _, slot in graph.slots():
        if slot.row_permutation is None:
            continue  # not annotated by the reorder pass
        mask = slot.array != 0.0
        slot.act_loads_naive = naive_loads(mask)
        if graph.options.enable_load_elimination:
            slot.act_loads_per_step = tiled_loads(mask, slot.groups, slot.tile)
        else:
            slot.act_loads_per_step = slot.act_loads_naive
    return graph


def _decide_format(slot: WeightSlot, options: GraphOptions) -> str:
    request = options.sparse_format
    if request in (None, "dense"):
        return "dense"
    rows, cols = slot.shape
    if options.demote_full_density and slot.nnz == rows * cols:
        return "dense"
    if request in ("csr", "bspc"):
        return request
    # "auto": density gate, then the BSPC fill probe — BSP-shaped
    # patterns pack as mostly-full panels, irregular ones go CSR.
    if slot.density > options.sparsity_threshold:
        return "dense"
    bspc = BSPCMatrix.from_dense(slot.array, slot_grid(slot))
    if bspc.fill() >= 0.5:
        slot.prebuilt = bspc
        return "bspc"
    return "csr"


def _mark_boundaries(graph: LayerGraph) -> None:
    boundaries: List[QuantBoundary] = []
    for _, _, slot in graph.slots():
        scheme = slot.scheme or resolve_slot_scheme(graph.scheme, slot.op)
        if scheme == "int8":
            if slot.op == OP_LINEAR:
                # Activations quantized with one scale per frame, integer
                # accumulate, one dequant — the chunk-exact int8 contract.
                boundaries.append(
                    QuantBoundary(slot=slot.name, policy="int8-activations-per-frame")
                )
            else:
                boundaries.append(
                    QuantBoundary(slot=slot.name, policy="int8-weights-dequantized")
                )
        elif scheme == "fp16":
            boundaries.append(
                QuantBoundary(slot=slot.name, policy="fp16-round-weights")
            )
    graph.boundaries = boundaries


def select_formats_pass(graph: LayerGraph, analytic: bool = False) -> LayerGraph:
    """Resolve undecided slot formats/schemes and mark quantize boundaries."""
    for _, _, slot in graph.slots():
        if slot.format is None:
            slot.format = _decide_format(slot, graph.options)
        if slot.scheme is None:
            slot.scheme = resolve_slot_scheme(graph.scheme, slot.op)
    _mark_boundaries(graph)
    return graph


def _kernel_for(op: str, fmt: str, scheme) -> str:
    if fmt in ("csr", "bspc"):
        return f"{fmt}_spmm_int8" if scheme == "int8" else f"{fmt}_spmm"
    if scheme == "int8" and op == OP_LINEAR:
        return "linear_int8_rowwise"
    # Dense float64/fp16 projections and dense (possibly dequantized
    # int8) recurrent steps run as plain BLAS matmuls, not registry ops.
    return "blas_matmul"


def select_kernels_pass(graph: LayerGraph, analytic: bool = False) -> LayerGraph:
    """Name the kernel each weight op lowers to (format + slot scheme)."""
    for _, _, slot in graph.slots():
        scheme = slot.scheme or resolve_slot_scheme(graph.scheme, slot.op)
        slot.kernel = _kernel_for(slot.op, slot.format or "dense", scheme)
    return graph


#: The pipeline, in order.  Reorder and load elimination are analyses
#: (they annotate), format and kernel selection are decisions.
PASS_PIPELINE = (
    reorder_pass,
    load_elim_pass,
    select_formats_pass,
    select_kernels_pass,
)


def run_passes(graph: LayerGraph, analytic: bool = False) -> LayerGraph:
    """Run the full pass pipeline over ``graph`` in place and return it."""
    for pass_fn in PASS_PIPELINE:
        pass_fn(graph, analytic=analytic)
    return graph


__all__ = [
    "slot_grid",
    "reorder_pass",
    "load_elim_pass",
    "select_formats_pass",
    "select_kernels_pass",
    "run_passes",
    "PASS_PIPELINE",
]
