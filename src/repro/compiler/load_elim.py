"""Redundant load elimination (Section IV-B(b) of the paper).

A GEMV thread processes a tile of ``rows_per_thread`` consecutive
(post-reorder) rows.  Naively, every nonzero weight triggers one load of
its input-vector element; but after BSP pruning, neighbouring rows in a
reorder group share the same column pattern, so the tile can load each
*distinct* column once and reuse it across its rows.

This pass is purely analytical: it computes, per layer, the number of
input-element loads per timestep with and without the optimization.  The
hardware simulator charges memory traffic accordingly.

Unstructured (CSR) patterns get little benefit — neighbouring rows rarely
share columns — which reproduces the paper's observation that this
optimization is "specifically enabled by" block-based structured pruning.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.compiler.ir import RowGroup, TileConfig
from repro.utils.validation import check_2d


def naive_loads(mask: np.ndarray) -> int:
    """Input loads per timestep with no reuse: one per nonzero weight."""
    mask = check_2d(np.asarray(mask) != 0, "mask")
    return int(mask.sum())


def tiled_loads(mask: np.ndarray, groups: List[RowGroup], tile: TileConfig) -> int:
    """Input loads per timestep when each tile loads distinct columns once.

    Tiles never span groups (different patterns cannot share loads), so the
    count is the sum over every ``rows_per_thread``-row tile of the number
    of distinct columns that tile's rows touch.
    """
    mask = check_2d(np.asarray(mask) != 0, "mask")
    total = 0
    for group in groups:
        rows = group.rows
        for start in range(0, len(rows), tile.rows_per_thread):
            tile_rows = rows[start : start + tile.rows_per_thread]
            total += int(np.any(mask[tile_rows], axis=0).sum())
    return total


def elimination_ratio(mask: np.ndarray, groups: List[RowGroup], tile: TileConfig) -> float:
    """Fraction of naive loads removed by tiling (0 when nothing is shared)."""
    naive = naive_loads(mask)
    if naive == 0:
        return 0.0
    return 1.0 - tiled_loads(mask, groups, tile) / naive
