"""End-to-end compilation: pruned model → :class:`KernelPlan` → simulation.

This is the user-facing entry of the compiler-assisted framework
(Figure 3): hand it the (pruned) weight matrices of an RNN and a device,
get latency / GOP/s / energy out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.compiler.codegen import CompileOptions, lower_matrix
from repro.compiler.ir import KernelPlan
from repro.errors import CompilationError
from repro.hw.device import DeviceSpec
from repro.hw.energy import EnergyReport, energy_report
from repro.hw.executor import SimulationResult, simulate
from repro.pruning.metrics import FRAMES_PER_INFERENCE


def compile_weights(
    named_weights: Dict[str, np.ndarray],
    options: Optional[CompileOptions] = None,
    timesteps: int = FRAMES_PER_INFERENCE,
) -> KernelPlan:
    """Lower every weight matrix and assemble the full inference plan.

    ``named_weights`` maps layer names to 2-D arrays whose zeros encode the
    pruning pattern (the output of any :mod:`repro.pruning` method applied
    to a trained model).
    """
    if not named_weights:
        raise CompilationError("compile_weights() needs at least one matrix")
    options = options or CompileOptions()
    layers = [
        lower_matrix(name, weight, options) for name, weight in named_weights.items()
    ]
    return KernelPlan(layers=layers, timesteps=timesteps)


@dataclass
class CompiledModel:
    """A compiled model bound to its plan, ready to simulate on devices."""

    plan: KernelPlan
    options: CompileOptions

    @property
    def compression_rate(self) -> float:
        return self.plan.compression_rate

    @property
    def gop_per_frame(self) -> float:
        return self.plan.gop_per_inference

    def simulate(self, device: DeviceSpec) -> SimulationResult:
        """Predict one inference frame's cost on ``device``."""
        return simulate(self.plan, device)

    def energy(self, device: DeviceSpec) -> EnergyReport:
        """Latency + energy report on ``device`` (ESE-normalized)."""
        return energy_report(self.simulate(device), device)


def compile_model(
    named_weights: Dict[str, np.ndarray],
    options: Optional[CompileOptions] = None,
    timesteps: int = FRAMES_PER_INFERENCE,
) -> CompiledModel:
    """Convenience wrapper returning a :class:`CompiledModel`."""
    options = options or CompileOptions()
    return CompiledModel(
        plan=compile_weights(named_weights, options, timesteps), options=options
    )
