"""End-to-end compilation: model → layer graph → passes → lowering.

This is the user-facing entry of the compiler-assisted framework
(Figure 3).  Every consumer goes through the same route:

* **frontends** build a :class:`~repro.compiler.ir.LayerGraph` — from a
  trained module tree (:func:`build_layer_graph`), a bare GRU weight
  dict (:func:`rnn_graph_from_weights`), or named weight matrices
  (:func:`graph_from_named_weights`, the analytic frontend);
* the shared **pass pipeline** (:mod:`repro.compiler.passes`) annotates
  and decides formats/kernels;
* a **lowering** turns the decided graph into something runnable:
  :func:`kernel_plan_from_graph` for the analytic mobile simulator
  (:func:`compile_for_simulation`), or
  :func:`repro.engine.plan.lower_graph` for the host execution engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.compiler.codegen import CompileOptions, layer_plan_from_slot
from repro.compiler.ir import (
    OP_LINEAR,
    OP_RECURRENT_MATVEC,
    GraphNode,
    GraphOptions,
    KernelPlan,
    LayerGraph,
    WeightSlot,
)
from repro.compiler.passes import run_passes
from repro.errors import CompilationError, ConfigError
from repro.hw.device import DeviceSpec
from repro.hw.energy import EnergyReport, energy_report
from repro.hw.executor import SimulationResult, simulate
from repro.pruning.metrics import FRAMES_PER_INFERENCE
from repro.sparse.blocks import grid_for
from repro.utils.validation import check_2d


# ---------------------------------------------------------------------------
# Frontends: build the shared layer graph
# ---------------------------------------------------------------------------
def graph_from_named_weights(
    named_weights: Dict[str, np.ndarray],
    options: Optional[CompileOptions] = None,
) -> LayerGraph:
    """The analytic frontend: one generic GEMV node per weight matrix.

    ``named_weights`` maps layer names to 2-D arrays whose zeros encode
    the pruning pattern (the output of any :mod:`repro.pruning` method
    applied to a trained model).
    """
    if not named_weights:
        raise CompilationError("graph_from_named_weights() needs at least one matrix")
    options = options or CompileOptions()
    nodes = []
    for name, weight in named_weights.items():
        weight = check_2d(np.asarray(weight), name)
        slot = WeightSlot(
            name=name,
            op=OP_RECURRENT_MATVEC if "weight_hh" in name else OP_LINEAR,
            array=weight,
            grid=(options.num_row_strips, options.num_col_blocks),
            tile=options.tile,
            block_grid=grid_for(
                weight, options.num_row_strips, options.num_col_blocks
            ),
        )
        nodes.append(GraphNode(name=name, kind="linear", weights={"w": slot}))
    return LayerGraph(nodes=nodes, options=options.graph_options())


def _cell_node(
    index: int,
    kind: str,
    weight_ih: np.ndarray,
    weight_hh: np.ndarray,
    params: Dict[str, np.ndarray],
    options: GraphOptions,
) -> GraphNode:
    grid = (options.num_row_strips, options.num_col_blocks)
    name = f"cell{index}"
    return GraphNode(
        name=name,
        kind=kind,
        weights={
            "ih": WeightSlot(
                name=f"{name}.weight_ih",
                op=OP_LINEAR,
                array=np.array(weight_ih, dtype=np.float64),
                grid=grid,
                tile=options.tile,
            ),
            "hh": WeightSlot(
                name=f"{name}.weight_hh",
                op=OP_RECURRENT_MATVEC,
                array=np.array(weight_hh, dtype=np.float64),
                grid=grid,
                tile=options.tile,
            ),
        },
        params={k: np.array(v, dtype=np.float64) for k, v in params.items()},
    )


def build_layer_graph(
    model,
    scheme: Optional[str] = None,
    options: Optional[GraphOptions] = None,
    backend: Optional[str] = None,
) -> LayerGraph:
    """The module-tree frontend: walk a
    :class:`~repro.speech.model.GRUAcousticModel` (or bare ``GRU`` /
    ``LSTM`` stack) once and snapshot it into a layer graph.

    Every array is copied, so later training or pruning of ``model``
    cannot silently change what a lowering of this graph computes.
    """
    from repro.nn.rnn import GRU, LSTM  # deferred: keep compiler import-light

    options = options or GraphOptions()
    rnn = model if isinstance(model, (GRU, LSTM)) else getattr(model, "gru", None)
    if not isinstance(rnn, (GRU, LSTM)):
        raise ConfigError(
            f"cannot compile {type(model).__name__}: expected a "
            "GRUAcousticModel or a GRU/LSTM module"
        )
    nodes = []
    for index, cell in enumerate(rnn.cells):
        if isinstance(rnn, GRU):
            nodes.append(
                _cell_node(
                    index,
                    "gru_cell",
                    cell.weight_ih.data,
                    cell.weight_hh.data,
                    {"bias_ih": cell.bias_ih.data, "bias_hh": cell.bias_hh.data},
                    options,
                )
            )
        else:
            nodes.append(
                _cell_node(
                    index,
                    "lstm_cell",
                    cell.weight_ih.data,
                    cell.weight_hh.data,
                    {"bias": cell.bias.data},
                    options,
                )
            )
    linear = getattr(model, "output", None)
    if linear is not None:
        params = {} if linear.bias is None else {
            "bias": np.array(linear.bias.data, dtype=np.float64)
        }
        nodes.append(
            GraphNode(
                name="output",
                kind="output",
                weights={
                    "w": WeightSlot(
                        name="output.weight",
                        op=OP_LINEAR,
                        array=np.array(linear.weight.data, dtype=np.float64),
                        # The phone projection is small and stays dense —
                        # pinned here so format selection never repacks it.
                        format="dense",
                        grid=(options.num_row_strips, options.num_col_blocks),
                        tile=options.tile,
                    )
                },
                params=params,
            )
        )
    return LayerGraph(
        nodes=nodes,
        scheme=scheme,
        backend=backend,
        cell_type="gru" if isinstance(rnn, GRU) else "lstm",
        options=options,
    )


def rnn_graph_from_weights(
    weights: Dict[str, np.ndarray],
    scheme: Optional[str] = None,
    options: Optional[GraphOptions] = None,
    backend: Optional[str] = None,
) -> LayerGraph:
    """The weight-dict frontend: ``gru.cell{i}.weight_ih/_hh`` keys (the
    Table II sweep naming) become GRU cell nodes with zero biases."""
    options = options or GraphOptions()
    num_layers = 0
    while f"gru.cell{num_layers}.weight_ih" in weights:
        num_layers += 1
    if num_layers == 0:
        raise ConfigError(
            "weights must contain 'gru.cell0.weight_ih'; "
            f"got keys {sorted(weights)}"
        )
    nodes = []
    for index in range(num_layers):
        w_ih = np.array(weights[f"gru.cell{index}.weight_ih"], dtype=np.float64)
        w_hh = np.array(weights[f"gru.cell{index}.weight_hh"], dtype=np.float64)
        zeros = np.zeros(w_ih.shape[0])
        nodes.append(
            _cell_node(
                index,
                "gru_cell",
                w_ih,
                w_hh,
                {"bias_ih": zeros, "bias_hh": zeros.copy()},
                options,
            )
        )
    return LayerGraph(
        nodes=nodes, scheme=scheme, backend=backend, cell_type="gru",
        options=options,
    )


# ---------------------------------------------------------------------------
# Analytic lowering + the simulation-facing API
# ---------------------------------------------------------------------------
def kernel_plan_from_graph(
    graph: LayerGraph, timesteps: int = FRAMES_PER_INFERENCE
) -> KernelPlan:
    """Lower a pass-annotated graph to the analytic :class:`KernelPlan`."""
    layers = [layer_plan_from_slot(slot) for _, _, slot in graph.slots()]
    return KernelPlan(layers=layers, timesteps=timesteps)


def compile_weights(
    named_weights: Dict[str, np.ndarray],
    options: Optional[CompileOptions] = None,
    timesteps: int = FRAMES_PER_INFERENCE,
) -> KernelPlan:
    """Lower every weight matrix and assemble the full inference plan."""
    if not named_weights:
        raise CompilationError("compile_weights() needs at least one matrix")
    options = options or CompileOptions()
    graph = graph_from_named_weights(named_weights, options)
    run_passes(graph, analytic=True)
    return kernel_plan_from_graph(graph, timesteps)


@dataclass
class CompiledModel:
    """A compiled model bound to its plan, ready to simulate on devices."""

    plan: KernelPlan
    options: CompileOptions

    @property
    def compression_rate(self) -> float:
        return self.plan.compression_rate

    @property
    def gop_per_frame(self) -> float:
        return self.plan.gop_per_inference

    def simulate(self, device: DeviceSpec) -> SimulationResult:
        """Predict one inference frame's cost on ``device``."""
        return simulate(self.plan, device)

    def energy(self, device: DeviceSpec) -> EnergyReport:
        """Latency + energy report on ``device`` (ESE-normalized)."""
        return energy_report(self.simulate(device), device)


def compile_for_simulation(
    named_weights: Dict[str, np.ndarray],
    options: Optional[CompileOptions] = None,
    timesteps: int = FRAMES_PER_INFERENCE,
) -> CompiledModel:
    """Compile named weight matrices for the analytic mobile simulator.

    This is the cost-model side of the compiler; the executable side is
    :func:`repro.engine.compile_model`, which lowers the same layer-graph
    IR to a host :class:`~repro.engine.plan.ModelPlan`.
    """
    options = options or CompileOptions()
    return CompiledModel(
        plan=compile_weights(named_weights, options, timesteps), options=options
    )


def compile_model(
    named_weights: Dict[str, np.ndarray],
    options: Optional[CompileOptions] = None,
    timesteps: int = FRAMES_PER_INFERENCE,
) -> CompiledModel:
    """Deprecated alias for :func:`compile_for_simulation`.

    The name collided with :func:`repro.engine.compile_model` (the
    executable lowering); the analytic entry point is now unambiguous.
    """
    warnings.warn(
        "repro.compiler.pipeline.compile_model is deprecated; use "
        "compile_for_simulation (analytic) or repro.engine.compile_model "
        "(executable)",
        DeprecationWarning,
        stacklevel=2,
    )
    return compile_for_simulation(named_weights, options, timesteps)
