"""ASCII visualization of sparsity patterns and compiled plans.

Debugging aids for the compiler: render a pruned matrix's block structure
at terminal resolution, and summarize a :class:`KernelPlan` layer by
layer.  Pure-text so they work everywhere the library does.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.compiler.ir import KernelPlan
from repro.sparse.blocks import BlockGrid
from repro.utils.validation import check_2d

#: Density ramp used by :func:`render_pattern` (space = empty, # = dense).
_SHADES = " .:-=+*#"


def render_pattern(
    weight: np.ndarray,
    max_rows: int = 32,
    max_cols: int = 64,
    grid: Optional[BlockGrid] = None,
) -> str:
    """Render the nonzero density of ``weight`` as an ASCII bitmap.

    The matrix is pooled down to at most ``max_rows × max_cols`` character
    cells; each cell's character encodes its local nonzero density.  When
    ``grid`` is given, block boundaries are drawn with ``|`` and ``-``.
    """
    weight = check_2d(np.asarray(weight), "weight")
    rows, cols = weight.shape
    row_edges = np.linspace(0, rows, min(max_rows, rows) + 1).astype(int)
    col_edges = np.linspace(0, cols, min(max_cols, cols) + 1).astype(int)
    mask = weight != 0.0

    col_breaks = set()
    row_breaks = set()
    if grid is not None:
        grid.validate_matrix(weight)
        boundary_cols = {c0 for c0, _ in grid.col_bounds()[1:]}
        boundary_rows = {r0 for r0, _ in grid.row_bounds()[1:]}
        for i in range(len(col_edges) - 1):
            if any(col_edges[i] <= b < col_edges[i + 1] for b in boundary_cols):
                col_breaks.add(i)
        for i in range(len(row_edges) - 1):
            if any(row_edges[i] <= b < row_edges[i + 1] for b in boundary_rows):
                row_breaks.add(i)

    lines: List[str] = []
    for i in range(len(row_edges) - 1):
        if i in row_breaks:
            lines.append("-" * (len(col_edges) - 1 + len(col_breaks)))
        cells = []
        for j in range(len(col_edges) - 1):
            if j in col_breaks:
                cells.append("|")
            block = mask[row_edges[i]:row_edges[i + 1],
                         col_edges[j]:col_edges[j + 1]]
            density = block.mean() if block.size else 0.0
            shade = _SHADES[min(len(_SHADES) - 1, int(density * (len(_SHADES) - 1) + 0.999))]
            if density == 0.0:
                shade = " "
            cells.append(shade)
        lines.append("".join(cells))
    return "\n".join(lines)


def describe_plan(plan: KernelPlan) -> str:
    """One-line-per-layer summary of a compiled plan."""
    lines = [
        f"KernelPlan: {len(plan.layers)} layers, {plan.timesteps} timesteps, "
        f"{plan.compression_rate:.1f}x compression, "
        f"{plan.gop_per_inference:.4f} GOP/frame"
    ]
    for layer in plan.layers:
        lines.append(
            f"  {layer.name}: {layer.shape[0]}x{layer.shape[1]} "
            f"[{layer.format_name}] nnz={layer.nnz} "
            f"rows={layer.kept_rows} cols={layer.unique_cols} "
            f"groups={len(layer.groups)} "
            f"loads {layer.act_loads_naive}->{layer.act_loads_per_step} "
            f"({layer.load_elimination_ratio:.0%} eliminated), "
            f"{layer.weight_bytes + layer.metadata_bytes} B stored"
        )
    return "\n".join(lines)
