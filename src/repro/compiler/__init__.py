"""Compiler-assisted acceleration: one layer-graph IR, one pass pipeline.

Every consumer lowers from the same :class:`~repro.compiler.ir.LayerGraph`
after the shared pass pipeline (reorder → load elimination → format
selection → kernel selection) has annotated it: the analytic mobile cost
model via :func:`compile_for_simulation`, and the host execution engine
via :func:`repro.engine.compile_model`.  Auto-tuning comes in a
simulated tier (:func:`tune_execution_config`/:func:`find_best_block_size`)
and a measured tier (:func:`tune_plan`, which times the real engine).
"""

from repro.compiler.autotune import (
    MeasuredCandidate,
    PlanTuningResult,
    TileRankingComparison,
    TuningCandidate,
    TuningResult,
    compare_tile_rankings,
    default_tile_candidates,
    default_tile_space,
    find_best_block_size,
    tune_execution_config,
    tune_plan,
)
from repro.compiler.codegen import CompileOptions, layer_plan_from_slot, lower_matrix
from repro.compiler.ir import (
    GraphNode,
    GraphOptions,
    KernelPlan,
    LayerGraph,
    LayerPlan,
    QuantBoundary,
    RowGroup,
    TileConfig,
    WeightSlot,
    graph_from_arrays,
    graph_to_arrays,
    resolve_slot_scheme,
)
from repro.compiler.load_elim import elimination_ratio, naive_loads, tiled_loads
from repro.compiler.passes import (
    PASS_PIPELINE,
    load_elim_pass,
    reorder_pass,
    run_passes,
    select_formats_pass,
    select_kernels_pass,
)
from repro.compiler.pipeline import (
    CompiledModel,
    build_layer_graph,
    compile_for_simulation,
    compile_model,
    compile_weights,
    graph_from_named_weights,
    kernel_plan_from_graph,
    rnn_graph_from_weights,
)
from repro.compiler.reorder import identity_groups, reorder_rows, row_signature
from repro.compiler.visualize import describe_plan, render_pattern

__all__ = [
    # IR
    "TileConfig",
    "RowGroup",
    "LayerPlan",
    "KernelPlan",
    "GraphOptions",
    "WeightSlot",
    "GraphNode",
    "QuantBoundary",
    "LayerGraph",
    "graph_to_arrays",
    "graph_from_arrays",
    "resolve_slot_scheme",
    # frontends + lowering
    "CompileOptions",
    "lower_matrix",
    "layer_plan_from_slot",
    "build_layer_graph",
    "rnn_graph_from_weights",
    "graph_from_named_weights",
    "kernel_plan_from_graph",
    "compile_weights",
    "compile_for_simulation",
    "compile_model",  # deprecated alias of compile_for_simulation
    "CompiledModel",
    # passes
    "run_passes",
    "PASS_PIPELINE",
    "reorder_pass",
    "load_elim_pass",
    "select_formats_pass",
    "select_kernels_pass",
    "reorder_rows",
    "identity_groups",
    "row_signature",
    "naive_loads",
    "tiled_loads",
    "elimination_ratio",
    # tuning
    "tune_execution_config",
    "find_best_block_size",
    "default_tile_space",
    "TuningCandidate",
    "TuningResult",
    "tune_plan",
    "default_tile_candidates",
    "MeasuredCandidate",
    "PlanTuningResult",
    "compare_tile_rankings",
    "TileRankingComparison",
    # visualization
    "render_pattern",
    "describe_plan",
]
