"""Compiler-assisted acceleration: reorder, load elimination, BSPC, tuning."""

from repro.compiler.autotune import (
    TuningCandidate,
    TuningResult,
    default_tile_space,
    find_best_block_size,
    tune_execution_config,
)
from repro.compiler.codegen import CompileOptions, lower_matrix
from repro.compiler.ir import KernelPlan, LayerPlan, RowGroup, TileConfig
from repro.compiler.load_elim import elimination_ratio, naive_loads, tiled_loads
from repro.compiler.pipeline import CompiledModel, compile_model, compile_weights
from repro.compiler.reorder import identity_groups, reorder_rows, row_signature
from repro.compiler.visualize import describe_plan, render_pattern

__all__ = [
    "TileConfig",
    "RowGroup",
    "LayerPlan",
    "KernelPlan",
    "CompileOptions",
    "lower_matrix",
    "compile_weights",
    "compile_model",
    "CompiledModel",
    "reorder_rows",
    "identity_groups",
    "row_signature",
    "naive_loads",
    "tiled_loads",
    "elimination_ratio",
    "tune_execution_config",
    "find_best_block_size",
    "default_tile_space",
    "TuningCandidate",
    "TuningResult",
    "render_pattern",
    "describe_plan",
]
