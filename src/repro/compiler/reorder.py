"""Matrix reorder pass (Section IV-B(a) of the paper).

Rows with the same (or similar) nonzero pattern are grouped together so
that concurrent threads execute balanced, divergence-free work.  For
BSP-pruned matrices the natural pattern signature of a row is the set of
block-columns in which it keeps weights: rows of one strip that survived
Step 2 share their per-block column sets, so grouping by signature puts
identical-computation rows adjacent — which also unlocks the redundant-load
elimination pass.

The pass is semantics-preserving: it returns a permutation, and
``reordered_matrix[i] == matrix[permutation[i]]`` — the executor carries
the permutation in the BSPC payload so outputs land in original positions.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.compiler.ir import RowGroup
from repro.sparse.blocks import BlockGrid
from repro.utils.validation import check_2d


def row_signature(mask_row: np.ndarray, grid: BlockGrid) -> Tuple[int, ...]:
    """Block-column signature of one row: which blocks it touches.

    Two rows with equal signatures read the same block-column panels and
    perform the same amount of work per block, so they can run in lockstep.
    """
    signature = []
    for block, (c0, c1) in enumerate(grid.col_bounds()):
        if np.any(mask_row[c0:c1]):
            signature.append(block)
    return tuple(signature)


def reorder_rows(
    mask: np.ndarray, grid: BlockGrid
) -> Tuple[np.ndarray, List[RowGroup]]:
    """Group rows by pattern and return ``(permutation, groups)``.

    ``permutation[i]`` is the original index of the row executed in slot
    ``i``.  Pruned (all-zero) rows are dropped from the groups entirely —
    they cost nothing on device — but still appear at the permutation's
    tail so it remains a full permutation of the matrix rows.

    Groups are ordered by decreasing total work so the executor's greedy
    scheduler packs heavy groups first.
    """
    mask = check_2d(np.asarray(mask) != 0, "mask")
    grid.validate_matrix(mask)
    nnz_per_row = mask.sum(axis=1)
    alive = np.flatnonzero(nnz_per_row > 0)
    dead = np.flatnonzero(nnz_per_row == 0)

    by_signature: dict = {}
    for row in alive:
        key = row_signature(mask[row], grid)
        by_signature.setdefault(key, []).append(int(row))

    groups: List[RowGroup] = []
    for key, rows in by_signature.items():
        rows_arr = np.asarray(rows, dtype=np.int64)
        # Within a group, order by nnz so tiles hold near-equal work.
        order = np.argsort(nnz_per_row[rows_arr], kind="stable")[::-1]
        rows_arr = rows_arr[order]
        unique_cols = int(np.any(mask[rows_arr], axis=0).sum())
        groups.append(
            RowGroup(
                rows=rows_arr,
                nnz_per_row=nnz_per_row[rows_arr],
                pattern_key=key,
                unique_cols=unique_cols,
            )
        )
    groups.sort(key=lambda g: (-g.total_nnz, g.pattern_key))

    ordered = [r for g in groups for r in g.rows.tolist()] + dead.tolist()
    permutation = np.asarray(ordered, dtype=np.int64)
    return permutation, groups


def identity_groups(mask: np.ndarray) -> Tuple[np.ndarray, List[RowGroup]]:
    """No-reorder fallback: original row order, one group per row run.

    Used to model execution *without* the reorder optimization (ablation):
    alive rows keep their original interleaving with arbitrary patterns, so
    the executor sees divergent work within each thread's chunk.
    """
    mask = check_2d(np.asarray(mask) != 0, "mask")
    nnz_per_row = mask.sum(axis=1)
    alive = np.flatnonzero(nnz_per_row > 0)
    dead = np.flatnonzero(nnz_per_row == 0)
    groups: List[RowGroup] = []
    if alive.size:
        unique_cols = int(np.any(mask[alive], axis=0).sum())
        groups.append(
            RowGroup(
                rows=alive,
                nnz_per_row=nnz_per_row[alive],
                pattern_key=(-1,),
                unique_cols=unique_cols,
            )
        )
    permutation = np.concatenate([alive, dead]).astype(np.int64)
    return permutation, groups
