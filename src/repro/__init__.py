"""RTMobile reproduction — block-based structured pruning and
compiler-assisted mobile RNN acceleration (Dong et al., DAC 2020).

Layered public API:

* :mod:`repro.nn` — numpy autograd + GRU training substrate,
* :mod:`repro.pruning` — BSP (ADMM block pruning) and every baseline,
* :mod:`repro.sparse` — CSR/CSC/BSPC storage formats,
* :mod:`repro.kernels` — vectorized execution backends behind a pluggable
  registry (the compute seam for sparse ops and fused RNN sequences),
* :mod:`repro.compiler` — the unified compiler: one layer-graph IR and
  pass pipeline (reorder / load elimination / format + kernel selection)
  with simulated *and* measured auto-tuning,
* :mod:`repro.engine` — the compiler's executable backend: compiled
  model plans (packed, optionally quantized weights), length-bucketed
  micro-batched serving, and save/load of tuned plan artifacts,
* :mod:`repro.hw` — calibrated Adreno 640 / Kryo 485 simulator + energy,
* :mod:`repro.speech` — synthetic TIMIT-like corpus, GRU acoustic model,
  PER evaluation,
* :mod:`repro.training` — atomic checksummed checkpoints with bit-exact
  resume and a data-parallel :class:`~repro.training.DistributedTrainer`
  with fabric-style crash/stall supervision,
* :mod:`repro.sweep` — fault-tolerant prune→retrain sweeps over the
  sparsity × scheme × block grid, published into the plan registry,
* :mod:`repro.eval` — harnesses for Table I, Table II, and Figure 4.

Quickstart::

    from repro.speech import make_corpus, GRUAcousticModel, Trainer
    from repro.pruning import BSPConfig, BSPPruner
    from repro.compiler import compile_for_simulation
    from repro.hw import ADRENO_640
    from repro import engine

    train, test = make_corpus(48, 16)
    model = GRUAcousticModel()
    trainer = Trainer(model, train, test)
    trainer.train_dense(10)
    pruner = BSPPruner(model.prunable_parameters(), BSPConfig(10, 1.25))
    trainer.run_pruning(pruner)
    compiled = compile_for_simulation(model.prunable_weights())
    print(compiled.simulate(ADRENO_640).latency_us)   # analytic mobile cost
    plan = engine.compile_model(model)                # executable host plan
    print(plan.forward_batch(test.examples[0].features[:, None, :]).shape)
"""

__version__ = "1.0.0"

from repro import (
    compiler,
    engine,
    eval,
    hw,
    kernels,
    nn,
    pruning,
    sparse,
    speech,
    sweep,
    training,
    utils,
)
from repro.errors import (
    ArtifactError,
    CheckpointError,
    CompilationError,
    CompileBackendError,
    ConfigError,
    FabricError,
    GradientError,
    KernelError,
    OverloadError,
    ReproError,
    ShapeError,
    SimulationError,
    SparsityError,
    StreamError,
    SweepError,
    TrainingError,
)

__all__ = [
    "__version__",
    "nn",
    "sparse",
    "pruning",
    "compiler",
    "engine",
    "hw",
    "kernels",
    "speech",
    "training",
    "sweep",
    "eval",
    "utils",
    "ReproError",
    "ShapeError",
    "ConfigError",
    "GradientError",
    "SparsityError",
    "CompilationError",
    "CompileBackendError",
    "KernelError",
    "SimulationError",
    "StreamError",
    "OverloadError",
    "ArtifactError",
    "FabricError",
    "TrainingError",
    "CheckpointError",
    "SweepError",
]
