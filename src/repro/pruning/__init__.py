"""Model-compression algorithms: BSP (the paper's contribution) + baselines."""

from repro.pruning.admm import ADMMPruner, ADMMTarget
from repro.pruning.bank_balanced import BBSConfig, BBSPruner, bbs_project_masks
from repro.pruning.base import DenseBaseline, PruningMethod
from repro.pruning.block_circulant import (
    BlockCirculantCompressor,
    BlockCirculantConfig,
    circulant_compression_rate,
    project_block_circulant,
)
from repro.pruning.bsp import BSPConfig, BSPPruner, bsp_project_masks
from repro.pruning.magnitude import (
    MagnitudeConfig,
    MagnitudePruner,
    magnitude_project_masks,
)
from repro.pruning.mask import MaskSet, PruningMask
from repro.pruning.metrics import (
    FRAMES_PER_INFERENCE,
    CompressionReport,
    MatrixReport,
    gop_per_frame,
    report_from_arrays,
    report_from_masks,
)
from repro.pruning.ernn import ERNNCompressor, ERNNConfig
from repro.pruning.per_layer import PerLayerBSPPruner
from repro.pruning.schedule import (
    CubicRamp,
    GeometricRamp,
    OneShot,
    RateSchedule,
    make_schedule,
)
from repro.pruning.sensitivity import (
    LayerSensitivity,
    SensitivityReport,
    allocate_rates,
    probe_sensitivity,
    sensitivity_configs,
)
from repro.pruning.projections import (
    project_bank_balanced,
    project_block_columns,
    project_columns,
    project_rows,
    project_unstructured,
)
from repro.pruning.structured import (
    StructuredConfig,
    StructuredPruner,
    structured_project_masks,
)

__all__ = [
    "PruningMask",
    "MaskSet",
    "PruningMethod",
    "DenseBaseline",
    "ADMMPruner",
    "ADMMTarget",
    "BSPConfig",
    "BSPPruner",
    "bsp_project_masks",
    "MagnitudeConfig",
    "MagnitudePruner",
    "magnitude_project_masks",
    "StructuredConfig",
    "StructuredPruner",
    "structured_project_masks",
    "BBSConfig",
    "BBSPruner",
    "bbs_project_masks",
    "BlockCirculantConfig",
    "BlockCirculantCompressor",
    "project_block_circulant",
    "circulant_compression_rate",
    "project_unstructured",
    "project_rows",
    "project_columns",
    "project_block_columns",
    "project_bank_balanced",
    "CompressionReport",
    "MatrixReport",
    "report_from_masks",
    "report_from_arrays",
    "gop_per_frame",
    "FRAMES_PER_INFERENCE",
    "RateSchedule",
    "GeometricRamp",
    "CubicRamp",
    "OneShot",
    "make_schedule",
    "probe_sensitivity",
    "allocate_rates",
    "sensitivity_configs",
    "SensitivityReport",
    "LayerSensitivity",
    "PerLayerBSPPruner",
    "ERNNConfig",
    "ERNNCompressor",
]
