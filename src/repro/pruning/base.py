"""Common hook protocol connecting pruning methods to the training loop.

Every pruning/compression method in this package is driven by the same four
callbacks, so :class:`repro.speech.trainer.Trainer` can train with any of
them interchangeably::

    for epoch in range(E):
        for batch in loader:
            loss = forward(batch); loss.backward()
            method.on_batch_backward()    # e.g. add ADMM penalty gradients
            optimizer.step()
            method.on_batch_end()         # e.g. re-apply hard masks
        method.on_epoch_end()             # e.g. ADMM dual update, phase moves
    masks = method.masks                  # final MaskSet (None if not done)
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.nn.module import Parameter
from repro.pruning.mask import MaskSet


class PruningMethod:
    """Base class with no-op hooks; subclasses override what they need."""

    def __init__(self, named_params: Dict[str, Parameter]) -> None:
        if not named_params:
            raise ValueError("pruning method needs at least one parameter")
        self.named_params = dict(named_params)

    # -- training-loop hooks ------------------------------------------------
    def on_batch_backward(self) -> None:
        """Called after ``loss.backward()``, before ``optimizer.step()``."""

    def on_batch_end(self) -> None:
        """Called after ``optimizer.step()``."""

    def on_epoch_end(self) -> None:
        """Called once per epoch after the batch loop."""

    # -- results -----------------------------------------------------------
    @property
    def masks(self) -> Optional[MaskSet]:
        """Final masks once available, else ``None``."""
        return None

    @property
    def finished(self) -> bool:
        """True when the method needs no further training epochs."""
        return True

    def compression_rate(self) -> float:
        """Aggregate compression rate of the final masks (1.0 if none)."""
        masks = self.masks
        if masks is None or len(masks) == 0:
            return 1.0
        return masks.compression_rate()


class DenseBaseline(PruningMethod):
    """No-op method: keeps the model dense (the 1× baseline rows)."""

    @property
    def masks(self) -> Optional[MaskSet]:
        from repro.pruning.mask import PruningMask

        return MaskSet(
            {name: PruningMask.ones(p.data.shape) for name, p in self.named_params.items()}
        )
