"""Compression accounting: rates, parameter counts, GOP, per-matrix reports.

The GOP convention follows the paper's Table II: the dense 9.6M-parameter
GRU performs 0.58 GOP per inference frame, i.e. roughly 2 ops per weight
per timestep across a ~30-frame context window.  :func:`gop_per_frame`
exposes that convention with the context length as an explicit constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.pruning.mask import MaskSet

#: Timesteps of context processed per reported "frame" of inference.  The
#: paper's dense model (9.6M weights) is listed at 0.58 GOP/frame; with the
#: standard 2-ops-per-weight-per-timestep GEMV accounting that implies a
#: ~30-step window: 2 * 9.6e6 * 30 = 0.576e9.
FRAMES_PER_INFERENCE = 30


@dataclass
class MatrixReport:
    """Per-weight-matrix sparsity summary."""

    name: str
    shape: tuple
    total: int
    nnz: int
    kept_rows: int
    kept_cols: int

    @property
    def compression_rate(self) -> float:
        return self.total / self.nnz if self.nnz else float("inf")

    @property
    def density(self) -> float:
        return self.nnz / self.total if self.total else 1.0


@dataclass
class CompressionReport:
    """Aggregate sparsity summary over a model's prunable weights."""

    matrices: List[MatrixReport]

    @property
    def total_params(self) -> int:
        return sum(m.total for m in self.matrices)

    @property
    def kept_params(self) -> int:
        return sum(m.nnz for m in self.matrices)

    @property
    def overall_rate(self) -> float:
        kept = self.kept_params
        return self.total_params / kept if kept else float("inf")

    def kept_params_millions(self) -> float:
        """Surviving parameters in millions (Table I's 'Para. No.' column)."""
        return self.kept_params / 1e6


def report_from_masks(masks: MaskSet) -> CompressionReport:
    """Build a :class:`CompressionReport` from a mask set."""
    matrices = []
    for name, mask in masks:
        kept_rows = len(mask.kept_rows()) if mask.keep.ndim == 2 else 0
        kept_cols = len(mask.kept_cols()) if mask.keep.ndim == 2 else 0
        matrices.append(
            MatrixReport(
                name=name,
                shape=tuple(mask.shape),
                total=mask.size,
                nnz=mask.nnz,
                kept_rows=kept_rows,
                kept_cols=kept_cols,
            )
        )
    return CompressionReport(matrices=matrices)


def report_from_arrays(named_arrays: Dict[str, np.ndarray]) -> CompressionReport:
    """Build a report from weight arrays, counting exact zeros as pruned."""
    matrices = []
    for name, array in named_arrays.items():
        array = np.asarray(array)
        nnz = int(np.count_nonzero(array))
        if array.ndim == 2:
            kept_rows = int(np.any(array != 0, axis=1).sum())
            kept_cols = int(np.any(array != 0, axis=0).sum())
        else:
            kept_rows = kept_cols = 0
        matrices.append(
            MatrixReport(
                name=name,
                shape=tuple(array.shape),
                total=array.size,
                nnz=nnz,
                kept_rows=kept_rows,
                kept_cols=kept_cols,
            )
        )
    return CompressionReport(matrices=matrices)


def gop_per_frame(
    nnz_weights: int,
    frames_per_inference: int = FRAMES_PER_INFERENCE,
    ops_per_weight: int = 2,
) -> float:
    """Giga-operations per inference frame for ``nnz_weights`` multiply-adds.

    ``2 * nnz * context`` — multiply + add per surviving weight per
    timestep of the context window.
    """
    return ops_per_weight * nnz_weights * frames_per_inference / 1e9


def effective_compression(
    masks: Optional[MaskSet], dense_params: Optional[int] = None
) -> float:
    """Compression rate of ``masks`` (1.0 when None = dense baseline)."""
    if masks is None or len(masks) == 0:
        return 1.0
    rate = masks.compression_rate()
    if dense_params is not None:
        kept = masks.total_nnz()
        return dense_params / kept if kept else float("inf")
    return rate
