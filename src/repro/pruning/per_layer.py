"""Per-layer BSP pruning with sensitivity-allocated rates.

Uniform compression treats every weight matrix equally; this driver
combines :mod:`repro.pruning.sensitivity` with :class:`BSPPruner` so each
layer is pruned at its own rate while the aggregate hits a global target —
the natural next step after the paper's uniform sweeps (its auto-tuner
already tunes block size per model; this tunes *rate* per layer).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.base import PruningMethod
from repro.pruning.bsp import BSPConfig, BSPPruner
from repro.pruning.mask import MaskSet


class PerLayerBSPPruner(PruningMethod):
    """Runs one :class:`BSPPruner` per parameter, each with its own config.

    All sub-pruners advance in lockstep through the shared training hooks;
    the combined mask set unions their masks.  Phase lengths may differ
    per layer — a layer whose pruner finishes early simply holds its final
    mask while the others continue.
    """

    def __init__(
        self,
        named_params: Dict[str, Parameter],
        configs: Dict[str, BSPConfig],
    ) -> None:
        super().__init__(named_params)
        missing = set(named_params) - set(configs)
        if missing:
            raise ConfigError(f"configs missing for parameters: {sorted(missing)}")
        self.pruners: Dict[str, BSPPruner] = {
            name: BSPPruner({name: param}, configs[name])
            for name, param in named_params.items()
        }

    def on_batch_backward(self) -> None:
        for pruner in self.pruners.values():
            pruner.on_batch_backward()

    def on_batch_end(self) -> None:
        for pruner in self.pruners.values():
            pruner.on_batch_end()

    def on_epoch_end(self) -> None:
        for pruner in self.pruners.values():
            pruner.on_epoch_end()

    @property
    def finished(self) -> bool:
        return all(pruner.finished for pruner in self.pruners.values())

    @property
    def masks(self) -> Optional[MaskSet]:
        combined = MaskSet()
        for name, pruner in self.pruners.items():
            layer_masks = pruner.masks
            if layer_masks is None:
                return None
            combined[name] = layer_masks[name]
        return combined

    def phase_summary(self) -> Dict[str, str]:
        """Current phase of each layer's pruner (for progress reporting)."""
        return {name: pruner.phase for name, pruner in self.pruners.items()}
