"""Iterative magnitude (non-structured) pruning — the ESE-style baseline.

Han et al.'s heuristic: repeatedly remove the smallest-magnitude weights
and retrain the survivors.  The sparsity schedule ramps geometrically from
1× to the target rate over ``num_stages`` prune events, one per epoch,
followed by ``retrain_epochs`` of masked fine-tuning.

This gives the highest flexibility per nonzero (Section II-B(a)) but an
irregular pattern that CSR must index per-nonzero — the inefficiency the
BSPC format and Table II's ESE comparison quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.base import PruningMethod
from repro.pruning.mask import MaskSet
from repro.pruning.projections import project_unstructured


@dataclass
class MagnitudeConfig:
    """Schedule for iterative magnitude pruning."""

    rate: float = 8.0
    num_stages: int = 3
    retrain_epochs: int = 2

    def __post_init__(self) -> None:
        if self.rate < 1.0:
            raise ConfigError(f"rate must be >= 1, got {self.rate}")
        if self.num_stages < 1:
            raise ConfigError(f"num_stages must be >= 1, got {self.num_stages}")
        if self.retrain_epochs < 0:
            raise ConfigError(f"retrain_epochs must be >= 0, got {self.retrain_epochs}")

    def stage_rate(self, stage: int) -> float:
        """Compression rate after prune event ``stage`` (1-based)."""
        fraction = min(stage, self.num_stages) / self.num_stages
        return float(self.rate**fraction)


class MagnitudePruner(PruningMethod):
    """Prune-smallest-then-retrain, via the standard training hooks."""

    def __init__(
        self,
        named_params: Dict[str, Parameter],
        config: Optional[MagnitudeConfig] = None,
    ) -> None:
        super().__init__(named_params)
        self.config = config or MagnitudeConfig()
        self._stage = 0
        self._retrain_done = 0
        self._masks: Optional[MaskSet] = None

    def _prune_now(self) -> None:
        self._stage += 1
        rate = self.config.stage_rate(self._stage)
        masks = MaskSet()
        for name, param in self.named_params.items():
            masks[name] = project_unstructured(param.data, rate)
        masks.apply_to_params(self.named_params)
        self._masks = masks

    def on_batch_backward(self) -> None:
        if self._masks is not None:
            for name, mask in self._masks:
                mask.mask_grad_(self.named_params[name])

    def on_batch_end(self) -> None:
        if self._masks is not None:
            self._masks.apply_to_params(self.named_params)

    def on_epoch_end(self) -> None:
        if self._stage < self.config.num_stages:
            self._prune_now()
        elif self._retrain_done < self.config.retrain_epochs:
            self._retrain_done += 1

    @property
    def finished(self) -> bool:
        return (
            self._stage >= self.config.num_stages
            and self._retrain_done >= self.config.retrain_epochs
        )

    @property
    def masks(self) -> Optional[MaskSet]:
        return self._masks


def magnitude_project_masks(
    named_arrays: Dict[str, np.ndarray], rate: float
) -> MaskSet:
    """One-shot magnitude projection (pattern only, no training)."""
    masks = MaskSet()
    for name, array in named_arrays.items():
        masks[name] = project_unstructured(np.asarray(array), rate)
    return masks
