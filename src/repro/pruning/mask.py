"""Pruning masks.

A :class:`PruningMask` is a boolean array with the same shape as the weight
it governs — True means the weight survives.  Masks compose by logical AND,
which is how BSP's Step-1 (block-column) and Step-2 (row) masks combine.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import SparsityError
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor


class PruningMask:
    """Boolean keep-mask over a weight array."""

    def __init__(self, keep: np.ndarray) -> None:
        keep = np.asarray(keep)
        if keep.dtype != np.bool_:
            keep = keep != 0
        self.keep = keep

    # -- constructors -----------------------------------------------------
    @classmethod
    def ones(cls, shape) -> "PruningMask":
        """An all-keep mask (no pruning)."""
        return cls(np.ones(shape, dtype=bool))

    @classmethod
    def from_nonzero(cls, array: np.ndarray) -> "PruningMask":
        """Keep exactly the nonzero positions of ``array``."""
        return cls(np.asarray(array) != 0)

    # -- basic properties --------------------------------------------------
    @property
    def shape(self):
        return self.keep.shape

    @property
    def nnz(self) -> int:
        """Number of surviving weights."""
        return int(self.keep.sum())

    @property
    def size(self) -> int:
        return self.keep.size

    def density(self) -> float:
        """Surviving fraction (nnz / size)."""
        return self.nnz / self.size if self.size else 1.0

    def sparsity(self) -> float:
        """Pruned fraction (1 - density)."""
        return 1.0 - self.density()

    def compression_rate(self) -> float:
        """``size / nnz`` — the paper's 'overall compression rate' unit."""
        if self.nnz == 0:
            return float("inf")
        return self.size / self.nnz

    # -- composition --------------------------------------------------------
    def __and__(self, other: "PruningMask") -> "PruningMask":
        if self.shape != other.shape:
            raise SparsityError(
                f"cannot combine masks of shapes {self.shape} and {other.shape}"
            )
        return PruningMask(self.keep & other.keep)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PruningMask) and np.array_equal(self.keep, other.keep)

    def __hash__(self) -> int:  # masks are mutable arrays; identity hash
        return id(self)

    # -- application ---------------------------------------------------------
    def apply_to_array(self, array: np.ndarray) -> np.ndarray:
        """Return ``array`` with pruned positions zeroed (copy)."""
        array = np.asarray(array)
        if array.shape != self.shape:
            raise SparsityError(
                f"array shape {array.shape} != mask shape {self.shape}"
            )
        return np.where(self.keep, array, 0.0)

    def apply_(self, param: Parameter) -> None:
        """Zero pruned weights of ``param`` in place."""
        if param.data.shape != self.shape:
            raise SparsityError(
                f"param shape {param.data.shape} != mask shape {self.shape}"
            )
        param.data[~self.keep] = 0.0

    def mask_grad_(self, param: Parameter) -> None:
        """Zero the gradient at pruned positions (keeps them pruned)."""
        if param.grad is not None:
            param.grad[~self.keep] = 0.0

    # -- structure queries -----------------------------------------------
    def kept_rows(self) -> np.ndarray:
        """Rows with at least one surviving weight (2-D masks only)."""
        self._require_2d()
        return np.flatnonzero(self.keep.any(axis=1))

    def kept_cols(self) -> np.ndarray:
        """Columns with at least one surviving weight (2-D masks only)."""
        self._require_2d()
        return np.flatnonzero(self.keep.any(axis=0))

    def _require_2d(self) -> None:
        if self.keep.ndim != 2:
            raise SparsityError(f"operation requires a 2-D mask, got {self.shape}")

    def __repr__(self) -> str:
        return (
            f"PruningMask(shape={self.shape}, nnz={self.nnz}, "
            f"compression={self.compression_rate():.1f}x)"
        )


class MaskSet:
    """Named collection of masks covering a model's prunable parameters."""

    def __init__(self, masks: Optional[Dict[str, PruningMask]] = None) -> None:
        self.masks: Dict[str, PruningMask] = dict(masks or {})

    def __getitem__(self, name: str) -> PruningMask:
        return self.masks[name]

    def __setitem__(self, name: str, mask: PruningMask) -> None:
        self.masks[name] = mask

    def __contains__(self, name: str) -> bool:
        return name in self.masks

    def __iter__(self):
        return iter(self.masks.items())

    def __len__(self) -> int:
        return len(self.masks)

    def combine(self, other: "MaskSet") -> "MaskSet":
        """AND-combine with another mask set (union of names)."""
        names = set(self.masks) | set(other.masks)
        combined: Dict[str, PruningMask] = {}
        for name in names:
            if name in self.masks and name in other.masks:
                combined[name] = self.masks[name] & other.masks[name]
            else:
                combined[name] = self.masks.get(name, other.masks.get(name))
        return MaskSet(combined)

    def apply_to_params(self, named_params: Dict[str, Parameter]) -> None:
        """Apply every mask to the matching parameter, in place."""
        for name, mask in self.masks.items():
            if name in named_params:
                mask.apply_(named_params[name])

    def total_nnz(self) -> int:
        """Surviving weights across all masks."""
        return sum(mask.nnz for mask in self.masks.values())

    def total_size(self) -> int:
        """Total weights across all masks."""
        return sum(mask.size for mask in self.masks.values())

    def compression_rate(self) -> float:
        """Aggregate ``size / nnz`` over every governed parameter."""
        nnz = self.total_nnz()
        if nnz == 0:
            return float("inf")
        return self.total_size() / nnz
