"""Bank-balanced sparsity (BBS) baseline — Cao et al., FPGA 2019.

Each weight-matrix row is partitioned into equal banks; every bank keeps
the same number of largest-magnitude weights.  Load balance is perfect by
construction, but selection is constrained to be uniform across banks,
which costs accuracy relative to BSP at high rates (Table I row 'BBS').
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.base import PruningMethod
from repro.pruning.mask import MaskSet
from repro.pruning.projections import project_bank_balanced


@dataclass
class BBSConfig:
    """Schedule for bank-balanced pruning."""

    rate: float = 8.0
    bank_size: int = 32
    num_stages: int = 3
    retrain_epochs: int = 2

    def __post_init__(self) -> None:
        if self.rate < 1.0:
            raise ConfigError(f"rate must be >= 1, got {self.rate}")
        if self.bank_size < 1:
            raise ConfigError(f"bank_size must be >= 1, got {self.bank_size}")
        if self.num_stages < 1:
            raise ConfigError(f"num_stages must be >= 1, got {self.num_stages}")


class BBSPruner(PruningMethod):
    """Iterative bank-balanced pruning with retraining."""

    def __init__(
        self,
        named_params: Dict[str, Parameter],
        config: Optional[BBSConfig] = None,
    ) -> None:
        super().__init__(named_params)
        self.config = config or BBSConfig()
        self._stage = 0
        self._retrain_done = 0
        self._masks: Optional[MaskSet] = None

    def _stage_rate(self, stage: int) -> float:
        fraction = min(stage, self.config.num_stages) / self.config.num_stages
        return float(self.config.rate**fraction)

    def _prune_now(self) -> None:
        self._stage += 1
        rate = self._stage_rate(self._stage)
        masks = MaskSet()
        for name, param in self.named_params.items():
            bank = min(self.config.bank_size, param.data.shape[1])
            masks[name] = project_bank_balanced(param.data, bank, rate)
        masks.apply_to_params(self.named_params)
        self._masks = masks

    def on_batch_backward(self) -> None:
        if self._masks is not None:
            for name, mask in self._masks:
                mask.mask_grad_(self.named_params[name])

    def on_batch_end(self) -> None:
        if self._masks is not None:
            self._masks.apply_to_params(self.named_params)

    def on_epoch_end(self) -> None:
        if self._stage < self.config.num_stages:
            self._prune_now()
        elif self._retrain_done < self.config.retrain_epochs:
            self._retrain_done += 1

    @property
    def finished(self) -> bool:
        return (
            self._stage >= self.config.num_stages
            and self._retrain_done >= self.config.retrain_epochs
        )

    @property
    def masks(self) -> Optional[MaskSet]:
        return self._masks


def bbs_project_masks(
    named_arrays: Dict[str, np.ndarray], rate: float, bank_size: int = 32
) -> MaskSet:
    """One-shot bank-balanced projection (pattern only)."""
    masks = MaskSet()
    for name, array in named_arrays.items():
        array = np.asarray(array)
        bank = min(bank_size, array.shape[1])
        masks[name] = project_bank_balanced(array, bank, rate)
    return masks
