"""ADMM-regularized pruning (Section III-C of the paper).

The pruning problem is ``min f(W, b) + g(W)`` with ``g`` the indicator of a
sparsity set ``S``.  Its augmented Lagrangian (Eq. 2) splits into three
iterated updates (Eq. 3-5):

* **W-update** — a few epochs of ordinary SGD/Adam on
  ``f(W) + (rho/2) ||W - Z + U||_F^2``; here realized by adding
  ``rho * (W - Z + U)`` to each weight gradient via :meth:`ADMMPruner.add_penalty_gradients`,
* **Z-update** — Euclidean projection of ``W + U`` onto ``S``
  (:mod:`repro.pruning.projections`),
* **U-update** — dual ascent ``U += W - Z``.

When the primal residual ``||W - Z||`` is small, the weights have converged
to the constraint set and :meth:`ADMMPruner.finalize` extracts the hard
keep-mask from Z's support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.mask import MaskSet, PruningMask

ProjectionFn = Callable[[np.ndarray], PruningMask]
"""Maps a weight array to the keep-mask of its projection onto S."""


@dataclass
class ADMMTarget:
    """One weight tensor governed by ADMM: the parameter and its set S."""

    name: str
    param: Parameter
    projection: ProjectionFn


@dataclass
class ADMMVariables:
    """Auxiliary (Z) and scaled dual (U) variables for one target."""

    z: np.ndarray
    u: np.ndarray


class ADMMPruner:
    """Runs the ADMM iteration over a set of weight tensors.

    Usage inside a training loop::

        pruner = ADMMPruner(targets, rho=1e-2)
        for epoch in range(E):
            for batch in data:
                loss.backward()
                pruner.add_penalty_gradients()   # W-update direction
                optimizer.step()
            pruner.dual_update()                 # Z- and U-updates
        masks = pruner.finalize()                # hard masks from Z support
    """

    def __init__(self, targets: List[ADMMTarget], rho: float = 1e-2) -> None:
        if rho <= 0:
            raise ConfigError(f"rho must be positive, got {rho}")
        if not targets:
            raise ConfigError("ADMMPruner needs at least one target")
        names = [t.name for t in targets]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate target names: {names}")
        self.targets = list(targets)
        self.rho = rho
        self.variables: Dict[str, ADMMVariables] = {}
        for target in self.targets:
            w = target.param.data
            z = target.projection(w).apply_to_array(w)
            self.variables[target.name] = ADMMVariables(z=z, u=np.zeros_like(w))

    # -- W-update support ----------------------------------------------------
    def add_penalty_gradients(self) -> None:
        """Add ``rho (W - Z + U)`` to each target's gradient.

        Call after ``loss.backward()`` and before ``optimizer.step()`` so the
        optimizer minimizes the augmented Lagrangian rather than the bare loss.
        """
        for target in self.targets:
            var = self.variables[target.name]
            # One temporary, filled in place: rho * (W - Z + U).
            penalty = np.subtract(target.param.data, var.z)
            penalty += var.u
            penalty *= self.rho
            if target.param.grad is None:
                target.param.grad = penalty
            else:
                target.param.grad += penalty

    def penalty_value(self) -> float:
        """Current value of ``sum_i rho/2 ||W_i - Z_i + U_i||^2`` (Eq. 2)."""
        total = 0.0
        for target in self.targets:
            var = self.variables[target.name]
            residual = np.subtract(target.param.data, var.z)
            residual += var.u
            total += 0.5 * self.rho * float(np.vdot(residual, residual))
        return total

    # -- Z / U updates -----------------------------------------------------
    def dual_update(self) -> None:
        """Perform the Z-update (Eq. 4) then the U-update (Eq. 5)."""
        for target in self.targets:
            var = self.variables[target.name]
            w_plus_u = target.param.data + var.u
            mask = target.projection(w_plus_u)
            var.z = mask.apply_to_array(w_plus_u)
            var.u += target.param.data
            var.u -= var.z

    # -- checkpointing -----------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Z and scaled-dual U arrays per target, as ``name::z``/``name::u``.

        Together with the (externally checkpointed) weights this is the
        complete ADMM iteration state: restoring it and continuing
        training is bit-identical to never having serialized.
        """
        state: Dict[str, np.ndarray] = {}
        for name, var in self.variables.items():
            state[f"{name}::z"] = var.z.copy()
            state[f"{name}::u"] = var.u.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore Z/U produced by :meth:`state_dict` (strict: every
        target must be present, no extras, shapes must match)."""
        expected = {f"{t.name}::{field}" for t in self.targets for field in ("z", "u")}
        got = set(state)
        if got != expected:
            raise ConfigError(
                f"ADMM state keys do not match targets "
                f"(missing {sorted(expected - got)}, "
                f"unexpected {sorted(got - expected)})"
            )
        for target in self.targets:
            var = self.variables[target.name]
            for field, current in (("z", var.z), ("u", var.u)):
                value = np.asarray(state[f"{target.name}::{field}"])
                if value.shape != target.param.data.shape:
                    raise ConfigError(
                        f"ADMM {field} for {target.name!r} has shape "
                        f"{value.shape}, weight has {target.param.data.shape}"
                    )
            self.variables[target.name] = ADMMVariables(
                z=np.asarray(state[f"{target.name}::z"]).copy(),
                u=np.asarray(state[f"{target.name}::u"]).copy(),
            )

    # -- convergence diagnostics ------------------------------------------
    def primal_residual(self) -> float:
        """``sqrt(sum_i ||W_i - Z_i||^2)`` — distance to the constraint set."""
        total = 0.0
        for target in self.targets:
            var = self.variables[target.name]
            diff = np.subtract(target.param.data, var.z)
            total += float(np.vdot(diff, diff))
        return float(np.sqrt(total))

    # -- termination ----------------------------------------------------------
    def finalize(self, apply: bool = True) -> MaskSet:
        """Extract hard masks from the Z supports; optionally hard-prune W."""
        masks = MaskSet()
        for target in self.targets:
            mask = PruningMask.from_nonzero(self.variables[target.name].z)
            masks[target.name] = mask
            if apply:
                mask.apply_(target.param)
        return masks
