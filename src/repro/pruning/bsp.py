"""Block-based Structured Pruning — Algorithm 1 of the paper.

BSP trains a compressed model in two sequential steps:

* **Step 1 — row-based column block pruning.**  Each weight matrix is split
  by a :class:`~repro.sparse.blocks.BlockGrid` into ``Numr`` row strips ×
  ``Numc`` column blocks; ADMM drives the weights toward a pattern where
  each block keeps only its strongest ``1/col_rate`` columns, then the mask
  is hardened and the survivors are retrained.
* **Step 2 — column-based row pruning.**  Over the whole (already
  column-block-pruned) matrix, ADMM prunes entire rows down to
  ``1/row_rate``, hardens, and retrains again.

Algorithm 1 is *iterative* — "the training process continues iteratively
until all the blocks are pruned" — so within each ADMM phase the target
rate ramps geometrically from 1× to the phase target across the phase's
epochs: after every epoch the Z/U dual update projects at the ramped rate
and the corresponding hard mask is applied, so the network sheds structure
gradually and the W-update epochs between mask updates re-stabilize it.
One-shot hardening at high rates destroys accuracy that retraining cannot
recover; the ramp is what makes "training performance stable" (Sec. IV-A).

The overall compression rate is approximately ``col_rate × row_rate``
(exactly ``size / nnz`` of the combined mask — ceil-rounding of per-block
keep counts makes it deviate slightly, matching the paper's Table I where
e.g. column 16 × row 1.25 is reported as the 19× configuration).

:class:`BSPPruner` is a phase machine driven through the standard
:class:`~repro.pruning.base.PruningMethod` hooks; :func:`bsp_project_masks`
is the one-shot projection used when only the sparsity *pattern* is needed
(e.g. latency experiments that don't care about accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.admm import ADMMPruner, ADMMTarget
from repro.pruning.base import PruningMethod
from repro.pruning.mask import MaskSet, PruningMask
from repro.pruning.projections import project_block_columns, project_rows
from repro.pruning.schedule import make_schedule
from repro.sparse.blocks import BlockGrid, grid_for


@dataclass
class BSPConfig:
    """Hyper-parameters of BSP training.

    ``col_rate`` / ``row_rate`` are the Step-1 / Step-2 compression targets
    from Table I.  ``num_row_strips`` / ``num_col_blocks`` are the block
    grid (``Numr`` / ``Numc``); the compiler's auto-tuner searches them.
    """

    col_rate: float = 10.0
    row_rate: float = 1.0
    num_row_strips: int = 4
    num_col_blocks: int = 8
    rho: float = 1e-2
    step1_admm_epochs: int = 3
    step1_retrain_epochs: int = 2
    step2_admm_epochs: int = 3
    step2_retrain_epochs: int = 2
    #: Rate-ramp schedule for the iterative hardening within each ADMM
    #: phase: "geometric" (default), "cubic" (AGP-style), or "oneshot".
    ramp: str = "geometric"

    def __post_init__(self) -> None:
        if self.col_rate < 1.0 or self.row_rate < 1.0:
            raise ConfigError(
                f"compression rates must be >= 1, got col={self.col_rate}, "
                f"row={self.row_rate}"
            )
        for name in (
            "num_row_strips",
            "num_col_blocks",
            "step1_admm_epochs",
            "step1_retrain_epochs",
            "step2_admm_epochs",
            "step2_retrain_epochs",
        ):
            if getattr(self, name) < (1 if name.startswith("num") else 0):
                raise ConfigError(f"{name} must be valid, got {getattr(self, name)}")
        if self.rho <= 0:
            raise ConfigError(f"rho must be positive, got {self.rho}")
        make_schedule(self.ramp)  # validates the name

    @property
    def nominal_compression(self) -> float:
        """The headline rate the paper reports: col_rate × row_rate."""
        return self.col_rate * self.row_rate


# Phase order of the BSP state machine.
_PHASES = ("step1_admm", "step1_retrain", "step2_admm", "step2_retrain", "done")


@dataclass
class BSPState:
    """Progress bookkeeping for :class:`BSPPruner`."""

    phase: str = "step1_admm"
    epoch_in_phase: int = 0
    history: List[str] = field(default_factory=list)


class BSPPruner(PruningMethod):
    """Drives BSP (Algorithm 1) through the standard training hooks."""

    def __init__(
        self,
        named_params: Dict[str, Parameter],
        config: Optional[BSPConfig] = None,
    ) -> None:
        super().__init__(named_params)
        self.config = config or BSPConfig()
        self.grids: Dict[str, BlockGrid] = {
            name: grid_for(
                param.data, self.config.num_row_strips, self.config.num_col_blocks
            )
            for name, param in self.named_params.items()
        }
        self.state = BSPState()
        self.step1_masks: Optional[MaskSet] = None
        self.step2_masks: Optional[MaskSet] = None
        self._admm: Optional[ADMMPruner] = None
        self._ramp_masks: Optional[MaskSet] = None
        self._ramp_rate: float = 1.0
        self._enter_phase("step1_admm")

    # -- phase machinery -----------------------------------------------------
    def _phase_epochs(self, phase: str) -> int:
        return {
            "step1_admm": self.config.step1_admm_epochs,
            "step1_retrain": self.config.step1_retrain_epochs,
            "step2_admm": self.config.step2_admm_epochs,
            "step2_retrain": self.config.step2_retrain_epochs,
            "done": 0,
        }[phase]

    def _make_admm(self, phase: str) -> ADMMPruner:
        projection = (
            self._step1_projection if phase == "step1_admm" else self._step2_projection
        )
        return ADMMPruner(
            [
                ADMMTarget(name=name, param=param, projection=projection(name))
                for name, param in self.named_params.items()
            ],
            rho=self.config.rho,
        )

    def _enter_phase(self, phase: str) -> None:
        self.state.phase = phase
        self.state.epoch_in_phase = 0
        self.state.history.append(phase)
        self._ramp_masks = None
        if phase in ("step1_admm", "step2_admm"):
            self._ramp_rate = self._ramped_rate(phase)
            self._admm = self._make_admm(phase)
        else:
            self._admm = None
        # Zero-epoch phases complete immediately.
        while (
            self.state.phase != "done"
            and self._phase_epochs(self.state.phase) == 0
        ):
            self._finish_phase()

    def _ramped_rate(self, phase: str) -> float:
        """Current phase target: ramps 1× → full across the phase's epochs
        following ``config.ramp`` (geometric by default)."""
        target = self.config.col_rate if phase == "step1_admm" else self.config.row_rate
        total = self._phase_epochs(phase)
        if total <= 0:
            return target
        schedule = make_schedule(self.config.ramp)
        # epoch_in_phase counts *completed* epochs; the first epoch trains
        # toward the first ramp point.
        return schedule.rate_at(self.state.epoch_in_phase + 1, total, target)

    def _step1_projection(self, name: str):
        grid = self.grids[name]

        def projection(weight: np.ndarray) -> PruningMask:
            return project_block_columns(weight, grid, self._ramp_rate)

        return projection

    def _step2_projection(self, name: str):
        def projection(weight: np.ndarray) -> PruningMask:
            # Row scores must reflect only weights that survived Step 1.
            step1 = self.step1_masks
            masked = step1[name].apply_to_array(weight) if step1 else weight
            return project_rows(masked, self._ramp_rate)

        return projection

    def _apply_ramp_masks(self) -> None:
        """Harden the current ramped projection onto the live weights."""
        masks = MaskSet()
        for name, param in self.named_params.items():
            if self.state.phase == "step1_admm":
                masks[name] = self._step1_projection(name)(param.data)
            else:
                masks[name] = self._step2_projection(name)(param.data)
        masks.apply_to_params(self.named_params)
        self._ramp_masks = masks

    def _finish_phase(self) -> None:
        phase = self.state.phase
        if phase == "step1_admm":
            assert self._admm is not None
            self.step1_masks = self._admm.finalize(apply=True)
            self._enter_phase("step1_retrain")
        elif phase == "step1_retrain":
            self._enter_phase("step2_admm")
        elif phase == "step2_admm":
            assert self._admm is not None
            self.step2_masks = self._admm.finalize(apply=True)
            combined = self.step1_masks.combine(self.step2_masks)
            combined.apply_to_params(self.named_params)
            self._enter_phase("step2_retrain")
        elif phase == "step2_retrain":
            self._enter_phase("done")

    # -- training hooks ------------------------------------------------------
    def on_batch_backward(self) -> None:
        if self._admm is not None:
            self._admm.add_penalty_gradients()
        # Keep hardened structure fixed by zeroing its gradients: finished
        # steps' masks plus the current phase's ramped mask.
        masks = self._current_hard_masks()
        if masks is not None:
            for name, mask in masks:
                mask.mask_grad_(self.named_params[name])

    def on_batch_end(self) -> None:
        masks = self._current_hard_masks()
        if masks is not None:
            masks.apply_to_params(self.named_params)

    def on_epoch_end(self) -> None:
        if self.state.phase == "done":
            return
        if self._admm is not None:
            self._admm.dual_update()
            # Algorithm 1's iterative hardening: prune to the current ramp
            # point, then let the next epoch's W-update re-stabilize.
            self._apply_ramp_masks()
        self.state.epoch_in_phase += 1
        if self.state.phase in ("step1_admm", "step2_admm"):
            self._ramp_rate = self._ramped_rate(self.state.phase)
        if self.state.epoch_in_phase >= self._phase_epochs(self.state.phase):
            self._finish_phase()

    def _current_hard_masks(self) -> Optional[MaskSet]:
        if self.state.phase == "step1_admm":
            return self._ramp_masks
        if self.state.phase == "step1_retrain":
            return self.step1_masks
        if self.state.phase == "step2_admm":
            if self._ramp_masks is not None and self.step1_masks is not None:
                return self.step1_masks.combine(self._ramp_masks)
            return self.step1_masks
        if self.state.phase in ("step2_retrain", "done"):
            return self.masks
        return None

    # -- checkpointing -------------------------------------------------------
    _MASK_LABELS = (("step1", "step1_masks"), ("step2", "step2_masks"), ("ramp", "_ramp_masks"))

    def state_dict(self) -> Dict[str, object]:
        """Complete phase-machine state: ``{"meta": ..., "arrays": ...}``.

        ``meta`` is JSON-safe (phase, epoch cursor, history, ramp rate);
        ``arrays`` holds the hardened/ramped keep-masks and the live
        ADMM Z/U variables.  Together with externally checkpointed
        weights this restores mid-phase training bit-identically —
        including the Step-2 projections, whose row scores depend on the
        restored Step-1 masks.
        """
        meta: Dict[str, object] = {
            "phase": self.state.phase,
            "epoch_in_phase": int(self.state.epoch_in_phase),
            "history": list(self.state.history),
            "ramp_rate": float(self._ramp_rate),
        }
        arrays: Dict[str, np.ndarray] = {}
        for label, attr in self._MASK_LABELS:
            masks = getattr(self, attr)
            meta[f"has_{label}"] = masks is not None
            if masks is not None:
                for name, mask in masks:
                    arrays[f"{label}::{name}"] = mask.keep.copy()
        meta["has_admm"] = self._admm is not None
        if self._admm is not None:
            for key, value in self._admm.state_dict().items():
                arrays[f"admm::{key}"] = value
        return {"meta": meta, "arrays": arrays}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (strict names/shapes)."""
        meta = dict(state["meta"])
        arrays = dict(state["arrays"])
        phase = meta["phase"]
        if phase not in _PHASES:
            raise ConfigError(f"unknown BSP phase {phase!r}")
        in_admm = phase in ("step1_admm", "step2_admm")
        if bool(meta["has_admm"]) != in_admm:
            raise ConfigError(
                f"inconsistent BSP state: phase {phase!r} with "
                f"has_admm={meta['has_admm']}"
            )
        self.state = BSPState(
            phase=phase,
            epoch_in_phase=int(meta["epoch_in_phase"]),
            history=[str(entry) for entry in meta["history"]],
        )
        self._ramp_rate = float(meta["ramp_rate"])
        for label, attr in self._MASK_LABELS:
            setattr(self, attr, self._read_masks(meta, arrays, label))
        if in_admm:
            # step1_masks must be restored first: the Step-2 projection
            # closure scores rows through them.
            self._admm = self._make_admm(phase)
            self._admm.load_state_dict(
                {
                    key[len("admm::"):]: value
                    for key, value in arrays.items()
                    if key.startswith("admm::")
                }
            )
        else:
            self._admm = None

    def _read_masks(
        self, meta: Dict, arrays: Dict[str, np.ndarray], label: str
    ) -> Optional[MaskSet]:
        if not meta.get(f"has_{label}"):
            return None
        prefix = f"{label}::"
        found = {
            key[len(prefix):]: np.asarray(value)
            for key, value in arrays.items()
            if key.startswith(prefix)
        }
        expected = set(self.named_params)
        if set(found) != expected:
            raise ConfigError(
                f"BSP {label} masks do not match prunable parameters "
                f"(missing {sorted(expected - set(found))}, "
                f"unexpected {sorted(set(found) - expected)})"
            )
        masks = MaskSet()
        for name, keep in found.items():
            if keep.shape != self.named_params[name].data.shape:
                raise ConfigError(
                    f"BSP {label} mask for {name!r} has shape {keep.shape}, "
                    f"weight has {self.named_params[name].data.shape}"
                )
            masks[name] = PruningMask(keep)
        return masks

    # -- results -----------------------------------------------------------
    @property
    def phase(self) -> str:
        return self.state.phase

    @property
    def finished(self) -> bool:
        return self.state.phase == "done"

    @property
    def masks(self) -> Optional[MaskSet]:
        if self.step1_masks is None:
            return None
        if self.step2_masks is None:
            return self.step1_masks
        return self.step1_masks.combine(self.step2_masks)

    def primal_residual(self) -> float:
        """ADMM primal residual of the active phase (0.0 outside ADMM)."""
        return self._admm.primal_residual() if self._admm is not None else 0.0


def bsp_project_masks(
    named_arrays: Dict[str, np.ndarray], config: BSPConfig
) -> MaskSet:
    """One-shot BSP projection: Step-1 then Step-2 masks, no training.

    Produces the same *sparsity structure* BSP training would converge to
    for the given weights; used by latency/energy experiments (Table II,
    Figure 4) where only the pattern matters.
    """
    masks = MaskSet()
    for name, array in named_arrays.items():
        array = np.asarray(array)
        grid = grid_for(array, config.num_row_strips, config.num_col_blocks)
        step1 = project_block_columns(array, grid, config.col_rate)
        masked = step1.apply_to_array(array)
        step2 = project_rows(masked, config.row_rate)
        masks[name] = step1 & step2
    return masks
