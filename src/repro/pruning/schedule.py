"""Compression-rate schedules for iterative pruning.

Algorithm 1 of the paper prunes *iteratively* but does not specify the
ramp; this module provides the standard choices so the design space can be
ablated:

* :class:`GeometricRamp` — equal multiplicative steps (the BSP default:
  after epoch ``k`` of ``K``, rate = ``target^(k/K)``),
* :class:`CubicRamp` — the Zhu & Gupta (2018) automated-gradual-pruning
  schedule on *sparsity* (front-loads pruning while the network is still
  plastic),
* :class:`OneShot` — jump straight to the target (the ablation showing why
  ramping matters).
"""

from __future__ import annotations

from repro.errors import ConfigError


class RateSchedule:
    """Maps (epoch, total_epochs, target_rate) → the rate to prune to."""

    def rate_at(self, epoch: int, total_epochs: int, target: float) -> float:
        raise NotImplementedError

    def _validate(self, epoch: int, total_epochs: int, target: float) -> float:
        if target < 1.0:
            raise ConfigError(f"target rate must be >= 1, got {target}")
        if total_epochs <= 0:
            return target
        return min(1.0, max(0.0, epoch / total_epochs))


class GeometricRamp(RateSchedule):
    """Equal multiplicative steps: ``target ** (epoch/total)``."""

    def rate_at(self, epoch: int, total_epochs: int, target: float) -> float:
        fraction = self._validate(epoch, total_epochs, target)
        return float(target**fraction)


class CubicRamp(RateSchedule):
    """Cubic sparsity ramp (AGP): fast early pruning, gentle finish.

    Sparsity follows ``s(t) = s_f (1 - (1-t)^3)``; the rate is derived
    from the sparsity, so the first epochs remove most of the weights and
    the final epochs refine.
    """

    def rate_at(self, epoch: int, total_epochs: int, target: float) -> float:
        fraction = self._validate(epoch, total_epochs, target)
        final_sparsity = 1.0 - 1.0 / target
        sparsity = final_sparsity * (1.0 - (1.0 - fraction) ** 3)
        if sparsity >= 1.0:
            return target
        return float(min(target, 1.0 / (1.0 - sparsity)))


class OneShot(RateSchedule):
    """No ramp: the full target from the first epoch."""

    def rate_at(self, epoch: int, total_epochs: int, target: float) -> float:
        self._validate(epoch, total_epochs, target)
        return float(target)


_SCHEDULES = {
    "geometric": GeometricRamp,
    "cubic": CubicRamp,
    "oneshot": OneShot,
}


def make_schedule(name: str) -> RateSchedule:
    """Look up a schedule by name ('geometric', 'cubic', 'oneshot')."""
    try:
        return _SCHEDULES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown schedule {name!r}; choose from {sorted(_SCHEDULES)}"
        ) from None
