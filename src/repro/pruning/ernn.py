"""E-RNN baseline — ADMM-trained block-circulant compression (HPCA 2019).

E-RNN (Li et al.) improves on C-LSTM by training the block-circulant
structure with ADMM instead of projected gradient descent: the weights are
pulled toward the circulant set by the augmented-Lagrangian penalty while
the loss is still being minimized, then hardened.  Table I shows it
achieving the smallest degradation (0.18) of the prior methods at 8×.

The circulant set is an affine subspace, so — unlike the sparsity sets —
the ADMM here is *convex* in the constraint and converges cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.base import PruningMethod
from repro.pruning.block_circulant import (
    circulant_compression_rate,
    project_block_circulant,
)
from repro.pruning.mask import MaskSet, PruningMask


@dataclass
class ERNNConfig:
    """E-RNN training schedule."""

    block_size: int = 8
    rho: float = 1e-2
    admm_epochs: int = 3
    retrain_epochs: int = 2

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ConfigError(f"block_size must be >= 1, got {self.block_size}")
        if self.rho <= 0:
            raise ConfigError(f"rho must be positive, got {self.rho}")
        if self.admm_epochs < 0 or self.retrain_epochs < 0:
            raise ConfigError("epoch counts must be >= 0")


class ERNNCompressor(PruningMethod):
    """ADMM toward block-circulant structure, then hardened retraining.

    During the ADMM phase, each weight matrix ``W`` carries auxiliary
    ``Z = Pi(W + U)`` (projection onto the circulant subspace) and scaled
    dual ``U``; the batch hook adds ``rho (W - Z + U)`` to the gradients.
    After ``admm_epochs``, weights are hardened to their projection and
    retraining keeps them exactly circulant (project after every step).
    """

    def __init__(
        self,
        named_params: Dict[str, Parameter],
        config: Optional[ERNNConfig] = None,
    ) -> None:
        super().__init__(named_params)
        self.config = config or ERNNConfig()
        self._z: Dict[str, np.ndarray] = {}
        self._u: Dict[str, np.ndarray] = {}
        for name, param in named_params.items():
            self._z[name] = project_block_circulant(
                param.data, self.config.block_size
            )
            self._u[name] = np.zeros_like(param.data)
        self._admm_done = 0
        self._retrain_done = 0
        self._hardened = False

    # -- hooks ---------------------------------------------------------------
    def on_batch_backward(self) -> None:
        if self._hardened:
            return
        for name, param in self.named_params.items():
            penalty = self.config.rho * (param.data - self._z[name] + self._u[name])
            if param.grad is None:
                param.grad = penalty
            else:
                param.grad = param.grad + penalty

    def on_batch_end(self) -> None:
        if self._hardened:
            for param in self.named_params.values():
                param.data[...] = project_block_circulant(
                    param.data, self.config.block_size
                )

    def on_epoch_end(self) -> None:
        if not self._hardened:
            for name, param in self.named_params.items():
                w_plus_u = param.data + self._u[name]
                self._z[name] = project_block_circulant(
                    w_plus_u, self.config.block_size
                )
                self._u[name] = self._u[name] + param.data - self._z[name]
            self._admm_done += 1
            if self._admm_done >= self.config.admm_epochs:
                self._harden()
        elif self._retrain_done < self.config.retrain_epochs:
            self._retrain_done += 1

    def _harden(self) -> None:
        for param in self.named_params.values():
            param.data[...] = project_block_circulant(
                param.data, self.config.block_size
            )
        self._hardened = True

    # -- diagnostics ---------------------------------------------------------
    def primal_residual(self) -> float:
        """Distance of the weights from their circulant projections."""
        total = 0.0
        for name, param in self.named_params.items():
            projected = project_block_circulant(param.data, self.config.block_size)
            total += float(np.sum((param.data - projected) ** 2))
        return float(np.sqrt(total))

    # -- results -----------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._hardened and self._retrain_done >= self.config.retrain_epochs

    @property
    def masks(self) -> Optional[MaskSet]:
        """All-ones masks: circulant compression stores fewer *values*,
        not more zeros — see :meth:`compression_rate`."""
        return MaskSet(
            {
                name: PruningMask.ones(param.data.shape)
                for name, param in self.named_params.items()
            }
        )

    def compression_rate(self) -> float:
        total = 0
        stored = 0.0
        for param in self.named_params.values():
            size = param.data.size
            total += size
            stored += size / circulant_compression_rate(
                param.data.shape, self.config.block_size
            )
        return total / stored if stored else float("inf")
