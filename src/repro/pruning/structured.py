"""Whole-matrix structured pruning baselines (Figure 2's schemes).

Row pruning is the GEMM analogue of filter pruning; column pruning of
channel pruning.  Both are ADMM-trained (same machinery as BSP but with a
coarse, whole-matrix constraint set), which isolates the benefit of BSP's
finer block granularity in the Table-I-style comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Parameter
from repro.pruning.admm import ADMMPruner, ADMMTarget
from repro.pruning.base import PruningMethod
from repro.pruning.mask import MaskSet
from repro.pruning.projections import project_columns, project_rows


@dataclass
class StructuredConfig:
    """Schedule for ADMM whole-row or whole-column pruning."""

    rate: float = 8.0
    axis: str = "row"  # "row" (filter-like) or "column" (channel-like)
    rho: float = 1e-2
    admm_epochs: int = 3
    retrain_epochs: int = 2

    def __post_init__(self) -> None:
        if self.axis not in ("row", "column"):
            raise ConfigError(f"axis must be 'row' or 'column', got {self.axis!r}")
        if self.rate < 1.0:
            raise ConfigError(f"rate must be >= 1, got {self.rate}")
        if self.rho <= 0:
            raise ConfigError(f"rho must be positive, got {self.rho}")


class StructuredPruner(PruningMethod):
    """ADMM training toward whole-row/column sparsity, then retrain."""

    def __init__(
        self,
        named_params: Dict[str, Parameter],
        config: Optional[StructuredConfig] = None,
    ) -> None:
        super().__init__(named_params)
        self.config = config or StructuredConfig()
        project = project_rows if self.config.axis == "row" else project_columns
        rate = self.config.rate
        self._admm: Optional[ADMMPruner] = ADMMPruner(
            [
                ADMMTarget(name, param, lambda w, _p=project, _r=rate: _p(w, _r))
                for name, param in self.named_params.items()
            ],
            rho=self.config.rho,
        )
        self._admm_done = 0
        self._retrain_done = 0
        self._masks: Optional[MaskSet] = None

    def on_batch_backward(self) -> None:
        if self._admm is not None:
            self._admm.add_penalty_gradients()
        if self._masks is not None:
            for name, mask in self._masks:
                mask.mask_grad_(self.named_params[name])

    def on_batch_end(self) -> None:
        if self._masks is not None:
            self._masks.apply_to_params(self.named_params)

    def on_epoch_end(self) -> None:
        if self._admm is not None:
            self._admm.dual_update()
            self._admm_done += 1
            if self._admm_done >= self.config.admm_epochs:
                self._masks = self._admm.finalize(apply=True)
                self._admm = None
        elif self._retrain_done < self.config.retrain_epochs:
            self._retrain_done += 1

    @property
    def finished(self) -> bool:
        return (
            self._masks is not None
            and self._retrain_done >= self.config.retrain_epochs
        )

    @property
    def masks(self) -> Optional[MaskSet]:
        return self._masks


def structured_project_masks(
    named_arrays: Dict[str, np.ndarray], rate: float, axis: str = "row"
) -> MaskSet:
    """One-shot whole-row/column projection (pattern only)."""
    if axis not in ("row", "column"):
        raise ConfigError(f"axis must be 'row' or 'column', got {axis!r}")
    project = project_rows if axis == "row" else project_columns
    masks = MaskSet()
    for name, array in named_arrays.items():
        masks[name] = project(np.asarray(array), rate)
    return masks
