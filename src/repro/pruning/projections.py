"""Projection operators onto sparsity-constraint sets.

These implement the ADMM Z-update (Eq. 4 of the paper): Euclidean
projection of ``W + U`` onto the constraint set ``S``.  Each function maps a
weight matrix to the *keep mask* of its projection; the projected matrix is
then simply ``mask * W`` since all sets here are coordinate subspaces.

Available sets:

* unstructured magnitude (ESE-style non-structured pruning),
* whole-matrix row pruning / column pruning (filter/channel analogues of
  Figure 2),
* block column pruning — BSP Step 1: inside each block of a
  :class:`~repro.sparse.blocks.BlockGrid`, keep the strongest columns,
* bank-balanced pruning (the BBS baseline).

All keep counts are computed with ``ceil`` so a requested compression rate
never over-prunes to zero, and ties are broken deterministically by index.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.pruning.mask import PruningMask
from repro.sparse.blocks import BlockGrid
from repro.utils.validation import check_2d


def _keep_count(total: int, rate: float) -> int:
    """How many of ``total`` items survive compression ``rate`` (>= 1)."""
    if rate < 1.0:
        raise ConfigError(f"compression rate must be >= 1, got {rate}")
    return max(1, int(np.ceil(total / rate)))


def _top_indices(scores: np.ndarray, keep: int) -> np.ndarray:
    """Indices of the ``keep`` largest scores; ties resolved by lower index."""
    if keep >= len(scores):
        return np.arange(len(scores))
    # argsort on (-score, index) gives deterministic tie-breaking.
    order = np.lexsort((np.arange(len(scores)), -scores))
    return np.sort(order[:keep])


def project_unstructured(weight: np.ndarray, rate: float) -> PruningMask:
    """Keep the ``1/rate`` fraction of weights with largest magnitude."""
    weight = np.asarray(weight)
    flat = np.abs(weight).reshape(-1)
    keep = _keep_count(flat.size, rate)
    mask = np.zeros(flat.size, dtype=bool)
    mask[_top_indices(flat, keep)] = True
    return PruningMask(mask.reshape(weight.shape))


def project_rows(weight: np.ndarray, rate: float) -> PruningMask:
    """Keep the ``1/rate`` fraction of rows with largest L2 norm.

    This is BSP Step 2 ('column-based row pruning' over the whole matrix)
    and also the classic filter-pruning baseline.
    """
    weight = check_2d(weight, "weight")
    norms = np.linalg.norm(weight, axis=1)
    keep_rows = _top_indices(norms, _keep_count(weight.shape[0], rate))
    mask = np.zeros(weight.shape, dtype=bool)
    mask[keep_rows, :] = True
    return PruningMask(mask)


def project_columns(weight: np.ndarray, rate: float) -> PruningMask:
    """Keep the ``1/rate`` fraction of whole columns with largest L2 norm
    (channel-pruning analogue)."""
    weight = check_2d(weight, "weight")
    norms = np.linalg.norm(weight, axis=0)
    keep_cols = _top_indices(norms, _keep_count(weight.shape[1], rate))
    mask = np.zeros(weight.shape, dtype=bool)
    mask[:, keep_cols] = True
    return PruningMask(mask)


def project_block_columns(
    weight: np.ndarray, grid: BlockGrid, rate: float
) -> PruningMask:
    """BSP Step 1: within every block region, keep the strongest columns.

    For each of the grid's ``Numr × Numc`` regions, column scores are the
    L2 norms of the column segments *inside that region*, so different row
    strips may keep different columns — the finer granularity that lets BSP
    out-compress whole-matrix structured pruning at equal accuracy.
    """
    weight = grid.validate_matrix(check_2d(weight, "weight"))
    mask = np.zeros(weight.shape, dtype=bool)
    for region in grid.regions():
        rs, cs = region.slice()
        segment = weight[rs, cs]
        norms = np.linalg.norm(segment, axis=0)
        keep_local = _top_indices(norms, _keep_count(segment.shape[1], rate))
        mask[rs, region.col_start + keep_local] = True
    return PruningMask(mask)


def project_bank_balanced(
    weight: np.ndarray, bank_size: int, rate: float
) -> PruningMask:
    """Bank-balanced sparsity (BBS, Cao et al. 2019).

    Each row is split into consecutive banks of ``bank_size`` columns; the
    same number of largest-magnitude weights is kept in every bank, so all
    rows (and all banks) carry identical nonzero counts — load balance by
    construction, at the cost of coarser weight selection than BSP.
    """
    weight = check_2d(weight, "weight")
    rows, cols = weight.shape
    if bank_size < 1 or bank_size > cols:
        raise ConfigError(f"bank_size must be in [1, {cols}], got {bank_size}")
    mask = np.zeros(weight.shape, dtype=bool)
    for start in range(0, cols, bank_size):
        stop = min(start + bank_size, cols)
        bank = np.abs(weight[:, start:stop])
        keep = _keep_count(stop - start, rate)
        for r in range(rows):
            idx = _top_indices(bank[r], keep)
            mask[r, start + idx] = True
    return PruningMask(mask)
